file(REMOVE_RECURSE
  "CMakeFiles/test_models.dir/models/cost_model_test.cc.o"
  "CMakeFiles/test_models.dir/models/cost_model_test.cc.o.d"
  "CMakeFiles/test_models.dir/models/model_test.cc.o"
  "CMakeFiles/test_models.dir/models/model_test.cc.o.d"
  "CMakeFiles/test_models.dir/models/profiler_test.cc.o"
  "CMakeFiles/test_models.dir/models/profiler_test.cc.o.d"
  "test_models"
  "test_models.pdb"
  "test_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
