file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/allocator_test.cc.o"
  "CMakeFiles/test_core.dir/core/allocator_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/batching_test.cc.o"
  "CMakeFiles/test_core.dir/core/batching_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/controller_test.cc.o"
  "CMakeFiles/test_core.dir/core/controller_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/experiment_test.cc.o"
  "CMakeFiles/test_core.dir/core/experiment_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/fairness_test.cc.o"
  "CMakeFiles/test_core.dir/core/fairness_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/router_test.cc.o"
  "CMakeFiles/test_core.dir/core/router_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/worker_test.cc.o"
  "CMakeFiles/test_core.dir/core/worker_test.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
