# Empty dependencies file for proteus_sim_cli.
# This may be replaced when dependencies are built.
