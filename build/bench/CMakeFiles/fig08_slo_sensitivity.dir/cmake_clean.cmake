file(REMOVE_RECURSE
  "CMakeFiles/fig08_slo_sensitivity.dir/fig08_slo_sensitivity.cc.o"
  "CMakeFiles/fig08_slo_sensitivity.dir/fig08_slo_sensitivity.cc.o.d"
  "fig08_slo_sensitivity"
  "fig08_slo_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_slo_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
