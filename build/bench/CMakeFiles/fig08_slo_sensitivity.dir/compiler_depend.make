# Empty compiler generated dependencies file for fig08_slo_sensitivity.
# This may be replaced when dependencies are built.
