file(REMOVE_RECURSE
  "CMakeFiles/fig04_end_to_end.dir/fig04_end_to_end.cc.o"
  "CMakeFiles/fig04_end_to_end.dir/fig04_end_to_end.cc.o.d"
  "fig04_end_to_end"
  "fig04_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
