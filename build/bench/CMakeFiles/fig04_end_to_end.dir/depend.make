# Empty dependencies file for fig04_end_to_end.
# This may be replaced when dependencies are built.
