# Empty dependencies file for fig05_bursty.
# This may be replaced when dependencies are built.
