file(REMOVE_RECURSE
  "CMakeFiles/fig05_bursty.dir/fig05_bursty.cc.o"
  "CMakeFiles/fig05_bursty.dir/fig05_bursty.cc.o.d"
  "fig05_bursty"
  "fig05_bursty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_bursty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
