
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig05_bursty.cc" "bench/CMakeFiles/fig05_bursty.dir/fig05_bursty.cc.o" "gcc" "bench/CMakeFiles/fig05_bursty.dir/fig05_bursty.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/proteus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/proteus_models.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/proteus_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/proteus_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/proteus_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/proteus_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/proteus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/proteus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
