# Empty compiler generated dependencies file for overhead_decision.
# This may be replaced when dependencies are built.
