file(REMOVE_RECURSE
  "CMakeFiles/fig06_batching.dir/fig06_batching.cc.o"
  "CMakeFiles/fig06_batching.dir/fig06_batching.cc.o.d"
  "fig06_batching"
  "fig06_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
