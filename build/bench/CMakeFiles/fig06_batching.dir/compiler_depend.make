# Empty compiler generated dependencies file for fig06_batching.
# This may be replaced when dependencies are built.
