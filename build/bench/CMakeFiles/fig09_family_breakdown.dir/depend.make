# Empty dependencies file for fig09_family_breakdown.
# This may be replaced when dependencies are built.
