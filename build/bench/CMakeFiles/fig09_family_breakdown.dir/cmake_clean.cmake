file(REMOVE_RECURSE
  "CMakeFiles/fig09_family_breakdown.dir/fig09_family_breakdown.cc.o"
  "CMakeFiles/fig09_family_breakdown.dir/fig09_family_breakdown.cc.o.d"
  "fig09_family_breakdown"
  "fig09_family_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_family_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
