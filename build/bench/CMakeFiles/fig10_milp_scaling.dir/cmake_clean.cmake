file(REMOVE_RECURSE
  "CMakeFiles/fig10_milp_scaling.dir/fig10_milp_scaling.cc.o"
  "CMakeFiles/fig10_milp_scaling.dir/fig10_milp_scaling.cc.o.d"
  "fig10_milp_scaling"
  "fig10_milp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_milp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
