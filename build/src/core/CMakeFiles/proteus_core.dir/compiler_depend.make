# Empty compiler generated dependencies file for proteus_core.
# This may be replaced when dependencies are built.
