file(REMOVE_RECURSE
  "CMakeFiles/proteus_core.dir/__/baselines/aimd_batching.cc.o"
  "CMakeFiles/proteus_core.dir/__/baselines/aimd_batching.cc.o.d"
  "CMakeFiles/proteus_core.dir/__/baselines/clipper.cc.o"
  "CMakeFiles/proteus_core.dir/__/baselines/clipper.cc.o.d"
  "CMakeFiles/proteus_core.dir/__/baselines/infaas.cc.o"
  "CMakeFiles/proteus_core.dir/__/baselines/infaas.cc.o.d"
  "CMakeFiles/proteus_core.dir/__/baselines/nexus_batching.cc.o"
  "CMakeFiles/proteus_core.dir/__/baselines/nexus_batching.cc.o.d"
  "CMakeFiles/proteus_core.dir/__/baselines/sommelier.cc.o"
  "CMakeFiles/proteus_core.dir/__/baselines/sommelier.cc.o.d"
  "CMakeFiles/proteus_core.dir/batching.cc.o"
  "CMakeFiles/proteus_core.dir/batching.cc.o.d"
  "CMakeFiles/proteus_core.dir/controller.cc.o"
  "CMakeFiles/proteus_core.dir/controller.cc.o.d"
  "CMakeFiles/proteus_core.dir/experiment.cc.o"
  "CMakeFiles/proteus_core.dir/experiment.cc.o.d"
  "CMakeFiles/proteus_core.dir/ilp_allocator.cc.o"
  "CMakeFiles/proteus_core.dir/ilp_allocator.cc.o.d"
  "CMakeFiles/proteus_core.dir/query.cc.o"
  "CMakeFiles/proteus_core.dir/query.cc.o.d"
  "CMakeFiles/proteus_core.dir/router.cc.o"
  "CMakeFiles/proteus_core.dir/router.cc.o.d"
  "CMakeFiles/proteus_core.dir/serving_system.cc.o"
  "CMakeFiles/proteus_core.dir/serving_system.cc.o.d"
  "CMakeFiles/proteus_core.dir/worker.cc.o"
  "CMakeFiles/proteus_core.dir/worker.cc.o.d"
  "libproteus_core.a"
  "libproteus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
