file(REMOVE_RECURSE
  "libproteus_core.a"
)
