
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/aimd_batching.cc" "src/core/CMakeFiles/proteus_core.dir/__/baselines/aimd_batching.cc.o" "gcc" "src/core/CMakeFiles/proteus_core.dir/__/baselines/aimd_batching.cc.o.d"
  "/root/repo/src/baselines/clipper.cc" "src/core/CMakeFiles/proteus_core.dir/__/baselines/clipper.cc.o" "gcc" "src/core/CMakeFiles/proteus_core.dir/__/baselines/clipper.cc.o.d"
  "/root/repo/src/baselines/infaas.cc" "src/core/CMakeFiles/proteus_core.dir/__/baselines/infaas.cc.o" "gcc" "src/core/CMakeFiles/proteus_core.dir/__/baselines/infaas.cc.o.d"
  "/root/repo/src/baselines/nexus_batching.cc" "src/core/CMakeFiles/proteus_core.dir/__/baselines/nexus_batching.cc.o" "gcc" "src/core/CMakeFiles/proteus_core.dir/__/baselines/nexus_batching.cc.o.d"
  "/root/repo/src/baselines/sommelier.cc" "src/core/CMakeFiles/proteus_core.dir/__/baselines/sommelier.cc.o" "gcc" "src/core/CMakeFiles/proteus_core.dir/__/baselines/sommelier.cc.o.d"
  "/root/repo/src/core/batching.cc" "src/core/CMakeFiles/proteus_core.dir/batching.cc.o" "gcc" "src/core/CMakeFiles/proteus_core.dir/batching.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/proteus_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/proteus_core.dir/controller.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/proteus_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/proteus_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/ilp_allocator.cc" "src/core/CMakeFiles/proteus_core.dir/ilp_allocator.cc.o" "gcc" "src/core/CMakeFiles/proteus_core.dir/ilp_allocator.cc.o.d"
  "/root/repo/src/core/query.cc" "src/core/CMakeFiles/proteus_core.dir/query.cc.o" "gcc" "src/core/CMakeFiles/proteus_core.dir/query.cc.o.d"
  "/root/repo/src/core/router.cc" "src/core/CMakeFiles/proteus_core.dir/router.cc.o" "gcc" "src/core/CMakeFiles/proteus_core.dir/router.cc.o.d"
  "/root/repo/src/core/serving_system.cc" "src/core/CMakeFiles/proteus_core.dir/serving_system.cc.o" "gcc" "src/core/CMakeFiles/proteus_core.dir/serving_system.cc.o.d"
  "/root/repo/src/core/worker.cc" "src/core/CMakeFiles/proteus_core.dir/worker.cc.o" "gcc" "src/core/CMakeFiles/proteus_core.dir/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/proteus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/proteus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/proteus_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/proteus_models.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/proteus_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/proteus_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/proteus_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
