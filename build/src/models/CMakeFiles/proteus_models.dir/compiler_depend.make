# Empty compiler generated dependencies file for proteus_models.
# This may be replaced when dependencies are built.
