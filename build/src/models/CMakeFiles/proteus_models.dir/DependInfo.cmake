
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/cost_model.cc" "src/models/CMakeFiles/proteus_models.dir/cost_model.cc.o" "gcc" "src/models/CMakeFiles/proteus_models.dir/cost_model.cc.o.d"
  "/root/repo/src/models/model.cc" "src/models/CMakeFiles/proteus_models.dir/model.cc.o" "gcc" "src/models/CMakeFiles/proteus_models.dir/model.cc.o.d"
  "/root/repo/src/models/profiler.cc" "src/models/CMakeFiles/proteus_models.dir/profiler.cc.o" "gcc" "src/models/CMakeFiles/proteus_models.dir/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/proteus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/proteus_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
