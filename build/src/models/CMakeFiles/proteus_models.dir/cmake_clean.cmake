file(REMOVE_RECURSE
  "CMakeFiles/proteus_models.dir/cost_model.cc.o"
  "CMakeFiles/proteus_models.dir/cost_model.cc.o.d"
  "CMakeFiles/proteus_models.dir/model.cc.o"
  "CMakeFiles/proteus_models.dir/model.cc.o.d"
  "CMakeFiles/proteus_models.dir/profiler.cc.o"
  "CMakeFiles/proteus_models.dir/profiler.cc.o.d"
  "libproteus_models.a"
  "libproteus_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
