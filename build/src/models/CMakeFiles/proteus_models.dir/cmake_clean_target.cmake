file(REMOVE_RECURSE
  "libproteus_models.a"
)
