# Empty dependencies file for proteus_cluster.
# This may be replaced when dependencies are built.
