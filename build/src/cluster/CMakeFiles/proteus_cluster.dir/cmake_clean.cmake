file(REMOVE_RECURSE
  "CMakeFiles/proteus_cluster.dir/device.cc.o"
  "CMakeFiles/proteus_cluster.dir/device.cc.o.d"
  "libproteus_cluster.a"
  "libproteus_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
