file(REMOVE_RECURSE
  "libproteus_cluster.a"
)
