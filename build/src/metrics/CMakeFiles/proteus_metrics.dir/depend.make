# Empty dependencies file for proteus_metrics.
# This may be replaced when dependencies are built.
