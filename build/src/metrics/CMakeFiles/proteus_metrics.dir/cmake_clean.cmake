file(REMOVE_RECURSE
  "CMakeFiles/proteus_metrics.dir/collector.cc.o"
  "CMakeFiles/proteus_metrics.dir/collector.cc.o.d"
  "libproteus_metrics.a"
  "libproteus_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
