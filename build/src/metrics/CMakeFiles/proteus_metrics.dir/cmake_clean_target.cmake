file(REMOVE_RECURSE
  "libproteus_metrics.a"
)
