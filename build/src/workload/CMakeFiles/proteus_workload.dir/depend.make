# Empty dependencies file for proteus_workload.
# This may be replaced when dependencies are built.
