file(REMOVE_RECURSE
  "libproteus_workload.a"
)
