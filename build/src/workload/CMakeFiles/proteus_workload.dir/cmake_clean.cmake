file(REMOVE_RECURSE
  "CMakeFiles/proteus_workload.dir/generators.cc.o"
  "CMakeFiles/proteus_workload.dir/generators.cc.o.d"
  "CMakeFiles/proteus_workload.dir/trace.cc.o"
  "CMakeFiles/proteus_workload.dir/trace.cc.o.d"
  "libproteus_workload.a"
  "libproteus_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
