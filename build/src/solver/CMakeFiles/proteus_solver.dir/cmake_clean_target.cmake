file(REMOVE_RECURSE
  "libproteus_solver.a"
)
