file(REMOVE_RECURSE
  "CMakeFiles/proteus_solver.dir/lp.cc.o"
  "CMakeFiles/proteus_solver.dir/lp.cc.o.d"
  "CMakeFiles/proteus_solver.dir/milp.cc.o"
  "CMakeFiles/proteus_solver.dir/milp.cc.o.d"
  "CMakeFiles/proteus_solver.dir/simplex.cc.o"
  "CMakeFiles/proteus_solver.dir/simplex.cc.o.d"
  "libproteus_solver.a"
  "libproteus_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
