# Empty compiler generated dependencies file for proteus_solver.
# This may be replaced when dependencies are built.
