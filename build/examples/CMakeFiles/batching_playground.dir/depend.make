# Empty dependencies file for batching_playground.
# This may be replaced when dependencies are built.
