file(REMOVE_RECURSE
  "CMakeFiles/batching_playground.dir/batching_playground.cpp.o"
  "CMakeFiles/batching_playground.dir/batching_playground.cpp.o.d"
  "batching_playground"
  "batching_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batching_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
