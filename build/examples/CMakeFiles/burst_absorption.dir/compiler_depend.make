# Empty compiler generated dependencies file for burst_absorption.
# This may be replaced when dependencies are built.
