/**
 * @file
 * Fundamental scalar types shared across the Proteus code base.
 *
 * Simulation time is kept in integer microseconds so that event ordering
 * is exact and reproducible; helpers convert to and from seconds and
 * milliseconds at the edges of the system.
 */

#ifndef PROTEUS_COMMON_TYPES_H_
#define PROTEUS_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace proteus {

/** Simulation time in microseconds since the start of the run. */
using Time = std::int64_t;

/** Duration in microseconds. */
using Duration = std::int64_t;

/** Sentinel for "no time scheduled". */
inline constexpr Time kNoTime = std::numeric_limits<Time>::min();

/** Largest representable time; used as "never". */
inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

/** @return the duration corresponding to @p s seconds. */
constexpr Duration
seconds(double s)
{
    return static_cast<Duration>(s * 1e6);
}

/** @return the duration corresponding to @p ms milliseconds. */
constexpr Duration
millis(double ms)
{
    return static_cast<Duration>(ms * 1e3);
}

/** @return the duration corresponding to @p us microseconds. */
constexpr Duration
micros(std::int64_t us)
{
    return us;
}

/** @return @p t expressed in (fractional) seconds. */
constexpr double
toSeconds(Time t)
{
    return static_cast<double>(t) / 1e6;
}

/** @return @p t expressed in (fractional) milliseconds. */
constexpr double
toMillis(Time t)
{
    return static_cast<double>(t) / 1e3;
}

/** Identifier of a physical device (worker) in the cluster. */
using DeviceId = std::uint32_t;

/** Identifier of a model variant (unique across families). */
using VariantId = std::uint32_t;

/** Identifier of a model family; one family per query type. */
using FamilyId = std::uint32_t;

/** Identifier of an inference query. */
using QueryId = std::uint64_t;

/** Identifier of a serving pipeline (DAG of model families). */
using PipelineId = std::uint32_t;

/** Index of a stage within a pipeline's topological order. */
using StageIndex = std::uint32_t;

/** Sentinel for invalid 32-bit ids. */
inline constexpr std::uint32_t kInvalidId =
    std::numeric_limits<std::uint32_t>::max();

}  // namespace proteus

#endif  // PROTEUS_COMMON_TYPES_H_
