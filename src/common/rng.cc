#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace proteus {

std::size_t
Rng::pickWeighted(const std::vector<double>& weights)
{
    PROTEUS_ASSERT(!weights.empty(), "pickWeighted on empty weights");
    // det-order: left-to-right fold over a vector; summation order is
    // fixed by the caller's element order, so the result is reproducible.
    double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    PROTEUS_ASSERT(total > 0.0, "pickWeighted needs positive total weight");
    double r = uniform() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double alpha)
{
    PROTEUS_ASSERT(n > 0, "Zipf over zero ranks");
    pmf_.resize(n);
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        pmf_[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        norm += pmf_[i];
    }
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        pmf_[i] /= norm;
        acc += pmf_[i];
        cdf_[i] = acc;
    }
    cdf_.back() = 1.0;
}

std::size_t
ZipfDistribution::sample(Rng& rng) const
{
    double r = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
    return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

}  // namespace proteus
