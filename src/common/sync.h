/**
 * @file
 * Annotated synchronisation primitives (DESIGN.md, "Static analysis").
 *
 * Thin zero-overhead wrappers over std::mutex that carry the Clang
 * thread-safety capability attributes from common/annotations.h.
 * libstdc++'s std::mutex / std::lock_guard are not annotated, so code
 * guarded by PROTEUS_GUARDED_BY must lock through these types for the
 * `-Wthread-safety` analysis to see the acquisition.
 *
 * Policy (enforced by proteus_lint):
 *
 *  - Mutex-protected state is annotated PROTEUS_GUARDED_BY(mu) and
 *    locked via the RAII MutexLock; rule C1 forbids raw
 *    mutex.lock()/unlock() calls everywhere outside this one audited
 *    file (the wrapper bodies below are the single sanctioned raw
 *    call site, exactly like common/clock.h is for wall-clock reads).
 *  - Lock acquisition order is global: rule C2 derives a lock-order
 *    graph from guard nesting across all translation units and flags
 *    any cycle as deadlock risk.
 *  - Non-const globals/statics in thread-reachable code must be
 *    std::atomic, const, or PROTEUS_GUARDED_BY a mutex (rule C3).
 *
 * Everything here is header-only and trivially inlinable: under gcc
 * the wrappers compile to exactly the std::mutex / std::lock_guard
 * code they replace.
 */

#ifndef PROTEUS_COMMON_SYNC_H_
#define PROTEUS_COMMON_SYNC_H_

#include <mutex>

#include "common/annotations.h"

namespace proteus {

/**
 * Annotated exclusive mutex. Construction never allocates, so Mutex
 * members are safe in zero-allocation hot-path types (lint rule A1).
 */
class PROTEUS_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    /** Acquire exclusively; prefer MutexLock (rule C1). */
    void lock() PROTEUS_ACQUIRE() { mu_.lock(); }

    /** Release; prefer MutexLock (rule C1). */
    void unlock() PROTEUS_RELEASE() { mu_.unlock(); }

    /** @return true when the lock was acquired without blocking. */
    bool try_lock() PROTEUS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    std::mutex mu_;
};

/**
 * RAII guard over a Mutex: acquires at construction, releases at
 * scope exit. The only lint-sanctioned way to lock a Mutex outside
 * this header.
 */
class PROTEUS_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& mu) PROTEUS_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

    ~MutexLock() PROTEUS_RELEASE() { mu_.unlock(); }

  private:
    Mutex& mu_;
};

}  // namespace proteus

#endif  // PROTEUS_COMMON_SYNC_H_
