/**
 * @file
 * The single sanctioned wall-clock site in the tree.
 *
 * Every accuracy-scaling decision Proteus makes is only trustworthy if
 * the pipeline from arrival trace to MILP allocation is deterministic,
 * so decision-path code must never branch on wall-clock values. The
 * one legitimate use of real time is *measurement* — solver time
 * limits and reported solve latencies — and all of it funnels through
 * WallTimer so the static-analysis gate (proteus_lint rule D2) can
 * whitelist exactly this header and flag every other clock read.
 *
 * Consumers must not branch on elapsed time in a way that changes
 * *what* is computed, only *how long* we keep refining it (e.g. the
 * MILP time limit, which is reported as a TimeLimit status rather than
 * silently changing the answer).
 */

#ifndef PROTEUS_COMMON_CLOCK_H_
#define PROTEUS_COMMON_CLOCK_H_

#include <chrono>

namespace proteus {

/**
 * Monotonic stopwatch over std::chrono::steady_clock. Starts running
 * at construction; reset() restarts it.
 */
class WallTimer
{
  public:
    WallTimer() : start_(Clock::now()) {}

    /** Restart the stopwatch from zero. */
    void reset() { start_ = Clock::now(); }

    /** @return seconds elapsed since construction or the last reset(). */
    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

  private:
    using Clock = std::chrono::steady_clock;

    Clock::time_point start_;
};

}  // namespace proteus

#endif  // PROTEUS_COMMON_CLOCK_H_
