#include "common/json.h"

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace proteus {

bool
JsonValue::asBool() const
{
    PROTEUS_ASSERT(type_ == Type::Bool, "JSON value is not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    PROTEUS_ASSERT(type_ == Type::Number, "JSON value is not a number");
    return number_;
}

const std::string&
JsonValue::asString() const
{
    PROTEUS_ASSERT(type_ == Type::String, "JSON value is not a string");
    return string_;
}

const std::vector<JsonValue>&
JsonValue::asArray() const
{
    PROTEUS_ASSERT(type_ == Type::Array, "JSON value is not an array");
    return array_;
}

bool
JsonValue::has(const std::string& key) const
{
    return type_ == Type::Object && object_.count(key) > 0;
}

const JsonValue&
JsonValue::at(const std::string& key) const
{
    PROTEUS_ASSERT(type_ == Type::Object, "JSON value is not an object");
    auto it = object_.find(key);
    PROTEUS_ASSERT(it != object_.end(), "missing JSON key: ", key);
    return it->second;
}

double
JsonValue::numberOr(const std::string& key, double fallback) const
{
    return has(key) ? at(key).asNumber() : fallback;
}

std::string
JsonValue::stringOr(const std::string& key,
                    const std::string& fallback) const
{
    return has(key) ? at(key).asString() : fallback;
}

bool
JsonValue::boolOr(const std::string& key, bool fallback) const
{
    return has(key) ? at(key).asBool() : fallback;
}

std::vector<std::string>
JsonValue::keys() const
{
    std::vector<std::string> out;
    for (const auto& [key, value] : object_)
        out.push_back(key);
    return out;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue{};
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.type_ = Type::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v.type_ = Type::Number;
    v.number_ = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.type_ = Type::String;
    v.string_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.type_ = Type::Array;
    v.array_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> members)
{
    JsonValue v;
    v.type_ = Type::Object;
    v.object_ = std::move(members);
    return v;
}

namespace {

/** Recursive-descent JSON parser over a string view. */
class Parser
{
  public:
    Parser(const std::string& text, std::string* error)
        : text_(text), error_(error)
    {}

    bool
    parse(JsonValue* out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

  private:
    bool
    fail(const std::string& msg)
    {
        if (error_) {
            std::ostringstream oss;
            oss << msg << " at offset " << pos_;
            *error_ = oss.str();
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseValue(JsonValue* out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"': return parseString(out);
          case 't':
          case 'f': return parseBool(out);
          case 'n': return parseNull(out);
          default: return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue* out)
    {
        ++pos_;  // '{'
        std::map<std::string, JsonValue> members;
        skipWs();
        if (consume('}')) {
            *out = JsonValue::makeObject(std::move(members));
            return true;
        }
        while (true) {
            skipWs();
            JsonValue key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key string");
            if (!parseString(&key))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after object key");
            skipWs();
            JsonValue value;
            if (!parseValue(&value))
                return false;
            members.emplace(key.asString(), std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                break;
            return fail("expected ',' or '}' in object");
        }
        *out = JsonValue::makeObject(std::move(members));
        return true;
    }

    bool
    parseArray(JsonValue* out)
    {
        ++pos_;  // '['
        std::vector<JsonValue> items;
        skipWs();
        if (consume(']')) {
            *out = JsonValue::makeArray(std::move(items));
            return true;
        }
        while (true) {
            skipWs();
            JsonValue value;
            if (!parseValue(&value))
                return false;
            items.push_back(std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                break;
            return fail("expected ',' or ']' in array");
        }
        *out = JsonValue::makeArray(std::move(items));
        return true;
    }

    /** Consume exactly four hex digits into @p out. */
    bool
    parseHex4(std::uint32_t* out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        *out = v;
        return true;
    }

    /** Append code point @p cp to @p s as UTF-8. */
    static void
    appendUtf8(std::string* s, std::uint32_t cp)
    {
        if (cp < 0x80) {
            *s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            *s += static_cast<char>(0xC0 | (cp >> 6));
            *s += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            *s += static_cast<char>(0xE0 | (cp >> 12));
            *s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            *s += static_cast<char>(0xF0 | (cp >> 18));
            *s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            *s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    parseString(JsonValue* out)
    {
        ++pos_;  // '"'
        std::string s;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"') {
                *out = JsonValue::makeString(std::move(s));
                return true;
            }
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                char esc = text_[pos_++];
                switch (esc) {
                  case '"': s += '"'; break;
                  case '\\': s += '\\'; break;
                  case '/': s += '/'; break;
                  case 'n': s += '\n'; break;
                  case 't': s += '\t'; break;
                  case 'r': s += '\r'; break;
                  case 'b': s += '\b'; break;
                  case 'f': s += '\f'; break;
                  case 'u': {
                    std::uint32_t cp = 0;
                    if (!parseHex4(&cp))
                        return false;
                    // Surrogate pair: a high surrogate must be
                    // followed by \uDC00..\uDFFF; combine to the
                    // supplementary code point.
                    if (cp >= 0xD800 && cp <= 0xDBFF) {
                        if (pos_ + 1 >= text_.size() ||
                            text_[pos_] != '\\' ||
                            text_[pos_ + 1] != 'u') {
                            return fail("unpaired high surrogate");
                        }
                        pos_ += 2;
                        std::uint32_t lo = 0;
                        if (!parseHex4(&lo))
                            return false;
                        if (lo < 0xDC00 || lo > 0xDFFF)
                            return fail("invalid low surrogate");
                        cp = 0x10000 + ((cp - 0xD800) << 10) +
                             (lo - 0xDC00);
                    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                        return fail("unpaired low surrogate");
                    }
                    appendUtf8(&s, cp);
                    break;
                  }
                  default:
                    return fail("unsupported escape sequence");
                }
                continue;
            }
            s += c;
        }
        return fail("unterminated string");
    }

    bool
    parseBool(JsonValue* out)
    {
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            *out = JsonValue::makeBool(true);
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            *out = JsonValue::makeBool(false);
            return true;
        }
        return fail("invalid literal");
    }

    bool
    parseNull(JsonValue* out)
    {
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            *out = JsonValue::makeNull();
            return true;
        }
        return fail("invalid literal");
    }

    bool
    parseNumber(JsonValue* out)
    {
        const char* start = text_.c_str() + pos_;
        char* end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start)
            return fail("invalid number");
        pos_ += static_cast<std::size_t>(end - start);
        *out = JsonValue::makeNumber(v);
        return true;
    }

    const std::string& text_;
    std::string* error_;
    std::size_t pos_ = 0;
};

}  // namespace

bool
parseJson(const std::string& text, JsonValue* out, std::string* error)
{
    Parser parser(text, error);
    return parser.parse(out);
}

bool
parseJsonFile(const std::string& path, JsonValue* out,
              std::string* error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open file: " + path;
        return false;
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    return parseJson(oss.str(), out, error);
}

}  // namespace proteus
