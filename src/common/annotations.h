/**
 * @file
 * Thread-safety annotations (DESIGN.md, "Static analysis").
 *
 * Every PROTEUS_* macro below maps to one of Clang's thread-safety
 * attributes when the compiler supports them (`clang++
 * -Wthread-safety`, the `tsa` pass in tools/check.sh and the
 * thread-safety CI job) and expands to nothing everywhere else, so
 * annotated code compiles unchanged under gcc.
 *
 * The annotations carry the locking discipline in the type system:
 * which mutex guards which data (PROTEUS_GUARDED_BY), which functions
 * must — or must not — be entered with a lock held (PROTEUS_REQUIRES,
 * PROTEUS_EXCLUDES), and which types are lock capabilities or RAII
 * scopes (PROTEUS_CAPABILITY, PROTEUS_SCOPED_CAPABILITY). They are
 * checked twice:
 *
 *  - statically by Clang's `-Wthread-safety` analysis over the whole
 *    tree (promoted to an error in CI), and
 *  - structurally by `proteus_lint` rule C3, which requires every
 *    non-const global or static reachable from sweep worker threads
 *    to be `std::atomic`, const, or carry a PROTEUS_GUARDED_BY naming
 *    a mutex the linter can resolve.
 *
 * Standard library types (std::mutex, std::lock_guard) are not
 * annotated on libstdc++, so annotated code uses the proteus::Mutex /
 * proteus::MutexLock wrappers from common/sync.h — see that header
 * for the policy.
 *
 * The macro set follows the Clang "Thread Safety Analysis" docs; only
 * the attributes this tree actually uses are defined, so a grep for
 * PROTEUS_ finds real sites, not boilerplate.
 */

#ifndef PROTEUS_COMMON_ANNOTATIONS_H_
#define PROTEUS_COMMON_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define PROTEUS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PROTEUS_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/** Marks a type as a lock capability ("mutex" in diagnostics). */
#define PROTEUS_CAPABILITY(x) PROTEUS_THREAD_ANNOTATION_(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define PROTEUS_SCOPED_CAPABILITY PROTEUS_THREAD_ANNOTATION_(scoped_lockable)

/** Data member / global readable-writable only with @p x held. */
#define PROTEUS_GUARDED_BY(x) PROTEUS_THREAD_ANNOTATION_(guarded_by(x))

/** Pointer whose pointee is guarded by @p x (the pointer itself is not). */
#define PROTEUS_PT_GUARDED_BY(x) PROTEUS_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Function that must be called with the listed capabilities held. */
#define PROTEUS_REQUIRES(...) \
    PROTEUS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Function that must NOT be called with the listed capabilities held. */
#define PROTEUS_EXCLUDES(...) \
    PROTEUS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** Function that acquires the listed capabilities and does not release. */
#define PROTEUS_ACQUIRE(...) \
    PROTEUS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function that releases the listed capabilities. */
#define PROTEUS_RELEASE(...) \
    PROTEUS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** try_lock-style function: acquires when returning @p result. */
#define PROTEUS_TRY_ACQUIRE(...) \
    PROTEUS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/** Returns a reference to the capability guarding something else. */
#define PROTEUS_RETURN_CAPABILITY(x) \
    PROTEUS_THREAD_ANNOTATION_(lock_returned(x))

/**
 * Escape hatch: disables the analysis inside one function. Every use
 * must carry a comment saying why the access pattern is safe (e.g.
 * quiescent single-threaded export after all workers joined).
 */
#define PROTEUS_NO_THREAD_SAFETY_ANALYSIS \
    PROTEUS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // PROTEUS_COMMON_ANNOTATIONS_H_
