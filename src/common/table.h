/**
 * @file
 * Column-aligned plain-text table printer used by the benchmark
 * harnesses to reproduce the rows/series of the paper's figures and
 * tables, plus a minimal CSV writer for offline plotting.
 */

#ifndef PROTEUS_COMMON_TABLE_H_
#define PROTEUS_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace proteus {

/** Accumulates rows of string cells and prints them column-aligned. */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append one data row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> row);

    /** Render the table to @p os with aligned columns. */
    void print(std::ostream& os) const;

    /** Render the table to @p os as CSV. */
    void printCsv(std::ostream& os) const;

    /** @return number of data rows (excluding the header). */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits fractional digits. */
std::string fmtDouble(double v, int digits = 2);

/** Format a percentage with @p digits fractional digits and a % sign. */
std::string fmtPercent(double v, int digits = 1);

}  // namespace proteus

#endif  // PROTEUS_COMMON_TABLE_H_
