/**
 * @file
 * Minimal logging and error-termination helpers.
 *
 * Follows the gem5 convention: panic() flags an internal invariant
 * violation (a bug in this library) and aborts; fatal() flags a user
 * error (bad configuration) and exits cleanly with a non-zero status.
 * inform()/warn() emit status messages and never stop execution.
 */

#ifndef PROTEUS_COMMON_LOGGING_H_
#define PROTEUS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace proteus {

/** Verbosity levels for status messages. */
enum class LogLevel { Silent, Warn, Info, Debug };

/** Set the global log verbosity. Default is Warn. */
void setLogLevel(LogLevel level);

/** @return the current global log verbosity. */
LogLevel logLevel();

/**
 * Register a clock for log messages: every inform/warn/debug line is
 * prefixed with "@<seconds>s" of simulated time so output is
 * attributable to a point in the run. @p fn is called with @p owner at
 * each emission; a second registration displaces the first (the most
 * recently constructed simulator wins).
 */
void setLogTimeSource(const void* owner, double (*fn)(const void*));

/**
 * Unregister @p owner's clock. A no-op unless @p owner is the current
 * source, so destroying an old simulator never silences a newer one.
 */
void clearLogTimeSource(const void* owner);

namespace detail {

void emit(LogLevel level, const std::string& tag, const std::string& msg);

[[noreturn]] void panicImpl(const char* file, int line,
                            const std::string& msg);
[[noreturn]] void fatalImpl(const std::string& msg);

template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

}  // namespace detail

/** Emit an informational message (shown at Info verbosity and above). */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::emit(LogLevel::Info, "info",
                 detail::concat(std::forward<Args>(args)...));
}

/** Emit a warning (shown at Warn verbosity and above). */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::emit(LogLevel::Warn, "warn",
                 detail::concat(std::forward<Args>(args)...));
}

/** Emit a debug message (shown only at Debug verbosity). */
template <typename... Args>
void
debugLog(Args&&... args)
{
    detail::emit(LogLevel::Debug, "debug",
                 detail::concat(std::forward<Args>(args)...));
}

/** Abort: something happened that should never happen (library bug). */
#define PROTEUS_PANIC(...)                                                  \
    ::proteus::detail::panicImpl(__FILE__, __LINE__,                        \
                                 ::proteus::detail::concat(__VA_ARGS__))

/** Exit with an error: the user supplied an invalid configuration. */
#define PROTEUS_FATAL(...)                                                  \
    ::proteus::detail::fatalImpl(::proteus::detail::concat(__VA_ARGS__))

/** Check an internal invariant; panics with the message when violated. */
#define PROTEUS_ASSERT(cond, ...)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            PROTEUS_PANIC("assertion failed: ", #cond, " ",                 \
                          ::proteus::detail::concat(__VA_ARGS__));          \
        }                                                                   \
    } while (false)

}  // namespace proteus

#endif  // PROTEUS_COMMON_LOGGING_H_
