#include "common/logging.h"

#include <cstdlib>
#include <iostream>

namespace proteus {

namespace {

LogLevel g_level = LogLevel::Warn;

}  // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

namespace detail {

void
emit(LogLevel level, const std::string& tag, const std::string& msg)
{
    if (static_cast<int>(level) > static_cast<int>(g_level))
        return;
    std::cerr << "[" << tag << "] " << msg << "\n";
}

void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")\n";
    std::abort();
}

void
fatalImpl(const std::string& msg)
{
    std::cerr << "fatal: " << msg << "\n";
    std::exit(1);
}

}  // namespace detail

}  // namespace proteus
