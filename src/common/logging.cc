#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/sync.h"

namespace proteus {

namespace {

// The sweep runner executes simulators on several threads at once, so
// the time-source pair (owner, fn) and emission are mutex-guarded:
// registration is atomic with respect to emit(), and emit() calls the
// fn under the lock so clearLogTimeSource() in a dying simulator's
// destructor cannot race a concurrent log line into use-after-free.
Mutex g_mu;
LogLevel g_level PROTEUS_GUARDED_BY(g_mu) = LogLevel::Warn;

const void* g_time_owner PROTEUS_GUARDED_BY(g_mu) = nullptr;
double (*g_time_fn)(const void*) PROTEUS_GUARDED_BY(g_mu) = nullptr;

}  // namespace

void
setLogLevel(LogLevel level)
{
    const MutexLock lock(g_mu);
    g_level = level;
}

LogLevel
logLevel()
{
    const MutexLock lock(g_mu);
    return g_level;
}

void
setLogTimeSource(const void* owner, double (*fn)(const void*))
{
    const MutexLock lock(g_mu);
    g_time_owner = owner;
    g_time_fn = fn;
}

void
clearLogTimeSource(const void* owner)
{
    const MutexLock lock(g_mu);
    if (g_time_owner != owner)
        return;
    g_time_owner = nullptr;
    g_time_fn = nullptr;
}

namespace detail {

void
emit(LogLevel level, const std::string& tag, const std::string& msg)
{
    const MutexLock lock(g_mu);
    if (static_cast<int>(level) > static_cast<int>(g_level))
        return;
    if (g_time_fn) {
        char at[32];
        std::snprintf(at, sizeof(at), "@%.3fs ",
                      g_time_fn(g_time_owner));
        std::cerr << "[" << tag << "] " << at << msg << "\n";
        return;
    }
    std::cerr << "[" << tag << "] " << msg << "\n";
}

void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")\n";
    std::abort();
}

void
fatalImpl(const std::string& msg)
{
    std::cerr << "fatal: " << msg << "\n";
    std::exit(1);
}

}  // namespace detail

}  // namespace proteus
