#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace proteus {

void
OnlineStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
OnlineStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::reset()
{
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

void
Ewma::add(double x)
{
    if (!initialized_) {
        value_ = x;
        initialized_ = true;
    } else {
        value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
}

void
Ewma::reset()
{
    value_ = 0.0;
    initialized_ = false;
}

void
WindowedRate::record(Time now)
{
    events_.push_back(now);
    evict(now);
}

void
WindowedRate::reserveForRate(double qps)
{
    if (qps <= 0.0)
        return;
    const double expected = qps * toSeconds(window_);
    events_.reserve(static_cast<std::size_t>(expected * 2.0) + 8);
}

void
WindowedRate::evict(Time now) const
{
    while (!events_.empty() && events_.front() < now - window_)
        events_.pop_front();
}

double
WindowedRate::rate(Time now) const
{
    evict(now);
    return static_cast<double>(events_.size()) / toSeconds(window_);
}

std::size_t
WindowedRate::countInWindow(Time now) const
{
    evict(now);
    return events_.size();
}

double
percentileSorted(const std::vector<double>& sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    rank = std::max(rank, 0.0);
    auto lo = std::min(static_cast<std::size_t>(rank),
                       sorted.size() - 1);
    auto hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
percentile(std::vector<double> values, double p)
{
    std::sort(values.begin(), values.end());
    return percentileSorted(values, p);
}

std::vector<double>
percentiles(std::vector<double> values, const std::vector<double>& ps)
{
    std::sort(values.begin(), values.end());
    std::vector<double> out;
    out.reserve(ps.size());
    for (double p : ps)
        out.push_back(percentileSorted(values, p));
    return out;
}

}  // namespace proteus
