/**
 * @file
 * Deterministic random-number generation for workload synthesis and
 * randomized tests.
 *
 * All stochastic components of the library draw from an explicitly
 * seeded Rng instance so that every experiment is reproducible.
 */

#ifndef PROTEUS_COMMON_RNG_H_
#define PROTEUS_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace proteus {

/**
 * Seedable random source wrapping a Mersenne twister with the
 * distributions the workload generators need.
 */
class Rng
{
  public:
    /** Construct with an explicit seed; the default gives a fixed run. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : engine_(seed)
    {}

    /** @return a double uniform in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** @return a double uniform in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** @return an integer uniform in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** @return an exponential sample with the given rate (events/unit). */
    double
    exponential(double rate)
    {
        return std::exponential_distribution<double>(rate)(engine_);
    }

    /** @return a gamma sample with the given shape and scale. */
    double
    gamma(double shape, double scale)
    {
        return std::gamma_distribution<double>(shape, scale)(engine_);
    }

    /** @return a normal sample with the given mean and stddev. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** @return a Poisson sample with the given mean. */
    std::int64_t
    poisson(double mean)
    {
        return std::poisson_distribution<std::int64_t>(mean)(engine_);
    }

    /** @return an index drawn from the given (unnormalized) weights. */
    std::size_t pickWeighted(const std::vector<double>& weights);

    /** Access the underlying engine (for std::shuffle etc.). */
    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

/**
 * Zipf distribution over ranks 1..n with exponent alpha, used to split
 * query demand across model families as in the paper (alpha = 1.001).
 */
class ZipfDistribution
{
  public:
    ZipfDistribution(std::size_t n, double alpha);

    /** @return a rank in [0, n) sampled from the distribution. */
    std::size_t sample(Rng& rng) const;

    /** @return the probability mass of rank @p i (0-based). */
    double pmf(std::size_t i) const { return pmf_[i]; }

    /** @return the number of ranks. */
    std::size_t size() const { return pmf_.size(); }

  private:
    std::vector<double> pmf_;
    std::vector<double> cdf_;
};

}  // namespace proteus

#endif  // PROTEUS_COMMON_RNG_H_
