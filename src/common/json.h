/**
 * @file
 * Minimal JSON value + recursive-descent parser (no external
 * dependencies). Supports objects, arrays, strings, numbers, bools
 * and null — enough for the experiment configuration files that
 * mirror the paper artifact's JSON configs (Appendix A.5).
 */

#ifndef PROTEUS_COMMON_JSON_H_
#define PROTEUS_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace proteus {

/** A parsed JSON value. */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    /** @return this value's type. */
    Type type() const { return type_; }

    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** @return the boolean payload; panics on type mismatch. */
    bool asBool() const;

    /** @return the numeric payload; panics on type mismatch. */
    double asNumber() const;

    /** @return the string payload; panics on type mismatch. */
    const std::string& asString() const;

    /** @return array elements; panics on type mismatch. */
    const std::vector<JsonValue>& asArray() const;

    /** @return true when this object has key @p key. */
    bool has(const std::string& key) const;

    /** @return member @p key; panics when absent or not an object. */
    const JsonValue& at(const std::string& key) const;

    /** @return member @p key, or @p fallback when absent. */
    double numberOr(const std::string& key, double fallback) const;

    /** @return member @p key, or @p fallback when absent. */
    std::string stringOr(const std::string& key,
                         const std::string& fallback) const;

    /** @return member @p key, or @p fallback when absent. */
    bool boolOr(const std::string& key, bool fallback) const;

    /** @return all object keys (empty unless an object). */
    std::vector<std::string> keys() const;

    /** Factories used by the parser (and tests). */
    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue makeObject(std::map<std::string, JsonValue> members);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
};

/**
 * Parse @p text as JSON.
 * @param error receives a description on failure (may be null).
 * @return the value, or nullopt-like null value with *error set.
 */
bool parseJson(const std::string& text, JsonValue* out,
               std::string* error = nullptr);

/** Parse the file at @p path; panics on IO error, reports parse errors. */
bool parseJsonFile(const std::string& path, JsonValue* out,
                   std::string* error = nullptr);

}  // namespace proteus

#endif  // PROTEUS_COMMON_JSON_H_
