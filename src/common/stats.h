/**
 * @file
 * Small statistics helpers: online mean/variance, exponentially
 * weighted moving averages, sliding-window rate estimation and
 * percentiles. Used by the monitoring daemons and the metrics layer.
 */

#ifndef PROTEUS_COMMON_STATS_H_
#define PROTEUS_COMMON_STATS_H_

#include <cstddef>
#include <vector>

#include "common/alloc/ring_queue.h"
#include "common/types.h"

namespace proteus {

/** Welford online mean / variance accumulator. */
class OnlineStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** @return the number of samples seen. */
    std::size_t count() const { return count_; }

    /** @return the running mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** @return the running population variance (0 when < 2 samples). */
    double variance() const;

    /** @return the running standard deviation. */
    double stddev() const;

    /** @return the smallest sample seen (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** @return the largest sample seen (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Exponentially weighted moving average with configurable smoothing. */
class Ewma
{
  public:
    /** @param alpha weight of the newest observation in (0, 1]. */
    explicit Ewma(double alpha = 0.3) : alpha_(alpha) {}

    /** Fold one observation into the average. */
    void add(double x);

    /** @return the current average (0 before the first sample). */
    double value() const { return value_; }

    /** @return true once at least one sample has been folded in. */
    bool initialized() const { return initialized_; }

    /** Reset to the uninitialized state. */
    void reset();

  private:
    double alpha_;
    double value_ = 0.0;
    bool initialized_ = false;
};

/**
 * Sliding-window event counter used to estimate query demand (QPS)
 * over the most recent window of simulated time.
 */
class WindowedRate
{
  public:
    /** @param window length of the observation window. */
    explicit WindowedRate(Duration window = seconds(1.0))
        : window_(window)
    {}

    /** Record one event at time @p now. */
    void record(Time now);

    /** @return events per second over [now - window, now]. */
    double rate(Time now) const;

    /** @return raw event count inside the window ending at @p now. */
    std::size_t countInWindow(Time now) const;

    /**
     * Pre-size the ring for an expected sustained rate of @p qps with
     * 2x headroom, so steady-state recording never grows the buffer
     * (capacity only — recorded events and rates are unaffected).
     */
    void reserveForRate(double qps);

  private:
    void evict(Time now) const;

    Duration window_;
    /** Ring rather than deque: a steady-state window recycles its
     *  high-water buffer instead of churning deque chunks per event. */
    mutable alloc::RingQueue<Time> events_;
};

/** @return the p-th percentile (0..100) of @p values; 0 when empty. */
double percentile(std::vector<double> values, double p);

/**
 * @return the p-th percentile of @p sorted, which must already be in
 * ascending order; 0 when empty. Linear interpolation between ranks.
 */
double percentileSorted(const std::vector<double>& sorted, double p);

/**
 * @return one percentile per entry of @p ps (0..100), sorting
 * @p values once. Equivalent to calling percentile() per p but with a
 * single O(n log n) sort instead of one per percentile.
 */
std::vector<double> percentiles(std::vector<double> values,
                                const std::vector<double>& ps);

}  // namespace proteus

#endif  // PROTEUS_COMMON_STATS_H_
