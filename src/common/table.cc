#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace proteus {

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream& os) const
{
    std::size_t cols = header_.size();
    for (const auto& r : rows_)
        cols = std::max(cols, r.size());
    std::vector<std::size_t> width(cols, 0);
    auto measure = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    };
    measure(header_);
    for (const auto& r : rows_)
        measure(r);

    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < cols; ++i) {
            std::string cell = i < row.size() ? row[i] : "";
            os << std::left << std::setw(static_cast<int>(width[i] + 2))
               << cell;
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (auto w : width)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto& r : rows_)
        emit(r);
}

void
TextTable::printCsv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ",";
            os << row[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto& r : rows_)
        emit(r);
}

std::string
fmtDouble(double v, int digits)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(digits) << v;
    return oss.str();
}

std::string
fmtPercent(double v, int digits)
{
    return fmtDouble(v, digits) + "%";
}

}  // namespace proteus
