#include "common/alloc/alloc_counter.h"

#include <atomic>

namespace proteus {
namespace alloc {

namespace {
// Relaxed: the counters are diagnostics, not synchronisation. They
// must also be safe to bump from operator new before main() runs,
// hence constant-initialised atomics rather than function-local
// statics (whose guard variable would itself recurse into new on some
// ABIs).
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<bool> g_active{false};
}  // namespace

void
noteHeapAlloc(std::size_t bytes)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

std::uint64_t
heapAllocs()
{
    return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t
heapBytes()
{
    return g_bytes.load(std::memory_order_relaxed);
}

void
markHeapTallyActive()
{
    g_active.store(true, std::memory_order_relaxed);
}

bool
heapTallyActive()
{
    return g_active.load(std::memory_order_relaxed);
}

}  // namespace alloc
}  // namespace proteus
