/**
 * @file
 * Heap-allocation accounting shared between the library and the
 * optional counting operator new (counting_new.cc).
 *
 * The counters live here, in proteus_common, so library code and
 * metrics can always read them; the global operator new/delete
 * overrides that feed them live in a separate link library
 * (proteus_counting_new) that only test and bench binaries link.
 * Binaries without that library see counters frozen at zero, and
 * heapTallyActive() reports whether the interposer is present.
 *
 * ScopedHeapTally brackets a region and reports the allocation count
 * delta — the primitive behind the "zero steady-state heap
 * allocations per query" acceptance test.
 */

#ifndef PROTEUS_COMMON_ALLOC_ALLOC_COUNTER_H_
#define PROTEUS_COMMON_ALLOC_ALLOC_COUNTER_H_

#include <cstddef>
#include <cstdint>

namespace proteus {
namespace alloc {

/** Called by the interposing operator new on every allocation. */
void noteHeapAlloc(std::size_t bytes);

/** Total operator-new calls observed (0 unless counting_new linked). */
std::uint64_t heapAllocs();

/** Total bytes requested through counted allocations. */
std::uint64_t heapBytes();

/** Mark the interposer present; called once from counting_new.cc. */
void markHeapTallyActive();

/** True when the counting operator new is linked into this binary. */
bool heapTallyActive();

/** Allocation-count delta over a scope. */
class ScopedHeapTally
{
  public:
    ScopedHeapTally() : start_(heapAllocs()) {}

    /** Allocations observed since construction. */
    std::uint64_t count() const { return heapAllocs() - start_; }

  private:
    std::uint64_t start_;
};

}  // namespace alloc
}  // namespace proteus

#endif  // PROTEUS_COMMON_ALLOC_ALLOC_COUNTER_H_
