/**
 * @file
 * ScratchVector<T>: a std::vector that is meant to be a long-lived
 * member reused across calls, not a per-call local.
 *
 * The idiom: a hot function needs a temporary vector every call.
 * Declaring it locally costs an allocation per call; declaring the
 * ScratchVector as a member and calling clear() at the top of the
 * function keeps the high-water capacity alive, so steady state is
 * allocation-free. The wrapper exists mostly to make the intent
 * greppable and to forbid the operations that would silently give the
 * buffer away (copy/move-out), which is exactly the churn bug this
 * refactor removes from Worker (see ISSUE 6).
 */

#ifndef PROTEUS_COMMON_ALLOC_SCRATCH_VECTOR_H_
#define PROTEUS_COMMON_ALLOC_SCRATCH_VECTOR_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace proteus {
namespace alloc {

template <typename T>
class ScratchVector
{
  public:
    ScratchVector() = default;

    // A scratch buffer's capacity is its value: copying or moving it
    // away defeats the reuse, so both are forbidden.
    ScratchVector(const ScratchVector&) = delete;
    ScratchVector& operator=(const ScratchVector&) = delete;
    ScratchVector(ScratchVector&&) = delete;
    ScratchVector& operator=(ScratchVector&&) = delete;

    void clear() { v_.clear(); }
    void push_back(const T& x) { v_.push_back(x); }
    void push_back(T&& x) { v_.push_back(std::move(x)); }

    template <typename It>
    void
    assign(It first, It last)
    {
        v_.assign(first, last);
    }

    void reserve(std::size_t n) { v_.reserve(n); }

    T& operator[](std::size_t i) { return v_[i]; }
    const T& operator[](std::size_t i) const { return v_[i]; }

    std::size_t size() const { return v_.size(); }
    bool empty() const { return v_.empty(); }
    std::size_t capacity() const { return v_.capacity(); }

    typename std::vector<T>::iterator begin() { return v_.begin(); }
    typename std::vector<T>::iterator end() { return v_.end(); }
    typename std::vector<T>::const_iterator begin() const { return v_.begin(); }
    typename std::vector<T>::const_iterator end() const { return v_.end(); }

    /** Read-only view for APIs that take a const std::vector&. */
    const std::vector<T>& view() const { return v_; }

  private:
    std::vector<T> v_;
};

}  // namespace alloc
}  // namespace proteus

#endif  // PROTEUS_COMMON_ALLOC_SCRATCH_VECTOR_H_
