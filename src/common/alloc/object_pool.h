/**
 * @file
 * ObjectPool<T>: typed freelist pool with chunked backing storage.
 *
 * The pool owns its objects; acquire() hands out a default-constructed
 * (or reset-by-caller) T* and release() returns it. Slots are recycled
 * LIFO — the most recently released slot is the next one handed out —
 * which keeps reuse order deterministic and cache-friendly. Backing
 * memory grows in fixed-size chunks and is never returned until the
 * pool is destroyed, so a warmed-up pool serves acquire/release with
 * zero heap traffic. reserve() pre-warms capacity up front.
 *
 * forEach() visits live objects in stable chunk/slot order (i.e. the
 * order slots were first created), independent of the freelist state —
 * callers that need a semantic order (e.g. by query id) must sort.
 */

#ifndef PROTEUS_COMMON_ALLOC_OBJECT_POOL_H_
#define PROTEUS_COMMON_ALLOC_OBJECT_POOL_H_

#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace proteus {
namespace alloc {

template <typename T>
class ObjectPool
{
  public:
    /** @param chunk_size objects per backing chunk (must be > 0). */
    explicit ObjectPool(std::size_t chunk_size = 256)
        : chunk_size_(chunk_size)
    {
        assert(chunk_size_ > 0);
    }

    ObjectPool(const ObjectPool&) = delete;
    ObjectPool& operator=(const ObjectPool&) = delete;

    /** Grow backing storage until capacity() >= @p n. */
    void
    reserve(std::size_t n)
    {
        while (capacity() < n)
            addChunk();
    }

    /**
     * Take a slot from the pool. The returned object is in whatever
     * state the previous user left it (or default-constructed for a
     * fresh slot) — callers reset fields themselves, which keeps the
     * hot path free of redundant work.
     */
    T*
    acquire()
    {
        if (free_.empty())
            addChunk();
        Slot* s = free_.back();
        free_.pop_back();
        assert(!s->in_use);
        s->in_use = true;
        ++in_use_;
        return &s->object;
    }

    /** Return @p obj to the pool. Must have come from acquire(). */
    void
    release(T* obj)
    {
        Slot* s = slotOf(obj);
        assert(s->in_use && "double release or foreign pointer");
        s->in_use = false;
        --in_use_;
        free_.push_back(s);
    }

    /** Live (acquired, not yet released) object count. */
    std::size_t in_use() const { return in_use_; }

    /** Total slots across all chunks. */
    std::size_t capacity() const { return chunks_.size() * chunk_size_; }

    /**
     * Visit every live object in creation (chunk, slot) order. The
     * callback must not acquire or release during the walk.
     */
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (const auto& chunk : chunks_) {
            for (std::size_t i = 0; i < chunk_size_; ++i) {
                if (chunk[i].in_use)
                    fn(chunk[i].object);
            }
        }
    }

    /** Mutable variant of forEach(). */
    template <typename Fn>
    void
    forEachMutable(Fn&& fn)
    {
        for (auto& chunk : chunks_) {
            for (std::size_t i = 0; i < chunk_size_; ++i) {
                if (chunk[i].in_use)
                    fn(chunk[i].object);
            }
        }
    }

  private:
    struct Slot {
        T object{};
        bool in_use = false;
    };

    static Slot*
    slotOf(T* obj)
    {
        // `object` is the first member of Slot, so the addresses
        // coincide; static_assert guards against reordering.
        static_assert(offsetof(Slot, object) == 0);
        return reinterpret_cast<Slot*>(obj);  // NOLINT-PROTEUS(S1): first-member pointer interconvertibility, offset asserted 0
    }

    void
    addChunk()
    {
        // NOLINTNEXTLINE-PROTEUS(A1): pool chunk growth is the sanctioned allocation site, amortised away by reserve()/warm-up
        auto chunk = std::make_unique<Slot[]>(chunk_size_);
        // Push free slots in reverse so acquire() hands out slot 0
        // first — keeps fresh-slot order matching creation order.
        for (std::size_t i = chunk_size_; i-- > 0;)
            free_.push_back(&chunk[i]);
        chunks_.push_back(std::move(chunk));
    }

    std::size_t chunk_size_;
    std::size_t in_use_ = 0;
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::vector<Slot*> free_;
};

}  // namespace alloc
}  // namespace proteus

#endif  // PROTEUS_COMMON_ALLOC_OBJECT_POOL_H_
