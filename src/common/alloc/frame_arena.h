/**
 * @file
 * FrameArena: linear (bump-pointer) allocator reset wholesale at epoch
 * boundaries, plus ArenaVector, a contiguous sequence that draws its
 * storage from the arena.
 *
 * The controller's decision path builds transient structures every
 * epoch — per-family routing share lists, batch staging vectors,
 * solver scratch — whose lifetimes all end when the decision is
 * applied. A frame arena matches that lifetime exactly: allocation is
 * a pointer bump, and reset() reclaims everything at once without
 * running destructors (so only trivially-destructible payloads are
 * allowed, enforced at compile time in ArenaVector).
 *
 * The arena keeps its high-water block between frames: after warm-up
 * no frame touches the heap. Blocks are chained, not reallocated, so
 * pointers handed out during a frame stay valid until reset().
 */

#ifndef PROTEUS_COMMON_ALLOC_FRAME_ARENA_H_
#define PROTEUS_COMMON_ALLOC_FRAME_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace proteus {
namespace alloc {

class FrameArena
{
  public:
    /** @param block_size bytes per backing block. */
    explicit FrameArena(std::size_t block_size = 64 * 1024)
        : block_size_(block_size)
    {
    }

    FrameArena(const FrameArena&) = delete;
    FrameArena& operator=(const FrameArena&) = delete;

    /**
     * Allocate @p bytes with @p align alignment, valid until the next
     * reset(). Oversized requests get a dedicated block.
     */
    void*
    allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t))
    {
        assert((align & (align - 1)) == 0 && "alignment must be pow2");
        std::size_t offset = (cursor_ + align - 1) & ~(align - 1);
        if (current_ >= blocks_.size() ||
            offset + bytes > blocks_[current_].size) {
            nextBlock(bytes + align);
            offset = (cursor_ + align - 1) & ~(align - 1);
        }
        void* p = blocks_[current_].data.get() + offset;
        cursor_ = offset + bytes;
        bytes_used_ += bytes;
        return p;
    }

    /** Typed helper: uninitialised storage for @p n objects of T. */
    template <typename T>
    T*
    allocateArray(std::size_t n)
    {
        return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    }

    /**
     * Start a new frame: every prior allocation is invalidated, all
     * blocks are retained for reuse. O(1) — no destructors run.
     */
    void
    reset()
    {
        current_ = 0;
        cursor_ = 0;
        bytes_used_ = 0;
    }

    /** Bytes handed out since the last reset(). */
    std::size_t bytes_used() const { return bytes_used_; }

    /** Total backing capacity across all blocks. */
    std::size_t
    capacity() const
    {
        std::size_t total = 0;
        for (const Block& b : blocks_)
            total += b.size;
        return total;
    }

  private:
    struct Block {
        std::unique_ptr<unsigned char[]> data;
        std::size_t size = 0;
    };

    void
    nextBlock(std::size_t at_least)
    {
        if (current_ < blocks_.size() &&
            (cursor_ != 0 || blocks_[current_].size > 0)) {
            // Current block exhausted (or too small): advance.
            ++current_;
        }
        // Reuse a retained block when it is big enough.
        while (current_ < blocks_.size() &&
               blocks_[current_].size < at_least) {
            ++current_;
        }
        if (current_ >= blocks_.size()) {
            const std::size_t size =
                at_least > block_size_ ? at_least : block_size_;
            Block b;
            // NOLINTNEXTLINE-PROTEUS(A1): arena block growth is the sanctioned allocation site; high-water blocks are retained across frames
            b.data = std::make_unique<unsigned char[]>(size);
            b.size = size;
            blocks_.push_back(std::move(b));
            current_ = blocks_.size() - 1;
        }
        cursor_ = 0;
    }

    std::size_t block_size_;
    std::size_t current_ = 0;     ///< index of the active block
    std::size_t cursor_ = 0;      ///< bump offset within the block
    std::size_t bytes_used_ = 0;
    std::vector<Block> blocks_;
};

/**
 * Contiguous growable sequence backed by a FrameArena. Grow-only
 * within a frame (grow = allocate a bigger run and memcpy); the
 * storage is reclaimed implicitly by the arena's reset(). Restricted
 * to trivially copyable, trivially destructible T because reset()
 * never runs destructors.
 */
template <typename T>
class ArenaVector
{
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "ArenaVector payload must be trivial: arena reset "
                  "does not run destructors");

  public:
    explicit ArenaVector(FrameArena* arena) : arena_(arena) {}

    void
    push_back(const T& value)
    {
        if (size_ == capacity_)
            grow();
        data_[size_++] = value;
    }

    T& operator[](std::size_t i) { return data_[i]; }
    const T& operator[](std::size_t i) const { return data_[i]; }

    T* begin() { return data_; }
    T* end() { return data_ + size_; }
    const T* begin() const { return data_; }
    const T* end() const { return data_ + size_; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Forget contents; storage stays with the arena frame. */
    void clear() { size_ = 0; }

  private:
    void
    grow()
    {
        const std::size_t next = capacity_ == 0 ? 8 : capacity_ * 2;
        T* bigger = arena_->allocateArray<T>(next);
        if (size_ > 0)
            std::memcpy(bigger, data_, size_ * sizeof(T));
        data_ = bigger;
        capacity_ = next;
    }

    FrameArena* arena_;
    T* data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
};

}  // namespace alloc
}  // namespace proteus

#endif  // PROTEUS_COMMON_ALLOC_FRAME_ARENA_H_
