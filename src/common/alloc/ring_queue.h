/**
 * @file
 * RingQueue<T>: growable circular FIFO with stable amortised-zero
 * allocation — the replacement for std::deque in worker queues.
 *
 * std::deque allocates and frees map/chunk nodes as it drifts, so a
 * steady-state queue still churns the heap. RingQueue keeps one
 * contiguous power-of-two buffer that only grows (doubling) and never
 * shrinks; once the queue has seen its high-water mark, push/pop are
 * pure index arithmetic. Indexed access (operator[], front/back) and
 * iteration order match std::deque semantics so batching policies port
 * without change.
 */

#ifndef PROTEUS_COMMON_ALLOC_RING_QUEUE_H_
#define PROTEUS_COMMON_ALLOC_RING_QUEUE_H_

#include <cassert>
#include <cstddef>
#include <memory>

namespace proteus {
namespace alloc {

template <typename T>
class RingQueue
{
  public:
    RingQueue() = default;

    RingQueue(const RingQueue&) = delete;
    RingQueue& operator=(const RingQueue&) = delete;
    RingQueue(RingQueue&&) = default;
    RingQueue& operator=(RingQueue&&) = default;

    void
    push_back(const T& value)
    {
        if (size_ == cap_)
            grow();
        buf_[(head_ + size_) & (cap_ - 1)] = value;
        ++size_;
    }

    void
    pop_front()
    {
        assert(size_ > 0);
        head_ = (head_ + 1) & (cap_ - 1);
        --size_;
    }

    T& front() { return buf_[head_]; }
    const T& front() const { return buf_[head_]; }

    T& back() { return buf_[(head_ + size_ - 1) & (cap_ - 1)]; }
    const T& back() const { return buf_[(head_ + size_ - 1) & (cap_ - 1)]; }

    /** @p i counted from the front, deque-style. */
    T& operator[](std::size_t i) { return buf_[(head_ + i) & (cap_ - 1)]; }
    const T&
    operator[](std::size_t i) const
    {
        return buf_[(head_ + i) & (cap_ - 1)];
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Drop all elements; capacity (and heap) untouched. */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /** Grow backing storage until it can hold @p n without allocating. */
    void
    reserve(std::size_t n)
    {
        while (cap_ < n)
            grow();
    }

    /** Allocated element capacity (power of two). */
    std::size_t capacity() const { return cap_; }

    /** Forward iterator walking front → back. */
    class const_iterator
    {
      public:
        const_iterator(const RingQueue* q, std::size_t i) : q_(q), i_(i) {}
        const T& operator*() const { return (*q_)[i_]; }
        const_iterator&
        operator++()
        {
            ++i_;
            return *this;
        }
        bool
        operator!=(const const_iterator& o) const
        {
            return i_ != o.i_;
        }

      private:
        const RingQueue* q_;
        std::size_t i_;
    };

    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, size_); }

  private:
    void
    grow()
    {
        const std::size_t next_cap = cap_ == 0 ? 8 : cap_ * 2;
        // NOLINTNEXTLINE-PROTEUS(A1): doubling growth to the high-water mark; steady state never re-enters
        auto next = std::make_unique<T[]>(next_cap);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = buf_[(head_ + i) & (cap_ - 1)];
        buf_ = std::move(next);
        cap_ = next_cap;
        head_ = 0;
    }

    std::unique_ptr<T[]> buf_;
    std::size_t cap_ = 0;   ///< always 0 or a power of two
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

}  // namespace alloc
}  // namespace proteus

#endif  // PROTEUS_COMMON_ALLOC_RING_QUEUE_H_
