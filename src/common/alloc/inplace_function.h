/**
 * @file
 * InplaceFunction: a move-only callable wrapper with fixed inline
 * storage — the zero-allocation replacement for std::function on the
 * simulator hot path (DESIGN.md, "Memory management").
 *
 * std::function heap-allocates whenever a closure outgrows its small
 * internal buffer (typically 16 bytes), which turns every scheduled
 * simulator event into a malloc/free pair. InplaceFunction instead
 * embeds the closure in the object itself and refuses to compile when
 * a capture does not fit: the failure mode is a static_assert at the
 * call site, never a silent fallback to the heap. Oversized captures
 * are a design smell on the hot path — move the state into a member
 * of the scheduling object and capture `this`.
 */

#ifndef PROTEUS_COMMON_ALLOC_INPLACE_FUNCTION_H_
#define PROTEUS_COMMON_ALLOC_INPLACE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace proteus {
namespace alloc {

/** Default inline closure capacity in bytes. Sized for the largest
 *  hot-path closure (worker batch completion, fault events) with a
 *  little headroom; raise deliberately, not reflexively. */
inline constexpr std::size_t kInplaceFunctionCapacity = 64;

/**
 * Move-only `void()` callable with @p Capacity bytes of inline
 * storage. Never allocates: construction placement-news the callable
 * into the inline buffer, moves relocate it, destruction destroys it
 * in place.
 */
template <std::size_t Capacity = kInplaceFunctionCapacity>
class InplaceFunction
{
  public:
    InplaceFunction() = default;

    /** Wrap @p fn (must fit in Capacity bytes — enforced at compile
     *  time; see the file comment for the intended fix when it does
     *  not). */
    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InplaceFunction>>>
    InplaceFunction(F&& fn)  // NOLINT: implicit by design, like std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Capacity,
                      "closure too large for InplaceFunction: move "
                      "captured state into a member and capture `this`");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned closure not supported");
        ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
        invoke_ = [](void* s) { (*static_cast<Fn*>(s))(); };
        manage_ = [](Op op, void* self, void* dest) {
            Fn* fn_self = static_cast<Fn*>(self);
            if (op == Op::MoveTo)
                ::new (dest) Fn(std::move(*fn_self));
            fn_self->~Fn();
        };
    }

    InplaceFunction(InplaceFunction&& other) noexcept { moveFrom(other); }

    InplaceFunction&
    operator=(InplaceFunction&& other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InplaceFunction(const InplaceFunction&) = delete;
    InplaceFunction& operator=(const InplaceFunction&) = delete;

    ~InplaceFunction() { reset(); }

    /** Destroy the held callable (if any); leaves *this empty. */
    void
    reset()
    {
        if (manage_) {
            manage_(Op::Destroy, storage_, nullptr);
            manage_ = nullptr;
            invoke_ = nullptr;
        }
    }

    /** @return true when a callable is held. */
    explicit operator bool() const { return invoke_ != nullptr; }

    /** Invoke the held callable (precondition: non-empty). */
    void
    operator()()
    {
        invoke_(storage_);
    }

  private:
    enum class Op { MoveTo, Destroy };
    using Invoke = void (*)(void*);
    using Manage = void (*)(Op, void*, void*);

    void
    moveFrom(InplaceFunction& other) noexcept
    {
        if (other.manage_) {
            other.manage_(Op::MoveTo, other.storage_, storage_);
            invoke_ = other.invoke_;
            manage_ = other.manage_;
            other.invoke_ = nullptr;
            other.manage_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[Capacity];
    Invoke invoke_ = nullptr;
    Manage manage_ = nullptr;
};

}  // namespace alloc
}  // namespace proteus

#endif  // PROTEUS_COMMON_ALLOC_INPLACE_FUNCTION_H_
