/**
 * @file
 * Interposable counting operator new/delete.
 *
 * Built as its own library (proteus_counting_new) and linked ONLY
 * into binaries that want allocation accounting — the tests/alloc
 * suite and the events_per_sec bench. Linking it replaces the global
 * allocation functions for the whole binary, so every `new` in any
 * linked code is tallied through alloc_counter. Production binaries
 * never link this file and pay nothing.
 *
 * Only the counting is added; allocation still goes through malloc /
 * free, so sanitizers and malloc debuggers keep working.
 */

#include <cstdlib>
#include <new>

#include "common/alloc/alloc_counter.h"

namespace {

struct ActivateTally {
    ActivateTally() { proteus::alloc::markHeapTallyActive(); }
};
ActivateTally g_activate;

void*
countedAlloc(std::size_t size)
{
    proteus::alloc::noteHeapAlloc(size);
    void* p = std::malloc(size == 0 ? 1 : size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

}  // namespace

void*
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void*
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void*
operator new(std::size_t size, const std::nothrow_t&) noexcept
{
    proteus::alloc::noteHeapAlloc(size);
    return std::malloc(size == 0 ? 1 : size);
}

void*
operator new[](std::size_t size, const std::nothrow_t&) noexcept
{
    proteus::alloc::noteHeapAlloc(size);
    return std::malloc(size == 0 ? 1 : size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}
