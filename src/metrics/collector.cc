#include "metrics/collector.h"

#include <algorithm>

#include "common/logging.h"

namespace proteus {

MetricsCollector::MetricsCollector(Simulator* sim,
                                   std::size_t num_families,
                                   Duration interval)
    : sim_(sim),
      num_families_(num_families),
      interval_(interval),
      current_family_(num_families),
      family_totals_(num_families)
{
    PROTEUS_ASSERT(interval > 0, "snapshot interval must be positive");
}

void
MetricsCollector::start()
{
    interval_start_ = sim_->now();
    sim_->schedulePeriodic(interval_, [this] { commitInterval(); });
}

void
MetricsCollector::onArrival(const Query& query)
{
    PROTEUS_ASSERT(query.family < num_families_, "family out of range");
    ++current_.arrivals;
    ++current_family_[query.family].arrivals;
    ++totals_.arrivals;
    ++family_totals_[query.family].arrivals;
}

void
MetricsCollector::onFinished(const Query& query)
{
    PROTEUS_ASSERT(query.finished(), "onFinished with pending query");
    auto apply = [&](IntervalCounters& c) {
        switch (query.status) {
          case QueryStatus::Served:
            ++c.served;
            c.accuracy_sum += query.accuracy;
            break;
          case QueryStatus::ServedLate:
            ++c.served_late;
            c.accuracy_sum += query.accuracy;
            break;
          case QueryStatus::Dropped:
            ++c.dropped;
            break;
          case QueryStatus::Pending:
            break;
        }
    };
    apply(current_);
    apply(current_family_[query.family]);
    apply(totals_);
    apply(family_totals_[query.family]);

    if (query.violatedSlo()) {
        for (FaultWindow& w : fault_windows_) {
            if (w.end == kNoTime)
                ++w.violations_during;
        }
    }
}

void
MetricsCollector::onDeviceDown(DeviceId device, double capacity_lost_qps)
{
    FaultWindow w;
    w.device = device;
    w.start = sim_->now();
    w.capacity_lost_qps = capacity_lost_qps;
    fault_windows_.push_back(w);
    ++devices_down_;
}

void
MetricsCollector::onDeviceUp(DeviceId device)
{
    // Close the (single) open window of this device; scan backwards
    // since it is almost always the latest entry.
    for (auto it = fault_windows_.rbegin(); it != fault_windows_.rend();
         ++it) {
        if (it->device == device && it->end == kNoTime) {
            it->end = sim_->now();
            --devices_down_;
            return;
        }
    }
}

void
MetricsCollector::commitInterval()
{
    IntervalSnapshot snap;
    snap.start = interval_start_;
    snap.length = sim_->now() - interval_start_;
    if (snap.length <= 0)
        snap.length = interval_;
    snap.total = current_;
    snap.per_family = current_family_;
    snap.devices_down = devices_down_;
    timeline_.push_back(std::move(snap));

    interval_start_ = sim_->now();
    current_ = IntervalCounters{};
    current_family_.assign(num_families_, IntervalCounters{});
}

void
MetricsCollector::finalize()
{
    if (finalized_)
        return;
    if (current_.arrivals > 0 || current_.completed() > 0 ||
        current_.dropped > 0) {
        commitInterval();
    }
    finalized_ = true;
}

RunSummary
MetricsCollector::summary() const
{
    RunSummary s;
    s.arrivals = totals_.arrivals;
    s.served = totals_.served;
    s.served_late = totals_.served_late;
    s.dropped = totals_.dropped;

    Duration span = 0;
    double min_acc = 100.0;
    for (const auto& snap : timeline_) {
        span += snap.length;
        if (snap.total.completed() > 0)
            min_acc = std::min(min_acc, snap.total.effectiveAccuracy());
    }
    if (span > 0) {
        s.avg_throughput_qps =
            static_cast<double>(totals_.completed()) / toSeconds(span);
        s.avg_demand_qps =
            static_cast<double>(totals_.arrivals) / toSeconds(span);
    }
    s.effective_accuracy = totals_.effectiveAccuracy();
    s.max_accuracy_drop = timeline_.empty() ? 0.0 : 100.0 - min_acc;
    s.slo_violation_ratio =
        totals_.arrivals
            ? static_cast<double>(totals_.violations()) /
                  static_cast<double>(totals_.arrivals)
            : 0.0;

    s.fault_count = fault_windows_.size();
    std::uint64_t closed = 0;
    double closed_downtime = 0.0;
    for (const FaultWindow& w : fault_windows_) {
        s.total_downtime_s += toSeconds(w.downtime(sim_->now()));
        s.fault_violations += w.violations_during;
        if (w.end != kNoTime) {
            ++closed;
            closed_downtime += toSeconds(w.end - w.start);
        }
    }
    if (closed > 0)
        s.mean_recovery_s = closed_downtime / static_cast<double>(closed);
    return s;
}

}  // namespace proteus
