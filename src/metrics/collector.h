/**
 * @file
 * Metrics collection: per-interval timeseries and run summaries using
 * the paper's evaluation metrics (§6.1.4):
 *
 *  - Throughput: queries served per second.
 *  - Effective accuracy: mean normalized accuracy of served queries.
 *  - Maximum accuracy drop: 100 minus the minimum interval effective
 *    accuracy over the run.
 *  - SLO violation ratio: (late + dropped) / arrivals.
 */

#ifndef PROTEUS_METRICS_COLLECTOR_H_
#define PROTEUS_METRICS_COLLECTOR_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/query.h"
#include "sim/simulator.h"

namespace proteus {

/** Counters accumulated over one snapshot interval. */
struct IntervalCounters {
    std::uint64_t arrivals = 0;
    std::uint64_t served = 0;       ///< completed within SLO
    std::uint64_t served_late = 0;  ///< completed after the deadline
    std::uint64_t dropped = 0;
    double accuracy_sum = 0.0;      ///< over served + served_late

    /** Total SLO violations in the interval. */
    std::uint64_t
    violations() const
    {
        return served_late + dropped;
    }

    /** Queries completed (on time or late). */
    std::uint64_t
    completed() const
    {
        return served + served_late;
    }

    /** Mean accuracy of completed queries (0 when none). */
    double
    effectiveAccuracy() const
    {
        return completed() ? accuracy_sum /
                                 static_cast<double>(completed())
                           : 0.0;
    }
};

/** One entry of the run timeseries. */
struct IntervalSnapshot {
    Time start = 0;
    Duration length = 0;
    IntervalCounters total;
    std::vector<IntervalCounters> per_family;

    double
    demandQps() const
    {
        return static_cast<double>(total.arrivals) / toSeconds(length);
    }

    double
    throughputQps() const
    {
        return static_cast<double>(total.completed()) /
               toSeconds(length);
    }
};

/** Whole-run summary in the paper's §6.1.4 metrics. */
struct RunSummary {
    std::uint64_t arrivals = 0;
    std::uint64_t served = 0;
    std::uint64_t served_late = 0;
    std::uint64_t dropped = 0;

    double avg_throughput_qps = 0.0;
    double avg_demand_qps = 0.0;
    double effective_accuracy = 0.0;   ///< over all completed queries
    double max_accuracy_drop = 0.0;    ///< 100 - min interval accuracy
    double slo_violation_ratio = 0.0;  ///< (late+dropped)/arrivals

    std::uint64_t
    violations() const
    {
        return served_late + dropped;
    }
};

/** Query-lifecycle observer building the timeseries and summary. */
class MetricsCollector : public QueryObserver
{
  public:
    MetricsCollector(Simulator* sim, std::size_t num_families,
                     Duration interval = seconds(10.0));

    /** Start the periodic snapshot task. */
    void start();

    void onArrival(const Query& query) override;
    void onFinished(const Query& query) override;

    /** Commit the trailing partial interval; call once after run(). */
    void finalize();

    /** @return the committed interval timeseries. */
    const std::vector<IntervalSnapshot>& timeline() const
    {
        return timeline_;
    }

    /** @return the run summary (valid after finalize()). */
    RunSummary summary() const;

    /** @return cumulative per-family counters. */
    const std::vector<IntervalCounters>& familyTotals() const
    {
        return family_totals_;
    }

  private:
    void commitInterval();

    Simulator* sim_;
    std::size_t num_families_;
    Duration interval_;

    Time interval_start_ = 0;
    IntervalCounters current_;
    std::vector<IntervalCounters> current_family_;

    std::vector<IntervalSnapshot> timeline_;
    IntervalCounters totals_;
    std::vector<IntervalCounters> family_totals_;
    bool finalized_ = false;
};

}  // namespace proteus

#endif  // PROTEUS_METRICS_COLLECTOR_H_
