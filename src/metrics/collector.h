/**
 * @file
 * Metrics collection: per-interval timeseries and run summaries using
 * the paper's evaluation metrics (§6.1.4):
 *
 *  - Throughput: queries served per second.
 *  - Effective accuracy: mean normalized accuracy of served queries.
 *  - Maximum accuracy drop: 100 minus the minimum interval effective
 *    accuracy over the run.
 *  - SLO violation ratio: (late + dropped) / arrivals.
 */

#ifndef PROTEUS_METRICS_COLLECTOR_H_
#define PROTEUS_METRICS_COLLECTOR_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/query.h"
#include "sim/simulator.h"

namespace proteus {

/** Counters accumulated over one snapshot interval. */
struct IntervalCounters {
    std::uint64_t arrivals = 0;
    std::uint64_t served = 0;       ///< completed within SLO
    std::uint64_t served_late = 0;  ///< completed after the deadline
    std::uint64_t dropped = 0;
    double accuracy_sum = 0.0;      ///< over served + served_late

    /** Total SLO violations in the interval. */
    std::uint64_t
    violations() const
    {
        return served_late + dropped;
    }

    /** Queries completed (on time or late). */
    std::uint64_t
    completed() const
    {
        return served + served_late;
    }

    /** Mean accuracy of completed queries (0 when none). */
    double
    effectiveAccuracy() const
    {
        return completed() ? accuracy_sum /
                                 static_cast<double>(completed())
                           : 0.0;
    }
};

/**
 * One device outage as seen by the metrics pipeline: opened when the
 * fault subsystem reports a crash, closed when recovery begins (or at
 * finalize for devices still down). SLO violations completing inside
 * the window are attributed to it — an over-approximation (a
 * concurrent burst also violates), but exactly the attribution the
 * paper-style fault figures plot.
 */
struct FaultWindow {
    DeviceId device = kInvalidId;
    Time start = 0;
    /** kNoTime while the outage is still open. */
    Time end = kNoTime;
    /** Serving capacity (QPS) the device carried when it died. */
    double capacity_lost_qps = 0.0;
    /** SLO violations completed during the outage. */
    std::uint64_t violations_during = 0;

    /** @return outage length (up to @p now when still open). */
    Duration
    downtime(Time now) const
    {
        return (end == kNoTime ? now : end) - start;
    }
};

/** One entry of the run timeseries. */
struct IntervalSnapshot {
    Time start = 0;
    Duration length = 0;
    IntervalCounters total;
    std::vector<IntervalCounters> per_family;
    /** Devices down at the end of the interval (fault injection). */
    int devices_down = 0;

    double
    demandQps() const
    {
        return static_cast<double>(total.arrivals) / toSeconds(length);
    }

    double
    throughputQps() const
    {
        return static_cast<double>(total.completed()) /
               toSeconds(length);
    }
};

/** Whole-run summary in the paper's §6.1.4 metrics. */
struct RunSummary {
    std::uint64_t arrivals = 0;
    std::uint64_t served = 0;
    std::uint64_t served_late = 0;
    std::uint64_t dropped = 0;

    double avg_throughput_qps = 0.0;
    double avg_demand_qps = 0.0;
    double effective_accuracy = 0.0;   ///< over all completed queries
    double max_accuracy_drop = 0.0;    ///< 100 - min interval accuracy
    double slo_violation_ratio = 0.0;  ///< (late+dropped)/arrivals

    // Fault-injection accounting (0 on fault-free runs).
    std::uint64_t fault_count = 0;        ///< device outages recorded
    double total_downtime_s = 0.0;        ///< summed outage lengths
    double mean_recovery_s = 0.0;         ///< mean closed-outage length
    std::uint64_t fault_violations = 0;   ///< violations inside outages

    std::uint64_t
    violations() const
    {
        return served_late + dropped;
    }
};

/** Query-lifecycle observer building the timeseries and summary. */
class MetricsCollector : public QueryObserver
{
  public:
    MetricsCollector(Simulator* sim, std::size_t num_families,
                     Duration interval = seconds(10.0));

    /** Start the periodic snapshot task. */
    void start();

    void onArrival(const Query& query) override;
    void onFinished(const Query& query) override;

    /**
     * A device died carrying @p capacity_lost_qps of provisioned
     * serving capacity: open a fault window at the current time.
     */
    void onDeviceDown(DeviceId device, double capacity_lost_qps);

    /** The device's recovery began: close its open fault window. */
    void onDeviceUp(DeviceId device);

    /** @return every fault window recorded so far. */
    const std::vector<FaultWindow>& faultWindows() const
    {
        return fault_windows_;
    }

    /** @return devices currently down. */
    int devicesDown() const { return devices_down_; }

    /** Commit the trailing partial interval; call once after run(). */
    void finalize();

    /** @return the committed interval timeseries. */
    const std::vector<IntervalSnapshot>& timeline() const
    {
        return timeline_;
    }

    /** @return the run summary (valid after finalize()). */
    RunSummary summary() const;

    /** @return cumulative per-family counters. */
    const std::vector<IntervalCounters>& familyTotals() const
    {
        return family_totals_;
    }

  private:
    void commitInterval();

    Simulator* sim_;
    std::size_t num_families_;
    Duration interval_;

    Time interval_start_ = 0;
    IntervalCounters current_;
    std::vector<IntervalCounters> current_family_;

    std::vector<IntervalSnapshot> timeline_;
    IntervalCounters totals_;
    std::vector<IntervalCounters> family_totals_;
    std::vector<FaultWindow> fault_windows_;
    int devices_down_ = 0;
    bool finalized_ = false;
};

}  // namespace proteus

#endif  // PROTEUS_METRICS_COLLECTOR_H_
