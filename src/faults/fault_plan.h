/**
 * @file
 * Fault-injection plan: the declarative description of the supply
 * shocks a run must survive. A plan combines scripted events (exact
 * times against exact devices, for regression tests and paper-style
 * crash-recovery traces) with a seeded-random schedule (for chaos and
 * property testing). Everything is deterministic: the same plan and
 * seed always materialize the same event sequence.
 *
 * Pure configuration — no dependency beyond the scalar types — so the
 * SystemConfig can embed a FaultPlan without pulling the injector
 * machinery into every translation unit.
 */

#ifndef PROTEUS_FAULTS_FAULT_PLAN_H_
#define PROTEUS_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace proteus {

/** Kind of supply shock injected against a device. */
enum class FaultKind {
    DeviceCrash,    ///< device dies; queued + in-flight work is lost
    DeviceRecovery, ///< a Down device begins recovering
    WorkerStall,    ///< transient slowdown: latency x factor for a window
    ModelLoadFail,  ///< the device's current/next model load fails
};

/** @return a printable name for @p kind. */
const char* toString(FaultKind kind);

/** One scheduled fault against one device. */
struct FaultEvent {
    Time at = 0;
    FaultKind kind = FaultKind::DeviceCrash;
    DeviceId device = kInvalidId;
    /**
     * DeviceCrash only: delay until automatic recovery begins.
     * 0 = the device stays down unless a DeviceRecovery event is
     * scripted explicitly.
     */
    Duration downtime = 0;
    /** WorkerStall only: execution-latency multiplier (> 1). */
    double stall_factor = 1.0;
    /** WorkerStall only: how long the slowdown lasts. */
    Duration stall_window = 0;
};

/** Seeded-random fault generation (chaos mode). Rates are per device. */
struct RandomFaultConfig {
    /** Mean crashes per device per hour (Poisson process). 0 = none. */
    double crash_rate_per_hour = 0.0;
    /** Mean downtime of a random crash (exponential). */
    Duration mean_downtime = seconds(30.0);
    /** Mean stalls per device per hour. 0 = none. */
    double stall_rate_per_hour = 0.0;
    /** Latency multiplier of a random stall. */
    double stall_factor = 3.0;
    /** Mean stall window (exponential). */
    Duration mean_stall_window = seconds(10.0);
    /** Mean load failures per device per hour. 0 = none. */
    double load_fail_rate_per_hour = 0.0;

    bool
    enabled() const
    {
        return crash_rate_per_hour > 0.0 || stall_rate_per_hour > 0.0 ||
               load_fail_rate_per_hour > 0.0;
    }
};

/** Full fault-injection plan for one run. */
struct FaultPlan {
    /** Exact scripted events (need not be sorted). */
    std::vector<FaultEvent> scripted;
    /** Additional seeded-random schedule, materialized at arm time. */
    RandomFaultConfig random;
    /**
     * Seed for the random schedule. Folded with the device id so each
     * device draws an independent, reproducible stream.
     */
    std::uint64_t seed = 1;

    /** @return true when the plan injects nothing. */
    bool
    empty() const
    {
        return scripted.empty() && !random.enabled();
    }
};

}  // namespace proteus

#endif  // PROTEUS_FAULTS_FAULT_PLAN_H_
