/**
 * @file
 * FaultInjector: deterministic execution of a FaultPlan on the
 * discrete-event simulator.
 *
 * The injector owns fault *scheduling* and the device health state
 * machine; the *consequences* (dropping in-flight batches, excluding
 * dead capacity from the next MILP solve, metrics attribution) are
 * delegated through FaultHooks so this library depends only on the
 * simulator and cluster layers — the ServingSystem wires the hooks to
 * its workers, controller and metrics collector.
 *
 * Determinism: scripted events fire at their exact times; the random
 * schedule is materialized up front from the plan seed (one
 * independent stream per device), so two runs with the same plan and
 * horizon produce byte-identical fault sequences regardless of what
 * else the simulation does.
 */

#ifndef PROTEUS_FAULTS_FAULT_INJECTOR_H_
#define PROTEUS_FAULTS_FAULT_INJECTOR_H_

#include <functional>
#include <vector>

#include "cluster/device.h"
#include "common/types.h"
#include "faults/fault_plan.h"
#include "sim/simulator.h"

namespace proteus {

/** Consequence callbacks the owning system installs. */
struct FaultHooks {
    /** Device died: fail its worker (drop/requeue work, unload). */
    std::function<void(DeviceId)> on_crash;
    /** Device is back (Recovering): worker may host again. */
    std::function<void(DeviceId)> on_recovery;
    /** Transient stall: slow the worker by @p factor for @p window. */
    std::function<void(DeviceId, double, Duration)> on_stall;
    /** The device's current/next model load must fail. */
    std::function<void(DeviceId)> on_load_fail;
};

/**
 * Materializes a random fault schedule over [0, horizon). Exposed for
 * the determinism property tests.
 */
std::vector<FaultEvent> generateFaultSchedule(
    const RandomFaultConfig& config, std::size_t num_devices,
    Time horizon, std::uint64_t seed);

/** Schedules a FaultPlan's events and drives the health machine. */
class FaultInjector
{
  public:
    /**
     * @param health borrowed tracker, one entry per device; the
     *        injector performs all Up/Down/Recovering transitions
     *        except Recovering -> Up (the worker reports readiness).
     */
    FaultInjector(Simulator* sim, DeviceHealthTracker* health,
                  FaultHooks hooks, FaultPlan plan);

    FaultInjector(const FaultInjector&) = delete;
    FaultInjector& operator=(const FaultInjector&) = delete;

    /**
     * Materialize the random schedule over [0, @p horizon), merge it
     * with the scripted events and schedule everything. Call once,
     * before Simulator::run().
     */
    void arm(Time horizon);

    /** @return the full materialized schedule (valid after arm()). */
    const std::vector<FaultEvent>& schedule() const { return schedule_; }

    /** @return events actually applied so far (no-ops excluded). */
    int injected() const { return injected_; }

    /** @return crashes applied so far. */
    int crashes() const { return crashes_; }

  private:
    void fire(const FaultEvent& event);

    Simulator* sim_;
    DeviceHealthTracker* health_;
    FaultHooks hooks_;
    FaultPlan plan_;

    std::vector<FaultEvent> schedule_;
    bool armed_ = false;
    int injected_ = 0;
    int crashes_ = 0;
};

}  // namespace proteus

#endif  // PROTEUS_FAULTS_FAULT_INJECTOR_H_
