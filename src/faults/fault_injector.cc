#include "faults/fault_injector.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"

namespace proteus {

const char*
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DeviceCrash: return "crash";
      case FaultKind::DeviceRecovery: return "recovery";
      case FaultKind::WorkerStall: return "stall";
      case FaultKind::ModelLoadFail: return "load-fail";
    }
    return "unknown";
}

std::vector<FaultEvent>
generateFaultSchedule(const RandomFaultConfig& config,
                      std::size_t num_devices, Time horizon,
                      std::uint64_t seed)
{
    std::vector<FaultEvent> events;
    if (!config.enabled() || horizon <= 0)
        return events;

    // One independent stream per (device, fault class): inserting a
    // new fault class or device never perturbs the others' draws.
    auto stream = [&](std::size_t d, std::uint64_t salt) {
        return Rng(seed * 0x100000001b3ull + d * 7919 + salt);
    };
    auto arrivals = [&](Rng& rng, double per_hour,
                        std::vector<Time>* out) {
        if (per_hour <= 0.0)
            return;
        const double rate_per_us = per_hour / 3600.0 / 1e6;
        Time t = 0;
        while (true) {
            t += static_cast<Duration>(rng.exponential(rate_per_us));
            if (t >= horizon)
                return;
            out->push_back(t);
        }
    };

    for (std::size_t d = 0; d < num_devices; ++d) {
        DeviceId dev = static_cast<DeviceId>(d);
        {
            Rng rng = stream(d, 1);
            std::vector<Time> at;
            arrivals(rng, config.crash_rate_per_hour, &at);
            for (Time t : at) {
                FaultEvent e;
                e.at = t;
                e.kind = FaultKind::DeviceCrash;
                e.device = dev;
                e.downtime = std::max<Duration>(
                    millis(1.0),
                    static_cast<Duration>(rng.exponential(
                        1.0 / std::max<double>(
                                  1.0, static_cast<double>(
                                           config.mean_downtime)))));
                events.push_back(e);
            }
        }
        {
            Rng rng = stream(d, 2);
            std::vector<Time> at;
            arrivals(rng, config.stall_rate_per_hour, &at);
            for (Time t : at) {
                FaultEvent e;
                e.at = t;
                e.kind = FaultKind::WorkerStall;
                e.device = dev;
                e.stall_factor = config.stall_factor;
                e.stall_window = std::max<Duration>(
                    millis(1.0),
                    static_cast<Duration>(rng.exponential(
                        1.0 / std::max<double>(
                                  1.0, static_cast<double>(
                                           config.mean_stall_window)))));
                events.push_back(e);
            }
        }
        {
            Rng rng = stream(d, 3);
            std::vector<Time> at;
            arrivals(rng, config.load_fail_rate_per_hour, &at);
            for (Time t : at) {
                FaultEvent e;
                e.at = t;
                e.kind = FaultKind::ModelLoadFail;
                e.device = dev;
                events.push_back(e);
            }
        }
    }
    std::sort(events.begin(), events.end(),
              [](const FaultEvent& a, const FaultEvent& b) {
                  if (a.at != b.at)
                      return a.at < b.at;
                  if (a.device != b.device)
                      return a.device < b.device;
                  return static_cast<int>(a.kind) <
                         static_cast<int>(b.kind);
              });
    return events;
}

FaultInjector::FaultInjector(Simulator* sim, DeviceHealthTracker* health,
                             FaultHooks hooks, FaultPlan plan)
    : sim_(sim),
      health_(health),
      hooks_(std::move(hooks)),
      plan_(std::move(plan))
{
    PROTEUS_ASSERT(sim != nullptr && health != nullptr,
                   "fault injector needs a simulator and tracker");
}

void
FaultInjector::arm(Time horizon)
{
    PROTEUS_ASSERT(!armed_, "a FaultInjector arms exactly once");
    armed_ = true;

    schedule_ = generateFaultSchedule(plan_.random, health_->size(),
                                      horizon, plan_.seed);
    schedule_.insert(schedule_.end(), plan_.scripted.begin(),
                     plan_.scripted.end());
    std::stable_sort(schedule_.begin(), schedule_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.at < b.at;
                     });

    for (const FaultEvent& e : schedule_) {
        PROTEUS_ASSERT(e.device < health_->size(),
                       "fault against unknown device ", e.device);
        sim_->scheduleAt(std::max<Time>(e.at, sim_->now()),
                         [this, e] { fire(e); });
    }
}

void
FaultInjector::fire(const FaultEvent& event)
{
    const DeviceId d = event.device;
    switch (event.kind) {
      case FaultKind::DeviceCrash: {
        if (!health_->markDown(d))
            return;  // already down: redundant crash is a no-op
        ++injected_;
        ++crashes_;
        if (hooks_.on_crash)
            hooks_.on_crash(d);
        if (event.downtime > 0) {
            sim_->scheduleAfter(event.downtime, [this, d] {
                fire(FaultEvent{sim_->now(), FaultKind::DeviceRecovery,
                                d});
            });
        }
        return;
      }
      case FaultKind::DeviceRecovery: {
        if (!health_->markRecovering(d))
            return;  // not down: nothing to recover
        ++injected_;
        if (hooks_.on_recovery)
            hooks_.on_recovery(d);
        return;
      }
      case FaultKind::WorkerStall: {
        // Stalling a dead device is meaningless.
        if (health_->state(d) == DeviceHealth::Down)
            return;
        ++injected_;
        if (hooks_.on_stall) {
            hooks_.on_stall(d, event.stall_factor,
                            event.stall_window);
        }
        return;
      }
      case FaultKind::ModelLoadFail: {
        if (health_->state(d) == DeviceHealth::Down)
            return;
        ++injected_;
        if (hooks_.on_load_fail)
            hooks_.on_load_fail(d);
        return;
      }
    }
}

}  // namespace proteus
