#include "sim/simulator.h"

#include <memory>
#include <utility>

#include "common/logging.h"

namespace proteus {

Simulator::Simulator()
{
    // Make log output attributable to a point on the virtual
    // timeline. With several simulators alive the newest wins; the
    // clear below is owner-checked so a dying old one never unhooks it.
    setLogTimeSource(this, [](const void* owner) {
        return toSeconds(
            static_cast<const Simulator*>(owner)->now());
    });
}

Simulator::~Simulator()
{
    clearLogTimeSource(this);
}

EventId
Simulator::push(Time at, Callback cb)
{
    EventId id = next_id_++;
    queue_.push(Entry{at, seq_++, id});
    callbacks_.emplace(id, std::move(cb));
    return id;
}

EventId
Simulator::scheduleAt(Time at, Callback cb)
{
    PROTEUS_ASSERT(at >= now_, "scheduling into the past: at=", at,
                   " now=", now_);
    return push(at, std::move(cb));
}

EventId
Simulator::scheduleAfter(Duration delay, Callback cb)
{
    PROTEUS_ASSERT(delay >= 0, "negative delay ", delay);
    return push(now_ + delay, std::move(cb));
}

EventId
Simulator::schedulePeriodic(Duration period, Callback cb)
{
    PROTEUS_ASSERT(period > 0, "periodic task needs positive period");
    // The periodic handle is a fresh id never used by a one-shot event;
    // cancellation is checked each time the task re-arms itself.
    EventId handle = next_id_++;
    auto shared = std::make_shared<Callback>(std::move(cb));
    // Each firing re-arms the next one. Ownership of the loop closure
    // lives in the queued event (not in the closure itself, which only
    // holds a weak_ptr — a self-reference would be a cycle and leak
    // every periodic task still armed when the run ends).
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [this, handle, period, shared,
             weak = std::weak_ptr<std::function<void()>>(loop)]() {
        if (cancelled_periodics_.count(handle))
            return;
        (*shared)();
        if (cancelled_periodics_.count(handle))
            return;
        if (auto self = weak.lock())
            scheduleAfter(period, [self] { (*self)(); });
    };
    scheduleAfter(period, [loop] { (*loop)(); });
    return handle;
}

bool
Simulator::cancel(EventId id)
{
    return callbacks_.erase(id) > 0;
}

void
Simulator::cancelPeriodic(EventId id)
{
    cancelled_periodics_.insert(id);
}

bool
Simulator::step()
{
    while (!queue_.empty()) {
        Entry e = queue_.top();
        queue_.pop();
        auto it = callbacks_.find(e.id);
        if (it == callbacks_.end())
            continue;  // cancelled
        Callback cb = std::move(it->second);
        callbacks_.erase(it);
        PROTEUS_ASSERT(e.at >= now_, "event queue went backwards");
        now_ = e.at;
        ++executed_;
        cb();
        return true;
    }
    return false;
}

void
Simulator::run(Time until)
{
    while (!queue_.empty()) {
        if (queue_.top().at > until) {
            now_ = until;
            return;
        }
        step();
    }
    if (until != kTimeMax && until > now_)
        now_ = until;
}

std::size_t
Simulator::pendingEvents() const
{
    return callbacks_.size();
}

}  // namespace proteus
