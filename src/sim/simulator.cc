#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace proteus {

Simulator::Simulator()
{
    // Make log output attributable to a point on the virtual
    // timeline. With several simulators alive the newest wins; the
    // clear below is owner-checked so a dying old one never unhooks it.
    setLogTimeSource(this, [](const void* owner) {
        return toSeconds(
            static_cast<const Simulator*>(owner)->now());
    });
}

Simulator::~Simulator()
{
    clearLogTimeSource(this);
}

void
Simulator::reserveEvents(std::size_t n)
{
    heap_.reserve(n);
    free_slots_.reserve(n);
    slots_.reserve(n);
    while (slots_.size() < n) {
        free_slots_.push_back(static_cast<std::uint32_t>(slots_.size()));
        slots_.emplace_back();
    }
}

EventId
Simulator::push(Time at, Callback cb)
{
    std::uint32_t slot;
    if (free_slots_.empty()) {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    } else {
        slot = free_slots_.back();
        free_slots_.pop_back();
    }
    EventSlot& s = slots_[slot];
    s.cb = std::move(cb);
    s.armed = true;
    ++armed_;
    heap_.push_back(Entry{at, seq_++, slot, s.gen});
    std::push_heap(heap_.begin(), heap_.end(), EntryLater{});
    return (static_cast<EventId>(s.gen & kGenMask) << 32) |
           static_cast<EventId>(slot + 1);
}

void
Simulator::releaseSlot(std::uint32_t slot)
{
    EventSlot& s = slots_[slot];
    s.cb.reset();
    s.armed = false;
    ++s.gen;
    --armed_;
    free_slots_.push_back(slot);
}

EventId
Simulator::scheduleAt(Time at, Callback cb)
{
    PROTEUS_ASSERT(at >= now_, "scheduling into the past: at=", at,
                   " now=", now_);
    return push(at, std::move(cb));
}

EventId
Simulator::scheduleAfter(Duration delay, Callback cb)
{
    PROTEUS_ASSERT(delay >= 0, "negative delay ", delay);
    return push(now_ + delay, std::move(cb));
}

EventId
Simulator::schedulePeriodic(Duration period, Callback cb)
{
    PROTEUS_ASSERT(period > 0, "periodic task needs positive period");
    const std::uint32_t index =
        static_cast<std::uint32_t>(periodics_.size());
    periodics_.push_back(PeriodicTask{std::move(cb), period, false});
    scheduleAfter(period, Callback([this, index] { firePeriodic(index); }));
    return kPeriodicTag | index;
}

void
Simulator::firePeriodic(std::uint32_t index)
{
    // Re-index instead of holding a reference across the call: the
    // callback may register new periodics.
    if (periodics_[index].cancelled)
        return;
    periodics_[index].cb();
    if (periodics_[index].cancelled)
        return;
    // Re-arm after the user callback so events it scheduled at the
    // same instant keep their FIFO position ahead of the next tick.
    scheduleAfter(periodics_[index].period,
                  Callback([this, index] { firePeriodic(index); }));
}

bool
Simulator::cancel(EventId id)
{
    if (id == kNoEvent || (id & kPeriodicTag) != 0)
        return false;
    const std::uint32_t encoded_slot =
        static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
    if (encoded_slot == 0 || encoded_slot > slots_.size())
        return false;
    const std::uint32_t slot = encoded_slot - 1;
    const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32) & kGenMask;
    EventSlot& s = slots_[slot];
    if (!s.armed || (s.gen & kGenMask) != gen)
        return false;
    // Lazy cancellation: the heap entry stays and is skipped on pop
    // (its generation no longer matches).
    releaseSlot(slot);
    return true;
}

void
Simulator::cancelPeriodic(EventId id)
{
    if ((id & kPeriodicTag) == 0)
        return;
    const std::uint64_t index = id & ~kPeriodicTag;
    if (index < periodics_.size())
        periodics_[index].cancelled = true;
}

bool
Simulator::step()
{
    while (!heap_.empty()) {
        const Entry e = heap_.front();
        std::pop_heap(heap_.begin(), heap_.end(), EntryLater{});
        heap_.pop_back();
        EventSlot& s = slots_[e.slot];
        if (!s.armed || s.gen != e.gen)
            continue;  // cancelled (stale generation)
        Callback cb = std::move(s.cb);
        // Release before invoking so the callback itself can recycle
        // the slot — reuse order stays deterministic (LIFO).
        releaseSlot(e.slot);
        PROTEUS_ASSERT(e.at >= now_, "event queue went backwards");
        now_ = e.at;
        ++executed_;
        cb();
        return true;
    }
    return false;
}

void
Simulator::run(Time until)
{
    while (!heap_.empty()) {
        if (heap_.front().at > until) {
            now_ = until;
            return;
        }
        step();
    }
    if (until != kTimeMax && until > now_)
        now_ = until;
}

}  // namespace proteus
