/**
 * @file
 * Discrete-event simulation core.
 *
 * The simulator owns a binary heap of timestamped event entries and a
 * virtual clock. Events scheduled at equal times fire in scheduling
 * order (FIFO), which makes runs fully deterministic. Events can be
 * cancelled via the handle returned by schedule(); cancellation is lazy
 * (the heap entry is skipped when popped).
 *
 * This is the substrate the paper's trace-driven evaluation runs on
 * (§6.1.5): arrival of queries, batch completions, controller periods
 * and monitoring reports are all simulator events.
 *
 * Memory: the hot path is allocation-free at steady state (DESIGN.md,
 * "Memory management"). Callbacks are stored inline in pooled event
 * slots (InplaceFunction, no per-event heap closure), slots are
 * recycled through a freelist in LIFO order, and stale heap entries
 * left behind by cancellation are skipped via a per-slot generation
 * counter. reserveEvents() pre-warms the pool and heap so a sized run
 * never grows them mid-flight.
 */

#ifndef PROTEUS_SIM_SIMULATOR_H_
#define PROTEUS_SIM_SIMULATOR_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/alloc/inplace_function.h"
#include "common/types.h"

namespace proteus {

/** Handle identifying a scheduled event; usable for cancellation.
 *  Encoding: low 32 bits = slot index + 1 (so kNoEvent == 0 is never
 *  produced), bits 32..62 = slot generation (stale-entry detection),
 *  bit 63 = periodic-task tag. */
using EventId = std::uint64_t;

/** Sentinel handle for "no event". */
inline constexpr EventId kNoEvent = 0;

/**
 * Deterministic discrete-event simulator with a virtual microsecond
 * clock.
 */
class Simulator
{
  public:
    /** Inline capacity for event closures. A closure that exceeds it
     *  fails to compile — move the state into a member of the
     *  scheduling object and capture `this`. */
    static constexpr std::size_t kCallbackCapacity = 64;

    using Callback = alloc::InplaceFunction<kCallbackCapacity>;

    Simulator();
    ~Simulator();
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /** @return the current virtual time. */
    Time now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p at (>= now).
     * @return a handle that can be passed to cancel().
     */
    EventId scheduleAt(Time at, Callback cb);

    /** Schedule @p cb to run @p delay from now. */
    EventId scheduleAfter(Duration delay, Callback cb);

    /**
     * Schedule @p cb every @p period, with the first invocation after
     * one full period. The callback keeps repeating until the run
     * ends or cancelPeriodic() is called with the returned handle.
     */
    EventId schedulePeriodic(Duration period, Callback cb);

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown
     * handle is a harmless no-op.
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** Stop a periodic task created with schedulePeriodic(). */
    void cancelPeriodic(EventId id);

    /** Run until the event queue is empty or until() time is reached. */
    void run(Time until = kTimeMax);

    /** Execute at most one event. @return false if the queue is empty. */
    bool step();

    /** @return the number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** @return the number of events currently pending. */
    std::size_t pendingEvents() const { return armed_; }

    /**
     * Pre-warm the event pool and heap so runs with at most @p n
     * events pending at once never allocate while stepping.
     */
    void reserveEvents(std::size_t n);

    /** @return live slots + freelist capacity (alloc.pool gauges). */
    std::size_t eventSlotCapacity() const { return slots_.size(); }

  private:
    /** Tag bit distinguishing periodic handles from event handles. */
    static constexpr EventId kPeriodicTag = EventId{1} << 63;
    /** Generation bits available in the handle encoding. */
    static constexpr std::uint32_t kGenMask = 0x7FFFFFFFu;

    /** Pooled storage for one scheduled callback. */
    struct EventSlot {
        Callback cb;
        std::uint32_t gen = 0;  ///< bumped on every release
        bool armed = false;
    };

    /** Heap entry; (at, seq) gives deterministic FIFO at equal times. */
    struct Entry {
        Time at;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };
    struct EntryLater {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.at != b.at)
                return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    EventId push(Time at, Callback cb);
    void releaseSlot(std::uint32_t slot);
    void firePeriodic(std::uint32_t index);

    Time now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t armed_ = 0;  ///< live (pending, uncancelled) events

    // Event pool: slots_ never shrinks, free_slots_ recycles LIFO so
    // reuse order is deterministic and cache-warm.
    std::vector<EventSlot> slots_;
    std::vector<std::uint32_t> free_slots_;

    // Min-heap on (at, seq) via std::push_heap/pop_heap; an explicit
    // vector (rather than std::priority_queue) so reserveEvents() can
    // pre-size it. May contain stale entries for cancelled events;
    // they are skipped on pop via the generation check.
    std::vector<Entry> heap_;

    // Periodic tasks are registered once and live for the whole run;
    // a deque so in-flight callbacks stay put when another periodic
    // is registered mid-run.
    struct PeriodicTask {
        Callback cb;
        Duration period = 0;
        bool cancelled = false;
    };
    std::deque<PeriodicTask> periodics_;
};

}  // namespace proteus

#endif  // PROTEUS_SIM_SIMULATOR_H_
