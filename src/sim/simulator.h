/**
 * @file
 * Discrete-event simulation core.
 *
 * The simulator owns a priority queue of timestamped callbacks and a
 * virtual clock. Events scheduled at equal times fire in scheduling
 * order (FIFO), which makes runs fully deterministic. Events can be
 * cancelled via the handle returned by schedule(); cancellation is lazy
 * (the entry is skipped when popped).
 *
 * This is the substrate the paper's trace-driven evaluation runs on
 * (§6.1.5): arrival of queries, batch completions, controller periods
 * and monitoring reports are all simulator events.
 */

#ifndef PROTEUS_SIM_SIMULATOR_H_
#define PROTEUS_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "common/types.h"

namespace proteus {

/** Handle identifying a scheduled event; usable for cancellation. */
using EventId = std::uint64_t;

/** Sentinel handle for "no event". */
inline constexpr EventId kNoEvent = 0;

/**
 * Deterministic discrete-event simulator with a virtual microsecond
 * clock.
 */
class Simulator
{
  public:
    using Callback = std::function<void()>;

    Simulator();
    ~Simulator();
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /** @return the current virtual time. */
    Time now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p at (>= now).
     * @return a handle that can be passed to cancel().
     */
    EventId scheduleAt(Time at, Callback cb);

    /** Schedule @p cb to run @p delay from now. */
    EventId scheduleAfter(Duration delay, Callback cb);

    /**
     * Schedule @p cb every @p period, with the first invocation after
     * one full period. The callback keeps repeating until the run
     * ends or cancelPeriodic() is called with the returned handle.
     */
    EventId schedulePeriodic(Duration period, Callback cb);

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown
     * handle is a harmless no-op.
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** Stop a periodic task created with schedulePeriodic(). */
    void cancelPeriodic(EventId id);

    /** Run until the event queue is empty or until() time is reached. */
    void run(Time until = kTimeMax);

    /** Execute at most one event. @return false if the queue is empty. */
    bool step();

    /** @return the number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** @return the number of events currently pending. */
    std::size_t pendingEvents() const;

  private:
    struct Entry {
        Time at;
        std::uint64_t seq;
        EventId id;
    };
    struct EntryLater {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.at != b.at)
                return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    EventId push(Time at, Callback cb);

    Time now_ = 0;
    std::uint64_t seq_ = 0;
    EventId next_id_ = 1;
    std::uint64_t executed_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
    // Ordered containers (lint rule D1): EventIds are assigned
    // monotonically, so lookup/erase stay O(log n) on a shallow tree
    // and any future iteration is in deterministic id order.
    std::map<EventId, Callback> callbacks_;
    std::set<EventId> cancelled_periodics_;
};

}  // namespace proteus

#endif  // PROTEUS_SIM_SIMULATOR_H_
