/**
 * @file
 * Pipeline budget planner: decomposes each pipeline's end-to-end
 * latency SLO into per-stage budgets (DESIGN.md, "Pipeline serving").
 *
 * The generalized allocation problem — pick one variant per stage so
 * the sum of stage latency budgets meets the end-to-end SLO while the
 * product of stage accuracies is maximal — is non-convex in its raw
 * form (product objective, coupled budgets). The documented
 * convexification keeps it inside the existing per-family MILP:
 *
 *  1. For small DAGs the planner *enumerates* per-pipeline variant
 *     combinations exactly (the mini zoo's 3-stage chain is 5x8x4 =
 *     160 combos). A combination (v_1..v_n) is feasible iff
 *     sum_i r(v_i) <= SLO_e2e, where r(v) = 2 x batch-1 latency of v
 *     on its BEST device type — the smallest stage SLO under which v
 *     is usable anywhere given the Nexus half-SLO batching rule (the
 *     slowest-type anchor that sets SLOs would overstate the floor on
 *     mixed clusters and starve fast stages). Maximizing
 *     prod_i acc(v_i) over feasible combos is equivalent to
 *     maximizing sum_i log acc(v_i) (the log-accuracy linearization);
 *     with a few hundred combos the exact product is evaluated
 *     directly.
 *  2. The winning combination fixes per-stage budgets proportional to
 *     its r(v_i) (largest-remainder rounding, so budgets sum to the
 *     SLO exactly). Each budget becomes the stage family's SLO, and
 *     the unchanged per-epoch MILP then plans variants, placement and
 *     routing per family — stages decouple once the budgets are set,
 *     and the MILP may still pick *more* accurate variants than the
 *     enumerated floor when capacity allows.
 *
 * The per-stage-independent baseline splits the SLO equally instead
 * (budget_i = SLO / n), which starves slow stages and over-provisions
 * fast ones — the gap fig12 measures.
 */

#ifndef PROTEUS_PIPELINE_PLANNER_H_
#define PROTEUS_PIPELINE_PLANNER_H_

#include <vector>

#include "cluster/device.h"
#include "common/types.h"
#include "models/cost_model.h"
#include "models/model.h"
#include "pipeline/pipeline.h"

namespace proteus {

/** Pipeline planner configuration. */
struct PipelinePlannerOptions {
    /** Fallback SLO multiplier for pipelines that do not set one. */
    double slo_multiplier = 2.0;
    /** Device type anchoring latencies (kInvalidId = slowest type). */
    DeviceTypeId slo_anchor_type = kInvalidId;
    /**
     * true: joint planning (enumerate combos, proportional split).
     * false: per-stage-independent baseline (equal split).
     */
    bool joint = true;
    /** Combination cap before falling back to the min-r split. */
    std::size_t max_combos = 1u << 20u;
};

/**
 * Split @p total proportionally to @p weights with largest-remainder
 * rounding: the returned integer budgets sum to @p total exactly, and
 * ties go to the earlier stage. Zero/empty weights split equally.
 * Exposed for the budget-split unit tests.
 */
std::vector<Duration> splitBudget(Duration total,
                                  const std::vector<Duration>& weights);

/**
 * Derive each pipeline's end-to-end SLO (when not explicit) and write
 * per-stage budgets into @p pipelines. Budgets always sum to the SLO.
 */
void planPipelineBudgets(CompiledPipelines* pipelines,
                         const ModelRegistry& registry,
                         const Cluster& cluster, const CostModel& cost,
                         const PipelinePlannerOptions& options);

}  // namespace proteus

#endif  // PROTEUS_PIPELINE_PLANNER_H_
