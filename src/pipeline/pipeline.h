/**
 * @file
 * Pipeline serving: DAGs of model families with end-to-end SLOs
 * (DESIGN.md, "Pipeline serving").
 *
 * A PipelineSpec names a set of stages, each bound to one model
 * family, with explicit dependency edges. compilePipelines() validates
 * the DAG (unknown families, duplicate stage names, cycles, families
 * shared between pipelines) and freezes one deterministic topological
 * order per pipeline — Kahn's algorithm with a smallest-declared-index
 * tie-break — so every run walks the stages in the same sequence.
 *
 * Queries execute the DAG as a linear cursor through that topological
 * order: stage k runs after stages 0..k-1 completed, which satisfies
 * every dependency edge (a conservative linearization; independent
 * branches are serialized rather than raced, keeping the hot path a
 * single integer cursor).
 */

#ifndef PROTEUS_PIPELINE_PIPELINE_H_
#define PROTEUS_PIPELINE_PIPELINE_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "models/model.h"

namespace proteus {

/** One stage of a pipeline DAG (user-facing spec). */
struct PipelineStageSpec {
    /** Stage name, unique within the pipeline (e.g. "detect"). */
    std::string name;
    /** Model family serving this stage (registry family name). */
    std::string family;
    /** Names of stages that must complete before this one. */
    std::vector<std::string> deps;
};

/** A pipeline: a DAG of stages with an end-to-end latency SLO. */
struct PipelineSpec {
    std::string name;
    std::vector<PipelineStageSpec> stages;
    /**
     * Explicit end-to-end latency SLO (microseconds); 0 derives it as
     * slo_multiplier x the sum of per-stage anchor latencies.
     */
    Duration slo = 0;
    /**
     * Multiplier for the derived SLO; 0 falls back to the system's
     * slo_multiplier (the same knob single families use).
     */
    double slo_multiplier = 0.0;
};

/** One stage after compilation, in fixed topological position. */
struct CompiledStage {
    std::string name;
    FamilyId family = kInvalidId;
    /**
     * Per-stage latency budget carved from the end-to-end SLO by the
     * pipeline planner; becomes the stage family's SLO (and thus its
     * batching budget and MILP capacity) via reprofileFamilySlo().
     */
    Duration budget = 0;
};

/** A compiled pipeline: stages in frozen topological order. */
struct CompiledPipeline {
    std::string name;
    /** End-to-end latency SLO (explicit or planner-derived). */
    Duration slo = 0;
    /** Multiplier used when deriving the SLO (0 = system default). */
    double slo_multiplier = 0.0;
    std::vector<CompiledStage> stages;
};

/**
 * The compiled pipeline set plus O(1) family -> (pipeline, stage)
 * lookup used on the query hot path.
 */
class CompiledPipelines
{
  public:
    /** @return true when no pipelines are configured. */
    bool empty() const { return pipelines_.empty(); }

    /** @return the number of compiled pipelines. */
    std::size_t size() const { return pipelines_.size(); }

    /** @return pipeline @p p. */
    const CompiledPipeline&
    pipeline(PipelineId p) const
    {
        return pipelines_[p];
    }

    /** @return all pipelines (planner use). */
    std::vector<CompiledPipeline>& mutablePipelines()
    {
        return pipelines_;
    }

    /** @return all pipelines. */
    const std::vector<CompiledPipeline>& pipelines() const
    {
        return pipelines_;
    }

    /** @return the pipeline of family @p f, kInvalidId if unstaged. */
    PipelineId
    pipelineOf(FamilyId f) const
    {
        return f < pipeline_of_.size() ? pipeline_of_[f] : kInvalidId;
    }

    /** @return the stage index of family @p f within its pipeline. */
    StageIndex
    stageOf(FamilyId f) const
    {
        return f < stage_of_.size() ? stage_of_[f] : kInvalidId;
    }

    /** @return the entry (first topological) family of pipeline @p p. */
    FamilyId
    entryFamily(PipelineId p) const
    {
        return pipelines_[p].stages.front().family;
    }

    /** Rebuild the family lookup tables (compilePipelines use). */
    void buildLookup(std::size_t num_families);

  private:
    std::vector<CompiledPipeline> pipelines_;
    /** Indexed by family id; kInvalidId when not part of a pipeline. */
    std::vector<PipelineId> pipeline_of_;
    std::vector<StageIndex> stage_of_;
};

/**
 * Validate @p specs against @p registry and compile them into
 * topologically ordered pipelines.
 *
 * Rejects: empty pipelines, duplicate pipeline or stage names,
 * unknown families, dependencies on undeclared stages, cyclic
 * dependency graphs, and families appearing in more than one stage
 * across all pipelines (each family keys one router/profile, so it
 * can serve at most one stage).
 *
 * @return false with a diagnostic in @p error on rejection.
 */
bool compilePipelines(const std::vector<PipelineSpec>& specs,
                      const ModelRegistry& registry,
                      CompiledPipelines* out, std::string* error);

}  // namespace proteus

#endif  // PROTEUS_PIPELINE_PIPELINE_H_
