#include "pipeline/planner.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "models/profiler.h"

namespace proteus {

std::vector<Duration>
splitBudget(Duration total, const std::vector<Duration>& weights)
{
    PROTEUS_ASSERT(!weights.empty(), "empty budget split");
    PROTEUS_ASSERT(total > 0, "non-positive budget ", total);
    const std::size_t n = weights.size();
    Duration weight_sum = 0;
    for (Duration w : weights) {
        PROTEUS_ASSERT(w >= 0, "negative weight");
        weight_sum += w;
    }

    std::vector<Duration> budgets(n, 0);
    std::vector<double> remainder(n, 0.0);
    Duration assigned = 0;
    for (std::size_t i = 0; i < n; ++i) {
        // Equal split when no weights were given (degenerate input).
        const double share =
            weight_sum > 0
                ? static_cast<double>(total) *
                      (static_cast<double>(weights[i]) /
                       static_cast<double>(weight_sum))
                : static_cast<double>(total) / static_cast<double>(n);
        budgets[i] = static_cast<Duration>(share);  // floor (share >= 0)
        remainder[i] = share - static_cast<double>(budgets[i]);
        assigned += budgets[i];
    }
    // Largest-remainder rounding: hand the leftover microseconds to
    // the stages with the biggest fractional share, earlier stage on
    // ties, so the budgets sum to the SLO exactly.
    while (assigned < total) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < n; ++i) {
            if (remainder[i] > remainder[best])
                best = i;
        }
        ++budgets[best];
        remainder[best] = -1.0;
        ++assigned;
    }
    return budgets;
}

namespace {

/**
 * The smallest stage SLO under which @p v is usable at batch 1
 * anywhere in the cluster: the half-SLO batching rule requires
 * slo/2 >= batch-1 latency on the variant's best device type. Using
 * the best type (not the slowest-type SLO anchor) matters on mixed
 * clusters: it is the true feasibility floor, and inflating it would
 * make the planner starve fast stages of throughput headroom.
 */
Duration
minStageSlo(const Cluster& cluster, const CostModel& cost, VariantId v)
{
    return 2 * variantFloorLatency(cluster, cost, v);
}

/**
 * Enumerate per-stage variant combinations of @p pipe and return the
 * per-stage r values (minimum stage SLOs) of the winner. Feasible
 * combos (sum r <= SLO) are ranked by product accuracy, then by
 * smaller total r, then by lexicographic variant ids; when nothing is
 * feasible the min-total-r combo wins (with a warning) so the split
 * still favors the stages that need the time most.
 */
std::vector<Duration>
enumerateCombos(const CompiledPipeline& pipe,
                const ModelRegistry& registry, const Cluster& cluster,
                const CostModel& cost,
                const PipelinePlannerOptions& options)
{
    const std::size_t n = pipe.stages.size();
    // Per-stage candidate lists: (min stage SLO, normalized accuracy).
    std::vector<std::vector<Duration>> stage_r(n);
    std::vector<std::vector<double>> stage_acc(n);
    std::size_t combos = 1;
    bool overflow = false;
    for (std::size_t s = 0; s < n; ++s) {
        const auto& variants =
            registry.variantsOf(pipe.stages[s].family);
        for (VariantId v : variants) {
            stage_r[s].push_back(minStageSlo(cluster, cost, v));
            stage_acc[s].push_back(registry.variant(v).accuracy /
                                   100.0);
        }
        if (combos > options.max_combos / variants.size())
            overflow = true;
        combos *= variants.size();
    }
    if (overflow) {
        // DAG too large to enumerate: weight each stage by its
        // cheapest variant's requirement, the floor every feasible
        // combination shares.
        warn("pipeline \"", pipe.name, "\": ", combos,
             "+ variant combinations exceed the enumeration cap; "
             "splitting by per-stage minimum requirements");
        std::vector<Duration> weights(n);
        for (std::size_t s = 0; s < n; ++s)
            weights[s] = *std::min_element(stage_r[s].begin(),
                                           stage_r[s].end());
        return weights;
    }

    std::vector<std::size_t> pick(n, 0);       // odometer
    std::vector<std::size_t> best_pick;
    std::vector<std::size_t> best_any_pick;    // min total r fallback
    double best_acc = -1.0;
    Duration best_sum = 0;
    Duration best_any_sum = std::numeric_limits<Duration>::max();
    bool exhausted = false;
    while (!exhausted) {
        Duration sum = 0;
        double acc = 1.0;
        for (std::size_t s = 0; s < n; ++s) {
            sum += stage_r[s][pick[s]];
            acc *= stage_acc[s][pick[s]];
        }
        if (sum < best_any_sum) {
            best_any_sum = sum;
            best_any_pick = pick;
        }
        if (sum <= pipe.slo &&
            (acc > best_acc ||
             (acc == best_acc && sum < best_sum))) {
            // Lexicographic tie-break is implicit: the odometer walks
            // variant ids in ascending order, and strict comparisons
            // keep the first combo seen among exact ties.
            best_acc = acc;
            best_sum = sum;
            best_pick = pick;
        }
        // Advance the odometer (last stage fastest).
        exhausted = true;
        std::size_t s = n;
        while (s > 0) {
            --s;
            if (++pick[s] < stage_r[s].size()) {
                exhausted = false;
                break;
            }
            pick[s] = 0;
        }
    }
    if (best_pick.empty()) {
        warn("pipeline \"", pipe.name, "\": no variant combination "
             "fits the ", toMillis(pipe.slo), " ms end-to-end SLO; "
             "splitting by the fastest combination");
        best_pick = best_any_pick;
    }
    std::vector<Duration> weights(n);
    for (std::size_t s = 0; s < n; ++s)
        weights[s] = stage_r[s][best_pick[s]];
    return weights;
}

}  // namespace

void
planPipelineBudgets(CompiledPipelines* pipelines,
                    const ModelRegistry& registry,
                    const Cluster& cluster, const CostModel& cost,
                    const PipelinePlannerOptions& options)
{
    for (CompiledPipeline& pipe : pipelines->mutablePipelines()) {
        // End-to-end SLO: explicit, or multiplier x the sum of stage
        // anchors (the pipeline analogue of the single-family rule).
        if (pipe.slo <= 0) {
            double mult = pipe.slo_multiplier > 0.0
                              ? pipe.slo_multiplier
                              : options.slo_multiplier;
            Duration anchor_sum = 0;
            for (const CompiledStage& st : pipe.stages) {
                anchor_sum += familyAnchorLatency(
                    registry, cluster, cost, st.family,
                    options.slo_anchor_type);
            }
            pipe.slo = static_cast<Duration>(
                static_cast<double>(anchor_sum) * mult);
        }
        PROTEUS_ASSERT(pipe.slo > 0, "pipeline \"", pipe.name,
                       "\" has no SLO");

        std::vector<Duration> weights;
        if (options.joint) {
            weights = enumerateCombos(pipe, registry, cluster, cost,
                                      options);
        } else {
            // Per-stage-independent baseline: equal split.
            weights.assign(pipe.stages.size(), 1);
        }
        std::vector<Duration> budgets = splitBudget(pipe.slo, weights);
        for (std::size_t s = 0; s < pipe.stages.size(); ++s)
            pipe.stages[s].budget = budgets[s];
    }
}

}  // namespace proteus
