#include "pipeline/pipeline.h"

#include <algorithm>

#include "common/logging.h"

namespace proteus {

namespace {

bool
fail(std::string* error, std::string message)
{
    if (error)
        *error = std::move(message);
    return false;
}

/**
 * Kahn's algorithm with a smallest-declared-index tie-break: among
 * the stages whose dependencies are all satisfied, the one declared
 * first in the spec runs first. The resulting order is a pure
 * function of the spec, independent of container iteration order.
 */
bool
topoOrder(const PipelineSpec& spec,
          const std::vector<std::vector<std::size_t>>& deps,
          std::vector<std::size_t>* order, std::string* error)
{
    const std::size_t n = spec.stages.size();
    std::vector<std::size_t> pending(n);
    for (std::size_t i = 0; i < n; ++i)
        pending[i] = deps[i].size();
    std::vector<bool> placed(n, false);
    order->clear();
    order->reserve(n);
    while (order->size() < n) {
        std::size_t next = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (!placed[i] && pending[i] == 0) {
                next = i;
                break;
            }
        }
        if (next == n) {
            return fail(error, "pipeline \"" + spec.name +
                                   "\" has a dependency cycle");
        }
        placed[next] = true;
        order->push_back(next);
        for (std::size_t i = 0; i < n; ++i) {
            if (placed[i])
                continue;
            for (std::size_t d : deps[i]) {
                if (d == next)
                    --pending[i];
            }
        }
    }
    return true;
}

}  // namespace

void
CompiledPipelines::buildLookup(std::size_t num_families)
{
    pipeline_of_.assign(num_families, kInvalidId);
    stage_of_.assign(num_families, kInvalidId);
    for (PipelineId p = 0; p < pipelines_.size(); ++p) {
        const CompiledPipeline& pipe = pipelines_[p];
        for (StageIndex s = 0; s < pipe.stages.size(); ++s) {
            pipeline_of_[pipe.stages[s].family] = p;
            stage_of_[pipe.stages[s].family] = s;
        }
    }
}

bool
compilePipelines(const std::vector<PipelineSpec>& specs,
                 const ModelRegistry& registry, CompiledPipelines* out,
                 std::string* error)
{
    PROTEUS_ASSERT(out != nullptr, "null output");
    out->mutablePipelines().clear();
    // Family uniqueness is global: a family keys one load balancer,
    // one profile-store SLO and one MILP demand row, so it can serve
    // at most one stage across all pipelines.
    std::vector<bool> family_used(registry.numFamilies(), false);

    for (const PipelineSpec& spec : specs) {
        if (spec.stages.empty()) {
            return fail(error, "pipeline \"" + spec.name +
                                   "\" has no stages");
        }
        for (const auto& done : out->pipelines()) {
            if (done.name == spec.name) {
                return fail(error, "duplicate pipeline name \"" +
                                       spec.name + "\"");
            }
        }

        const std::size_t n = spec.stages.size();
        // Resolve stage names and families; reject duplicates.
        std::vector<FamilyId> families(n, kInvalidId);
        for (std::size_t i = 0; i < n; ++i) {
            const PipelineStageSpec& st = spec.stages[i];
            if (st.name.empty()) {
                return fail(error, "pipeline \"" + spec.name +
                                       "\" has an unnamed stage");
            }
            for (std::size_t j = 0; j < i; ++j) {
                if (spec.stages[j].name == st.name) {
                    return fail(error, "pipeline \"" + spec.name +
                                           "\" has duplicate stage \"" +
                                           st.name + "\"");
                }
            }
            bool found = false;
            for (FamilyId f = 0; f < registry.numFamilies(); ++f) {
                if (registry.family(f).name == st.family) {
                    families[i] = f;
                    found = true;
                    break;
                }
            }
            if (!found) {
                return fail(error, "pipeline \"" + spec.name +
                                       "\" stage \"" + st.name +
                                       "\": unknown family \"" +
                                       st.family + "\"");
            }
            if (family_used[families[i]]) {
                return fail(error, "family \"" + st.family +
                                       "\" serves more than one "
                                       "pipeline stage");
            }
            family_used[families[i]] = true;
        }

        // Resolve dependency edges to stage indices.
        std::vector<std::vector<std::size_t>> deps(n);
        for (std::size_t i = 0; i < n; ++i) {
            for (const std::string& dep : spec.stages[i].deps) {
                std::size_t target = n;
                for (std::size_t j = 0; j < n; ++j) {
                    if (spec.stages[j].name == dep) {
                        target = j;
                        break;
                    }
                }
                if (target == n) {
                    return fail(error,
                                "pipeline \"" + spec.name +
                                    "\" stage \"" + spec.stages[i].name +
                                    "\": unknown dependency \"" + dep +
                                    "\"");
                }
                if (target == i) {
                    return fail(error, "pipeline \"" + spec.name +
                                           "\" stage \"" +
                                           spec.stages[i].name +
                                           "\" depends on itself");
                }
                deps[i].push_back(target);
            }
        }

        std::vector<std::size_t> order;
        if (!topoOrder(spec, deps, &order, error))
            return false;

        CompiledPipeline compiled;
        compiled.name = spec.name;
        compiled.slo = spec.slo;
        compiled.slo_multiplier = spec.slo_multiplier;
        compiled.stages.reserve(n);
        for (std::size_t i : order) {
            CompiledStage st;
            st.name = spec.stages[i].name;
            st.family = families[i];
            compiled.stages.push_back(std::move(st));
        }
        out->mutablePipelines().push_back(std::move(compiled));
    }

    out->buildLookup(registry.numFamilies());
    return true;
}

}  // namespace proteus
