/**
 * @file
 * StageRouter: the outermost query observer when pipelines are
 * configured (DESIGN.md, "Pipeline serving").
 *
 * Workers report every terminal outcome through the observer chain.
 * For single-family queries the router is a pass-through (one integer
 * compare). For pipeline queries it intercepts *intermediate* stage
 * completions — accumulates the accuracy product, advances the stage
 * cursor, retargets the query at the next stage's family and hands it
 * to the forward callback — without letting the inner chain see the
 * event, so metrics are not double-counted and the pooled slot is not
 * released while the query is still alive. Terminal outcomes (final
 * stage, or a drop anywhere) fold the product into the query's
 * accuracy, remap it to the entry family (so the existing per-family
 * metrics ARE the end-to-end pipeline metrics) and flow through the
 * inner chain once, exactly like a single-family query.
 *
 * Zero hot-path allocations: the forward callback is a raw function
 * pointer + context installed once at wiring time, and all counters
 * are preallocated per (pipeline, stage).
 */

#ifndef PROTEUS_PIPELINE_STAGE_ROUTER_H_
#define PROTEUS_PIPELINE_STAGE_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/query.h"
#include "obs/trace.h"
#include "pipeline/pipeline.h"

namespace proteus {

/** Per-stage counters kept by the stage router. */
struct StageStats {
    /** Stage completions handed to the next stage. */
    std::uint64_t forwarded = 0;
    /** Queries that terminated (dropped) at this stage. */
    std::uint64_t dropped = 0;
};

/** Per-pipeline end-to-end counters. */
struct PipelineStats {
    /** End-to-end completions within the e2e SLO. */
    std::uint64_t served = 0;
    /** End-to-end completions past the e2e deadline. */
    std::uint64_t served_late = 0;
    /** Queries dropped at any stage. */
    std::uint64_t dropped = 0;
    std::vector<StageStats> stages;
};

/** Named per-pipeline counters surfaced in RunResult. */
struct PipelineRunStats {
    std::string name;
    PipelineStats stats;
};

/** Observer that forwards completed stages to the next family. */
class StageRouter : public QueryObserver
{
  public:
    /**
     * Forward callback: re-inject @p query (already retargeted at its
     * next stage's family) into the serving path. A raw function
     * pointer + context — not std::function — so installing and
     * invoking it never allocates (lint rule A1).
     */
    using ForwardFn = void (*)(void* ctx, Query* query);

    StageRouter(QueryObserver* inner,
                const CompiledPipelines* pipelines);

    StageRouter(const StageRouter&) = delete;
    StageRouter& operator=(const StageRouter&) = delete;

    /** Install the forward callback (wiring time, once). */
    void
    setForwarder(ForwardFn fn, void* ctx)
    {
        forward_ = fn;
        ctx_ = ctx;
    }

    /** Attach the span tracer (nullptr = tracing off, the default). */
    void setTracer(obs::Tracer* tracer) { tracer_ = tracer; }

    void onArrival(const Query& query) override;
    void onFinished(const Query& query) override;

    /** @return counters for pipeline @p p. */
    const PipelineStats& stats(PipelineId p) const { return stats_[p]; }

    /** @return stage completions forwarded across all pipelines. */
    std::uint64_t forwarded() const { return forwarded_; }

  private:
    QueryObserver* inner_;
    const CompiledPipelines* pipelines_;
    ForwardFn forward_ = nullptr;
    void* ctx_ = nullptr;
    obs::Tracer* tracer_ = nullptr;
    std::vector<PipelineStats> stats_;
    std::uint64_t forwarded_ = 0;
};

}  // namespace proteus

#endif  // PROTEUS_PIPELINE_STAGE_ROUTER_H_
