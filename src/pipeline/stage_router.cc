#include "pipeline/stage_router.h"

#include "common/logging.h"

namespace proteus {

StageRouter::StageRouter(QueryObserver* inner,
                         const CompiledPipelines* pipelines)
    : inner_(inner), pipelines_(pipelines)
{
    PROTEUS_ASSERT(inner != nullptr, "null inner observer");
    PROTEUS_ASSERT(pipelines != nullptr && !pipelines->empty(),
                   "stage router without pipelines");
    stats_.resize(pipelines->size());
    for (PipelineId p = 0; p < pipelines->size(); ++p)
        stats_[p].stages.resize(pipelines->pipeline(p).stages.size());
}

void
StageRouter::onArrival(const Query& query)
{
    // Arrivals happen once, at the entry stage; forwarded hops enter
    // through LoadBalancer::forward(), which does not re-announce.
    inner_->onArrival(query);
}

void
StageRouter::onFinished(const Query& query)
{
    if (query.pipeline == kInvalidId) {
        inner_->onFinished(query);
        return;
    }
    const CompiledPipeline& pipe = pipelines_->pipeline(query.pipeline);
    PipelineStats& stats = stats_[query.pipeline];
    const bool completed = query.status == QueryStatus::Served ||
                           query.status == QueryStatus::ServedLate;
    // The observer API is read-only by design, but the lifecycle of a
    // pipeline query is not over at an intermediate hop, and at the
    // terminal hop the e2e accuracy/family rewrite below is what the
    // inner sinks are meant to account.
    Query* q = const_cast<Query*>(&query);  // NOLINT-PROTEUS(S1): the stage router owns pipeline-query lifecycle; inner observers still see a const ref

    if (completed && query.stage < query.last_stage) {
        // Intermediate completion: fold this stage's accuracy into
        // the running product, advance the cursor and retarget at the
        // next stage's family. The inner chain does not see the event
        // — the query is still in flight.
        ++stats.stages[query.stage].forwarded;
        ++forwarded_;
        q->acc_product *= q->accuracy / 100.0;
        ++q->stage;
        q->family = pipe.stages[q->stage].family;
        q->status = QueryStatus::Pending;
        q->accuracy = 0.0;
        q->served_by = kInvalidId;
        if (tracer_) {
            obs::LinkRecord link;
            link.kind = obs::LinkKind::StageHandoff;
            link.at = query.completion;
            link.from = q->id;
            link.to = q->stage;
            link.aux = query.pipeline;
            tracer_->recordLink(link);
        }
        PROTEUS_ASSERT(forward_ != nullptr, "no forwarder installed");
        forward_(ctx_, q);
        return;
    }

    // Terminal: e2e accuracy is the product across stages (0 on a
    // drop), and the query is remapped to the entry family so the
    // existing per-family pipelines of the metrics collector, SLO
    // monitor and timeline channels report end-to-end numbers.
    if (completed) {
        q->accuracy = 100.0 * q->acc_product * (q->accuracy / 100.0);
        if (query.status == QueryStatus::Served)
            ++stats.served;
        else
            ++stats.served_late;
    } else {
        q->accuracy = 0.0;
        ++stats.stages[query.stage].dropped;
        ++stats.dropped;
    }
    q->family = pipe.stages.front().family;
    inner_->onFinished(*q);
}

}  // namespace proteus
