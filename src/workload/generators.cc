#include "workload/generators.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace proteus {

namespace {

constexpr double kPi = 3.14159265358979323846;

/**
 * Emit ~rate Poisson arrivals inside the one-second bucket starting
 * at @p bucket_start, assigning families by Zipf.
 */
void
emitPoissonSecond(Trace* trace, Time bucket_start, double rate,
                  const ZipfDistribution& zipf, Rng& rng)
{
    if (rate <= 0.0)
        return;
    // Poisson process: exponential inter-arrivals at the given rate,
    // truncated to the second. This matches the paper's treatment of
    // the per-second aggregated Twitter counts.
    double t = rng.exponential(rate);
    while (t < 1.0) {
        trace->append(bucket_start + seconds(t),
                      static_cast<FamilyId>(zipf.sample(rng)));
        t += rng.exponential(rate);
    }
}

}  // namespace

const char*
toString(ArrivalProcess p)
{
    switch (p) {
      case ArrivalProcess::Uniform: return "uniform";
      case ArrivalProcess::Poisson: return "poisson";
      case ArrivalProcess::Gamma: return "gamma";
    }
    return "unknown";
}

Trace
diurnalTrace(std::size_t num_families, const DiurnalTraceConfig& config)
{
    PROTEUS_ASSERT(num_families > 0, "need at least one family");
    Rng rng(config.seed);
    ZipfDistribution zipf(num_families, config.zipf_alpha);
    Trace trace;
    const double total_s = toSeconds(config.duration);
    for (double sec = 0.0; sec < total_s; sec += 1.0) {
        // Diurnal sinusoid with trough at t=0.
        double phase = 2.0 * kPi * config.cycles * sec / total_s;
        double rate = config.base_qps +
                      config.diurnal_amplitude_qps *
                          0.5 * (1.0 - std::cos(phase));
        rate *= std::max(0.0, 1.0 + rng.normal(0.0, config.noise_frac));
        if (rng.uniform() < config.spike_prob)
            rate *= config.spike_factor;
        emitPoissonSecond(&trace, seconds(sec), rate, zipf, rng);
    }
    trace.sort();
    return trace;
}

Trace
burstTrace(std::size_t num_families, const BurstTraceConfig& config)
{
    PROTEUS_ASSERT(num_families > 0, "need at least one family");
    PROTEUS_ASSERT(config.phase > 0, "phase must be positive");
    Rng rng(config.seed);
    ZipfDistribution zipf(num_families, config.zipf_alpha);
    Trace trace;
    const double total_s = toSeconds(config.duration);
    const double phase_s = toSeconds(config.phase);
    for (double sec = 0.0; sec < total_s; sec += 1.0) {
        bool high = static_cast<std::int64_t>(sec / phase_s) % 2 == 1;
        double rate = high ? config.high_qps : config.low_qps;
        emitPoissonSecond(&trace, seconds(sec), rate, zipf, rng);
    }
    trace.sort();
    return trace;
}

namespace {

Trace
steadyTraceImpl(double qps, Duration duration, ArrivalProcess process,
                Rng& rng, const ZipfDistribution* zipf,
                FamilyId fixed_family)
{
    PROTEUS_ASSERT(qps > 0.0, "steady trace needs positive QPS");
    Trace trace;
    const double mean_gap = 1.0 / qps;  // seconds
    // Gamma with shape k and scale mean_gap/k keeps the mean rate at
    // qps while producing heavy micro-bursts for small k.
    const double gamma_shape = 0.05;  // paper §6.4
    double t = 0.0;
    const double total_s = toSeconds(duration);
    while (true) {
        double gap;
        switch (process) {
          case ArrivalProcess::Uniform:
            gap = mean_gap;
            break;
          case ArrivalProcess::Poisson:
            gap = rng.exponential(qps);
            break;
          case ArrivalProcess::Gamma:
            gap = rng.gamma(gamma_shape, mean_gap / gamma_shape);
            break;
          default:
            PROTEUS_PANIC("unhandled arrival process");
        }
        t += gap;
        if (t >= total_s)
            break;
        FamilyId fam = zipf ? static_cast<FamilyId>(zipf->sample(rng))
                            : fixed_family;
        trace.append(seconds(t), fam);
    }
    trace.sort();
    return trace;
}

}  // namespace

Trace
steadyTrace(std::size_t num_families, double qps, Duration duration,
            ArrivalProcess process, std::uint64_t seed)
{
    PROTEUS_ASSERT(num_families > 0, "need at least one family");
    Rng rng(seed);
    ZipfDistribution zipf(num_families, 1.001);
    return steadyTraceImpl(qps, duration, process, rng, &zipf, 0);
}

Trace
steadySingleFamilyTrace(FamilyId family, double qps, Duration duration,
                        ArrivalProcess process, std::uint64_t seed)
{
    Rng rng(seed);
    return steadyTraceImpl(qps, duration, process, rng, nullptr, family);
}

Trace
pipelineTrace(const std::vector<FamilyId>& entry_families,
              const PipelineTraceConfig& config)
{
    PROTEUS_ASSERT(!entry_families.empty(),
                   "pipeline trace needs at least one entry family");
    Trace trace;
    for (std::size_t i = 0; i < entry_families.size(); ++i) {
        Rng rng(config.seed + i);
        Trace stream = steadyTraceImpl(config.qps, config.duration,
                                       config.process, rng, nullptr,
                                       entry_families[i]);
        for (const TraceEvent& e : stream.events())
            trace.append(e.at, e.family);
    }
    trace.sort();
    return trace;
}

}  // namespace proteus
