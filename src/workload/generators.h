/**
 * @file
 * Workload generators reproducing the paper's traces (§6.1.3).
 *
 *  - Twitter-like diurnal trace: per-second aggregate rates with a
 *    diurnal sinusoid, noise and occasional spikes; Zipf(alpha=1.001)
 *    split across families; Poisson inter-arrivals within each second.
 *    This regenerates the statistical object the paper derives from
 *    the public Twitter trace (see DESIGN.md substitution table).
 *  - Macro-burst trace (§6.3): flat low demand interleaved with flat
 *    high-demand bursts, Poisson arrivals.
 *  - Micro-burstiness traces (§6.4): constant aggregate QPS with
 *    uniform, Poisson or Gamma(shape 0.05) inter-arrival times.
 */

#ifndef PROTEUS_WORKLOAD_GENERATORS_H_
#define PROTEUS_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "workload/trace.h"

namespace proteus {

/** Inter-arrival process shapes for steady traces. */
enum class ArrivalProcess { Uniform, Poisson, Gamma };

/** @return a printable name for @p p. */
const char* toString(ArrivalProcess p);

/** Parameters for the Twitter-like diurnal trace. */
struct DiurnalTraceConfig {
    Duration duration = seconds(24 * 60);  ///< 24 simulated minutes
    /** Baseline aggregate demand in QPS. */
    double base_qps = 250.0;
    /** Peak-to-baseline diurnal amplitude in QPS. */
    double diurnal_amplitude_qps = 350.0;
    /** Number of diurnal peaks across the trace (paper shows ~2). */
    double cycles = 2.0;
    /** Multiplicative per-second noise stddev. */
    double noise_frac = 0.08;
    /** Probability per second of a short demand spike. */
    double spike_prob = 0.004;
    /** Spike magnitude as a multiple of the current rate. */
    double spike_factor = 1.8;
    /** Zipf exponent for the family split (paper: 1.001). */
    double zipf_alpha = 1.001;
    std::uint64_t seed = 42;
};

/** Generate the Twitter-like diurnal trace over @p num_families. */
Trace diurnalTrace(std::size_t num_families,
                   const DiurnalTraceConfig& config = {});

/** Parameters for the macro-burst trace (§6.3). */
struct BurstTraceConfig {
    Duration duration = seconds(24 * 60);
    double low_qps = 150.0;
    double high_qps = 900.0;
    /** Length of each low/high phase. */
    Duration phase = seconds(4 * 60);
    double zipf_alpha = 1.001;
    std::uint64_t seed = 43;
};

/** Generate the macro-burst trace over @p num_families. */
Trace burstTrace(std::size_t num_families,
                 const BurstTraceConfig& config = {});

/**
 * Generate a steady trace at @p qps aggregate over @p duration with
 * the given inter-arrival process, split across families by Zipf
 * (alpha 1.001). Gamma uses shape 0.05 (paper §6.4), i.e. extremely
 * bursty inter-arrivals at unchanged mean rate.
 */
Trace steadyTrace(std::size_t num_families, double qps,
                  Duration duration, ArrivalProcess process,
                  std::uint64_t seed = 44);

/**
 * Generate a steady single-family trace (helper for batching tests).
 */
Trace steadySingleFamilyTrace(FamilyId family, double qps,
                              Duration duration,
                              ArrivalProcess process,
                              std::uint64_t seed = 45);

/** Parameters for the pipeline entry-stage trace. */
struct PipelineTraceConfig {
    /** Aggregate QPS injected at EACH entry family. */
    double qps = 100.0;
    Duration duration = seconds(60.0);
    ArrivalProcess process = ArrivalProcess::Poisson;
    std::uint64_t seed = 46;
};

/**
 * Generate arrivals at the entry stage of each pipeline: one steady
 * stream per family in @p entry_families (seeded seed + index so the
 * streams are independent), merged into a single time-sorted trace.
 * Downstream stages receive no external arrivals — the stage router
 * forwards completed queries to them.
 */
Trace pipelineTrace(const std::vector<FamilyId>& entry_families,
                    const PipelineTraceConfig& config = {});

}  // namespace proteus

#endif  // PROTEUS_WORKLOAD_GENERATORS_H_
