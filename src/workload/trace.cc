#include "workload/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

#include "common/logging.h"

namespace proteus {

Trace::Trace(std::vector<TraceEvent> events)
    : events_(std::move(events))
{
    sort();
}

void
Trace::append(Time at, FamilyId family)
{
    events_.push_back(TraceEvent{at, family});
}

void
Trace::sort()
{
    std::stable_sort(events_.begin(), events_.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.at < b.at;
                     });
}

Time
Trace::endTime() const
{
    return events_.empty() ? 0 : events_.back().at;
}

std::vector<double>
Trace::demand(std::size_t num_families, Time from, Time to) const
{
    PROTEUS_ASSERT(to > from, "empty demand window");
    std::vector<double> qps(num_families, 0.0);
    auto lo = std::lower_bound(
        events_.begin(), events_.end(), from,
        [](const TraceEvent& e, Time t) { return e.at < t; });
    for (auto it = lo; it != events_.end() && it->at < to; ++it) {
        PROTEUS_ASSERT(it->family < num_families,
                       "trace family out of range");
        qps[it->family] += 1.0;
    }
    double window_s = toSeconds(to - from);
    for (auto& q : qps)
        q /= window_s;
    return qps;
}

double
Trace::averageQps() const
{
    if (events_.empty())
        return 0.0;
    double span = toSeconds(std::max<Time>(endTime(), 1));
    return static_cast<double>(events_.size()) / span;
}

void
Trace::writeCsv(std::ostream& os) const
{
    os << "time_us,family\n";
    for (const auto& e : events_)
        os << e.at << "," << e.family << "\n";
}

Trace
Trace::readCsv(std::istream& is)
{
    Trace trace;
    std::string line;
    bool first = true;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        if (first && line.rfind("time_us", 0) == 0) {
            first = false;
            continue;
        }
        first = false;
        auto comma = line.find(',');
        PROTEUS_ASSERT(comma != std::string::npos,
                       "malformed trace row: ", line);
        Time at = std::stoll(line.substr(0, comma));
        FamilyId family = static_cast<FamilyId>(
            std::stoul(line.substr(comma + 1)));
        trace.append(at, family);
    }
    trace.sort();
    return trace;
}

}  // namespace proteus
