/**
 * @file
 * Query traces: the time-ordered stream of (arrival time, query type)
 * pairs that drives an experiment, plus helpers to inspect demand.
 */

#ifndef PROTEUS_WORKLOAD_TRACE_H_
#define PROTEUS_WORKLOAD_TRACE_H_

#include <iosfwd>
#include <vector>

#include "common/types.h"

namespace proteus {

/** One query arrival in a trace. */
struct TraceEvent {
    Time at = 0;
    FamilyId family = 0;
};

/** A time-sorted stream of query arrivals. */
class Trace
{
  public:
    Trace() = default;

    /** Construct from events; sorts them by time. */
    explicit Trace(std::vector<TraceEvent> events);

    /** Append one arrival (must keep time order or call sort()). */
    void append(Time at, FamilyId family);

    /** Restore time order after unordered appends. */
    void sort();

    /** @return all events in time order. */
    const std::vector<TraceEvent>& events() const { return events_; }

    /** @return number of arrivals. */
    std::size_t size() const { return events_.size(); }

    /** @return true when there are no arrivals. */
    bool empty() const { return events_.empty(); }

    /** @return the time of the last arrival (0 when empty). */
    Time endTime() const;

    /**
     * Demand in QPS per family over [from, to).
     * @param num_families size of the returned vector.
     */
    std::vector<double> demand(std::size_t num_families, Time from,
                               Time to) const;

    /** Average aggregate QPS over the whole trace. */
    double averageQps() const;

    /** Write as CSV ("time_us,family") for offline inspection. */
    void writeCsv(std::ostream& os) const;

    /**
     * Parse a trace from CSV as produced by writeCsv() (an optional
     * "time_us,family" header is skipped). Panics on malformed rows.
     */
    static Trace readCsv(std::istream& is);

  private:
    std::vector<TraceEvent> events_;
};

}  // namespace proteus

#endif  // PROTEUS_WORKLOAD_TRACE_H_
