#include "sweep/store.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"
#include "sweep/sweep_clock.h"

namespace proteus {
namespace sweep {

const char*
toString(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok:
        return "ok";
      case JobStatus::Error:
        return "error";
      case JobStatus::Budget:
        return "budget";
    }
    return "unknown";
}

std::string
fmtMetric(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
fmtMetric(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

namespace {

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string
escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JobStatus
statusFromString(const std::string& s)
{
    if (s == "ok")
        return JobStatus::Ok;
    if (s == "budget")
        return JobStatus::Budget;
    return JobStatus::Error;
}

}  // namespace

std::string
headerJson(const StoreHeader& header)
{
    std::ostringstream os;
    os << "{\"kind\":\"header\",\"store_schema\":" << kStoreSchemaVersion
       << ",\"sweep\":\"" << escape(header.sweep) << "\",\"git_sha\":\""
       << escape(header.git_sha) << "\",\"jobs\":" << header.jobs
       << ",\"configs\":" << header.configs
       << ",\"scenarios\":" << header.scenarios
       << ",\"seeds\":" << header.seeds << "}";
    return os.str();
}

std::string
rowJson(const SweepRow& row, bool journal)
{
    std::ostringstream os;
    os << "{\"kind\":\"row\",\"job\":" << row.job << ",\"config\":\""
       << escape(row.config) << "\",\"scenario\":\""
       << escape(row.scenario) << "\",\"seed\":" << row.seed
       << ",\"status\":\"" << toString(row.status) << "\"";
    if (row.status != JobStatus::Ok)
        os << ",\"error\":\"" << escape(row.error) << "\"";
    os << ",\"metrics\":{";
    for (std::size_t i = 0; i < row.metrics.size(); ++i) {
        if (i)
            os << ',';
        os << '"' << escape(row.metrics[i].first)
           << "\":" << row.metrics[i].second;
    }
    os << '}';
    if (journal) {
        os << ",\"wall_ms\":" << fmtMetric(row.wall_ms)
           << ",\"at_unix\":" << unixSeconds();
    }
    os << '}';
    return os.str();
}

ResultsStore::ResultsStore(const StoreHeader& header,
                           std::string journal_path)
    : header_(header)
{
    if (journal_path.empty())
        return;
    // No worker thread exists yet, but locking keeps the clang
    // thread-safety analysis exact: journal_ is guarded state.
    const MutexLock lock(mu_);
    journal_.open(journal_path,
                  std::ios::binary | std::ios::app);
    if (!journal_) {
        warn("cannot open sweep journal ", journal_path);
        return;
    }
    journal_ << headerJson(header_) << '\n';
    journal_.flush();
}

void
ResultsStore::append(SweepRow row)
{
    const MutexLock lock(mu_);
    if (journal_.is_open()) {
        journal_ << rowJson(row, /*journal=*/true) << '\n';
        journal_.flush();
    }
    rows_.push_back(std::move(row));
}

std::vector<SweepRow>
ResultsStore::sortedRows() const
{
    const MutexLock lock(mu_);
    std::vector<SweepRow> rows = rows_;
    std::sort(rows.begin(), rows.end(),
              [](const SweepRow& a, const SweepRow& b) {
                  return a.job < b.job;
              });
    return rows;
}

std::size_t
ResultsStore::failedCount() const
{
    const MutexLock lock(mu_);
    std::size_t failed = 0;
    for (const SweepRow& row : rows_) {
        if (row.status != JobStatus::Ok)
            ++failed;
    }
    return failed;
}

std::string
ResultsStore::mergedText() const
{
    std::string out = headerJson(header_) + "\n";
    for (const SweepRow& row : sortedRows())
        out += rowJson(row, /*journal=*/false) + "\n";
    return out;
}

bool
ResultsStore::writeMerged(const std::string& path) const
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    f << mergedText();
    return static_cast<bool>(f);
}

bool
readStore(const std::string& path, StoreData* out, std::string* error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    bool saw_header = false;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonValue v;
        std::string parse_error;
        if (!parseJson(line, &v, &parse_error)) {
            if (error) {
                *error = path + ":" + std::to_string(lineno) + ": " +
                         parse_error;
            }
            return false;
        }
        const std::string kind = v.stringOr("kind", "");
        if (kind == "header") {
            out->store_schema =
                static_cast<int>(v.numberOr("store_schema", 0.0));
            if (out->store_schema != kStoreSchemaVersion) {
                if (error) {
                    *error = path + ": store_schema " +
                             std::to_string(out->store_schema) +
                             " != expected " +
                             std::to_string(kStoreSchemaVersion);
                }
                return false;
            }
            out->header.sweep = v.stringOr("sweep", "");
            out->header.git_sha = v.stringOr("git_sha", "unknown");
            out->header.jobs =
                static_cast<std::size_t>(v.numberOr("jobs", 0.0));
            out->header.configs =
                static_cast<std::size_t>(v.numberOr("configs", 0.0));
            out->header.scenarios =
                static_cast<std::size_t>(v.numberOr("scenarios", 0.0));
            out->header.seeds =
                static_cast<std::size_t>(v.numberOr("seeds", 0.0));
            saw_header = true;
            continue;
        }
        if (kind != "row")
            continue;
        StoreRowData row;
        row.job = static_cast<std::size_t>(v.numberOr("job", 0.0));
        row.config = v.stringOr("config", "");
        row.scenario = v.stringOr("scenario", "");
        row.seed =
            static_cast<std::uint64_t>(v.numberOr("seed", 0.0));
        row.status = statusFromString(v.stringOr("status", "error"));
        row.error = v.stringOr("error", "");
        if (v.has("metrics") && v.at("metrics").isObject()) {
            const JsonValue& m = v.at("metrics");
            for (const std::string& key : m.keys()) {
                if (!m.at(key).isNumber())
                    continue;
                row.metric_names.push_back(key);
                row.metrics[key] = m.at(key).asNumber();
            }
        }
        out->rows.push_back(std::move(row));
    }
    if (!saw_header) {
        if (error)
            *error = path + ": no header line";
        return false;
    }
    return true;
}

}  // namespace sweep
}  // namespace proteus
