/**
 * @file
 * Parallel experiment runner (the TCPSPSuite parallelizer/runner
 * idiom): a fixed-size pool of worker threads pulls jobs off a shared
 * atomic cursor and runs each one **in-process** — the simulator is
 * deterministic and self-contained, so a job is just a function call,
 * no fork, no IPC.
 *
 * Isolation contract:
 *  - a job that throws becomes an "error" row in the store; sibling
 *    jobs are unaffected and the sweep runs to completion,
 *  - a job that exceeds the per-job work budget is abandoned and
 *    becomes a "budget" row (cooperative: jobs poll
 *    JobContext::checkBudget() between simulation slices),
 *  - the driver's exit status reflects failed rows (nonzero when any
 *    job did not end "ok").
 *
 * Determinism contract: job results never depend on thread count or
 * completion order. The merged store is produced by ResultsStore in
 * job-id order, so `--threads 1` and `--threads N` runs of the same
 * spec emit byte-identical stores.
 */

#ifndef PROTEUS_SWEEP_RUNNER_H_
#define PROTEUS_SWEEP_RUNNER_H_

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "sweep/matrix.h"
#include "sweep/store.h"
#include "sweep/sweep_clock.h"

namespace proteus {

struct RunResult;

namespace sweep {

/** Runner configuration. */
struct RunnerOptions {
    int threads = 1;            ///< worker threads (clamped to >= 1)
    double job_budget_ms = 0.0; ///< per-job wall budget; 0 = unlimited
    std::string journal_path;   ///< append-only journal; "" disables
};

/** Thrown by JobContext::checkBudget() when the budget is exhausted. */
class BudgetExceeded : public std::runtime_error
{
  public:
    explicit BudgetExceeded(const std::string& what)
        : std::runtime_error(what)
    {}
};

/** Per-job handle: identity plus the cooperative budget check. */
class JobContext
{
  public:
    JobContext(std::size_t job, double budget_ms)
        : job_(job), budget_ms_(budget_ms)
    {}

    std::size_t job() const { return job_; }

    /** @return true once the wall budget is spent (false when off). */
    bool
    budgetExceeded() const
    {
        return budget_ms_ > 0.0 && timer_.elapsedMs() > budget_ms_;
    }

    /** Throw BudgetExceeded when the budget is spent. Jobs call this
     *  between work slices; granularity is the caller's slice size. */
    void checkBudget() const;

    /** @return wall milliseconds since the job started. */
    double elapsedMs() const { return timer_.elapsedMs(); }

  private:
    std::size_t job_;
    double budget_ms_;
    JobTimer timer_;
};

/** The work of one job: fill @p row (metrics and/or identity fixups).
 *  Throwing marks the row "error"; BudgetExceeded marks it "budget". */
using JobFn = std::function<void(JobContext&, SweepRow*)>;

/** Outcome of a sweep: deterministic rows + merged store bytes. */
struct SweepOutcome {
    std::vector<SweepRow> rows;  ///< job-id order
    std::size_t failed = 0;      ///< rows with status != ok
    std::string store_text;      ///< merged store (header + rows)
};

/**
 * Run @p fn(i) for i in [0, n) across @p threads workers. Blocks
 * until all complete; rethrows the first exception after joining.
 * The low-level primitive under runJobs(); also the engine behind the
 * tests' SeedSweep helper.
 */
void parallelFor(std::size_t n, int threads,
                 const std::function<void(std::size_t)>& fn);

/**
 * Run @p n jobs through the pool with failure isolation. @p init
 * builds each job's identity row; @p fn does the work. Rows land in
 * @p store as jobs finish (journal order) and in the returned outcome
 * in job-id order.
 */
SweepOutcome runJobs(std::size_t n, const RunnerOptions& options,
                     const StoreHeader& header,
                     const std::function<SweepRow(std::size_t)>& init,
                     const JobFn& fn);

/**
 * Expand @p spec and run every job: each job loads its merged
 * experiment config, runs a ServingSystem over the trace (sliced,
 * budget-checked), and records the summary metrics.
 */
SweepOutcome runSweep(const SweepSpec& spec,
                      const RunnerOptions& options);

/** The summary metrics recorded per job, as preformatted pairs. */
std::vector<std::pair<std::string, std::string>> summaryMetrics(
    const RunResult& result);

}  // namespace sweep
}  // namespace proteus

#endif  // PROTEUS_SWEEP_RUNNER_H_
