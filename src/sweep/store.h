/**
 * @file
 * Append-only JSONL results store for sweep runs.
 *
 * Two artifacts, one purpose each:
 *
 *  - the **journal** (`<out>.journal`): one line appended and flushed
 *    the moment each job finishes, in completion order, stamped with
 *    wall time. This is the crash-isolation story — kill the driver
 *    mid-sweep and every finished job's row survives on disk.
 *
 *  - the **merged store** (`<out>`): written once at the end, header
 *    first, then one row per job in job-id order with all wall-clock
 *    fields stripped. Because job results are deterministic and the
 *    merge order is fixed, the merged store is byte-identical no
 *    matter how many worker threads ran the sweep.
 *
 * Both use the same row schema (store_schema 1): a "header" line
 * carrying the sweep name, git SHA and matrix shape, then "row" lines
 * with job identity, status ("ok" / "error" / "budget") and the
 * summary metrics as preformatted numbers.
 */

#ifndef PROTEUS_SWEEP_STORE_H_
#define PROTEUS_SWEEP_STORE_H_

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace proteus {
namespace sweep {

/** Store schema version; bump when the row layout changes. */
inline constexpr int kStoreSchemaVersion = 1;

/** How a job ended. */
enum class JobStatus {
    Ok,      ///< ran to completion
    Error,   ///< threw; row carries the exception message
    Budget,  ///< exceeded the per-job work budget and was abandoned
};

/** @return the status as its store-schema string. */
const char* toString(JobStatus status);

/** One job's result row. Metrics are preformatted (name, value-text)
 *  pairs so the merged store is byte-stable by construction. */
struct SweepRow {
    std::size_t job = 0;
    std::string config;
    std::string scenario;
    std::uint64_t seed = 0;
    JobStatus status = JobStatus::Ok;
    std::string error;  ///< empty unless status != Ok
    std::vector<std::pair<std::string, std::string>> metrics;
    double wall_ms = 0.0;  ///< journal only; never in the merged store
};

/** Identity stamped into the store header line. */
struct StoreHeader {
    std::string sweep;
    std::string git_sha = "unknown";
    std::size_t jobs = 0;
    std::size_t configs = 0;
    std::size_t scenarios = 0;
    std::size_t seeds = 0;
};

/** Format @p v losslessly ("%.17g") for a metric value. */
std::string fmtMetric(double v);

/** Format @p v as an integer metric value. */
std::string fmtMetric(std::uint64_t v);

/** Serialize one row. @p journal adds wall_ms and at_unix stamps. */
std::string rowJson(const SweepRow& row, bool journal);

/** Serialize the header line. */
std::string headerJson(const StoreHeader& header);

/**
 * Collects rows as jobs finish (thread-safe) and materializes the
 * deterministic merged store afterwards.
 */
class ResultsStore
{
  public:
    /**
     * @param journal_path append-only completion-order log; empty
     *        disables journaling (in-process/test use).
     */
    explicit ResultsStore(const StoreHeader& header,
                          std::string journal_path = "");

    /** Record one finished job; appends + flushes the journal line. */
    void append(SweepRow row);

    /** @return all rows so far, sorted by job id. */
    std::vector<SweepRow> sortedRows() const;

    /** @return rows with status != Ok (after sorting by job id). */
    std::size_t failedCount() const;

    /** @return the merged store text (header + rows by job id). */
    std::string mergedText() const;

    /** Write the merged store to @p path. @return false on IO error. */
    bool writeMerged(const std::string& path) const;

    const StoreHeader& header() const { return header_; }

  private:
    StoreHeader header_;  ///< immutable after construction
    mutable Mutex mu_;
    std::vector<SweepRow> rows_ PROTEUS_GUARDED_BY(mu_);
    std::ofstream journal_ PROTEUS_GUARDED_BY(mu_);
};

/** A row read back from a store file; metrics parsed to doubles. */
struct StoreRowData {
    std::size_t job = 0;
    std::string config;
    std::string scenario;
    std::uint64_t seed = 0;
    JobStatus status = JobStatus::Ok;
    std::string error;
    /** Insertion-ordered metric names (all ok-rows share one list). */
    std::vector<std::string> metric_names;
    std::map<std::string, double> metrics;
};

/** A parsed store: header + rows. */
struct StoreData {
    StoreHeader header;
    int store_schema = 0;
    std::vector<StoreRowData> rows;
};

/**
 * Parse a JSONL store (merged or journal).
 * @return false with *error set on IO/parse/schema problems.
 */
bool readStore(const std::string& path, StoreData* out,
               std::string* error);

}  // namespace sweep
}  // namespace proteus

#endif  // PROTEUS_SWEEP_STORE_H_
