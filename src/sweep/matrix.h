/**
 * @file
 * Declarative sweep matrices: a JSON spec names a base experiment
 * config plus three axes — configs × scenarios × seeds — and expands
 * into a flat, deterministically ordered job list. Modeled on
 * TCPSPSuite's manager/selector split: expansion is pure and happens
 * up front, so every run of the same spec numbers jobs identically
 * regardless of how many worker threads later execute them.
 *
 * Spec format:
 * @code{.json}
 * {
 *   "name": "sweep_smoke",
 *   "base": { ...experiment config (core/experiment.h schema)... },
 *   "configs":   [{"name": "proteus", "overrides": {...}}, ...],
 *   "scenarios": [{"name": "burst",   "overrides": {...}}, ...],
 *   "seeds": {"first": 1, "count": 10},      // or [1, 7, 42]
 *   "job_budget_ms": 0
 * }
 * @endcode
 *
 * "base" may be replaced by "base_file": a path to a plain experiment
 * config. "configs" defaults to one pass-through entry, "scenarios"
 * to none (a single implicit "base" scenario), "seeds" to {first: 1,
 * count: 1}. Overrides deep-merge onto the base (config first, then
 * scenario), and the seed axis overwrites both the system seed and
 * the workload seed.
 */

#ifndef PROTEUS_SWEEP_MATRIX_H_
#define PROTEUS_SWEEP_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"

namespace proteus {
namespace sweep {

/** One entry on the config or scenario axis. */
struct AxisEntry {
    std::string name;
    JsonValue overrides;  ///< object deep-merged onto the base
};

/** A parsed sweep matrix. */
struct SweepSpec {
    std::string name;                  ///< store/report slug
    JsonValue base;                    ///< base experiment config
    std::vector<AxisEntry> configs;    ///< ≥ 1 after loading
    std::vector<AxisEntry> scenarios;  ///< ≥ 1 after loading
    std::vector<std::uint64_t> seeds;  ///< ≥ 1 after loading
    double job_budget_ms = 0.0;        ///< per-job wall budget, 0 = off
};

/** One expanded job: a fully merged experiment config plus identity. */
struct JobSpec {
    std::size_t id = 0;     ///< dense index in expansion order
    std::string config;     ///< config-axis name
    std::string scenario;   ///< scenario-axis name ("base" when unset)
    std::uint64_t seed = 0;
    JsonValue experiment;   ///< merged config, ready for loadExperiment()

    /** Aggregation group: config, plus "+scenario" when not "base". */
    std::string groupName() const;
};

/**
 * Deep-merge @p overlay onto @p base: objects merge member-wise
 * (recursively), any other type in the overlay replaces the base
 * value outright.
 */
JsonValue jsonDeepMerge(const JsonValue& base, const JsonValue& overlay);

/** Parse a sweep spec. Malformed specs are fatal (user error). */
SweepSpec loadSweepSpec(const JsonValue& json);

/** Parse the JSON file at @p path and load it. */
SweepSpec loadSweepSpecFile(const std::string& path);

/**
 * Expand the matrix into jobs in fixed nesting order
 * (configs, then scenarios, then seeds); job id = position.
 */
std::vector<JobSpec> expandJobs(const SweepSpec& spec);

}  // namespace sweep
}  // namespace proteus

#endif  // PROTEUS_SWEEP_MATRIX_H_
