#include "sweep/matrix.h"

#include <map>

#include "common/logging.h"

namespace proteus {
namespace sweep {

std::string
JobSpec::groupName() const
{
    if (scenario.empty() || scenario == "base")
        return config;
    return config + "+" + scenario;
}

JsonValue
jsonDeepMerge(const JsonValue& base, const JsonValue& overlay)
{
    if (!base.isObject() || !overlay.isObject())
        return overlay;
    std::map<std::string, JsonValue> merged;
    for (const std::string& key : base.keys())
        merged.emplace(key, base.at(key));
    for (const std::string& key : overlay.keys()) {
        auto it = merged.find(key);
        if (it == merged.end())
            merged.emplace(key, overlay.at(key));
        else
            it->second = jsonDeepMerge(it->second, overlay.at(key));
    }
    return JsonValue::makeObject(std::move(merged));
}

namespace {

std::vector<AxisEntry>
axisFromJson(const JsonValue& json, const char* key)
{
    std::vector<AxisEntry> axis;
    if (!json.has(key))
        return axis;
    const JsonValue& arr = json.at(key);
    if (!arr.isArray())
        PROTEUS_FATAL("sweep spec \"", key, "\" must be an array");
    for (const JsonValue& e : arr.asArray()) {
        if (!e.isObject() || !e.has("name") || !e.at("name").isString())
            PROTEUS_FATAL("sweep spec \"", key,
                          "\" entries need a string \"name\"");
        AxisEntry entry;
        entry.name = e.at("name").asString();
        entry.overrides = e.has("overrides")
                              ? e.at("overrides")
                              : JsonValue::makeObject({});
        if (!entry.overrides.isObject())
            PROTEUS_FATAL("sweep \"", key, "\" entry \"", entry.name,
                          "\": \"overrides\" must be an object");
        for (const AxisEntry& prev : axis) {
            if (prev.name == entry.name)
                PROTEUS_FATAL("sweep \"", key, "\" has duplicate name \"",
                              entry.name, "\"");
        }
        axis.push_back(std::move(entry));
    }
    return axis;
}

std::vector<std::uint64_t>
seedsFromJson(const JsonValue& json)
{
    std::vector<std::uint64_t> seeds;
    if (!json.has("seeds")) {
        seeds.push_back(1);
        return seeds;
    }
    const JsonValue& s = json.at("seeds");
    if (s.isArray()) {
        for (const JsonValue& v : s.asArray()) {
            if (!v.isNumber())
                PROTEUS_FATAL("sweep \"seeds\" array must be numeric");
            seeds.push_back(static_cast<std::uint64_t>(v.asNumber()));
        }
    } else if (s.isObject()) {
        const std::uint64_t first =
            static_cast<std::uint64_t>(s.numberOr("first", 1.0));
        const int count = static_cast<int>(s.numberOr("count", 1.0));
        if (count < 1)
            PROTEUS_FATAL("sweep \"seeds\".count must be >= 1");
        for (int i = 0; i < count; ++i)
            seeds.push_back(first + static_cast<std::uint64_t>(i));
    } else {
        PROTEUS_FATAL("sweep \"seeds\" must be an array or "
                      "{first, count} object");
    }
    if (seeds.empty())
        PROTEUS_FATAL("sweep \"seeds\" expands to no seeds");
    return seeds;
}

}  // namespace

SweepSpec
loadSweepSpec(const JsonValue& json)
{
    SweepSpec spec;
    spec.name = json.stringOr("name", "sweep");
    if (json.has("base")) {
        spec.base = json.at("base");
        if (!spec.base.isObject())
            PROTEUS_FATAL("sweep \"base\" must be an object");
    } else if (json.has("base_file")) {
        std::string error;
        if (!parseJsonFile(json.at("base_file").asString(), &spec.base,
                           &error))
            PROTEUS_FATAL("sweep base_file parse error: ", error);
    } else {
        PROTEUS_FATAL("sweep spec needs \"base\" or \"base_file\"");
    }

    spec.configs = axisFromJson(json, "configs");
    if (spec.configs.empty())
        spec.configs.push_back({"base", JsonValue::makeObject({})});
    spec.scenarios = axisFromJson(json, "scenarios");
    if (spec.scenarios.empty())
        spec.scenarios.push_back({"base", JsonValue::makeObject({})});
    spec.seeds = seedsFromJson(json);
    spec.job_budget_ms = json.numberOr("job_budget_ms", 0.0);
    return spec;
}

SweepSpec
loadSweepSpecFile(const std::string& path)
{
    JsonValue json;
    std::string error;
    if (!parseJsonFile(path, &json, &error))
        PROTEUS_FATAL("sweep spec parse error: ", error);
    return loadSweepSpec(json);
}

std::vector<JobSpec>
expandJobs(const SweepSpec& spec)
{
    std::vector<JobSpec> jobs;
    jobs.reserve(spec.configs.size() * spec.scenarios.size() *
                 spec.seeds.size());
    for (const AxisEntry& config : spec.configs) {
        const JsonValue with_config =
            jsonDeepMerge(spec.base, config.overrides);
        for (const AxisEntry& scenario : spec.scenarios) {
            const JsonValue merged =
                jsonDeepMerge(with_config, scenario.overrides);
            for (const std::uint64_t seed : spec.seeds) {
                JobSpec job;
                job.id = jobs.size();
                job.config = config.name;
                job.scenario = scenario.name;
                job.seed = seed;
                // The seed axis owns both RNG seeds: the system's and
                // the workload generator's.
                const JsonValue seed_overlay = JsonValue::makeObject(
                    {{"seed", JsonValue::makeNumber(
                                  static_cast<double>(seed))},
                     {"workload",
                      JsonValue::makeObject(
                          {{"seed", JsonValue::makeNumber(
                                        static_cast<double>(seed))}})}});
                job.experiment = jsonDeepMerge(merged, seed_overlay);
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

}  // namespace sweep
}  // namespace proteus
