/**
 * @file
 * Aggregation pass over a sweep results store: group rows by
 * config(+scenario), compute mean and 95% confidence interval across
 * seeds for every metric, and emit a BENCH-schema report that
 * `bench_diff --stats` can gate on CI overlap instead of single-point
 * tolerances.
 *
 * Report layout (schema matches bench/bench_util.h):
 *   results.<group>.seeds            — ok-row count in the group
 *   results.<group>.<metric>         — mean across seeds
 *   results.<group>.<metric>_ci95    — CI half-width (omitted when
 *                                      fewer than 2 samples: a
 *                                      single seed degenerates to
 *                                      tolerance gating)
 *   results.failed_jobs              — rows with status != ok
 */

#ifndef PROTEUS_SWEEP_AGGREGATE_H_
#define PROTEUS_SWEEP_AGGREGATE_H_

#include <string>

#include "sweep/store.h"

namespace proteus {
namespace sweep {

/**
 * @return the 95% two-sided Student-t critical value for @p df
 * degrees of freedom (exact table through 30, 1.96 beyond).
 */
double tCritical95(std::size_t df);

/** Build the BENCH-schema report JSON text from a parsed store. */
std::string aggregateBenchJson(const StoreData& store);

/** Write the report to @p path. @return false on IO error. */
bool writeAggregateBench(const StoreData& store,
                         const std::string& path);

}  // namespace sweep
}  // namespace proteus

#endif  // PROTEUS_SWEEP_AGGREGATE_H_
