#include "sweep/aggregate.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

namespace proteus {
namespace sweep {

namespace {

/** Must match bench::kBenchSchemaVersion (bench/bench_util.h) so the
 *  aggregate reports diff against bench baselines' schema family. */
constexpr int kAggregateBenchSchema = 3;

/** Two-sided 95% Student-t critical values, df = 1..30. */
constexpr double kT95[] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048,  2.045, 2.042};

struct Group {
    std::string name;
    std::vector<const StoreRowData*> rows;  ///< ok rows, job-id order
};

std::string
groupNameOf(const StoreRowData& row)
{
    if (row.scenario.empty() || row.scenario == "base")
        return row.config;
    return row.config + "+" + row.scenario;
}

}  // namespace

double
tCritical95(std::size_t df)
{
    if (df == 0)
        return 0.0;
    if (df <= std::size(kT95))
        return kT95[df - 1];
    return 1.96;
}

std::string
aggregateBenchJson(const StoreData& store)
{
    // Group ok-rows by config(+scenario), preserving first-appearance
    // order (rows arrive sorted by job id, so this is the matrix's
    // expansion order and therefore deterministic).
    std::vector<Group> groups;
    std::size_t failed = 0;
    for (const StoreRowData& row : store.rows) {
        if (row.status != JobStatus::Ok) {
            ++failed;
            continue;
        }
        const std::string name = groupNameOf(row);
        Group* group = nullptr;
        for (Group& g : groups) {
            if (g.name == name) {
                group = &g;
                break;
            }
        }
        if (!group) {
            groups.push_back(Group{name, {}});
            group = &groups.back();
        }
        group->rows.push_back(&row);
    }

    std::ostringstream os;
    os << "{\"bench\":\"" << store.header.sweep
       << "\",\"schema\":" << kAggregateBenchSchema << ",\"git_sha\":\""
       << store.header.git_sha << "\",\"config\":\""
       << store.header.sweep << "\",\"results\":{";

    bool first_entry = true;
    for (const Group& g : groups) {
        if (!first_entry)
            os << ',';
        first_entry = false;
        os << '"' << g.name << "\":{\"seeds\":" << g.rows.size();
        // Metric names from the group's first row (alphabetical via
        // the parsed map); every ok row of a sweep shares the list.
        for (const std::string& metric : g.rows.front()->metric_names) {
            std::size_t n = 0;
            double sum = 0.0;
            for (const StoreRowData* row : g.rows) {
                auto it = row->metrics.find(metric);
                if (it == row->metrics.end())
                    continue;
                ++n;
                sum += it->second;
            }
            if (n == 0)
                continue;
            const double mean = sum / static_cast<double>(n);
            os << ",\"" << metric << "\":" << fmtMetric(mean);
            if (n >= 2) {
                double sq = 0.0;
                for (const StoreRowData* row : g.rows) {
                    auto it = row->metrics.find(metric);
                    if (it == row->metrics.end())
                        continue;
                    const double d = it->second - mean;
                    sq += d * d;
                }
                const double sd =
                    std::sqrt(sq / static_cast<double>(n - 1));
                const double half = tCritical95(n - 1) * sd /
                                    std::sqrt(static_cast<double>(n));
                os << ",\"" << metric
                   << "_ci95\":" << fmtMetric(half);
            }
        }
        os << '}';
    }
    if (!first_entry)
        os << ',';
    os << "\"failed_jobs\":" << failed << "}}\n";
    return os.str();
}

bool
writeAggregateBench(const StoreData& store, const std::string& path)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    f << aggregateBenchJson(store);
    return static_cast<bool>(f);
}

}  // namespace sweep
}  // namespace proteus
