/**
 * @file
 * The sweep driver's audited wall-clock site (proteus_lint rule D2).
 *
 * The experiment runner is *measurement* infrastructure: it times jobs
 * and stamps journal rows with real timestamps so an interrupted sweep
 * can be audited afterwards. Those are legitimate wall-clock reads,
 * but rule D2 exists precisely so clock reads cannot creep into
 * deterministic code, so instead of sprinkling per-line suppressions
 * through src/sweep, every clock read the sweep subsystem makes
 * funnels through this one header and the lint allowlist names
 * exactly this file (see isClockShim() in tools/lint/lint.cc).
 *
 * Invariant (audited): nothing returned from here may influence a
 * job's *result* — only journal metadata (wall_ms, at_unix) and the
 * per-job work-budget abort, which turns a job into an explicit
 * failure row rather than silently changing its answer. The merged
 * results store contains no wall-clock-derived bytes at all; that is
 * what makes an N-thread store byte-identical to a 1-thread store.
 */

#ifndef PROTEUS_SWEEP_SWEEP_CLOCK_H_
#define PROTEUS_SWEEP_SWEEP_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace proteus {
namespace sweep {

/** Monotonic per-job stopwatch; starts at construction. */
class JobTimer
{
  public:
    JobTimer() : start_(std::chrono::steady_clock::now()) {}

    /** @return milliseconds elapsed since construction. */
    double
    elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** @return seconds since the Unix epoch (journal stamps only). */
inline std::int64_t
unixSeconds()
{
    return std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

}  // namespace sweep
}  // namespace proteus

#endif  // PROTEUS_SWEEP_SWEEP_CLOCK_H_
