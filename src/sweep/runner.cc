#include "sweep/runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "core/experiment.h"
#include "core/serving_system.h"

namespace proteus {
namespace sweep {

void
JobContext::checkBudget() const
{
    if (budgetExceeded()) {
        throw BudgetExceeded("job " + std::to_string(job_) +
                             " exceeded its work budget (" +
                             std::to_string(budget_ms_) + " ms)");
    }
}

void
parallelFor(std::size_t n, int threads,
            const std::function<void(std::size_t)>& fn)
{
    const std::size_t workers = static_cast<std::size_t>(std::clamp(
        threads, 1, static_cast<int>(std::max<std::size_t>(n, 1))));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;  // guarded by error_mu
    Mutex error_mu;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                try {
                    fn(i);
                } catch (...) {
                    const MutexLock lock(error_mu);
                    if (!first_error)
                        first_error = std::current_exception();
                }
            }
        });
    }
    for (std::thread& t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

SweepOutcome
runJobs(std::size_t n, const RunnerOptions& options,
        const StoreHeader& header,
        const std::function<SweepRow(std::size_t)>& init,
        const JobFn& fn)
{
    ResultsStore store(header, options.journal_path);
    parallelFor(n, options.threads, [&](std::size_t i) {
        SweepRow row = init(i);
        JobContext ctx(i, options.job_budget_ms);
        try {
            fn(ctx, &row);
            row.status = JobStatus::Ok;
        } catch (const BudgetExceeded& e) {
            row.status = JobStatus::Budget;
            row.error = e.what();
            row.metrics.clear();
        } catch (const std::exception& e) {
            row.status = JobStatus::Error;
            row.error = e.what();
            row.metrics.clear();
        } catch (...) {
            row.status = JobStatus::Error;
            row.error = "unknown exception";
            row.metrics.clear();
        }
        row.wall_ms = ctx.elapsedMs();
        store.append(std::move(row));
    });

    SweepOutcome outcome;
    outcome.rows = store.sortedRows();
    outcome.failed = store.failedCount();
    outcome.store_text = store.mergedText();
    return outcome;
}

std::vector<std::pair<std::string, std::string>>
summaryMetrics(const RunResult& r)
{
    std::vector<std::pair<std::string, std::string>> m;
    m.reserve(14);
    m.emplace_back("demand_qps", fmtMetric(r.summary.avg_demand_qps));
    m.emplace_back("throughput_qps",
                   fmtMetric(r.summary.avg_throughput_qps));
    m.emplace_back("effective_accuracy",
                   fmtMetric(r.summary.effective_accuracy));
    m.emplace_back("max_accuracy_drop",
                   fmtMetric(r.summary.max_accuracy_drop));
    m.emplace_back("slo_violation_ratio",
                   fmtMetric(r.summary.slo_violation_ratio));
    m.emplace_back("violations", fmtMetric(r.summary.violations()));
    m.emplace_back("arrivals", fmtMetric(r.summary.arrivals));
    m.emplace_back("served", fmtMetric(r.summary.served));
    m.emplace_back("served_late", fmtMetric(r.summary.served_late));
    m.emplace_back("dropped", fmtMetric(r.summary.dropped));
    m.emplace_back("shed", fmtMetric(r.shed));
    m.emplace_back("reallocations",
                   fmtMetric(static_cast<std::uint64_t>(
                       std::max(r.reallocations, 0))));
    m.emplace_back("mean_batch_size", fmtMetric(r.mean_batch_size));
    return m;
}

namespace {

/**
 * One experiment job: load the merged config, run the serving system
 * over its trace and harvest the summary. The run is sliced so the
 * budget check fires between slices; an exceeded budget abandons the
 * system mid-run (RAII unwinds it) and surfaces as a budget row.
 */
void
runExperimentJob(const JobSpec& job, JobContext& ctx, SweepRow* row)
{
    ExperimentSpec spec = loadExperiment(job.experiment);
    // Sweep jobs never write per-run trace/metrics files: parallel
    // jobs would race on the paths. Exports belong to proteus_sim.
    spec.config.obs.enabled = false;

    ServingSystem system(&spec.cluster, &spec.registry, spec.config);
    const Time horizon = system.beginRun(spec.trace);
    const Duration slice = seconds(5.0);
    for (Time at = slice; at < horizon; at += slice) {
        ctx.checkBudget();
        system.advanceTo(at);
    }
    ctx.checkBudget();
    system.advanceTo(horizon);
    const RunResult result = system.finishRun();
    row->metrics = summaryMetrics(result);
}

}  // namespace

SweepOutcome
runSweep(const SweepSpec& spec, const RunnerOptions& options)
{
    const std::vector<JobSpec> jobs = expandJobs(spec);

    StoreHeader header;
    header.sweep = spec.name;
#ifdef PROTEUS_GIT_SHA
    header.git_sha = PROTEUS_GIT_SHA;
#endif
    header.jobs = jobs.size();
    header.configs = spec.configs.size();
    header.scenarios = spec.scenarios.size();
    header.seeds = spec.seeds.size();

    RunnerOptions opts = options;
    if (opts.job_budget_ms <= 0.0)
        opts.job_budget_ms = spec.job_budget_ms;

    return runJobs(
        jobs.size(), opts, header,
        [&](std::size_t i) {
            SweepRow row;
            row.job = jobs[i].id;
            row.config = jobs[i].config;
            row.scenario = jobs[i].scenario;
            row.seed = jobs[i].seed;
            return row;
        },
        [&](JobContext& ctx, SweepRow* row) {
            runExperimentJob(jobs[ctx.job()], ctx, row);
        });
}

}  // namespace sweep
}  // namespace proteus
