/**
 * @file
 * Causal-lineage analysis over the span + link rings (DESIGN.md,
 * "Observability": lineage schema and critical-path recipe).
 *
 * The tracer records the raw material — parented spans and typed
 * cross-links; this library turns it into answers. LineageIndex
 * ingests the two record streams and decomposes any query's
 * end-to-end latency into an **exact partition** of segments: every
 * simulated nanosecond between arrival and the terminal state is
 * attributed to exactly one segment, so segment durations always sum
 * to the measured latency (asserted by tests; a violation means the
 * trace itself is inconsistent).
 *
 * TailReservoir is the runtime half: a seeded Algorithm-R reservoir
 * fed with SLO-violating terminal queries so the offline analyzer has
 * an unbiased sample of the tail to explain without retaining every
 * query id. Same seed + same outcomes ⇒ same exemplars, preserving
 * byte-identical trace exports.
 */

#ifndef PROTEUS_OBS_LINEAGE_H_
#define PROTEUS_OBS_LINEAGE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "obs/trace.h"

namespace proteus {
namespace obs {

/**
 * The mutually exclusive causes a query's lifetime divides into.
 * Route/StageHandoff/Execution come straight from hop spans;
 * QueueBehindBatch/EpochStall/BatchFormation split the queue wait by
 * what the device was doing; Stall covers every interval no span
 * explains (requeue back-off, drop wait, spans lost to ring wrap).
 */
enum class SegmentKind : std::uint8_t {
    Route,  ///< router admission work
    StageHandoff,  ///< routing a non-entry pipeline stage
    QueueBehindBatch,  ///< queued while the device executed other batches
    EpochStall,  ///< queued while the device loaded a model
    BatchFormation,  ///< queued while the device was idle (batching wait)
    Execution,  ///< inside the executed batch
    Stall,  ///< unexplained wait (requeue back-off, drop wait, lost spans)
};

/** Number of SegmentKind values (blame-table row width). */
inline constexpr std::size_t kNumSegmentKinds = 7;

/** @return a short stable name ("route", "queue_behind_batch", ...). */
const char* toString(SegmentKind kind);

/** One attributed interval of a query's lifetime. */
struct Segment {
    Time start = 0;
    Time end = 0;
    /** Device the attribution happened on (-1 = not device-bound). */
    std::int64_t device = -1;
    /** Blamed object: batch number, load epoch, stage index... (0 = none). */
    std::uint64_t ref = 0;
    SegmentKind kind = SegmentKind::Stall;

    Duration duration() const { return end - start; }
};

/** The exact latency partition of one query. */
struct CriticalPath {
    std::uint64_t query = 0;
    Time arrival = 0;
    Time end = 0;
    std::uint32_t family = kInvalidId;
    std::uint32_t variant = kInvalidId;  ///< served variant (kInvalidId on drop)
    std::int64_t status = 0;  ///< QueryStatus as recorded in the Query span
    std::int64_t pipeline = -1;  ///< pipeline id (-1 = single-family)
    std::vector<Segment> segments;

    /** @return measured end-to-end latency. */
    Duration total() const { return end - arrival; }

    /** @return the sum of segment durations. */
    Duration segmentSum() const;

    /** @return true when the partition is exact (sum == total). */
    bool exact() const { return segmentSum() == total(); }
};

/** Per-key blame row: total time per segment kind + query count. */
struct BlameRow {
    Duration by_kind[kNumSegmentKinds] = {};
    std::uint64_t queries = 0;

    Duration total() const;
};

/** Aggregated blame tables over a set of critical paths. */
struct BlameTables {
    /** Keyed by family id. */
    std::unordered_map<std::uint32_t, BlameRow> by_family;
    /** Keyed by served variant id (kInvalidId bucket = dropped). */
    std::unordered_map<std::uint32_t, BlameRow> by_variant;
};

/** Fold @p paths into per-family / per-variant blame tables. */
BlameTables aggregateBlame(const std::vector<CriticalPath>& paths);

/**
 * Seeded Algorithm-R reservoir over SLO-violating terminal queries.
 * offer() is O(1) and allocation-free after construction; exemplars()
 * returns the sample sorted by query id so exports are deterministic.
 */
class TailReservoir
{
  public:
    TailReservoir(std::size_t capacity, std::uint64_t seed)
        : capacity_(capacity), rng_(seed)
    {
        items_.reserve(capacity);
    }

    TailReservoir(const TailReservoir&) = delete;
    TailReservoir& operator=(const TailReservoir&) = delete;

    /** Consider one terminal outcome; only violators are sampled. */
    void
    offer(std::uint64_t query, bool violated)
    {
        if (!violated || capacity_ == 0)
            return;
        ++seen_;
        if (items_.size() < capacity_) {
            items_.push_back(query);
            return;
        }
        const auto j = static_cast<std::uint64_t>(rng_.uniformInt(
            0, static_cast<std::int64_t>(seen_) - 1));
        if (j < capacity_)
            items_[static_cast<std::size_t>(j)] = query;
    }

    /** @return the sampled query ids, sorted ascending. */
    std::vector<std::uint64_t> exemplars() const;

    /** @return violators offered over the reservoir's lifetime. */
    std::uint64_t offered() const { return seen_; }

    /** @return reservoir capacity. */
    std::size_t capacity() const { return capacity_; }

  private:
    std::size_t capacity_;
    Rng rng_;
    std::vector<std::uint64_t> items_;
    std::uint64_t seen_ = 0;
};

/**
 * Queryable view over one trace's spans + links. Build once, then
 * analyze() any query. The index copies the record vectors, so it
 * outlives the tracer (and the offline tools build it from JSON).
 */
class LineageIndex
{
  public:
    LineageIndex(std::vector<SpanRecord> spans,
                 std::vector<LinkRecord> links);

    /** @return the terminal Query span of @p query (nullptr if lost). */
    const SpanRecord* querySpan(std::uint64_t query) const;

    /**
     * Decompose @p query's lifetime into the exact segment partition.
     * Returns an empty-path (segments empty, family == kInvalidId)
     * when the query's terminal span is not in the trace.
     */
    CriticalPath analyze(std::uint64_t query) const;

    /** @return the @p n slowest traced queries (duration desc, id asc). */
    std::vector<std::uint64_t> slowestQueries(std::size_t n) const;

    const std::vector<SpanRecord>& spans() const { return spans_; }
    const std::vector<LinkRecord>& links() const { return links_; }

  private:
    struct Interval {
        Time start = 0;
        Time end = 0;
        std::uint64_t id = 0;
    };

    /** Split queue wait [qs, qe) on @p device into typed segments. */
    void appendQueueSegments(Time qs, Time qe, std::int64_t device,
                             std::vector<Segment>* out) const;

    std::vector<SpanRecord> spans_;
    std::vector<LinkRecord> links_;
    /** query id -> index of its terminal Query span in spans_. */
    std::unordered_map<std::uint64_t, std::size_t> query_span_;
    /** query id -> indices of its Route/Queue/Exec hop spans. */
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> hops_;
    /** device -> Batch-span intervals, sorted by start. */
    std::unordered_map<std::int64_t, std::vector<Interval>> batches_;
    /** device -> Load-span intervals, sorted by start. */
    std::unordered_map<std::int64_t, std::vector<Interval>> loads_;
};

}  // namespace obs
}  // namespace proteus

#endif  // PROTEUS_OBS_LINEAGE_H_
