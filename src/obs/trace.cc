#include "obs/trace.h"

#include "common/logging.h"

namespace proteus {
namespace obs {

const char*
toString(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Query: return "query";
      case SpanKind::Route: return "route";
      case SpanKind::Queue: return "queue";
      case SpanKind::Exec: return "exec";
      case SpanKind::Batch: return "batch";
      case SpanKind::Load: return "load";
      case SpanKind::Solve: return "solve";
      case SpanKind::Apply: return "apply";
      case SpanKind::Alarm: return "alarm";
      case SpanKind::SloAlarm: return "slo_alarm";
    }
    return "unknown";
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity)
{
    PROTEUS_ASSERT(capacity >= 1, "tracer capacity must be >= 1");
    const MutexLock lock(mu_);
    ring_.resize(capacity);
}

std::vector<SpanRecord>
Tracer::spans() const
{
    const MutexLock lock(mu_);
    std::vector<SpanRecord> out;
    out.reserve(sizeLocked());
    if (recorded_ <= ring_.size()) {
        out.assign(ring_.begin(),
                   ring_.begin() +
                       static_cast<std::ptrdiff_t>(sizeLocked()));
        return out;
    }
    // Full ring: oldest span sits at the next write position.
    out.insert(out.end(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
    return out;
}

}  // namespace obs
}  // namespace proteus
