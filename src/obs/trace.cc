#include "obs/trace.h"

#include "common/logging.h"

namespace proteus {
namespace obs {

const char*
toString(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Query: return "query";
      case SpanKind::Route: return "route";
      case SpanKind::Queue: return "queue";
      case SpanKind::Exec: return "exec";
      case SpanKind::Batch: return "batch";
      case SpanKind::Load: return "load";
      case SpanKind::Solve: return "solve";
      case SpanKind::Apply: return "apply";
      case SpanKind::Alarm: return "alarm";
      case SpanKind::SloAlarm: return "slo_alarm";
    }
    return "unknown";
}

const char*
toString(LinkKind kind)
{
    switch (kind) {
      case LinkKind::QueryInBatch: return "query_in_batch";
      case LinkKind::BatchOnDevice: return "batch_on_device";
      case LinkKind::BatchOnEpoch: return "batch_on_epoch";
      case LinkKind::StageHandoff: return "stage_handoff";
      case LinkKind::QueuedBehind: return "queued_behind";
    }
    return "unknown";
}

Tracer::Tracer(std::size_t capacity, std::size_t link_capacity)
    : capacity_(capacity),
      link_capacity_(link_capacity == 0 ? capacity : link_capacity)
{
    PROTEUS_ASSERT(capacity >= 1, "tracer capacity must be >= 1");
    const MutexLock lock(mu_);
    ring_.resize(capacity);
    links_.resize(link_capacity_);
}

std::vector<SpanRecord>
Tracer::spans() const
{
    const MutexLock lock(mu_);
    std::vector<SpanRecord> out;
    out.reserve(sizeLocked());
    if (recorded_ <= ring_.size()) {
        out.assign(ring_.begin(),
                   ring_.begin() +
                       static_cast<std::ptrdiff_t>(sizeLocked()));
        return out;
    }
    // Full ring: oldest span sits at the next write position.
    out.insert(out.end(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
    return out;
}

std::vector<LinkRecord>
Tracer::links() const
{
    const MutexLock lock(mu_);
    std::vector<LinkRecord> out;
    out.reserve(linkSizeLocked());
    if (links_recorded_ <= links_.size()) {
        out.assign(links_.begin(),
                   links_.begin() +
                       static_cast<std::ptrdiff_t>(linkSizeLocked()));
        return out;
    }
    // Full ring: oldest link sits at the next write position.
    out.insert(out.end(),
               links_.begin() + static_cast<std::ptrdiff_t>(link_next_),
               links_.end());
    out.insert(out.end(), links_.begin(),
               links_.begin() + static_cast<std::ptrdiff_t>(link_next_));
    return out;
}

}  // namespace obs
}  // namespace proteus
