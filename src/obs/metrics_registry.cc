#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace proteus {
namespace obs {

Histogram::Histogram(Options options) : options_(options)
{
    PROTEUS_ASSERT(options_.min_value > 0.0,
                   "histogram min_value must be positive");
    PROTEUS_ASSERT(options_.growth > 1.0,
                   "histogram growth must exceed 1");
    PROTEUS_ASSERT(options_.num_buckets >= 2,
                   "histogram needs at least 2 buckets");
    buckets_.assign(static_cast<std::size_t>(options_.num_buckets), 0);
}

void
Histogram::record(double value)
{
    value = std::max(value, 0.0);
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;

    int idx = 0;
    if (value >= options_.min_value) {
        idx = 1 + static_cast<int>(std::log(value / options_.min_value) /
                                   std::log(options_.growth));
        idx = std::min(idx, options_.num_buckets - 1);
    }
    ++buckets_[static_cast<std::size_t>(idx)];
}

double
Histogram::bucketLowerEdge(int i) const
{
    if (i <= 0)
        return 0.0;
    return options_.min_value *
           std::pow(options_.growth, static_cast<double>(i - 1));
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank in [1, count]; find the bucket whose cumulative count
    // reaches it, then interpolate across that bucket's width.
    double rank = p / 100.0 * static_cast<double>(count_);
    rank = std::max(rank, 1.0);
    std::uint64_t cum = 0;
    for (int i = 0; i < options_.num_buckets; ++i) {
        std::uint64_t n = buckets_[static_cast<std::size_t>(i)];
        if (n == 0)
            continue;
        if (static_cast<double>(cum + n) >= rank) {
            double lo = bucketLowerEdge(i);
            double hi = i + 1 < options_.num_buckets
                            ? bucketLowerEdge(i + 1)
                            : max_;
            double frac = (rank - static_cast<double>(cum)) /
                          static_cast<double>(n);
            double v = lo + (hi - lo) * frac;
            return std::clamp(v, min_, max_);
        }
        cum += n;
    }
    return max_;
}

Counter*
MetricsRegistry::counter(const std::string& name)
{
    const MutexLock lock(mu_);
    auto& slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return slot.get();
}

Gauge*
MetricsRegistry::gauge(const std::string& name)
{
    const MutexLock lock(mu_);
    auto& slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return slot.get();
}

Histogram*
MetricsRegistry::histogram(const std::string& name,
                           Histogram::Options options)
{
    const MutexLock lock(mu_);
    auto& slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(options);
    return slot.get();
}

}  // namespace obs
}  // namespace proteus
