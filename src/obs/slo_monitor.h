/**
 * @file
 * Online SLO burn-rate monitor (DESIGN.md, "Observability").
 *
 * Tracks, per model family, the ratio of SLO-violating completions
 * over a sliding simulated-time window (bucketed ring, so eviction is
 * O(buckets) worst case and allocation-free after setup) and derives
 * the *burn rate*: violation ratio divided by the error budget. A burn
 * rate of 1.0 means the family is consuming its budget exactly as fast
 * as allowed; 2.0 means twice as fast. Threshold crossings raise and
 * clear alarms with hysteresis (raise at `burn_high`, clear below
 * `burn_low`) and are recorded as SloAlarm spans plus registry
 * counters.
 *
 * The monitor is strictly passive: it observes query outcomes and
 * never feeds back into routing or planning, so enabling it cannot
 * change the simulated results. All state advances on the simulated
 * clock — same-seed runs produce identical alarm sequences.
 */

#ifndef PROTEUS_OBS_SLO_MONITOR_H_
#define PROTEUS_OBS_SLO_MONITOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace proteus {
namespace obs {

/** Window geometry and alarm thresholds of an SloMonitor. */
struct SloMonitorOptions {
    /** Sliding-window length on the simulated clock. */
    Duration window = seconds(30.0);
    /** Buckets the window is divided into (eviction granularity). */
    std::size_t buckets = 30;
    /** Error budget: tolerated violation ratio within the window. */
    double budget = 0.02;
    /** Burn rate at/above which an alarm is raised. */
    double burn_high = 1.0;
    /** Burn rate below which a raised alarm clears (hysteresis). */
    double burn_low = 0.5;
    /** Minimum completions in the window before alarms may raise. */
    std::uint64_t min_count = 20;
};

/** Per-family sliding-window violation-ratio and burn-rate tracker. */
class SloMonitor
{
  public:
    SloMonitor(Simulator* sim, SloMonitorOptions options = {});

    SloMonitor(const SloMonitor&) = delete;
    SloMonitor& operator=(const SloMonitor&) = delete;

    /** Record alarm crossings as SloAlarm spans (nullptr to disable). */
    void setTracer(Tracer* tracer) { tracer_ = tracer; }

    /** Count raised/cleared alarms in @p registry (nullptr to skip). */
    void setRegistry(MetricsRegistry* registry);

    /**
     * Record one completed query of @p family at the current simulated
     * time; @p violated marks it as having missed its SLO deadline.
     */
    void onOutcome(FamilyId family, bool violated);

    /**
     * @return the violation ratio over the window ending now (0 when
     * no query completed in the window). Advances the window first, so
     * alarms may clear as stale buckets evict.
     */
    double violationRatio(FamilyId family);

    /** @return violationRatio() divided by the error budget. */
    double burnRate(FamilyId family);

    /** @return true while @p family's alarm is raised. */
    bool alarmActive(FamilyId family);

    /** @return completions of @p family inside the current window. */
    std::uint64_t windowCompleted(FamilyId family);

    /** @return alarms raised across all families so far. */
    std::uint64_t alarmsRaised() const { return alarms_raised_; }

    /** @return alarms cleared across all families so far. */
    std::uint64_t alarmsCleared() const { return alarms_cleared_; }

  private:
    struct Bucket {
        std::uint64_t completed = 0;
        std::uint64_t violated = 0;
    };
    struct FamilyState {
        std::vector<Bucket> ring;
        std::int64_t head_slot = -1;  ///< absolute slot of newest bucket
        std::uint64_t win_completed = 0;
        std::uint64_t win_violated = 0;
        bool alarm = false;
    };

    FamilyState& state(FamilyId family);
    void advance(FamilyState* st, Time now);
    void updateAlarm(FamilyId family, FamilyState* st, Time now);
    double ratioOf(const FamilyState& st) const;

    Simulator* sim_;
    SloMonitorOptions options_;
    Duration bucket_width_;
    Tracer* tracer_ = nullptr;
    Counter* raised_counter_ = nullptr;
    Counter* cleared_counter_ = nullptr;
    // Ordered map (lint rule D1): family iteration order must be
    // deterministic for exports and tests.
    std::map<FamilyId, FamilyState> families_;
    std::uint64_t alarms_raised_ = 0;
    std::uint64_t alarms_cleared_ = 0;
};

}  // namespace obs
}  // namespace proteus

#endif  // PROTEUS_OBS_SLO_MONITOR_H_
