/**
 * @file
 * Time-series telemetry: periodic sampling of registered probes on a
 * fixed simulated-time cadence (DESIGN.md, "Observability").
 *
 * The recorder owns one preallocated value column per channel and a
 * shared time column. Channels are registered once at setup — either
 * as instantaneous probes (gauges: queue depth, burn rate) or as
 * cumulative probes from which the recorder derives a per-second rate
 * (counters: arrivals, busy time). Sampling runs as a periodic
 * simulator event that only *reads* system state, so enabling the
 * recorder never changes the simulated behaviour, and every sampled
 * value is a deterministic function of simulated time — the exported
 * CSV/JSON of a run is byte-identical across same-seed repetitions.
 *
 * Storage is bounded: columns are preallocated to `capacity` samples
 * and recording stops (counting overflowed ticks) once full, so a
 * runaway horizon cannot grow memory or slow the run down.
 */

#ifndef PROTEUS_OBS_TIMESERIES_H_
#define PROTEUS_OBS_TIMESERIES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/simulator.h"

namespace proteus {
namespace obs {

/** Sampling cadence and storage bounds of a TimeSeriesRecorder. */
struct TimeSeriesOptions {
    /** Sampling period on the simulated timeline. */
    Duration sample_interval = seconds(1.0);
    /** Preallocated samples per channel; ticks beyond are dropped. */
    std::size_t capacity = 1 << 12;
};

/** Periodic sampler building per-channel time series. */
class TimeSeriesRecorder
{
  public:
    /** Reads one value from live system state (must not mutate it). */
    using ProbeFn = std::function<double()>;

    TimeSeriesRecorder(Simulator* sim, TimeSeriesOptions options = {});

    TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
    TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

    /**
     * Register an instantaneous channel: each tick stores the probe's
     * current value. Register every channel before start().
     */
    void addProbe(std::string name, ProbeFn probe);

    /**
     * Register a cumulative channel: the probe returns a monotonic
     * total (a counter, accumulated busy seconds, ...) and each tick
     * stores the per-second rate over the elapsed interval.
     */
    void addCounterRate(std::string name, ProbeFn cumulative);

    /** Begin periodic sampling (first tick one interval from now). */
    void start();

    /**
     * Take one final sample at the current time when it lies past the
     * last periodic tick (the trailing partial interval of a run).
     */
    void finalize();

    /** @return the number of committed samples. */
    std::size_t numSamples() const { return times_.size(); }

    /** @return sampling ticks discarded because columns were full. */
    std::uint64_t droppedSamples() const { return dropped_; }

    /** @return channel names in registration order. */
    std::vector<std::string> channelNames() const;

    /** @return the sample times (simulated microseconds). */
    const std::vector<Time>& times() const { return times_; }

    /** @return the value column of channel @p name (empty if unknown). */
    const std::vector<double>& values(const std::string& name) const;

    /**
     * @return the CSV export: header `t_s,<channel>,...` followed by
     * one row per sample. Deterministic for same-seed runs.
     */
    std::string toCsv() const;

    /**
     * @return the JSON export: sampling metadata, the time column and
     * one `{"name":..., "values":[...]}` object per channel, in
     * registration order.
     */
    std::string toJson() const;

    /** Write toCsv() to @p path. @return false on IO failure. */
    bool writeCsv(const std::string& path) const;

    /** Write toJson() to @p path. @return false on IO failure. */
    bool writeJson(const std::string& path) const;

  private:
    struct Channel {
        std::string name;
        ProbeFn probe;
        bool rate = false;      ///< derive per-second rate of deltas
        double last_total = 0.0;
        std::vector<double> samples;
    };

    void sample(Time now);

    Simulator* sim_;
    TimeSeriesOptions options_;
    std::vector<Channel> channels_;
    std::vector<Time> times_;
    Time last_sample_ = kNoTime;
    std::uint64_t dropped_ = 0;
    bool started_ = false;
};

}  // namespace obs
}  // namespace proteus

#endif  // PROTEUS_OBS_TIMESERIES_H_
