/**
 * @file
 * Trace and metrics exporters (DESIGN.md, "Observability"):
 *
 *  - Chrome trace-event JSON (loadable in chrome://tracing and
 *    Perfetto): one complete ("X") event per span, timestamped in
 *    simulated microseconds. The output contains only integer fields
 *    derived from simulated time and deterministic counters, so it is
 *    byte-identical across runs with the same seed.
 *  - Plain-JSON metrics dump of a MetricsRegistry (counters, gauges,
 *    histogram summaries with p50/p95/p99).
 */

#ifndef PROTEUS_OBS_EXPORTER_H_
#define PROTEUS_OBS_EXPORTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace proteus {
namespace obs {

/**
 * Optional name tables rendered into the trace's otherData so offline
 * tools (proteus_trace) can label raw ids. Built by the caller (the
 * obs layer knows nothing about registries); empty tables emit
 * nothing, keeping the no-names output byte-identical.
 */
struct TraceNameTables {
    /** families[f] = family name. */
    std::vector<std::string> families;
    /** variants[v] = variant name. */
    std::vector<std::string> variants;
    struct Pipeline {
        std::string name;
        /** Stage families in topological order. */
        std::vector<std::uint32_t> families;
        /** Stage names, same order. */
        std::vector<std::string> stages;
    };
    /** pipelines[p] = stage map of pipeline p. */
    std::vector<Pipeline> pipelines;
    /** Tail-exemplar query ids (sorted); empty emits nothing. */
    std::vector<std::uint64_t> tail_exemplars;
};

/** @return the Chrome trace-event JSON document for @p tracer. */
std::string toChromeTraceJson(const Tracer& tracer);

/** As above, with @p names rendered into otherData. */
std::string toChromeTraceJson(const Tracer& tracer,
                              const TraceNameTables& names);

/**
 * Write toChromeTraceJson(@p tracer) to @p path.
 * @return false when the file cannot be written.
 */
bool writeChromeTrace(const Tracer& tracer, const std::string& path);

/** As above, with @p names rendered into otherData. */
bool writeChromeTrace(const Tracer& tracer,
                      const TraceNameTables& names,
                      const std::string& path);

/** @return a JSON dump of every metric in @p registry. */
std::string toMetricsJson(const MetricsRegistry& registry);

/**
 * Write toMetricsJson(@p registry) to @p path.
 * @return false when the file cannot be written.
 */
bool writeMetricsJson(const MetricsRegistry& registry,
                      const std::string& path);

}  // namespace obs
}  // namespace proteus

#endif  // PROTEUS_OBS_EXPORTER_H_
