/**
 * @file
 * Trace and metrics exporters (DESIGN.md, "Observability"):
 *
 *  - Chrome trace-event JSON (loadable in chrome://tracing and
 *    Perfetto): one complete ("X") event per span, timestamped in
 *    simulated microseconds. The output contains only integer fields
 *    derived from simulated time and deterministic counters, so it is
 *    byte-identical across runs with the same seed.
 *  - Plain-JSON metrics dump of a MetricsRegistry (counters, gauges,
 *    histogram summaries with p50/p95/p99).
 */

#ifndef PROTEUS_OBS_EXPORTER_H_
#define PROTEUS_OBS_EXPORTER_H_

#include <string>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace proteus {
namespace obs {

/** @return the Chrome trace-event JSON document for @p tracer. */
std::string toChromeTraceJson(const Tracer& tracer);

/**
 * Write toChromeTraceJson(@p tracer) to @p path.
 * @return false when the file cannot be written.
 */
bool writeChromeTrace(const Tracer& tracer, const std::string& path);

/** @return a JSON dump of every metric in @p registry. */
std::string toMetricsJson(const MetricsRegistry& registry);

/**
 * Write toMetricsJson(@p registry) to @p path.
 * @return false when the file cannot be written.
 */
bool writeMetricsJson(const MetricsRegistry& registry,
                      const std::string& path);

}  // namespace obs
}  // namespace proteus

#endif  // PROTEUS_OBS_EXPORTER_H_
