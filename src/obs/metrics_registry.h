/**
 * @file
 * Metrics registry: named counters, gauges and log-bucketed latency
 * histograms with percentile readout (DESIGN.md, "Observability").
 *
 * The registry owns its metrics and hands out stable pointers; hot
 * paths resolve a metric once at setup and afterwards update it with
 * plain arithmetic — no lookups, no allocation. Metrics are stored in
 * name order so dumps are deterministic.
 */

#ifndef PROTEUS_OBS_METRICS_REGISTRY_H_
#define PROTEUS_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace proteus {
namespace obs {

/** Monotonically increasing event count. */
class Counter
{
  public:
    /** Add @p n to the count. */
    void inc(std::uint64_t n = 1) { value_ += n; }

    /** @return the current count. */
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Point-in-time measurement (last write wins). */
class Gauge
{
  public:
    /** Set the current value. */
    void set(double v) { value_ = v; }

    /** @return the last value set (0 before the first set()). */
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Bucket layout parameters of a Histogram. */
struct HistogramOptions {
    double min_value = 1.0;
    double growth = 1.25;
    int num_buckets = 96;
};

/**
 * Log-bucketed histogram for non-negative values (latencies in
 * microseconds, solver node counts, ...).
 *
 * Bucket 0 holds values below @p min_value; bucket i >= 1 holds values
 * in [min_value * growth^(i-1), min_value * growth^i). With the
 * defaults (1 us lower edge, 25% growth, 96 buckets) the range spans
 * 1 us to ~47 minutes with <= 12.5% quantile error — enough for every
 * latency this system produces. Percentiles interpolate linearly
 * inside the bucket that crosses the requested rank.
 */
class Histogram
{
  public:
    using Options = HistogramOptions;

    explicit Histogram(Options options = {});

    /** Record one sample (negative values clamp to 0). */
    void record(double value);

    /** @return the number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** @return the sum of all samples. */
    double sum() const { return sum_; }

    /** @return the smallest sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** @return the largest sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /** @return the mean sample (0 when empty). */
    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /**
     * @return the approximate p-th percentile (0..100), by linear
     * interpolation inside the crossing bucket; 0 when empty. The
     * estimate is clamped to the observed [min, max].
     */
    double percentile(double p) const;

    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    /** @return per-bucket counts (for exporters). */
    const std::vector<std::uint64_t>& buckets() const { return buckets_; }

    /** @return the inclusive lower edge of bucket @p i. */
    double bucketLowerEdge(int i) const;

  private:
    Options options_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Named metric store. Metrics are created on first access and live as
 * long as the registry; returned pointers are stable.
 *
 * Thread contract: creation (counter/gauge/histogram) is mutex-
 * guarded, so concurrent components may resolve metrics while the
 * registry is shared — e.g. per-shard controller threads registering
 * their channels. *Updates* through the returned pointers are
 * intentionally unsynchronised plain arithmetic: a metric object is
 * owned by exactly one thread (the component that resolved it), which
 * is what keeps the instrumented hot path allocation- and lock-free.
 * The export accessors return references into guarded state and are
 * only meaningful once writers have quiesced (end of run, after
 * worker joins).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /** @return the counter named @p name (created on first use). */
    Counter* counter(const std::string& name);

    /** @return the gauge named @p name (created on first use). */
    Gauge* gauge(const std::string& name);

    /**
     * @return the histogram named @p name (created on first use with
     * @p options; options of an existing histogram are not changed).
     */
    Histogram* histogram(const std::string& name,
                         Histogram::Options options = {});

    /** @return all counters in name order (export; writers quiesced). */
    const std::map<std::string, std::unique_ptr<Counter>>&
    counters() const
    {
        const MutexLock lock(mu_);
        return counters_;
    }

    /** @return all gauges in name order (export; writers quiesced). */
    const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const
    {
        const MutexLock lock(mu_);
        return gauges_;
    }

    /** @return all histograms in name order (export; writers
     *  quiesced). */
    const std::map<std::string, std::unique_ptr<Histogram>>&
    histograms() const
    {
        const MutexLock lock(mu_);
        return histograms_;
    }

  private:
    mutable Mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_
        PROTEUS_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Gauge>> gauges_
        PROTEUS_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Histogram>> histograms_
        PROTEUS_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace proteus

#endif  // PROTEUS_OBS_METRICS_REGISTRY_H_
