#include "obs/lineage.h"

#include <algorithm>
#include <utility>

namespace proteus {
namespace obs {

const char*
toString(SegmentKind kind)
{
    switch (kind) {
      case SegmentKind::Route: return "route";
      case SegmentKind::StageHandoff: return "stage_handoff";
      case SegmentKind::QueueBehindBatch: return "queue_behind_batch";
      case SegmentKind::EpochStall: return "epoch_stall";
      case SegmentKind::BatchFormation: return "batch_formation";
      case SegmentKind::Execution: return "execution";
      case SegmentKind::Stall: return "stall";
    }
    return "unknown";
}

Duration
CriticalPath::segmentSum() const
{
    Duration sum = 0;
    for (const Segment& s : segments)
        sum += s.duration();
    return sum;
}

Duration
BlameRow::total() const
{
    Duration sum = 0;
    for (const Duration d : by_kind)
        sum += d;
    return sum;
}

BlameTables
aggregateBlame(const std::vector<CriticalPath>& paths)
{
    BlameTables tables;
    for (const CriticalPath& path : paths) {
        if (path.family == kInvalidId)
            continue;  // query not found in the trace
        BlameRow& fam = tables.by_family[path.family];
        BlameRow& var = tables.by_variant[path.variant];
        ++fam.queries;
        ++var.queries;
        for (const Segment& s : path.segments) {
            const auto k = static_cast<std::size_t>(s.kind);
            fam.by_kind[k] += s.duration();
            var.by_kind[k] += s.duration();
        }
    }
    return tables;
}

std::vector<std::uint64_t>
TailReservoir::exemplars() const
{
    std::vector<std::uint64_t> out = items_;
    std::sort(out.begin(), out.end());
    return out;
}

LineageIndex::LineageIndex(std::vector<SpanRecord> spans,
                           std::vector<LinkRecord> links)
    : spans_(std::move(spans)), links_(std::move(links))
{
    for (std::size_t i = 0; i < spans_.size(); ++i) {
        const SpanRecord& s = spans_[i];
        switch (s.kind) {
          case SpanKind::Query:
            query_span_[s.id] = i;
            break;
          case SpanKind::Route:
          case SpanKind::Queue:
          case SpanKind::Exec:
            hops_[s.id].push_back(i);
            break;
          case SpanKind::Batch:
            batches_[static_cast<std::int64_t>(s.a)].push_back(
                {s.start, s.end, s.id});
            break;
          case SpanKind::Load:
            loads_[static_cast<std::int64_t>(s.a)].push_back(
                {s.start, s.end, s.id});
            break;
          default:
            break;
        }
    }
    const auto by_time = [this](std::size_t a, std::size_t b) {
        const SpanRecord& sa = spans_[a];
        const SpanRecord& sb = spans_[b];
        if (sa.start != sb.start)
            return sa.start < sb.start;
        if (sa.end != sb.end)
            return sa.end < sb.end;
        return sa.span_id < sb.span_id;
    };
    for (auto& [id, idxs] : hops_)
        std::sort(idxs.begin(), idxs.end(), by_time);
    const auto interval_order = [](const Interval& a, const Interval& b) {
        if (a.start != b.start)
            return a.start < b.start;
        if (a.end != b.end)
            return a.end < b.end;
        return a.id < b.id;
    };
    for (auto& [dev, ivs] : batches_)
        std::sort(ivs.begin(), ivs.end(), interval_order);
    for (auto& [dev, ivs] : loads_)
        std::sort(ivs.begin(), ivs.end(), interval_order);
}

const SpanRecord*
LineageIndex::querySpan(std::uint64_t query) const
{
    const auto it = query_span_.find(query);
    return it == query_span_.end() ? nullptr : &spans_[it->second];
}

void
LineageIndex::appendQueueSegments(Time qs, Time qe, std::int64_t device,
                                  std::vector<Segment>* out) const
{
    // Gather the device's busy intervals (other batches executing,
    // model loads) that overlap the queue wait. Everything they cover
    // was time the query *couldn't* start; the remainder is the
    // batching policy deliberately waiting to form a larger batch.
    struct Busy {
        Interval iv;
        SegmentKind kind;
    };
    std::vector<Busy> busy;
    const auto collect = [&](const std::unordered_map<
                                 std::int64_t, std::vector<Interval>>& m,
                             SegmentKind kind) {
        const auto it = m.find(device);
        if (it == m.end())
            return;
        for (const Interval& iv : it->second) {
            if (iv.start >= qe)
                break;  // sorted by start: nothing later overlaps
            if (iv.end > qs)
                busy.push_back({iv, kind});
        }
    };
    collect(batches_, SegmentKind::QueueBehindBatch);
    collect(loads_, SegmentKind::EpochStall);
    std::sort(busy.begin(), busy.end(), [](const Busy& a, const Busy& b) {
        if (a.iv.start != b.iv.start)
            return a.iv.start < b.iv.start;
        if (a.iv.end != b.iv.end)
            return a.iv.end < b.iv.end;
        if (a.kind != b.kind)
            return static_cast<int>(a.kind) < static_cast<int>(b.kind);
        return a.iv.id < b.iv.id;
    });

    Time cursor = qs;
    for (const Busy& b : busy) {
        if (b.iv.end <= cursor)
            continue;
        const Time bs = std::max(cursor, b.iv.start);
        if (bs >= qe)
            break;
        if (bs > cursor)
            out->push_back({cursor, bs, device, 0,
                            SegmentKind::BatchFormation});
        const Time be = std::min(qe, b.iv.end);
        out->push_back({bs, be, device, b.iv.id, b.kind});
        cursor = be;
    }
    if (cursor < qe)
        out->push_back({cursor, qe, device, 0,
                        SegmentKind::BatchFormation});
}

CriticalPath
LineageIndex::analyze(std::uint64_t query) const
{
    CriticalPath path;
    const SpanRecord* q = querySpan(query);
    if (q == nullptr)
        return path;
    path.query = query;
    path.arrival = q->start;
    path.end = q->end;
    path.family = q->a;
    path.variant = q->b;
    path.status = q->v0;
    path.pipeline = q->v2 == 0 ? -1 : q->v2 - 1;

    Time cursor = path.arrival;
    const auto hit = hops_.find(query);
    if (hit != hops_.end()) {
        for (const std::size_t idx : hit->second) {
            const SpanRecord& h = spans_[idx];
            if (h.start > cursor) {
                // Interval no hop span explains: requeue back-off,
                // drop wait, or spans lost to ring wraparound.
                const Time ge = std::min(h.start, path.end);
                if (ge > cursor) {
                    path.segments.push_back(
                        {cursor, ge, -1, 0, SegmentKind::Stall});
                    cursor = ge;
                }
            }
            const Time hs = std::max(cursor, h.start);
            const Time he = std::min(path.end, h.end);
            if (he <= hs)
                continue;
            switch (h.kind) {
              case SpanKind::Route:
                // v0 = stage+1 for pipeline hops: stage >= 1 means
                // this admission is a cross-stage handoff.
                path.segments.push_back(
                    {hs, he, -1,
                     h.v0 > 0 ? static_cast<std::uint64_t>(h.v0 - 1)
                              : 0,
                     h.v0 >= 2 ? SegmentKind::StageHandoff
                               : SegmentKind::Route});
                break;
              case SpanKind::Queue:
                appendQueueSegments(hs, he, h.v0, &path.segments);
                break;
              case SpanKind::Exec:
                path.segments.push_back(
                    {hs, he, h.v0,
                     h.parent_kind == SpanKind::Batch ? h.parent_id : 0,
                     SegmentKind::Execution});
                break;
              default:
                break;
            }
            cursor = he;
        }
    }
    if (cursor < path.end) {
        path.segments.push_back(
            {cursor, path.end, -1, 0, SegmentKind::Stall});
    }
    return path;
}

std::vector<std::uint64_t>
LineageIndex::slowestQueries(std::size_t n) const
{
    std::vector<std::pair<Duration, std::uint64_t>> order;
    order.reserve(query_span_.size());
    for (const auto& [id, idx] : query_span_)
        order.push_back({spans_[idx].duration(), id});
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });
    if (order.size() > n)
        order.resize(n);
    std::vector<std::uint64_t> out;
    out.reserve(order.size());
    for (const auto& [dur, id] : order)
        out.push_back(id);
    return out;
}

}  // namespace obs
}  // namespace proteus
