#include "obs/slo_monitor.h"

#include <cmath>

#include "common/logging.h"

namespace proteus {
namespace obs {

SloMonitor::SloMonitor(Simulator* sim, SloMonitorOptions options)
    : sim_(sim), options_(options)
{
    PROTEUS_ASSERT(options_.buckets >= 1, "slo monitor needs >= 1 bucket");
    PROTEUS_ASSERT(options_.window > 0, "slo window must be positive");
    PROTEUS_ASSERT(options_.budget > 0.0, "slo budget must be positive");
    bucket_width_ =
        options_.window / static_cast<Duration>(options_.buckets);
    if (bucket_width_ <= 0)
        bucket_width_ = 1;
}

void
SloMonitor::setRegistry(MetricsRegistry* registry)
{
    if (registry == nullptr) {
        raised_counter_ = nullptr;
        cleared_counter_ = nullptr;
        return;
    }
    raised_counter_ = registry->counter("slo.alarms_raised");
    cleared_counter_ = registry->counter("slo.alarms_cleared");
}

SloMonitor::FamilyState&
SloMonitor::state(FamilyId family)
{
    FamilyState& st = families_[family];
    if (st.ring.empty())
        st.ring.resize(options_.buckets);
    return st;
}

void
SloMonitor::advance(FamilyState* st, Time now)
{
    const std::int64_t slot = now / bucket_width_;
    if (st->head_slot < 0) {
        st->head_slot = slot;
        return;
    }
    if (slot <= st->head_slot)
        return;
    const std::int64_t steps = slot - st->head_slot;
    if (steps >= static_cast<std::int64_t>(options_.buckets)) {
        // The whole window has elapsed; drop everything at once.
        for (Bucket& b : st->ring)
            b = Bucket{};
        st->win_completed = 0;
        st->win_violated = 0;
        st->head_slot = slot;
        return;
    }
    for (std::int64_t s = st->head_slot + 1; s <= slot; ++s) {
        Bucket& b = st->ring[static_cast<std::size_t>(
            s % static_cast<std::int64_t>(options_.buckets))];
        st->win_completed -= b.completed;
        st->win_violated -= b.violated;
        b = Bucket{};
    }
    st->head_slot = slot;
}

double
SloMonitor::ratioOf(const FamilyState& st) const
{
    if (st.win_completed == 0)
        return 0.0;
    return static_cast<double>(st.win_violated) /
           static_cast<double>(st.win_completed);
}

void
SloMonitor::updateAlarm(FamilyId family, FamilyState* st, Time now)
{
    const double burn = ratioOf(*st) / options_.budget;
    bool crossed = false;
    if (!st->alarm) {
        if (burn >= options_.burn_high &&
            st->win_completed >= options_.min_count) {
            st->alarm = true;
            ++alarms_raised_;
            if (raised_counter_ != nullptr)
                raised_counter_->inc();
            crossed = true;
        }
    } else if (burn < options_.burn_low) {
        st->alarm = false;
        ++alarms_cleared_;
        if (cleared_counter_ != nullptr)
            cleared_counter_->inc();
        crossed = true;
    }
    if (crossed && tracer_ != nullptr) {
        SpanRecord span;
        span.kind = SpanKind::SloAlarm;
        span.start = now;
        span.end = now;
        span.id = alarms_raised_ + alarms_cleared_;
        span.a = family;
        span.v0 = st->alarm ? 1 : 0;
        span.v1 = static_cast<std::int64_t>(std::lround(burn * 1000.0));
        span.v2 = static_cast<std::int64_t>(st->win_completed);
        tracer_->record(span);
    }
}

void
SloMonitor::onOutcome(FamilyId family, bool violated)
{
    const Time now = sim_->now();
    FamilyState& st = state(family);
    advance(&st, now);
    Bucket& b = st.ring[static_cast<std::size_t>(
        st.head_slot % static_cast<std::int64_t>(options_.buckets))];
    ++b.completed;
    ++st.win_completed;
    if (violated) {
        ++b.violated;
        ++st.win_violated;
    }
    updateAlarm(family, &st, now);
}

double
SloMonitor::violationRatio(FamilyId family)
{
    const Time now = sim_->now();
    FamilyState& st = state(family);
    advance(&st, now);
    updateAlarm(family, &st, now);
    return ratioOf(st);
}

double
SloMonitor::burnRate(FamilyId family)
{
    return violationRatio(family) / options_.budget;
}

bool
SloMonitor::alarmActive(FamilyId family)
{
    const Time now = sim_->now();
    FamilyState& st = state(family);
    advance(&st, now);
    updateAlarm(family, &st, now);
    return st.alarm;
}

std::uint64_t
SloMonitor::windowCompleted(FamilyId family)
{
    const Time now = sim_->now();
    FamilyState& st = state(family);
    advance(&st, now);
    return st.win_completed;
}

}  // namespace obs
}  // namespace proteus
