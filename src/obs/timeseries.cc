#include "obs/timeseries.h"

#include <cstdio>
#include <fstream>

namespace proteus {
namespace obs {

namespace {

void
appendNumber(std::string* out, double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out->append(buf);
}

}  // namespace

TimeSeriesRecorder::TimeSeriesRecorder(Simulator* sim,
                                       TimeSeriesOptions options)
    : sim_(sim), options_(options)
{
    if (options_.sample_interval <= 0)
        options_.sample_interval = seconds(1.0);
    times_.reserve(options_.capacity);
}

void
TimeSeriesRecorder::addProbe(std::string name, ProbeFn probe)
{
    Channel ch;
    ch.name = std::move(name);
    ch.probe = std::move(probe);
    ch.rate = false;
    ch.samples.reserve(options_.capacity);
    channels_.push_back(std::move(ch));
}

void
TimeSeriesRecorder::addCounterRate(std::string name, ProbeFn cumulative)
{
    Channel ch;
    ch.name = std::move(name);
    ch.probe = std::move(cumulative);
    ch.rate = true;
    ch.samples.reserve(options_.capacity);
    channels_.push_back(std::move(ch));
}

void
TimeSeriesRecorder::start()
{
    if (started_)
        return;
    started_ = true;
    last_sample_ = sim_->now();
    // Prime the cumulative baselines so the first tick reports the
    // rate over its own interval, not since time zero.
    for (Channel& ch : channels_) {
        if (ch.rate)
            ch.last_total = ch.probe();
    }
    sim_->schedulePeriodic(options_.sample_interval,
                           [this] { sample(sim_->now()); });
}

void
TimeSeriesRecorder::finalize()
{
    if (!started_)
        return;
    if (sim_->now() > last_sample_)
        sample(sim_->now());
}

void
TimeSeriesRecorder::sample(Time now)
{
    if (times_.size() >= options_.capacity) {
        ++dropped_;
        return;
    }
    const double dt = toSeconds(now - last_sample_);
    times_.push_back(now);
    for (Channel& ch : channels_) {
        double v = ch.probe();
        if (ch.rate) {
            const double delta = v - ch.last_total;
            ch.last_total = v;
            v = dt > 0.0 ? delta / dt : 0.0;
        }
        ch.samples.push_back(v);
    }
    last_sample_ = now;
}

std::vector<std::string>
TimeSeriesRecorder::channelNames() const
{
    std::vector<std::string> names;
    names.reserve(channels_.size());
    for (const Channel& ch : channels_)
        names.push_back(ch.name);
    return names;
}

const std::vector<double>&
TimeSeriesRecorder::values(const std::string& name) const
{
    static const std::vector<double> kEmpty;
    for (const Channel& ch : channels_) {
        if (ch.name == name)
            return ch.samples;
    }
    return kEmpty;
}

std::string
TimeSeriesRecorder::toCsv() const
{
    std::string out;
    out.reserve(64 + times_.size() * (channels_.size() + 1) * 8);
    out += "t_s";
    for (const Channel& ch : channels_) {
        out += ',';
        out += ch.name;
    }
    out += '\n';
    for (std::size_t i = 0; i < times_.size(); ++i) {
        appendNumber(&out, toSeconds(times_[i]));
        for (const Channel& ch : channels_) {
            out += ',';
            appendNumber(&out, ch.samples[i]);
        }
        out += '\n';
    }
    return out;
}

std::string
TimeSeriesRecorder::toJson() const
{
    std::string out;
    out.reserve(128 + times_.size() * (channels_.size() + 1) * 10);
    out += "{\n  \"sample_interval_s\": ";
    appendNumber(&out, toSeconds(options_.sample_interval));
    out += ",\n  \"samples\": ";
    appendNumber(&out, static_cast<double>(times_.size()));
    out += ",\n  \"dropped_samples\": ";
    appendNumber(&out, static_cast<double>(dropped_));
    out += ",\n  \"t_s\": [";
    for (std::size_t i = 0; i < times_.size(); ++i) {
        if (i)
            out += ',';
        appendNumber(&out, toSeconds(times_[i]));
    }
    out += "],\n  \"channels\": [\n";
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        const Channel& ch = channels_[c];
        out += "    {\"name\": \"";
        out += ch.name;
        out += "\", \"values\": [";
        for (std::size_t i = 0; i < ch.samples.size(); ++i) {
            if (i)
                out += ',';
            appendNumber(&out, ch.samples[i]);
        }
        out += "]}";
        if (c + 1 < channels_.size())
            out += ',';
        out += '\n';
    }
    out += "  ]\n}\n";
    return out;
}

bool
TimeSeriesRecorder::writeCsv(const std::string& path) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    const std::string body = toCsv();
    f.write(body.data(), static_cast<std::streamsize>(body.size()));
    return static_cast<bool>(f);
}

bool
TimeSeriesRecorder::writeJson(const std::string& path) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    const std::string body = toJson();
    f.write(body.data(), static_cast<std::streamsize>(body.size()));
    return static_cast<bool>(f);
}

}  // namespace obs
}  // namespace proteus
