#include "obs/exporter.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace proteus {
namespace obs {

namespace {

/** Process-id lanes grouping the trace tracks in the viewer. */
enum : int { kPidQueries = 1, kPidWorkers = 2, kPidController = 3 };

void
appendU64(std::string* out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    *out += buf;
}

void
appendI64(std::string* out, std::int64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    *out += buf;
}

void
appendArg(std::string* out, const char* key, std::int64_t v,
          bool* first)
{
    if (!*first)
        *out += ',';
    *first = false;
    *out += '"';
    *out += key;
    *out += "\":";
    appendI64(out, v);
}

/** Append the kind-specific args object of @p s. */
void
appendArgs(std::string* out, const SpanRecord& s)
{
    bool first = true;
    *out += "\"args\":{";
    // Lineage: stable span id always; the typed causal parent only
    // when one exists, so root spans carry no dead fields.
    appendArg(out, "sid", static_cast<std::int64_t>(s.span_id), &first);
    if (s.parent_id != 0) {
        appendArg(out, "pk", static_cast<std::int64_t>(s.parent_kind),
                  &first);
        appendArg(out, "pid", static_cast<std::int64_t>(s.parent_id),
                  &first);
    }
    switch (s.kind) {
      case SpanKind::Query:
        appendArg(out, "qid", static_cast<std::int64_t>(s.id), &first);
        appendArg(out, "family", s.a, &first);
        appendArg(out, "variant",
                  s.b == kInvalidId ? -1 : static_cast<std::int64_t>(s.b),
                  &first);
        appendArg(out, "status", s.v0, &first);
        appendArg(out, "device", s.v1, &first);
        // Pipeline label only for pipeline queries (v2 = pipeline+1):
        // single-family traces stay byte-identical.
        if (s.v2 != 0)
            appendArg(out, "pipeline", s.v2 - 1, &first);
        break;
      case SpanKind::Route:
        appendArg(out, "qid", static_cast<std::int64_t>(s.id), &first);
        appendArg(out, "family", s.a, &first);
        if (s.v0 != 0)  // stage label (v0 = stage+1) for pipelines
            appendArg(out, "stage", s.v0 - 1, &first);
        break;
      case SpanKind::Queue:
      case SpanKind::Exec:
        appendArg(out, "qid", static_cast<std::int64_t>(s.id), &first);
        appendArg(out, "family", s.a, &first);
        appendArg(out, "variant",
                  s.b == kInvalidId ? -1 : static_cast<std::int64_t>(s.b),
                  &first);
        appendArg(out, "device", s.v0, &first);
        if (s.v1 != 0)  // stage label (v1 = stage+1) for pipelines
            appendArg(out, "stage", s.v1 - 1, &first);
        break;
      case SpanKind::Batch:
        appendArg(out, "batch", static_cast<std::int64_t>(s.id), &first);
        appendArg(out, "device", s.a, &first);
        appendArg(out, "variant", s.b, &first);
        appendArg(out, "size", s.v0, &first);
        break;
      case SpanKind::Load:
        appendArg(out, "device", s.a, &first);
        appendArg(out, "variant", s.b, &first);
        break;
      case SpanKind::Solve:
        appendArg(out, "decision", static_cast<std::int64_t>(s.id),
                  &first);
        appendArg(out, "nodes", s.v0, &first);
        appendArg(out, "simplex_iters", s.v1, &first);
        appendArg(out, "gap_ppm", s.v2, &first);
        break;
      case SpanKind::Apply:
        appendArg(out, "decision", static_cast<std::int64_t>(s.id),
                  &first);
        appendArg(out, "plans", s.v0, &first);
        break;
      case SpanKind::Alarm:
        appendArg(out, "family", s.a, &first);
        break;
      case SpanKind::SloAlarm:
        appendArg(out, "family", s.a, &first);
        appendArg(out, "raised", s.v0, &first);
        appendArg(out, "burn_milli", s.v1, &first);
        appendArg(out, "window_completed", s.v2, &first);
        break;
    }
    *out += '}';
}

/** Viewer lane of @p s: queries by family, work by device. */
void
appendPidTid(std::string* out, const SpanRecord& s)
{
    int pid = kPidController;
    std::int64_t tid = 0;
    switch (s.kind) {
      case SpanKind::Query:
      case SpanKind::Route:
        pid = kPidQueries;
        tid = s.a;
        break;
      case SpanKind::Queue:
      case SpanKind::Exec:
        pid = kPidWorkers;
        tid = s.v0;
        break;
      case SpanKind::Batch:
      case SpanKind::Load:
        pid = kPidWorkers;
        tid = s.a;
        break;
      case SpanKind::Solve:
      case SpanKind::Apply:
        pid = kPidController;
        tid = 0;
        break;
      case SpanKind::Alarm:
      case SpanKind::SloAlarm:
        pid = kPidController;
        tid = 1;
        break;
    }
    *out += "\"pid\":";
    appendI64(out, pid);
    *out += ",\"tid\":";
    appendI64(out, tid);
}

/** Append @p s as a JSON string (full RFC 8259 escaping). */
void
appendJsonString(std::string* out, const std::string& s)
{
    *out += '"';
    for (char c : s) {
        switch (c) {
          case '"': *out += "\\\""; break;
          case '\\': *out += "\\\\"; break;
          case '\n': *out += "\\n"; break;
          case '\t': *out += "\\t"; break;
          case '\r': *out += "\\r"; break;
          case '\b': *out += "\\b"; break;
          case '\f': *out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                *out += buf;
            } else {
                *out += c;
            }
        }
    }
    *out += '"';
}

void
appendNameArray(std::string* out, const char* key,
                const std::vector<std::string>& names)
{
    *out += ",\"";
    *out += key;
    *out += "\":[";
    bool first = true;
    for (const std::string& name : names) {
        if (!first)
            *out += ',';
        first = false;
        appendJsonString(out, name);
    }
    *out += ']';
}

}  // namespace

std::string
toChromeTraceJson(const Tracer& tracer, const TraceNameTables& names)
{
    std::string out;
    out.reserve(tracer.size() * 128 + 256);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first_event = true;
    for (const SpanRecord& s : tracer.spans()) {
        if (!first_event)
            out += ',';
        first_event = false;
        out += "{\"name\":\"";
        out += toString(s.kind);
        out += "\",\"cat\":\"proteus\",\"ph\":\"X\",\"ts\":";
        appendI64(&out, s.start);
        out += ",\"dur\":";
        appendI64(&out, s.end - s.start);
        out += ',';
        appendPidTid(&out, s);
        out += ',';
        appendArgs(&out, s);
        out += '}';
    }
    out += "],\"links\":[";
    bool first_link = true;
    for (const LinkRecord& l : tracer.links()) {
        if (!first_link)
            out += ',';
        first_link = false;
        out += "{\"k\":\"";
        out += toString(l.kind);
        out += "\",\"ts\":";
        appendI64(&out, l.at);
        out += ",\"from\":";
        appendU64(&out, l.from);
        out += ",\"to\":";
        appendU64(&out, l.to);
        out += ",\"aux\":";
        appendI64(&out, l.aux);
        out += '}';
    }
    out += "],\"otherData\":{\"spans_recorded\":";
    appendU64(&out, tracer.recorded());
    out += ",\"spans_dropped\":";
    appendU64(&out, tracer.dropped());
    out += ",\"links_recorded\":";
    appendU64(&out, tracer.linksRecorded());
    out += ",\"links_dropped\":";
    appendU64(&out, tracer.linksDropped());
    // Name tables (only when provided): id -> name maps and the
    // pipeline stage layout, so offline tools can label raw ids.
    if (!names.families.empty())
        appendNameArray(&out, "families", names.families);
    if (!names.variants.empty())
        appendNameArray(&out, "variants", names.variants);
    if (!names.pipelines.empty()) {
        out += ",\"pipelines\":[";
        bool first = true;
        for (const TraceNameTables::Pipeline& p : names.pipelines) {
            if (!first)
                out += ',';
            first = false;
            out += "{\"name\":";
            appendJsonString(&out, p.name);
            out += ",\"families\":[";
            bool ff = true;
            for (std::uint32_t f : p.families) {
                if (!ff)
                    out += ',';
                ff = false;
                appendU64(&out, f);
            }
            out += ']';
            appendNameArray(&out, "stages", p.stages);
            out += '}';
        }
        out += ']';
    }
    if (!names.tail_exemplars.empty()) {
        out += ",\"tail_exemplars\":[";
        bool first = true;
        for (const std::uint64_t qid : names.tail_exemplars) {
            if (!first)
                out += ',';
            first = false;
            appendU64(&out, qid);
        }
        out += ']';
    }
    out += "}}";
    return out;
}

std::string
toChromeTraceJson(const Tracer& tracer)
{
    return toChromeTraceJson(tracer, TraceNameTables{});
}

bool
writeChromeTrace(const Tracer& tracer, const TraceNameTables& names,
                 const std::string& path)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    const std::string doc = toChromeTraceJson(tracer, names);
    f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
    return static_cast<bool>(f);
}

bool
writeChromeTrace(const Tracer& tracer, const std::string& path)
{
    return writeChromeTrace(tracer, TraceNameTables{}, path);
}

namespace {

void
appendDouble(std::string* out, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    *out += buf;
}

}  // namespace

std::string
toMetricsJson(const MetricsRegistry& registry)
{
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : registry.counters()) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += name;
        out += "\":";
        appendU64(&out, c->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : registry.gauges()) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += name;
        out += "\":";
        appendDouble(&out, g->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : registry.histograms()) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += name;
        out += "\":{\"count\":";
        appendU64(&out, h->count());
        out += ",\"sum\":";
        appendDouble(&out, h->sum());
        out += ",\"min\":";
        appendDouble(&out, h->min());
        out += ",\"mean\":";
        appendDouble(&out, h->mean());
        out += ",\"max\":";
        appendDouble(&out, h->max());
        out += ",\"p50\":";
        appendDouble(&out, h->p50());
        out += ",\"p95\":";
        appendDouble(&out, h->p95());
        out += ",\"p99\":";
        appendDouble(&out, h->p99());
        out += '}';
    }
    out += "}}";
    return out;
}

bool
writeMetricsJson(const MetricsRegistry& registry, const std::string& path)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    const std::string doc = toMetricsJson(registry);
    f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
    return static_cast<bool>(f);
}

}  // namespace obs
}  // namespace proteus
