/**
 * @file
 * Per-query span tracing (DESIGN.md, "Observability").
 *
 * A span is one timed stage of work on the simulated timeline: a
 * query's route/queue/execution stages, one executed batch, a model
 * load, or a controller decision. Spans are fixed-size records written
 * into a preallocated ring buffer — recording never allocates, and all
 * payloads are integers keyed by simulated time, so the trace of a run
 * is byte-identical across repetitions with the same seed.
 *
 * Spans form a causal lineage graph, not just a flat list: every
 * record carries a stable span id plus a typed causal parent (kind +
 * domain id, e.g. an Exec span's parent is the Batch that executed
 * it), and emission sites additionally record typed cross-links
 * (LinkRecord) into a second preallocated ring — query→batch-joined,
 * batch→device, batch→controller-epoch, pipeline stage handoffs and
 * query→query queued-behind edges. Offline tools reconstruct the
 * critical path of any query from the two rings alone.
 *
 * The tracer is off by default: every instrumented component holds a
 * `Tracer*` that is nullptr unless ObsOptions::enabled is set, so the
 * disabled hot path costs one pointer test.
 */

#ifndef PROTEUS_OBS_TRACE_H_
#define PROTEUS_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sync.h"
#include "common/types.h"

namespace proteus {
namespace obs {

/** Observability configuration carried inside SystemConfig. */
struct ObsOptions {
    /** Master switch: span tracing + registry instrumentation. */
    bool enabled = false;
    /** Ring-buffer capacity in spans (oldest overwritten on wrap). */
    std::size_t ring_capacity = 1 << 16;
    /** Lineage link ring capacity (0 = same as ring_capacity). */
    std::size_t link_capacity = 0;
    /** Tail-exemplar reservoir size (seeded; SLO-violating queries). */
    std::size_t tail_exemplars = 32;

    /** Time-series sampling period on the simulated clock. */
    Duration sample_interval = seconds(1.0);
    /** Preallocated samples per time-series channel. */
    std::size_t timeseries_capacity = 1 << 12;

    /** SLO monitor sliding-window length. */
    Duration slo_window = seconds(30.0);
    /** Buckets the window is divided into (eviction granularity). */
    std::size_t slo_buckets = 30;
    /** Error budget: tolerated violation ratio within the window. */
    double slo_budget = 0.02;
    /** Burn rate at/above which an alarm is raised. */
    double slo_burn_high = 1.0;
    /** Burn rate below which a raised alarm clears (hysteresis). */
    double slo_burn_low = 0.5;
    /** Minimum completions in the window before alarms may raise. */
    std::uint64_t slo_min_count = 20;
};

/**
 * The kind of work a span covers. Kinds form the nesting hierarchy:
 * Route/Queue/Exec spans of a query nest inside its Query span (same
 * id); Exec spans nest inside the Batch span of the executing device;
 * Solve/Apply spans belong to one controller decision (same id).
 */
enum class SpanKind : std::uint8_t {
    Query,  ///< arrival → terminal state; a=family, b=variant, v0=status, v1=device
    Route,  ///< arrival → admission at the router; a=family
    Queue,  ///< worker enqueue → batch formation (or drop); a=family, b=variant, v0=device
    Exec,   ///< batch start → completion, per query; a=family, b=variant, v0=device
    Batch,  ///< one executed batch; a=device, b=variant, v0=batch size
    Load,   ///< model load on a device; a=device, b=variant
    Solve,  ///< decision compute → plan ready; v0=B&B nodes, v1=simplex iters, v2=gap ppm
    Apply,  ///< instant: a plan took effect; v0=plans applied so far
    Alarm,  ///< instant: burst alarm raised by a monitor; a=family
    SloAlarm,  ///< instant: SLO burn-rate threshold crossing; a=family, v0=raised(1)/cleared(0), v1=burn rate ×1000, v2=window completions
};

/** @return a short stable name for @p kind ("query", "queue", ...). */
const char* toString(SpanKind kind);

/**
 * Typed cross-links of the lineage graph. Links reference domain ids
 * (query id, batch number, decision number, device id): domain ids
 * are stable before the referenced span is recorded, so producers can
 * link forward in causality without knowing span ids.
 */
enum class LinkKind : std::uint8_t {
    QueryInBatch,  ///< from=query id, to=batch it joined; aux=device
    BatchOnDevice,  ///< from=batch number, to=device that executed it
    BatchOnEpoch,  ///< from=batch number, to=decision whose plan sized it
    StageHandoff,  ///< from=query id, to=next stage index; aux=pipeline
    QueuedBehind,  ///< from=query id, to=query immediately ahead; aux=device
};

/** @return a short stable name ("query_in_batch", ...) for @p kind. */
const char* toString(LinkKind kind);

/** One typed lineage edge, fixed-size and trivially copyable. */
struct LinkRecord {
    Time at = 0;  ///< simulated time the edge was established
    std::uint64_t from = 0;
    std::uint64_t to = 0;
    std::int64_t aux = 0;
    LinkKind kind = LinkKind::QueryInBatch;
};

/**
 * One recorded span. Fixed-size, trivially copyable; field meaning is
 * kind-specific (see SpanKind). Unused fields keep their defaults.
 *
 * Lineage: span_id is assigned by Tracer::record (monotonic from 1,
 * stable across ring wraparound). The causal parent is typed by
 * domain id — (parent_kind, parent_id) names the parent span by its
 * own id field, not by span_id, because parents (e.g. the terminal
 * Query span) are usually recorded after their children. parent_id
 * == 0 means root (domain ids are 1-based where linked).
 */
struct SpanRecord {
    Time start = 0;
    Time end = 0;
    std::uint64_t id = 0;  ///< query id, batch number or decision number
    std::uint64_t span_id = 0;  ///< stable record sequence (1-based)
    std::uint64_t parent_id = 0;  ///< domain id of parent (0 = root)
    std::int64_t v0 = 0;
    std::int64_t v1 = 0;
    std::int64_t v2 = 0;
    std::uint32_t a = kInvalidId;
    std::uint32_t b = kInvalidId;
    SpanKind kind = SpanKind::Query;
    SpanKind parent_kind = SpanKind::Query;  ///< valid when parent_id != 0

    /** @return span length on the simulated timeline. */
    Duration duration() const { return end - start; }

    /** @return true when @p inner lies within this span's interval. */
    bool
    contains(const SpanRecord& inner) const
    {
        return start <= inner.start && inner.end <= end;
    }
};

/**
 * Preallocated span + link ring buffers. Recording is O(1),
 * allocation-free and deterministic; once full, the oldest record is
 * overwritten and counted as dropped. Span ids keep counting across
 * wraparound, so retained spans keep their stable ids.
 *
 * The rings are mutex-guarded so per-shard controller threads (and
 * the sweep worker pool) can share one tracer: record() takes one
 * uncontended lock, still no allocation. Records carry simulated
 * time, so interleaving across threads never changes exported bytes —
 * the exporters sort by timeline, not arrival.
 */
class Tracer
{
  public:
    /**
     * @param capacity span ring size (>= 1).
     * @param link_capacity link ring size (0 = same as @p capacity).
     */
    explicit Tracer(std::size_t capacity, std::size_t link_capacity = 0);

    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /**
     * Append one span (overwrites the oldest when full). The stored
     * copy gets the next stable span id; @p span itself is untouched.
     */
    void
    record(const SpanRecord& span)
    {
        const MutexLock lock(mu_);
        ring_[next_] = span;
        ring_[next_].span_id = ++recorded_;
        next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
    }

    /** Append one lineage edge (overwrites the oldest when full). */
    void
    recordLink(const LinkRecord& link)
    {
        const MutexLock lock(mu_);
        links_[link_next_] = link;
        link_next_ =
            link_next_ + 1 == links_.size() ? 0 : link_next_ + 1;
        ++links_recorded_;
    }

    /** @return every retained span, oldest first (unwraps the ring). */
    std::vector<SpanRecord> spans() const;

    /** @return every retained link, oldest first (unwraps the ring). */
    std::vector<LinkRecord> links() const;

    /** @return total record() calls over the tracer's lifetime. */
    std::uint64_t
    recorded() const
    {
        const MutexLock lock(mu_);
        return recorded_;
    }

    /** @return spans lost to ring wraparound. */
    std::uint64_t
    dropped() const
    {
        const MutexLock lock(mu_);
        return droppedLocked();
    }

    /** @return spans currently retained. */
    std::size_t
    size() const
    {
        const MutexLock lock(mu_);
        return sizeLocked();
    }

    /** @return total recordLink() calls over the tracer's lifetime. */
    std::uint64_t
    linksRecorded() const
    {
        const MutexLock lock(mu_);
        return links_recorded_;
    }

    /** @return links lost to ring wraparound. */
    std::uint64_t
    linksDropped() const
    {
        const MutexLock lock(mu_);
        return links_recorded_ > links_.size()
                   ? links_recorded_ - links_.size()
                   : 0;
    }

    /** @return ring capacity in spans (immutable after construction). */
    std::size_t capacity() const { return capacity_; }

    /** @return link ring capacity (immutable after construction). */
    std::size_t linkCapacity() const { return link_capacity_; }

  private:
    std::uint64_t
    droppedLocked() const PROTEUS_REQUIRES(mu_)
    {
        return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
    }

    std::size_t
    sizeLocked() const PROTEUS_REQUIRES(mu_)
    {
        return recorded_ < ring_.size()
                   ? static_cast<std::size_t>(recorded_)
                   : ring_.size();
    }

    std::size_t
    linkSizeLocked() const PROTEUS_REQUIRES(mu_)
    {
        return links_recorded_ < links_.size()
                   ? static_cast<std::size_t>(links_recorded_)
                   : links_.size();
    }

    mutable Mutex mu_;
    std::size_t capacity_ = 0;
    std::size_t link_capacity_ = 0;
    std::vector<SpanRecord> ring_ PROTEUS_GUARDED_BY(mu_);
    std::size_t next_ PROTEUS_GUARDED_BY(mu_) = 0;
    std::uint64_t recorded_ PROTEUS_GUARDED_BY(mu_) = 0;
    std::vector<LinkRecord> links_ PROTEUS_GUARDED_BY(mu_);
    std::size_t link_next_ PROTEUS_GUARDED_BY(mu_) = 0;
    std::uint64_t links_recorded_ PROTEUS_GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace proteus

#endif  // PROTEUS_OBS_TRACE_H_
