/**
 * @file
 * Analytic latency / memory cost model for model variants on devices.
 *
 * Substitutes for profiling real ONNX models on real hardware (see
 * DESIGN.md). Batch latency is affine in the batch size with a
 * device-specific amortization factor:
 *
 *   latency_ms(d, m, b) = overhead(d)
 *                       + (gflops(m) / thru(d)) * (1 + (b-1) * eff(d))
 *
 * Memory: weights occupy 4 bytes/parameter; activations add a
 * per-item footprint that grows with model size. A variant whose
 * weights exceed device memory cannot be hosted at all (paper §6.7:
 * the heaviest models fit only the largest-memory accelerators).
 */

#ifndef PROTEUS_MODELS_COST_MODEL_H_
#define PROTEUS_MODELS_COST_MODEL_H_

#include "cluster/device.h"
#include "common/types.h"
#include "models/model.h"

namespace proteus {

/** Deterministic analytic cost model. */
class CostModel
{
  public:
    /**
     * @param cluster source of device-type parameters (must outlive
     *        the cost model).
     * @param registry source of variant specs (must outlive it too).
     */
    CostModel(const Cluster& cluster, const ModelRegistry& registry)
        : cluster_(&cluster), registry_(&registry)
    {}

    /** Batch-processing latency in milliseconds. */
    double latencyMs(DeviceTypeId type, VariantId v, int batch) const;

    /** Batch-processing latency as a simulation Duration. */
    Duration latency(DeviceTypeId type, VariantId v, int batch) const;

    /** Weight footprint of a variant in MB. */
    double weightsMb(VariantId v) const;

    /** Per-batched-item activation footprint in MB. */
    double activationMb(VariantId v) const;

    /** Model-load (variant swap) time on a device type. */
    Duration loadTime(DeviceTypeId type, VariantId v) const;

    /**
     * Largest batch that fits in device memory next to the weights;
     * 0 when the weights alone do not fit.
     */
    int maxMemoryBatch(DeviceTypeId type, VariantId v) const;

  private:
    const Cluster* cluster_;
    const ModelRegistry* registry_;
};

}  // namespace proteus

#endif  // PROTEUS_MODELS_COST_MODEL_H_
