#include "models/profiler.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace proteus {

namespace {

/**
 * Anchor latency for a family's SLO: the batch-1 latency of its
 * fastest variant on the anchor device type (or the slowest type when
 * unspecified, which is CPU-like by construction).
 */
Duration
sloAnchorLatency(const ModelRegistry& registry, const Cluster& cluster,
                 const CostModel& cost, FamilyId f,
                 DeviceTypeId anchor)
{
    Duration best = std::numeric_limits<Duration>::max();
    for (VariantId v : registry.variantsOf(f)) {
        if (anchor != kInvalidId) {
            best = std::min(best, cost.latency(anchor, v, 1));
            continue;
        }
        // No anchor type given: use the slowest device type for this
        // variant, which matches "fastest variant that can run on a
        // CPU" in spirit for CPU-less clusters.
        Duration worst_type = 0;
        for (DeviceTypeId t = 0; t < cluster.numTypes(); ++t)
            worst_type = std::max(worst_type, cost.latency(t, v, 1));
        best = std::min(best, worst_type);
    }
    return best;
}

}  // namespace

ProfileStore
profileModels(const ModelRegistry& registry, const Cluster& cluster,
              const CostModel& cost, const ProfilerOptions& options)
{
    PROTEUS_ASSERT(options.slo_multiplier > 0.0, "bad SLO multiplier");
    PROTEUS_ASSERT(options.max_batch_cap >= 1, "bad batch cap");

    ProfileStore store(registry.numVariants(), cluster.numTypes());

    std::vector<Duration> slos(registry.numFamilies());
    for (FamilyId f = 0; f < registry.numFamilies(); ++f) {
        Duration anchor = sloAnchorLatency(registry, cluster, cost, f,
                                           options.slo_anchor_type);
        slos[f] = static_cast<Duration>(
            static_cast<double>(anchor) * options.slo_multiplier);
    }
    store.setSlos(std::move(slos));

    for (VariantId v = 0; v < registry.numVariants(); ++v) {
        FamilyId f = registry.familyOf(v);
        const Duration budget = store.slo(f) / 2;  // Nexus half-SLO rule
        for (DeviceTypeId t = 0; t < cluster.numTypes(); ++t) {
            BatchProfile& prof = store.mutableGet(v, t);
            int mem_cap = cost.maxMemoryBatch(t, v);
            int cap = std::min(options.max_batch_cap, mem_cap);
            prof.latency.reserve(static_cast<std::size_t>(
                std::max(cap, 1)));
            int max_ok = 0;
            for (int b = 1; b <= std::max(cap, 1); ++b) {
                Duration lat = cost.latency(t, v, b);
                prof.latency.push_back(lat);
                if (b <= cap && lat <= budget)
                    max_ok = b;
            }
            prof.max_batch = max_ok;
            if (max_ok >= 1) {
                prof.peak_qps = static_cast<double>(max_ok) /
                                toSeconds(prof.latencyFor(max_ok));
            }
        }
    }
    return store;
}

}  // namespace proteus
