#include "models/profiler.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace proteus {

namespace {

/**
 * Profile one (variant, device type) pair under @p budget (half the
 * family SLO): rebuild the batch-latency curve, the largest SLO-safe
 * batch and the peak throughput. Shared by the initial profiling pass
 * and per-family re-profiling (pipeline stage budgets).
 */
void
profileVariantType(BatchProfile* prof, const CostModel& cost,
                   VariantId v, DeviceTypeId t, Duration budget,
                   int max_batch_cap)
{
    prof->latency.clear();
    const int mem_cap = cost.maxMemoryBatch(t, v);
    const int cap = std::min(max_batch_cap, mem_cap);
    prof->latency.reserve(static_cast<std::size_t>(std::max(cap, 1)));
    int max_ok = 0;
    for (int b = 1; b <= std::max(cap, 1); ++b) {
        Duration lat = cost.latency(t, v, b);
        prof->latency.push_back(lat);
        if (b <= cap && lat <= budget)
            max_ok = b;
    }
    prof->max_batch = max_ok;
    prof->peak_qps = 0.0;
    if (max_ok >= 1) {
        prof->peak_qps = static_cast<double>(max_ok) /
                         toSeconds(prof->latencyFor(max_ok));
    }
}

}  // namespace

Duration
variantAnchorLatency(const Cluster& cluster, const CostModel& cost,
                     VariantId v, DeviceTypeId anchor)
{
    if (anchor != kInvalidId)
        return cost.latency(anchor, v, 1);
    // No anchor type given: use the slowest device type for this
    // variant, which matches "fastest variant that can run on a CPU"
    // in spirit for CPU-less clusters.
    Duration worst_type = 0;
    for (DeviceTypeId t = 0; t < cluster.numTypes(); ++t)
        worst_type = std::max(worst_type, cost.latency(t, v, 1));
    return worst_type;
}

Duration
variantFloorLatency(const Cluster& cluster, const CostModel& cost,
                    VariantId v)
{
    // Best placement across types: a stage budget b can serve this
    // variant at batch 1 iff b >= this floor on SOME device type.
    Duration best = std::numeric_limits<Duration>::max();
    for (DeviceTypeId t = 0; t < cluster.numTypes(); ++t) {
        if (cost.maxMemoryBatch(t, v) < 1)
            continue;  // weights alone do not fit this type
        best = std::min(best, cost.latency(t, v, 1));
    }
    PROTEUS_ASSERT(best < std::numeric_limits<Duration>::max(),
                   "variant ", v, " fits no device type");
    return best;
}

Duration
familyAnchorLatency(const ModelRegistry& registry,
                    const Cluster& cluster, const CostModel& cost,
                    FamilyId f, DeviceTypeId anchor)
{
    Duration best = std::numeric_limits<Duration>::max();
    for (VariantId v : registry.variantsOf(f)) {
        best = std::min(best,
                        variantAnchorLatency(cluster, cost, v, anchor));
    }
    return best;
}

ProfileStore
profileModels(const ModelRegistry& registry, const Cluster& cluster,
              const CostModel& cost, const ProfilerOptions& options)
{
    PROTEUS_ASSERT(options.slo_multiplier > 0.0, "bad SLO multiplier");
    PROTEUS_ASSERT(options.max_batch_cap >= 1, "bad batch cap");

    ProfileStore store(registry.numVariants(), cluster.numTypes());

    std::vector<Duration> slos(registry.numFamilies());
    for (FamilyId f = 0; f < registry.numFamilies(); ++f) {
        Duration anchor = familyAnchorLatency(registry, cluster, cost,
                                              f, options.slo_anchor_type);
        slos[f] = static_cast<Duration>(
            static_cast<double>(anchor) * options.slo_multiplier);
    }
    store.setSlos(std::move(slos));

    for (VariantId v = 0; v < registry.numVariants(); ++v) {
        FamilyId f = registry.familyOf(v);
        const Duration budget = store.slo(f) / 2;  // Nexus half-SLO rule
        for (DeviceTypeId t = 0; t < cluster.numTypes(); ++t) {
            profileVariantType(&store.mutableGet(v, t), cost, v, t,
                               budget, options.max_batch_cap);
        }
    }
    return store;
}

void
reprofileFamilySlo(ProfileStore* store, const ModelRegistry& registry,
                   const Cluster& cluster, const CostModel& cost,
                   FamilyId family, Duration slo, int max_batch_cap)
{
    PROTEUS_ASSERT(slo > 0, "bad SLO for family ", family);
    PROTEUS_ASSERT(max_batch_cap >= 1, "bad batch cap");
    store->setSlo(family, slo);
    const Duration budget = slo / 2;  // Nexus half-SLO rule
    for (VariantId v : registry.variantsOf(family)) {
        for (DeviceTypeId t = 0; t < cluster.numTypes(); ++t) {
            profileVariantType(&store->mutableGet(v, t), cost, v, t,
                               budget, max_batch_cap);
        }
    }
}

}  // namespace proteus
