/**
 * @file
 * Model families, variants and the model registry.
 *
 * One model family corresponds to one query type / registered
 * application (paper §6.1.2): e.g. the "resnet" family serves
 * classification queries with variants ResNet-18 … ResNet-152.
 * Accuracy is normalized within each family so the most accurate
 * variant scores 100 (paper §6.1.2; normalized accuracies span roughly
 * 80–100).
 */

#ifndef PROTEUS_MODELS_MODEL_H_
#define PROTEUS_MODELS_MODEL_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace proteus {

/** Static description of one model variant. */
struct VariantSpec {
    std::string name;
    /** Compute cost of one inference in GFLOPs. */
    double gflops = 1.0;
    /** Parameter count in millions (drives the memory footprint). */
    double params_m = 1.0;
    /** Accuracy normalized to the best variant of the family (<=100). */
    double accuracy = 100.0;
};

/** Static description of one model family (= one query type). */
struct FamilySpec {
    std::string name;
    std::string task;
    std::vector<VariantSpec> variants;
};

/**
 * Registry of all families and variants with stable integer ids.
 * Mirrors the paper's controller-side Model Registry module (§3).
 */
class ModelRegistry
{
  public:
    /** Register a family and its variants. @return the family id. */
    FamilyId registerFamily(const FamilySpec& spec);

    /** @return the number of registered families (query types). */
    std::size_t numFamilies() const { return families_.size(); }

    /** @return the total number of registered variants. */
    std::size_t numVariants() const { return variants_.size(); }

    /** @return the family spec for @p f. */
    const FamilySpec& family(FamilyId f) const;

    /** @return the variant spec for global variant id @p v. */
    const VariantSpec& variant(VariantId v) const;

    /** @return the family a variant belongs to. */
    FamilyId familyOf(VariantId v) const;

    /** @return global variant ids of family @p f, accuracy-ascending. */
    const std::vector<VariantId>& variantsOf(FamilyId f) const;

    /** @return the variant of @p f with the lowest accuracy. */
    VariantId leastAccurate(FamilyId f) const;

    /** @return the variant of @p f with the highest accuracy. */
    VariantId mostAccurate(FamilyId f) const;

    /** @return id of the family named @p name; panics if unknown. */
    FamilyId findFamily(const std::string& name) const;

  private:
    std::vector<FamilySpec> families_;
    std::vector<VariantSpec> variants_;
    std::vector<FamilyId> family_of_;
    std::vector<std::vector<VariantId>> variants_of_;
};

/**
 * The paper's Table 3 model zoo: 9 families, 46 variants, with
 * FLOPs/parameters from the public model cards and accuracies
 * normalized within each family.
 */
std::vector<FamilySpec> paperModelZoo();

/** A reduced zoo (3 CV families) for fast tests and examples. */
std::vector<FamilySpec> miniModelZoo();

/** Build a registry preloaded with paperModelZoo(). */
ModelRegistry paperRegistry();

}  // namespace proteus

#endif  // PROTEUS_MODELS_MODEL_H_
