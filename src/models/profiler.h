/**
 * @file
 * Model profiler and profile store.
 *
 * The profiler precomputes, for every (variant, device type) pair, the
 * batch-latency curve, the largest SLO-safe batch size and the peak
 * throughput capacity P(d, m, q) used by the resource manager:
 *
 *   - SLO rule (paper §4, after Nexus): batch processing latency must
 *     not exceed half the family's latency SLO, because a query that
 *     just misses a batch waits at most one extra batch.
 *   - Memory rule: the batch must fit next to the weights.
 *   - P = max_batch / latency(max_batch).
 *
 * The store is the paper's in-memory key-value map keyed by
 * (model variant, device type, batch size) with O(1) lookup (§3,
 * Model Profiler); here it is a flat vector indexed by variant and
 * device type.
 */

#ifndef PROTEUS_MODELS_PROFILER_H_
#define PROTEUS_MODELS_PROFILER_H_

#include <vector>

#include "cluster/device.h"
#include "common/types.h"
#include "models/cost_model.h"
#include "models/model.h"

namespace proteus {

/** Profile of one variant on one device type. */
struct BatchProfile {
    /** Latencies for batch sizes 1..max_batch_considered (index b-1). */
    std::vector<Duration> latency;
    /** Largest batch meeting both the SLO and the memory rule. */
    int max_batch = 0;
    /** Peak serving throughput in QPS at max_batch; 0 if unusable. */
    double peak_qps = 0.0;

    /** @return true when the variant can serve on this device type. */
    bool usable() const { return max_batch >= 1; }

    /** @return the processing latency for @p batch (1-based). */
    Duration
    latencyFor(int batch) const
    {
        return latency[static_cast<std::size_t>(batch - 1)];
    }
};

/** All (variant x device type) profiles plus per-family SLOs. */
class ProfileStore
{
  public:
    ProfileStore(std::size_t num_variants, std::size_t num_types)
        : num_types_(num_types),
          profiles_(num_variants * num_types)
    {}

    /** @return profile of variant @p v on device type @p t. */
    const BatchProfile&
    get(VariantId v, DeviceTypeId t) const
    {
        return profiles_[v * num_types_ + t];
    }

    /** Mutable access for the profiler. */
    BatchProfile&
    mutableGet(VariantId v, DeviceTypeId t)
    {
        return profiles_[v * num_types_ + t];
    }

    /** Per-family latency SLO. */
    Duration slo(FamilyId f) const { return slos_[f]; }

    /** @return all per-family SLOs. */
    const std::vector<Duration>& slos() const { return slos_; }

    /** Set the per-family SLO table (profiler use). */
    void setSlos(std::vector<Duration> slos) { slos_ = std::move(slos); }

    /** Overwrite one family's SLO (pipeline stage budgets). */
    void
    setSlo(FamilyId f, Duration slo)
    {
        slos_[f] = slo;
    }

  private:
    std::size_t num_types_;
    std::vector<BatchProfile> profiles_;
    std::vector<Duration> slos_;
};

/** Profiler configuration. */
struct ProfilerOptions {
    /**
     * SLO multiplier: the family SLO is this multiple of the batch-1
     * latency of its fastest variant on a CPU-class device (paper
     * §6.1.2 uses 2x; §6.6 sweeps 1x..3.5x).
     */
    double slo_multiplier = 2.0;
    /**
     * Device type whose batch-1 latency anchors the SLO. The paper
     * anchors on the CPU; kInvalidId means "slowest type for that
     * variant".
     */
    DeviceTypeId slo_anchor_type = kInvalidId;
    /** Upper cap on considered batch sizes. */
    int max_batch_cap = 64;
};

/**
 * Build the complete profile store for @p registry on @p cluster.
 * Mirrors the controller's Model Profiler module (§3).
 */
ProfileStore profileModels(const ModelRegistry& registry,
                           const Cluster& cluster,
                           const CostModel& cost,
                           const ProfilerOptions& options = {});

/**
 * Batch-1 latency of variant @p v on the anchor device type, or on
 * its slowest type when @p anchor is kInvalidId. The quantity SLOs
 * are multiples of; the pipeline planner prices variants with it.
 */
Duration variantAnchorLatency(const Cluster& cluster,
                              const CostModel& cost, VariantId v,
                              DeviceTypeId anchor);

/**
 * Anchor latency of family @p f: the minimum variantAnchorLatency()
 * over its variants (the single-family SLO is a multiple of this).
 */
/**
 * @return the batch-1 latency of @p v on its BEST device type (among
 * types whose memory fits the weights): the smallest stage budget for
 * which the variant is usable anywhere in the cluster. The pipeline
 * planner uses this feasibility floor; the SLO convention keeps using
 * the slowest-type anchor above.
 */
Duration variantFloorLatency(const Cluster& cluster,
                             const CostModel& cost, VariantId v);

Duration familyAnchorLatency(const ModelRegistry& registry,
                             const Cluster& cluster,
                             const CostModel& cost, FamilyId f,
                             DeviceTypeId anchor);

/**
 * Re-derive @p family's profiles under a new SLO @p slo: the batching
 * budget (half-SLO rule), SLO-safe max batch and peak QPS of every
 * (variant, device type) pair are recomputed in place. Used by the
 * pipeline planner, whose per-stage budgets replace the profiler's
 * single-family SLOs before the first allocation pass.
 */
void reprofileFamilySlo(ProfileStore* store,
                        const ModelRegistry& registry,
                        const Cluster& cluster, const CostModel& cost,
                        FamilyId family, Duration slo,
                        int max_batch_cap);

}  // namespace proteus

#endif  // PROTEUS_MODELS_PROFILER_H_
