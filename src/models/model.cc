#include "models/model.h"

#include <algorithm>

#include "common/logging.h"

namespace proteus {

FamilyId
ModelRegistry::registerFamily(const FamilySpec& spec)
{
    PROTEUS_ASSERT(!spec.variants.empty(), "family ", spec.name,
                   " has no variants");
    FamilyId f = static_cast<FamilyId>(families_.size());
    families_.push_back(spec);
    std::vector<VariantId> ids;
    for (const auto& v : spec.variants) {
        PROTEUS_ASSERT(v.accuracy > 0.0 && v.accuracy <= 100.0 + 1e-9,
                       "variant ", v.name,
                       " accuracy must be normalized to (0, 100]");
        PROTEUS_ASSERT(v.gflops > 0.0 && v.params_m > 0.0,
                       "variant ", v.name, " needs positive cost");
        VariantId id = static_cast<VariantId>(variants_.size());
        variants_.push_back(v);
        family_of_.push_back(f);
        ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end(), [this](VariantId a, VariantId b) {
        return variants_[a].accuracy < variants_[b].accuracy;
    });
    variants_of_.push_back(std::move(ids));
    return f;
}

const FamilySpec&
ModelRegistry::family(FamilyId f) const
{
    PROTEUS_ASSERT(f < families_.size(), "unknown family ", f);
    return families_[f];
}

const VariantSpec&
ModelRegistry::variant(VariantId v) const
{
    PROTEUS_ASSERT(v < variants_.size(), "unknown variant ", v);
    return variants_[v];
}

FamilyId
ModelRegistry::familyOf(VariantId v) const
{
    PROTEUS_ASSERT(v < family_of_.size(), "unknown variant ", v);
    return family_of_[v];
}

const std::vector<VariantId>&
ModelRegistry::variantsOf(FamilyId f) const
{
    PROTEUS_ASSERT(f < variants_of_.size(), "unknown family ", f);
    return variants_of_[f];
}

VariantId
ModelRegistry::leastAccurate(FamilyId f) const
{
    return variantsOf(f).front();
}

VariantId
ModelRegistry::mostAccurate(FamilyId f) const
{
    return variantsOf(f).back();
}

FamilyId
ModelRegistry::findFamily(const std::string& name) const
{
    for (std::size_t f = 0; f < families_.size(); ++f) {
        if (families_[f].name == name)
            return static_cast<FamilyId>(f);
    }
    PROTEUS_PANIC("unknown family name ", name);
}

std::vector<FamilySpec>
paperModelZoo()
{
    // Table 3. FLOPs / parameter counts follow the public model cards;
    // accuracies are normalized to the best variant of each family
    // (paper §6.1.2: "This normalized accuracy varies from 80% to 100%").
    std::vector<FamilySpec> zoo;

    zoo.push_back({"resnet", "classification", {
        {"resnet-18", 1.8, 11.7, 89.1},
        {"resnet-34", 3.6, 21.8, 92.3},
        {"resnet-50", 4.1, 25.6, 95.3},
        {"resnet-101", 7.8, 44.5, 98.1},
        {"resnet-152", 11.6, 60.2, 100.0},
    }});

    zoo.push_back({"densenet", "classification", {
        {"densenet-121", 2.9, 8.0, 93.8},
        {"densenet-169", 3.4, 14.2, 95.9},
        {"densenet-201", 4.3, 20.0, 97.9},
        {"densenet-161", 7.8, 28.7, 100.0},
    }});

    zoo.push_back({"resnest", "classification", {
        {"resnest-14", 2.7, 10.6, 87.4},
        {"resnest-26", 3.6, 17.0, 91.9},
        {"resnest-50", 5.4, 27.5, 96.0},
        {"resnest-269", 77.0, 111.0, 100.0},
    }});

    zoo.push_back({"efficientnet", "classification", {
        {"efficientnet-b0", 0.39, 5.3, 91.5},
        {"efficientnet-b1", 0.70, 7.8, 93.8},
        {"efficientnet-b2", 1.0, 9.2, 95.0},
        {"efficientnet-b3", 1.8, 12.0, 96.8},
        {"efficientnet-b4", 4.2, 19.0, 98.3},
        {"efficientnet-b5", 9.9, 30.0, 99.2},
        {"efficientnet-b6", 19.0, 43.0, 99.6},
        {"efficientnet-b7", 37.0, 66.0, 100.0},
    }});

    zoo.push_back({"mobilenet", "classification", {
        {"mobilenet-0.25", 0.041, 0.5, 81.0},
        {"mobilenet-0.5", 0.149, 1.3, 90.2},
        {"mobilenet-0.75", 0.317, 2.6, 96.9},
        {"mobilenet-1.0", 0.569, 4.2, 100.0},
    }});

    zoo.push_back({"yolov5", "object-detection", {
        {"yolov5-n", 4.5, 1.9, 80.0},
        {"yolov5-s", 16.5, 7.2, 85.0},
        {"yolov5-m", 49.0, 21.2, 92.0},
        {"yolov5-l", 109.0, 46.5, 97.0},
        {"yolov5-x", 205.0, 86.7, 100.0},
    }});

    zoo.push_back({"bert", "sentiment-analysis", {
        {"bert-tiny", 1.2, 4.4, 80.0},
        {"bert-mini", 2.6, 11.3, 84.0},
        {"bert-small", 5.5, 29.1, 88.0},
        {"bert-medium", 11.0, 41.7, 91.0},
        {"albert-base", 22.0, 12.0, 92.5},
        {"bert-base", 22.0, 110.0, 93.0},
        {"albert-large", 78.0, 18.0, 95.0},
        {"roberta-base", 22.0, 125.0, 95.5},
        {"bert-large", 78.0, 340.0, 96.0},
        {"albert-xlarge", 140.0, 60.0, 97.5},
        {"albert-xxlarge", 300.0, 235.0, 99.0},
        {"roberta-large", 78.0, 355.0, 100.0},
    }});

    zoo.push_back({"t5", "translation", {
        {"t5-small", 7.0, 60.0, 81.5},
        {"t5-base", 25.0, 220.0, 86.0},
        {"t5-large", 80.0, 770.0, 91.0},
        {"t5-3b", 350.0, 3000.0, 96.0},
        {"t5-11b", 1300.0, 11000.0, 100.0},
    }});

    zoo.push_back({"gpt2", "question-answering", {
        {"gpt2-base", 30.0, 124.0, 85.0},
        {"gpt2-medium", 90.0, 355.0, 91.0},
        {"gpt2-large", 180.0, 774.0, 96.0},
        {"gpt2-xl", 380.0, 1500.0, 100.0},
    }});

    return zoo;
}

std::vector<FamilySpec>
miniModelZoo()
{
    auto zoo = paperModelZoo();
    // resnet, efficientnet, mobilenet: indexes 0, 3, 4.
    return {zoo[0], zoo[3], zoo[4]};
}

ModelRegistry
paperRegistry()
{
    ModelRegistry reg;
    for (const auto& fam : paperModelZoo())
        reg.registerFamily(fam);
    return reg;
}

}  // namespace proteus
