#include "models/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace proteus {

double
CostModel::latencyMs(DeviceTypeId type, VariantId v, int batch) const
{
    PROTEUS_ASSERT(batch >= 1, "batch must be >= 1, got ", batch);
    const DeviceTypeInfo& dev = cluster_->typeInfo(type);
    const VariantSpec& var = registry_->variant(v);
    double item_ms = var.gflops / dev.gflops_per_ms;
    return dev.overhead_ms +
           item_ms * (1.0 + (batch - 1) * dev.batch_efficiency);
}

Duration
CostModel::latency(DeviceTypeId type, VariantId v, int batch) const
{
    return millis(latencyMs(type, v, batch));
}

double
CostModel::weightsMb(VariantId v) const
{
    // fp32 weights: 4 bytes per parameter.
    return registry_->variant(v).params_m * 4.0;
}

double
CostModel::activationMb(VariantId v) const
{
    // Empirical: activation working set grows with compute size.
    return 50.0 + 10.0 * registry_->variant(v).gflops;
}

Duration
CostModel::loadTime(DeviceTypeId type, VariantId v) const
{
    // Weights stream from page cache over PCIe (~10 GB/s) plus a
    // fixed session warm-up. Containers are pre-pulled, as in the
    // paper's testbed (its simulator treats container startup as a
    // background effect outside the model, §6.2).
    (void)type;
    double mb = weightsMb(v);
    return millis(100.0 + 0.1 * mb);
}

int
CostModel::maxMemoryBatch(DeviceTypeId type, VariantId v) const
{
    const DeviceTypeInfo& dev = cluster_->typeInfo(type);
    double free_mb = dev.memory_mb - weightsMb(v);
    if (free_mb <= 0.0)
        return 0;
    double per_item = activationMb(v);
    return static_cast<int>(free_mb / per_item);
}

}  // namespace proteus
