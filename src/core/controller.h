/**
 * @file
 * Controller: the decoupled control path (paper §3, §4).
 *
 * The controller invokes its Allocator periodically (default every
 * 30 s, as in the paper's evaluation) and on burst alarms raised by
 * the load balancers' monitoring daemons. The allocator's decision
 * latency (e.g. the MILP solve time) is simulated: the new plan takes
 * effect only after that delay, which is what produces the transient
 * SLO violations after sudden bursts in Fig. 5 while keeping the
 * data path unobstructed.
 */

#ifndef PROTEUS_CORE_CONTROLLER_H_
#define PROTEUS_CORE_CONTROLLER_H_

#include <functional>
#include <vector>

#include "common/types.h"
#include "core/allocation.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace proteus {

/** Controller tunables. */
struct ControllerOptions {
    /** Periodic re-allocation interval (paper: 30 s). */
    Duration period = seconds(30.0);
    /** Minimum spacing between consecutive re-allocations. */
    Duration min_interval = seconds(5.0);
};

/** Periodic + alarm-triggered resource-management loop. */
class Controller
{
  public:
    /** Returns the current per-family demand estimate in QPS. */
    using DemandFn = std::function<std::vector<double>()>;
    /** Applies a plan to workers and routers. */
    using ApplyFn = std::function<void(const Allocation&)>;

    Controller(Simulator* sim, Allocator* allocator, DemandFn demand,
               ApplyFn apply, ControllerOptions options = {});

    Controller(const Controller&) = delete;
    Controller& operator=(const Controller&) = delete;

    /**
     * Perform the initial allocation for @p initial_demand (takes
     * effect immediately — systems are provisioned before the trace
     * starts, like the paper's pre-loaded initial allocations) and
     * start the periodic loop.
     */
    void start(const std::vector<double>& initial_demand);

    /** Burst alarm entry point (debounced by min_interval). */
    void requestReallocation();

    /**
     * Failure alarm entry point: capacity changed (device crash or
     * recovery), the plan in force references hardware that no longer
     * matches reality. Unlike burst alarms this is NOT debounced by
     * min_interval — stale capacity must be replanned immediately.
     * If a decision is already pending, a fresh solve is queued to run
     * right after that plan applies (the pending plan was computed
     * against the old cluster and may be infeasible on the survivors).
     */
    void notifyCapacityChange();

    /**
     * Install a probe returning the device failure mask; sampled at
     * every decision and forwarded as AllocationInput::device_down.
     */
    void setAvailabilityProbe(std::function<std::vector<char>()> probe)
    {
        availability_fn_ = std::move(probe);
    }

    /**
     * Attach observability sinks (either may be null). The tracer
     * receives one Solve span per decision (solve start → plan
     * applied, annotated with B&B nodes, simplex iterations and the
     * final gap in ppm) plus an instant Apply span; the registry
     * gets the decision counter and solver wall-time/work histograms
     * (wall time stays out of the trace to keep it deterministic).
     */
    void setObs(obs::Tracer* tracer, obs::MetricsRegistry* registry);

    /** @return the plan currently in force. */
    const Allocation& current() const { return current_; }

    /** @return the number of re-allocations applied so far. */
    int reallocations() const { return reallocations_; }

    /**
     * @return the decision number of the most recently applied plan
     * (0 before any apply). Read inside the apply callback to stamp
     * workers with the epoch that governs them (lineage).
     */
    std::uint64_t appliedDecision() const { return applied_decision_; }

  private:
    void reallocate(bool initial);

    /** Commit the delayed decision staged in the pending_* members. */
    void applyPendingPlan();

    /** Feed the last solve's stats to the registry; @return its seq. */
    std::uint64_t noteSolve(const AllocatorSolveMeta& meta);

    /** Emit the Solve + Apply spans of decision @p decision. */
    void traceDecision(std::uint64_t decision, Time solved_at,
                       const AllocatorSolveMeta& meta);

    Simulator* sim_;
    Allocator* allocator_;
    DemandFn demand_fn_;
    ApplyFn apply_fn_;
    ControllerOptions options_;

    obs::Tracer* tracer_ = nullptr;
    obs::Counter* decisions_ = nullptr;
    obs::Histogram* solve_wall_us_ = nullptr;
    obs::Histogram* solve_nodes_ = nullptr;
    obs::Histogram* solve_iters_ = nullptr;
    obs::Gauge* last_nodes_ = nullptr;
    obs::Gauge* last_iters_ = nullptr;
    /** Last solve's simplex iterations over its work budget (0..1+). */
    obs::Gauge* work_frac_ = nullptr;
    std::uint64_t decision_seq_ = 0;

    Allocation current_;
    std::function<std::vector<char>()> availability_fn_;
    bool has_plan_ = false;
    bool decision_pending_ = false;
    bool resolve_after_apply_ = false;
    Time last_start_ = kNoTime;
    int reallocations_ = 0;
    std::uint64_t applied_decision_ = 0;

    // Staging for the one decision that can be in flight (the MILP's
    // simulated decision delay). Members rather than closure captures
    // so the delayed-apply event stores only `this` — an Allocation is
    // far too big for an inline simulator callback.
    Allocation pending_plan_;
    AllocatorSolveMeta pending_meta_;
    std::uint64_t pending_decision_ = 0;
    Time pending_solved_at_ = kNoTime;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_CONTROLLER_H_
