#include "core/router.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace proteus {

LoadBalancer::LoadBalancer(Simulator* sim, FamilyId family,
                           QueryObserver* observer,
                           Duration monitor_window)
    : sim_(sim),
      family_(family),
      observer_(observer),
      rate_(monitor_window)
{}

void
LoadBalancer::setRouting(const WorkerShare* shares, std::size_t count)
{
    targets_.clear();
    total_weight_ = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        const WorkerShare& s = shares[i];
        if (s.weight <= 0.0)
            continue;
        PROTEUS_ASSERT(s.worker != nullptr, "null routing target");
        targets_.push_back(Target{s.worker, s.weight, 0.0});
        total_weight_ += s.weight;
    }
    PROTEUS_ASSERT(total_weight_ <= 1.0 + 1e-6,
                   "family ", family_, " routed fraction ",
                   total_weight_, " > 1");
    shed_credit_ = 0.0;
}

Worker*
LoadBalancer::pickWorker()
{
    // Smooth weighted round-robin: each target accumulates credit
    // proportional to its weight; the richest *ready* target wins and
    // pays the total weight back. Workers still loading a model are
    // skipped (their queries would wait out the whole load time);
    // when nothing is ready, fall back to the richest target overall
    // so queries queue rather than vanish.
    Target* best = nullptr;
    Target* best_any = nullptr;
    for (auto& t : targets_) {
        t.credit += t.weight;
        if (!best_any || t.credit > best_any->credit)
            best_any = &t;
        if (!t.worker->ready())
            continue;
        if (!best || t.credit > best->credit)
            best = &t;
    }
    if (!best)
        best = best_any;
    if (best)
        best->credit -= total_weight_;
    return best ? best->worker : nullptr;
}

void
LoadBalancer::submit(Query* query)
{
    admit(query, query->arrival, /*is_arrival=*/true);
}

void
LoadBalancer::forward(Query* query)
{
    // The previous stage's completion starts the Route span: the span
    // then covers the cross-stage hand-off gap.
    admit(query, query->completion, /*is_arrival=*/false);
}

void
LoadBalancer::admit(Query* query, Time route_start, bool is_arrival)
{
    PROTEUS_ASSERT(query->family == family_,
                   "query routed to wrong balancer");
    const Time now = sim_->now();
    query->routed_at = now;
    rate_.record(now);
    if (is_arrival && observer_)
        observer_->onArrival(*query);

    // Burst detection (monitoring daemon): demand sustained above the
    // provisioned capacity calls the controller, debounced to once
    // per second.
    if (alarm_ && planned_capacity_ > 0.0) {
        double qps = rate_.rate(now);
        if (qps > planned_capacity_ * alarm_threshold_ &&
            (last_alarm_ == kNoTime || now - last_alarm_ > seconds(1.0))) {
            last_alarm_ = now;
            if (tracer_) {
                obs::SpanRecord s;
                s.kind = obs::SpanKind::Alarm;
                s.start = s.end = now;
                s.a = family_;
                tracer_->record(s);
            }
            alarm_();
        }
    }

    // Load shedding for the un-routed fraction (deterministic).
    shed_credit_ += 1.0 - total_weight_;
    if (shed_credit_ >= 1.0 || targets_.empty()) {
        if (shed_credit_ >= 1.0)
            shed_credit_ -= 1.0;
        query->status = QueryStatus::Dropped;
        query->completion = now;
        ++shed_;
        if (tracer_)
            traceQueryEnd(tracer_, *query);
        if (observer_)
            observer_->onFinished(*query);
        return;
    }

    Worker* worker = pickWorker();
    PROTEUS_ASSERT(worker != nullptr, "no routing target");
    ++routed_;
    if (tracer_) {
        obs::SpanRecord s;
        s.kind = obs::SpanKind::Route;
        s.start = route_start;
        s.end = now;
        s.id = query->id;
        s.parent_id = query->id;
        s.parent_kind = obs::SpanKind::Query;
        s.a = family_;
        if (query->pipeline != kInvalidId)
            s.v0 = static_cast<std::int64_t>(query->stage) + 1;
        tracer_->record(s);
    }
    if (!is_arrival) {
        // Forwarded hop: the stage ahead owns completion from here.
        query->completion = kNoTime;
    }
    worker->enqueue(query);
}

void
LoadBalancer::resubmit(Query* query)
{
    PROTEUS_ASSERT(query->family == family_,
                   "query routed to wrong balancer");
    Worker* worker = pickWorker();
    if (!worker) {
        // No targets at all (plan sheds this family entirely).
        query->status = QueryStatus::Dropped;
        query->completion = sim_->now();
        ++shed_;
        if (tracer_)
            traceQueryEnd(tracer_, *query);
        if (observer_)
            observer_->onFinished(*query);
        return;
    }
    worker->enqueue(query);
}

double
LoadBalancer::windowQps() const
{
    return rate_.rate(sim_->now());
}

void
LoadBalancer::setBurstAlarm(BurstAlarmFn alarm, double threshold)
{
    alarm_ = std::move(alarm);
    alarm_threshold_ = threshold;
}

}  // namespace proteus
