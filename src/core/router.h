/**
 * @file
 * Per-application load balancer (paper §3): a request router that
 * dispatches queries to workers according to the query-assignment
 * policy {y_dq}, plus a monitoring daemon that tracks demand and
 * triggers the controller on bursts.
 *
 * Routing is deterministic smooth weighted round-robin so runs are
 * reproducible and shares converge to the exact MILP weights. When
 * the plan sheds load (routed fraction < 1), the router drops the
 * corresponding fraction of queries at admission, again
 * deterministically via a credit accumulator.
 */

#ifndef PROTEUS_CORE_ROUTER_H_
#define PROTEUS_CORE_ROUTER_H_

#include <functional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "core/query.h"
#include "core/worker.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace proteus {

/** Load balancer for one registered application (query type). */
class LoadBalancer
{
  public:
    /** Invoked when the monitor detects demand beyond capacity. */
    // NOLINTNEXTLINE-PROTEUS(A1): installed once at wiring time, not per-query
    using BurstAlarmFn = std::function<void()>;

    LoadBalancer(Simulator* sim, FamilyId family,
                 QueryObserver* observer,
                 Duration monitor_window = seconds(2.0));

    LoadBalancer(const LoadBalancer&) = delete;
    LoadBalancer& operator=(const LoadBalancer&) = delete;

    /** One routing entry: target worker and its traffic share.
     *  Aggregate (not std::pair) so arena staging can rely on trivial
     *  copyability. */
    struct WorkerShare {
        Worker* worker = nullptr;
        double weight = 0.0;
    };

    /**
     * Install the query-assignment policy for this family. The core
     * form takes a borrowed span so callers can stage shares in
     * per-epoch arena scratch without materialising a vector.
     */
    void setRouting(const WorkerShare* shares, std::size_t count);

    /** Convenience overload for vector-staged shares (tests). */
    void
    setRouting(const std::vector<WorkerShare>& shares)
    {
        setRouting(shares.data(), shares.size());
    }

    /** Admit a query: route it to a worker or shed it. */
    void submit(Query* query);

    /**
     * Admit a query forwarded from an upstream pipeline stage: routed
     * and shed exactly like submit() — forwarded traffic is demand on
     * this family, so it feeds the monitor window and the burst alarm
     * — but without the arrival announcement (the query entered the
     * system once, at its entry stage). The Route span starts at the
     * previous stage's completion, making the cross-stage gap visible
     * to the trace tooling.
     */
    void forward(Query* query);

    /**
     * Route a query that is already in the system (e.g. bounced by a
     * worker during a variant swap); does not count as a new arrival
     * and is never shed.
     */
    void resubmit(Query* query);

    /** @return demand estimate (QPS) over the monitor window. */
    double windowQps() const;

    /** Set the alarm target and threshold for burst detection. */
    void setBurstAlarm(BurstAlarmFn alarm, double threshold);

    /** Attach the span tracer (nullptr = tracing off, the default). */
    void setTracer(obs::Tracer* tracer) { tracer_ = tracer; }

    /**
     * Capacity the current plan provisions for this family (QPS);
     * used by the monitor to detect overload. Also pre-warms the
     * demand window's ring so recording at up to twice the planned
     * rate stays allocation-free.
     */
    void
    setPlannedCapacity(double qps)
    {
        planned_capacity_ = qps;
        rate_.reserveForRate(qps);
    }

    /** @return queries dropped at admission (load shedding). */
    std::uint64_t shed() const { return shed_; }

    /** @return total queries admitted (routed to a worker). */
    std::uint64_t routed() const { return routed_; }

    /** @return the family this balancer serves. */
    FamilyId family() const { return family_; }

  private:
    Worker* pickWorker();
    /** Shared admission path of submit() and forward(). */
    void admit(Query* query, Time route_start, bool is_arrival);

    Simulator* sim_;
    FamilyId family_;
    QueryObserver* observer_;
    obs::Tracer* tracer_ = nullptr;

    struct Target {
        Worker* worker = nullptr;
        double weight = 0.0;
        double credit = 0.0;
    };
    std::vector<Target> targets_;
    double total_weight_ = 0.0;
    double shed_credit_ = 0.0;

    WindowedRate rate_;
    BurstAlarmFn alarm_;
    double alarm_threshold_ = 1.5;
    double planned_capacity_ = 0.0;
    Time last_alarm_ = kNoTime;

    std::uint64_t shed_ = 0;
    std::uint64_t routed_ = 0;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_ROUTER_H_
