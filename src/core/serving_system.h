/**
 * @file
 * ServingSystem: the public façade assembling the full Proteus stack
 * (Fig. 2) on the discrete-event simulator — controller with resource
 * manager, one load balancer per registered application, one worker
 * per device with the configured adaptive-batching policy, and the
 * metrics pipeline.
 *
 * Usage:
 *   Cluster cluster = paperCluster();
 *   ModelRegistry registry = paperRegistry();
 *   SystemConfig config;                       // Proteus defaults
 *   ServingSystem system(&cluster, &registry, config);
 *   RunResult result = system.run(trace);
 *
 * A ServingSystem instance executes exactly one trace.
 */

#ifndef PROTEUS_CORE_SERVING_SYSTEM_H_
#define PROTEUS_CORE_SERVING_SYSTEM_H_

#include <memory>
#include <vector>

#include "cluster/device.h"
#include "common/alloc/frame_arena.h"
#include "common/alloc/object_pool.h"
#include "common/alloc/scratch_vector.h"
#include "core/allocation.h"
#include "core/config.h"
#include "core/controller.h"
#include "core/ilp_allocator.h"
#include "core/router.h"
#include "core/worker.h"
#include "faults/fault_injector.h"
#include "metrics/collector.h"
#include "models/cost_model.h"
#include "models/model.h"
#include "models/profiler.h"
#include "obs/exporter.h"
#include "obs/lineage.h"
#include "obs/metrics_registry.h"
#include "pipeline/pipeline.h"
#include "pipeline/stage_router.h"
#include "obs/slo_monitor.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace proteus {

/** Outcome of one trace-driven run. */
struct RunResult {
    RunSummary summary;
    std::vector<IntervalSnapshot> timeline;
    /** Cumulative per-family counters (Fig. 9 breakdown). */
    std::vector<IntervalCounters> family_totals;
    /** Number of plans applied by the controller. */
    int reallocations = 0;
    /** Mean executed batch size across all workers. */
    double mean_batch_size = 0.0;
    /** Queries shed at the routers (subset of dropped). */
    std::uint64_t shed = 0;
    /** Per-outage fault windows (empty on fault-free runs). */
    std::vector<FaultWindow> fault_windows;
    /** Fault events actually applied by the injector. */
    int faults_injected = 0;
    /** SLO burn-rate alarms raised (0 with observability off). */
    std::uint64_t slo_alarms = 0;
    /** Stage completions forwarded between pipeline stages. */
    std::uint64_t forwarded = 0;
    /** Per-pipeline e2e counters (empty without pipelines). */
    std::vector<PipelineRunStats> pipelines;
};

/** Fully assembled inference-serving system on a simulated cluster. */
class ServingSystem
{
  public:
    /**
     * @param cluster, registry borrowed; must outlive the system.
     */
    ServingSystem(const Cluster* cluster, const ModelRegistry* registry,
                  SystemConfig config = {});

    ServingSystem(const ServingSystem&) = delete;
    ServingSystem& operator=(const ServingSystem&) = delete;
    ~ServingSystem();

    /**
     * Execute @p trace to completion and report metrics.
     *
     * @param planning_demand per-family QPS used for the initial
     *        provisioning (and, for Clipper, the permanent static
     *        plan). Empty = derived from the trace's first minute.
     */
    RunResult run(const Trace& trace,
                  std::vector<double> planning_demand = {});

    /**
     * Staged-run API — run() is beginRun(); advanceTo(horizon);
     * finishRun(). Splitting the phases lets callers (the alloc tests
     * and the events/sec bench) advance the clock in slices and meter
     * a steady window between warm-up and drain.
     *
     * @param trace borrowed; must stay alive until finishRun().
     * @return the drain horizon (trace end + SLO slack).
     */
    Time beginRun(const Trace& trace,
                  std::vector<double> planning_demand = {});

    /** Advance the virtual clock to @p at (clamped to the horizon). */
    void advanceTo(Time at);

    /** Drain, finalize metrics and assemble the result. */
    RunResult finishRun();

    /** @return queries currently live in the pool (in-flight). */
    std::size_t queriesInFlight() const { return query_pool_.in_use(); }

    /** @return the query pool's slot capacity (high-water mark). */
    std::size_t queryPoolCapacity() const
    {
        return query_pool_.capacity();
    }

    /** @return the profile store (Fig. 1 style inspection). */
    const ProfileStore& profiles() const { return profiles_; }

    /** @return the SLO of family @p f. */
    Duration slo(FamilyId f) const { return profiles_.slo(f); }

    /** @return the compiled pipelines (empty without pipelines). */
    const CompiledPipelines& compiledPipelines() const
    {
        return pipelines_;
    }

    /**
     * @return name tables (families, variants, pipeline stage maps)
     * for the trace exporter, so offline tools can label raw ids.
     */
    obs::TraceNameTables traceNames() const;

    /** @return the configured allocator (for overhead stats). */
    Allocator* allocator() { return allocator_.get(); }

    /** @return the plan currently in force. */
    const Allocation& currentPlan() const;

    /** @return the device health tracker (fault inspection). */
    const DeviceHealthTracker& health() const { return health_; }

    /** @return the fault injector (nullptr on fault-free runs). */
    const FaultInjector* faultInjector() const { return injector_.get(); }

    /**
     * @return the span tracer, or nullptr when tracing is disabled
     * (SystemConfig::obs.enabled unset).
     */
    const obs::Tracer* tracer() const { return tracer_.get(); }

    /** @return the metrics registry (always present; empty if off). */
    const obs::MetricsRegistry& metricsRegistry() const
    {
        return obs_registry_;
    }

    /**
     * @return the time-series recorder, or nullptr when observability
     * is disabled (SystemConfig::obs.enabled unset).
     */
    const obs::TimeSeriesRecorder* timeseries() const
    {
        return timeseries_.get();
    }

    /** @return the SLO monitor, or nullptr when observability is off. */
    obs::SloMonitor* sloMonitor() { return slo_monitor_.get(); }

    /** @return the tail-exemplar reservoir (nullptr when obs is off). */
    const obs::TailReservoir* tailReservoir() const
    {
        return tail_reservoir_.get();
    }

  private:
    void applyPlan(const Allocation& plan);
    void injectArrivals();
    void forwardQuery(Query* query);
    void registerTimeSeriesChannels();
    std::unique_ptr<BatchingPolicy> makeBatchingPolicy() const;
    std::unique_ptr<Allocator> makeAllocator();
    std::vector<double> demandEstimate() const;

    const Cluster* cluster_;
    const ModelRegistry* registry_;
    SystemConfig config_;

    Simulator sim_;
    CostModel cost_;
    ProfileStore profiles_;
    /** Compiled pipeline DAGs (empty = single-family serving). */
    CompiledPipelines pipelines_;
    MetricsCollector metrics_;
    obs::MetricsRegistry obs_registry_;
    std::unique_ptr<obs::Tracer> tracer_;
    std::unique_ptr<obs::TimeSeriesRecorder> timeseries_;
    std::unique_ptr<obs::SloMonitor> slo_monitor_;
    /** Seeded reservoir of SLO-violating query ids (tail exemplars). */
    std::unique_ptr<obs::TailReservoir> tail_reservoir_;
    /** Fan-out observer (metrics + SLO monitor) when obs is enabled. */
    std::unique_ptr<QueryObserver> fanout_;
    /** Recycles finished queries into the pool after the sinks ran. */
    std::unique_ptr<QueryObserver> pool_release_;
    /** Outermost observer when pipelines are configured: intercepts
     *  intermediate stage completions before slot release / metrics. */
    std::unique_ptr<StageRouter> stage_router_;
    /** The observer every component reports to. */
    QueryObserver* observer_ = nullptr;

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::unique_ptr<LoadBalancer>> balancers_;
    std::unique_ptr<Allocator> allocator_;
    std::unique_ptr<Controller> controller_;
    DeviceHealthTracker health_;
    std::unique_ptr<FaultInjector> injector_;

    /** Pooled query storage: finished slots recycle instead of the
     *  old grow-only deque, bounding memory on long traces. Ids stay
     *  monotonic via next_query_id_ (byte-identical to the deque). */
    alloc::ObjectPool<Query> query_pool_;
    QueryId next_query_id_ = 0;
    /** Per-epoch staging (routing share lists); reset in applyPlan. */
    alloc::FrameArena epoch_arena_;
    /** Horizon-drain staging (collect → sort by id → finish). */
    alloc::ScratchVector<Query*> drain_scratch_;

    // Staged-run state (beginRun .. finishRun).
    const Trace* active_trace_ = nullptr;
    std::size_t trace_cursor_ = 0;
    Time horizon_ = kNoTime;

    bool first_apply_ = true;
    bool ran_ = false;
    bool finished_ = false;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_SERVING_SYSTEM_H_
