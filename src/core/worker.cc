#include "core/worker.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace proteus {

Worker::Worker(Simulator* sim, const Cluster* cluster, DeviceId device,
               const ModelRegistry* registry, const CostModel* cost,
               const ProfileStore* profiles, QueryObserver* observer,
               RequeueFn requeue, double jitter_frac,
               std::uint64_t jitter_seed)
    : sim_(sim),
      cluster_(cluster),
      device_(device),
      type_(cluster->device(device).type),
      registry_(registry),
      cost_(cost),
      profiles_(profiles),
      observer_(observer),
      requeue_(std::move(requeue)),
      jitter_frac_(jitter_frac),
      rng_(jitter_seed + device * 7919)
{}

void
Worker::setBatchingPolicy(std::unique_ptr<BatchingPolicy> policy)
{
    policy_ = std::move(policy);
}

void
Worker::bounce(Query* query)
{
    if (requeue_) {
        requeue_(query);
        return;
    }
    query->status = QueryStatus::Dropped;
    query->completion = sim_->now();
    query->served_by = device_;
    ++dropped_;
    if (tracer_)
        traceQueryEnd(tracer_, *query);
    if (observer_)
        observer_->onFinished(*query);
}

void
Worker::bounceQueued()
{
    // Park the queue in the reused scratch buffer before bouncing:
    // requeue may synchronously re-enqueue into this (now empty)
    // queue, exactly like the old move-out-and-rebuild did, but
    // without surrendering either container's capacity.
    drain_scratch_.clear();
    while (!queue_.empty()) {
        drain_scratch_.push_back(queue_.front());
        queue_.pop_front();
    }
    for (Query* q : drain_scratch_)
        bounce(q);
    drain_scratch_.clear();
}

void
Worker::hostVariant(std::optional<VariantId> variant, bool instant)
{
    if (failed_)
        return;  // dead hardware loads nothing (stale static plans)
    if (variant == target_ && !loading_)
        return;
    if (variant == target_ && loading_)
        return;  // already loading that variant

    cancelTimer();
    ++load_epoch_;

    // Hand every queued query back for re-routing: the device will be
    // unavailable for the whole model load, which can exceed short
    // SLOs, while a ready replica may still serve them in time.
    bounceQueued();

    target_ = variant;
    if (!variant) {
        loading_ = false;
        return;
    }
    if (instant) {
        loading_ = false;
        if (health_)
            health_->markUp(device_);
        evaluate();
        return;
    }
    loading_ = true;
    const Duration load = cost_->loadTime(type_, *variant);
    const std::uint64_t epoch = load_epoch_;
    if (fail_next_load_) {
        // Armed load failure: the load runs its full course and then
        // fails, leaving the device empty, as a corrupt download or
        // OOM on a real serving node would.
        fail_next_load_ = false;
        sim_->scheduleAfter(load, [this, epoch] {
            if (epoch != load_epoch_)
                return;
            loading_ = false;
            target_.reset();
            ++failed_loads_;
            bounceQueued();
            if (load_failure_alarm_)
                load_failure_alarm_(device_);
        });
        return;
    }
    const Time load_start = sim_->now();
    sim_->scheduleAfter(load, [this, epoch, load_start] {
        if (epoch != load_epoch_)
            return;  // superseded by a newer hostVariant()
        loading_ = false;
        if (tracer_ && target_) {
            obs::SpanRecord s;
            s.kind = obs::SpanKind::Load;
            s.start = load_start;
            s.end = sim_->now();
            s.id = load_epoch_;
            s.parent_id = plan_epoch_;
            s.parent_kind = obs::SpanKind::Apply;
            s.a = device_;
            s.b = *target_;
            tracer_->record(s);
        }
        if (health_)
            health_->markUp(device_);
        evaluate();
    });
}

void
Worker::crash()
{
    if (failed_)
        return;
    failed_ = true;
    ++crashes_;
    cancelTimer();
    ++load_epoch_;  // invalidates any pending load completion
    loading_ = false;
    target_.reset();
    fail_next_load_ = false;

    if (busy_) {
        // Abort the in-flight batch: it never completed, so unwind
        // its accounting and hand the queries back for re-routing.
        sim_->cancel(inflight_event_);
        inflight_event_ = kNoEvent;
        busy_ = false;
        --batches_;
        batched_queries_ -=
            static_cast<std::uint64_t>(inflight_.size());
        for (Query* q : inflight_)
            bounce(q);
        inflight_.clear();
    }
    bounceQueued();
}

void
Worker::recover()
{
    failed_ = false;
}

void
Worker::setStall(double factor, Duration window)
{
    PROTEUS_ASSERT(factor >= 1.0, "stall factor must be >= 1, got ",
                   factor);
    const Time now = sim_->now();
    if (stall_until_ != kNoTime && now < stall_until_) {
        // Overlapping stalls: keep the worst factor, the later end.
        stall_factor_ = std::max(stall_factor_, factor);
        stall_until_ = std::max(stall_until_, now + window);
    } else {
        stall_factor_ = factor;
        stall_until_ = now + window;
    }
}

void
Worker::enqueue(Query* query)
{
    PROTEUS_ASSERT(query != nullptr, "null query");
    if (failed_ || !target_) {
        // Routed to a crashed or empty worker (stale routing during a
        // swap or after a fault): bounce it back for re-routing, or
        // drop if impossible.
        bounce(query);
        return;
    }
    query->enqueued_at = sim_->now();
    if (tracer_) {
        // Queued-behind edge: the query this one waits on directly —
        // the queue tail, or the in-flight batch tail when the queue
        // is empty but the device is executing.
        std::uint64_t ahead = 0;
        if (!queue_.empty())
            ahead = queue_.back()->id;
        else if (busy_ && !inflight_.empty())
            ahead = inflight_[inflight_.size() - 1]->id;
        if (ahead != 0) {
            obs::LinkRecord link;
            link.kind = obs::LinkKind::QueuedBehind;
            link.at = query->enqueued_at;
            link.from = query->id;
            link.to = ahead;
            link.aux = device_;
            tracer_->recordLink(link);
        }
    }
    queue_.push_back(query);
    if (!busy_ && !loading_)
        evaluate();
}

void
Worker::failNextLoad()
{
    if (loading_) {
        // The in-progress load fails on the spot.
        ++load_epoch_;
        loading_ = false;
        target_.reset();
        ++failed_loads_;
        bounceQueued();
        if (load_failure_alarm_)
            load_failure_alarm_(device_);
        return;
    }
    fail_next_load_ = true;
}

void
Worker::cancelTimer()
{
    if (timer_ != kNoEvent) {
        sim_->cancel(timer_);
        timer_ = kNoEvent;
        timer_at_ = kNoTime;
    }
}

void
Worker::dropFront(int count)
{
    for (int i = 0; i < count && !queue_.empty(); ++i) {
        Query* q = queue_.front();
        queue_.pop_front();
        q->status = QueryStatus::Dropped;
        q->completion = sim_->now();
        q->served_by = device_;
        ++dropped_;
        if (tracer_)
            traceQueryEnd(tracer_, *q);
        if (observer_)
            observer_->onFinished(*q);
    }
}

void
Worker::evaluate()
{
    if (busy_ || loading_ || !target_ || !policy_)
        return;
    if (queue_.empty()) {
        cancelTimer();
        return;
    }
    const BatchProfile& prof = profiles_->get(*target_, type_);
    if (!prof.usable()) {
        // Variant cannot meet the SLO on this device at any batch
        // size: every assigned query is hopeless.
        dropFront(static_cast<int>(queue_.size()));
        return;
    }
    WorkerView view;
    view.now = sim_->now();
    view.queue = &queue_;
    view.profile = &prof;
    view.slo = profiles_->slo(registry_->familyOf(*target_));

    BatchAction action = policy_->decide(view);
    if (action.drop > 0)
        dropFront(action.drop);
    if (action.execute > 0) {
        cancelTimer();
        executeBatch(action.execute);
        return;
    }
    if (action.wake_at != kNoTime && !queue_.empty()) {
        if (timer_ != kNoEvent && timer_at_ == action.wake_at)
            return;  // identical timer already armed
        cancelTimer();
        timer_at_ = std::max(action.wake_at, sim_->now());
        timer_ = sim_->scheduleAt(timer_at_, [this] {
            timer_ = kNoEvent;
            timer_at_ = kNoTime;
            evaluate();
        });
        return;
    }
    cancelTimer();
}

void
Worker::executeBatch(int count)
{
    PROTEUS_ASSERT(count >= 1 &&
                       count <= static_cast<int>(queue_.size()),
                   "bad batch size ", count, " queue ", queue_.size());
    const BatchProfile& prof = profiles_->get(*target_, type_);
    PROTEUS_ASSERT(count <= static_cast<int>(prof.latency.size()),
                   "batch beyond profiled range");

    const Time now = sim_->now();
    const std::uint64_t batch_id = batches_ + 1;
    inflight_.clear();
    inflight_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        Query* q = queue_.front();
        queue_.pop_front();
        q->exec_start = now;
        if (tracer_) {
            obs::SpanRecord s;
            s.kind = obs::SpanKind::Queue;
            s.start = q->enqueued_at;
            s.end = now;
            s.id = q->id;
            s.parent_id = q->id;
            s.parent_kind = obs::SpanKind::Query;
            s.a = q->family;
            s.b = *target_;
            s.v0 = device_;
            if (q->pipeline != kInvalidId)
                s.v1 = static_cast<std::int64_t>(q->stage) + 1;
            tracer_->record(s);
            obs::LinkRecord link;
            link.kind = obs::LinkKind::QueryInBatch;
            link.at = now;
            link.from = q->id;
            link.to = batch_id;
            link.aux = device_;
            tracer_->recordLink(link);
        }
        inflight_.push_back(q);
    }
    inflight_plan_epoch_ = plan_epoch_;

    Duration lat = prof.latencyFor(count);
    if (jitter_frac_ > 0.0) {
        double f = 1.0 + rng_.uniform(-jitter_frac_, jitter_frac_);
        lat = static_cast<Duration>(static_cast<double>(lat) * f);
    }
    if (stall_until_ != kNoTime && sim_->now() < stall_until_) {
        lat = static_cast<Duration>(static_cast<double>(lat) *
                                    stall_factor_);
    }
    busy_ = true;
    busy_time_ += lat;
    ++batches_;
    batched_queries_ += static_cast<std::uint64_t>(count);
    // Capture the executing variant: a swap may be requested while
    // the batch runs, but these queries were served by this variant.
    // The batch lives in inflight_ so a crash can abort and re-route
    // it — and so the completion closure stays two words.
    const VariantId executing = *target_;
    inflight_event_ = sim_->scheduleAfter(
        lat, [this, executing] { finishBatch(executing); });
}

void
Worker::finishBatch(VariantId executed_variant)
{
    busy_ = false;
    inflight_event_ = kNoEvent;
    const Time now = sim_->now();
    const double accuracy = registry_->variant(executed_variant).accuracy;
    // Read before the observer loop: onFinished may hand a query's
    // pool slot back, after which its fields are fair game for reuse.
    const Time batch_start = inflight_[0]->exec_start;
    bool any_violation = false;
    for (Query* q : inflight_) {
        q->completion = now;
        q->accuracy = accuracy;
        q->served_by = device_;
        q->status = now <= q->deadline ? QueryStatus::Served
                                       : QueryStatus::ServedLate;
        any_violation |= q->status == QueryStatus::ServedLate;
        ++served_;
        if (tracer_) {
            obs::SpanRecord s;
            s.kind = obs::SpanKind::Exec;
            s.start = q->exec_start;
            s.end = now;
            s.id = q->id;
            s.parent_id = batches_;
            s.parent_kind = obs::SpanKind::Batch;
            s.a = q->family;
            s.b = executed_variant;
            s.v0 = device_;
            if (q->pipeline != kInvalidId)
                s.v1 = static_cast<std::int64_t>(q->stage) + 1;
            tracer_->record(s);
            traceQueryEnd(tracer_, *q, executed_variant);
        }
        if (observer_)
            observer_->onFinished(*q);
    }
    if (tracer_) {
        obs::SpanRecord s;
        s.kind = obs::SpanKind::Batch;
        s.start = batch_start;
        s.end = now;
        s.id = batches_;
        s.parent_id = inflight_plan_epoch_;
        s.parent_kind = obs::SpanKind::Apply;
        s.a = device_;
        s.b = executed_variant;
        s.v0 = static_cast<std::int64_t>(inflight_.size());
        tracer_->record(s);
        obs::LinkRecord device_link;
        device_link.kind = obs::LinkKind::BatchOnDevice;
        device_link.at = now;
        device_link.from = batches_;
        device_link.to = device_;
        tracer_->recordLink(device_link);
        if (inflight_plan_epoch_ != 0) {
            obs::LinkRecord epoch_link;
            epoch_link.kind = obs::LinkKind::BatchOnEpoch;
            epoch_link.at = now;
            epoch_link.from = batches_;
            epoch_link.to = inflight_plan_epoch_;
            tracer_->recordLink(epoch_link);
        }
    }
    const int batch_size = static_cast<int>(inflight_.size());
    // Done with the batch storage before evaluate(), which may start
    // the next batch into the same buffer.
    inflight_.clear();
    if (policy_)
        policy_->onBatchOutcome(batch_size, any_violation);
    evaluate();
}

double
Worker::meanBatchSize() const
{
    if (batches_ == 0)
        return 0.0;
    return static_cast<double>(batched_queries_) /
           static_cast<double>(batches_);
}

}  // namespace proteus
