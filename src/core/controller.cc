#include "core/controller.h"

#include <utility>

#include "common/logging.h"
#include <cstdio>
#include <cstdlib>

namespace proteus {

Controller::Controller(Simulator* sim, Allocator* allocator,
                       DemandFn demand, ApplyFn apply,
                       ControllerOptions options)
    : sim_(sim),
      allocator_(allocator),
      demand_fn_(std::move(demand)),
      apply_fn_(std::move(apply)),
      options_(options)
{}

void
Controller::start(const std::vector<double>& initial_demand)
{
    AllocationInput input;
    input.demand_qps = initial_demand;
    input.current = has_plan_ ? &current_ : nullptr;
    input.now = sim_->now();
    if (availability_fn_)
        input.device_down = availability_fn_();
    current_ = allocator_->allocate(input);
    has_plan_ = true;
    ++reallocations_;
    apply_fn_(current_);
    last_start_ = sim_->now();

    sim_->schedulePeriodic(options_.period, [this] {
        reallocate(false);
    });
}

void
Controller::requestReallocation()
{
    // Debug tracing: PROTEUS_TRACE_ALARM=1 logs burst alarms.
    static const bool trace_alarm = getenv("PROTEUS_TRACE_ALARM");
    if (trace_alarm) {
        fprintf(stderr, "[alarm] t=%.1f pending=%d since=%.1f\n",
                toSeconds(sim_->now()), (int)decision_pending_,
                last_start_ == kNoTime
                    ? -1.0
                    : toSeconds(sim_->now() - last_start_));
    }
    if (decision_pending_)
        return;
    if (last_start_ != kNoTime &&
        sim_->now() - last_start_ < options_.min_interval) {
        return;
    }
    reallocate(false);
}

void
Controller::notifyCapacityChange()
{
    if (decision_pending_) {
        // The pending plan was solved against the old cluster; apply
        // it (the delay already elapsed conceptually) and follow up
        // with a failure-aware solve immediately after.
        resolve_after_apply_ = true;
        return;
    }
    reallocate(false);
}

void
Controller::reallocate(bool initial)
{
    (void)initial;
    if (decision_pending_)
        return;
    last_start_ = sim_->now();

    AllocationInput input;
    input.demand_qps = demand_fn_();
    input.current = has_plan_ ? &current_ : nullptr;
    input.now = sim_->now();
    if (availability_fn_)
        input.device_down = availability_fn_();

    // The allocator computes the plan now (using the demand observed
    // now), but the plan takes effect only after the decision delay —
    // the MILP runs off the critical path (paper §4).
    Allocation plan = allocator_->allocate(input);
    Duration delay = allocator_->decisionDelay();
    if (delay <= 0) {
        current_ = std::move(plan);
        has_plan_ = true;
        ++reallocations_;
        apply_fn_(current_);
        return;
    }
    decision_pending_ = true;
    sim_->scheduleAfter(delay, [this, p = std::move(plan)]() mutable {
        decision_pending_ = false;
        current_ = std::move(p);
        has_plan_ = true;
        ++reallocations_;
        apply_fn_(current_);
        if (resolve_after_apply_) {
            // Capacity changed while this decision was in flight:
            // solve again against the surviving hardware.
            resolve_after_apply_ = false;
            reallocate(false);
        }
    });
}

}  // namespace proteus
