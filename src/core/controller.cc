#include "core/controller.h"

#include <utility>

#include "common/logging.h"
#include <cstdlib>

namespace proteus {

Controller::Controller(Simulator* sim, Allocator* allocator,
                       DemandFn demand, ApplyFn apply,
                       ControllerOptions options)
    : sim_(sim),
      allocator_(allocator),
      demand_fn_(std::move(demand)),
      apply_fn_(std::move(apply)),
      options_(options)
{}

void
Controller::setObs(obs::Tracer* tracer, obs::MetricsRegistry* registry)
{
    tracer_ = tracer;
    if (registry) {
        decisions_ = registry->counter("controller.decisions");
        solve_wall_us_ = registry->histogram("solver.wall_us");
        solve_nodes_ = registry->histogram("solver.nodes");
        solve_iters_ = registry->histogram("solver.simplex_iters");
        last_nodes_ = registry->gauge("solver.last_nodes");
        last_iters_ = registry->gauge("solver.last_simplex_iters");
        work_frac_ = registry->gauge("solver.work_frac");
    }
}

std::uint64_t
Controller::noteSolve(const AllocatorSolveMeta& meta)
{
    const std::uint64_t decision = ++decision_seq_;
    if (decisions_)
        decisions_->inc();
    if (solve_wall_us_)
        solve_wall_us_->record(meta.wall_seconds * 1e6);
    if (solve_nodes_)
        solve_nodes_->record(static_cast<double>(meta.nodes));
    if (solve_iters_)
        solve_iters_->record(static_cast<double>(meta.simplex_iterations));
    if (last_nodes_)
        last_nodes_->set(static_cast<double>(meta.nodes));
    if (last_iters_)
        last_iters_->set(static_cast<double>(meta.simplex_iterations));
    if (work_frac_) {
        work_frac_->set(
            meta.work_budget > 0
                ? static_cast<double>(meta.simplex_iterations) /
                      static_cast<double>(meta.work_budget)
                : 0.0);
    }
    return decision;
}

void
Controller::traceDecision(std::uint64_t decision, Time solved_at,
                          const AllocatorSolveMeta& meta)
{
    if (!tracer_)
        return;
    const Time now = sim_->now();
    obs::SpanRecord solve;
    solve.kind = obs::SpanKind::Solve;
    solve.start = solved_at;
    solve.end = now;
    solve.id = decision;
    solve.v0 = meta.nodes;
    solve.v1 = meta.simplex_iterations;
    solve.v2 = static_cast<std::int64_t>(meta.gap * 1e6);
    tracer_->record(solve);

    obs::SpanRecord apply;
    apply.kind = obs::SpanKind::Apply;
    apply.start = apply.end = now;
    apply.id = decision;
    apply.parent_id = decision;
    apply.parent_kind = obs::SpanKind::Solve;
    apply.v0 = reallocations_;
    tracer_->record(apply);
}

void
Controller::start(const std::vector<double>& initial_demand)
{
    AllocationInput input;
    input.demand_qps = initial_demand;
    input.current = has_plan_ ? &current_ : nullptr;
    input.now = sim_->now();
    if (availability_fn_)
        input.device_down = availability_fn_();
    current_ = allocator_->allocate(input);
    const std::uint64_t decision = noteSolve(allocator_->lastSolveMeta());
    has_plan_ = true;
    ++reallocations_;
    applied_decision_ = decision;
    apply_fn_(current_);
    traceDecision(decision, sim_->now(), allocator_->lastSolveMeta());
    last_start_ = sim_->now();

    sim_->schedulePeriodic(options_.period, [this] {
        reallocate(false);
    });
}

void
Controller::requestReallocation()
{
    // Debug tracing: PROTEUS_TRACE_ALARM=1 logs burst alarms.
    static const bool trace_alarm = getenv("PROTEUS_TRACE_ALARM");
    if (trace_alarm) {
        warn("[alarm] pending=", decision_pending_, " since=",
             last_start_ == kNoTime
                 ? -1.0
                 : toSeconds(sim_->now() - last_start_));
    }
    if (decision_pending_)
        return;
    if (last_start_ != kNoTime &&
        sim_->now() - last_start_ < options_.min_interval) {
        return;
    }
    reallocate(false);
}

void
Controller::notifyCapacityChange()
{
    if (decision_pending_) {
        // The pending plan was solved against the old cluster; apply
        // it (the delay already elapsed conceptually) and follow up
        // with a failure-aware solve immediately after.
        resolve_after_apply_ = true;
        return;
    }
    reallocate(false);
}

void
Controller::reallocate(bool initial)
{
    (void)initial;
    if (decision_pending_)
        return;
    last_start_ = sim_->now();

    AllocationInput input;
    input.demand_qps = demand_fn_();
    input.current = has_plan_ ? &current_ : nullptr;
    input.now = sim_->now();
    if (availability_fn_)
        input.device_down = availability_fn_();

    // The allocator computes the plan now (using the demand observed
    // now), but the plan takes effect only after the decision delay —
    // the MILP runs off the critical path (paper §4).
    Allocation plan = allocator_->allocate(input);
    const AllocatorSolveMeta meta = allocator_->lastSolveMeta();
    const std::uint64_t decision = noteSolve(meta);
    const Time solved_at = sim_->now();
    Duration delay = allocator_->decisionDelay();
    if (delay <= 0) {
        current_ = std::move(plan);
        has_plan_ = true;
        ++reallocations_;
        applied_decision_ = decision;
        apply_fn_(current_);
        traceDecision(decision, solved_at, meta);
        return;
    }
    decision_pending_ = true;
    pending_plan_ = std::move(plan);
    pending_meta_ = meta;
    pending_decision_ = decision;
    pending_solved_at_ = solved_at;
    sim_->scheduleAfter(delay, [this] { applyPendingPlan(); });
}

void
Controller::applyPendingPlan()
{
    decision_pending_ = false;
    current_ = std::move(pending_plan_);
    has_plan_ = true;
    ++reallocations_;
    applied_decision_ = pending_decision_;
    apply_fn_(current_);
    traceDecision(pending_decision_, pending_solved_at_, pending_meta_);
    if (resolve_after_apply_) {
        // Capacity changed while this decision was in flight:
        // solve again against the surviving hardware.
        resolve_after_apply_ = false;
        reallocate(false);
    }
}

}  // namespace proteus
