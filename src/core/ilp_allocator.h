/**
 * @file
 * The Proteus resource manager: joint model selection, placement and
 * query assignment by exact MILP (paper §4).
 *
 * Formulation (linearized; see DESIGN.md):
 *   integers  n[t][m] in [0, N_t] : #devices of type t hosting
 *                                   variant m  (aggregates x_{d,m})
 *   continuous w[t][m] >= 0       : QPS of family(m) served by those
 *                                   devices   (aggregates z_{d,q})
 *   rows  sum_m n[t][m] <= N_t                (Eq. 1, hosting)
 *         w[t][m] <= P[t][m] * n[t][m]        (Eq. 5, capacity)
 *         sum_{t,m in f} w[t][m] = s_f        (Eq. 6, meet demand)
 *   obj   max sum A_m * w[t][m] - eps * n     (effective accuracy;
 *                                              eps breaks ties toward
 *                                              fewer hosted replicas)
 *
 * Devices of one hardware type are interchangeable, so the
 * aggregation is exact; the integer counts are expanded onto concrete
 * devices with a churn-minimizing matching. If the demand is
 * infeasible even with the least accurate variants, s is scaled down
 * by beta (default 1.05) until feasible, as in §4 ("we solve the MILP
 * again by decreasing s_q by a small value").
 */

#ifndef PROTEUS_CORE_ILP_ALLOCATOR_H_
#define PROTEUS_CORE_ILP_ALLOCATOR_H_

#include <functional>
#include <optional>
#include <vector>

#include "cluster/device.h"
#include "common/types.h"
#include "core/allocation.h"
#include "models/model.h"
#include "models/profiler.h"
#include "solver/milp.h"

namespace proteus {

/** Configuration of the MILP allocator and its ablations (§6.5). */
struct IlpAllocatorOptions {
    /** Demand scale-down factor per infeasibility step (artifact: 1.05). */
    double backoff_beta = 1.05;
    /**
     * Capacity headroom: the MILP provisions for demand times this
     * factor so estimate lag and arrival noise between control
     * periods do not immediately overload workers. Routing weights
     * are still computed against the raw demand (never shedding just
     * because the slack target is infeasible).
     */
    double planning_headroom = 1.0;
    /** Maximum backoff steps before giving up (serving fraction ~0). */
    int max_backoff_steps = 200;
    /**
     * Ablation "w/o MS": only the most accurate variant of each
     * family may be selected (placement/assignment still optimal).
     */
    bool fix_most_accurate = false;
    /**
     * Ablation "w/o QA": replace the optimal query assignment with a
     * uniform split across the devices hosting each family.
     */
    bool uniform_assignment = false;
    /** Simulated decision latency (paper §6.8: mean MILP time 4.2 s). */
    Duration decision_delay = seconds(4.2);
    /**
     * Deterministic work budget per MILP solve, in total simplex
     * iterations. When the budget binds, the truncated solve returns
     * the same incumbent regardless of machine load. 0 disables.
     */
    std::int64_t milp_work_budget = 2000000;
    /**
     * Wall-clock backstop per MILP solve. Generous by default so the
     * work budget binds first and truncation stays deterministic.
     */
    double milp_time_limit_sec = 10.0;
    /**
     * Relative optimality gap for the MILP. The default certifies the
     * plan within 0.5% of the optimum; the LP-rounding + local-search
     * warm start typically reaches that immediately, keeping control
     * decisions fast (paper §6.8 reports 4.2 s mean solve time).
     */
    double milp_gap = 5e-3;
    /**
     * Keep the currently-applied hosting when it is feasible for the
     * new demand and within this relative objective sliver of the
     * fresh optimum. Avoids model-swap churn (load delays, transient
     * violations) for negligible accuracy gains. 0 disables.
     */
    double keep_plan_hysteresis = 3e-3;
    /**
     * Churn damping: hosting a variant a device already runs earns a
     * bonus equal to the accuracy-weighted capacity that a reload
     * would forfeit (P x 100 x load_time / control period), scaled by
     * this factor. 0 disables. Keeps near-equivalent optima from
     * oscillating and swapping dozens of models every period.
     */
    double churn_damping = 1.0;
    /** Control period used to amortize the swap cost (seconds). */
    double churn_period_sec = 30.0;
    /**
     * Model load time per (device type, variant), used to price the
     * churn damping. Unset = a flat 0.3 s estimate.
     */
    std::function<Duration(DeviceTypeId, VariantId)> load_time_fn;
    /**
     * Fairness extension (paper §7, future work): weight on the worst
     * per-family effective accuracy. 0 keeps the paper's pure
     * system-level objective; larger values trade total effective
     * accuracy for a higher per-family floor. Implemented exactly in
     * the MILP: a floor variable t with one row
     * `sum_{type,m in f} A_m w >= t * s_f` per demanded family and
     * `+ weight * total_demand * t` added to the objective.
     * Disables the warm-start local search and plan hysteresis (their
     * exact evaluation covers only the paper objective).
     */
    double fairness_weight = 0.0;
    /**
     * Restrict the selectable variants (Clipper-HT/HA use this to pin
     * one variant per family). Empty = all variants allowed.
     */
    std::function<bool(VariantId)> variant_filter;
    /**
     * Frozen model placement (Sommelier / "w/o MP"): quota[t][f]
     * limits how many type-t devices may host family f. Empty =
     * unconstrained.
     */
    std::vector<std::vector<int>> family_quota;
    /**
     * With frozen placement: which family each device is bound to
     * (expansion will not host another family's variant there).
     */
    std::vector<std::optional<FamilyId>> device_family_lock;
};

/** Exact-MILP allocator (the Proteus resource manager). */
class IlpAllocator : public Allocator
{
  public:
    IlpAllocator(const ModelRegistry* registry, const Cluster* cluster,
                 const ProfileStore* profiles,
                 IlpAllocatorOptions options = {});

    Allocation allocate(const AllocationInput& input) override;

    Duration decisionDelay() const override
    {
        return options_.decision_delay;
    }

    const char* name() const override { return "proteus-ilp"; }

    /** Statistics of the most recent allocate() call. */
    struct SolveStats {
        double solve_seconds = 0.0;
        std::int64_t nodes = 0;
        /** Simplex iterations over every LP relaxation solved. */
        std::int64_t simplex_iters = 0;
        /** Final MILP incumbent/bound gap of the accepted solve. */
        double gap = 0.0;
        int backoff_steps = 0;
        double served_fraction = 1.0;
    };

    /** @return stats of the last allocate() call. */
    const SolveStats& lastStats() const { return stats_; }

    AllocatorSolveMeta
    lastSolveMeta() const override
    {
        AllocatorSolveMeta meta;
        meta.wall_seconds = stats_.solve_seconds;
        meta.nodes = stats_.nodes;
        meta.simplex_iterations = stats_.simplex_iters;
        meta.gap = stats_.gap;
        meta.backoff_steps = stats_.backoff_steps;
        meta.work_budget = options_.milp_work_budget;
        return meta;
    }

  private:
    /** Aggregated solution: devices-per-(type, variant) plus QPS. */
    struct TypeSolution {
        std::vector<std::vector<int>> count;     ///< [type][variant]
        std::vector<std::vector<double>> qps;    ///< [type][variant]
        double objective = 0.0;
        bool feasible = false;
        std::int64_t nodes = 0;
        std::int64_t simplex_iters = 0;          ///< summed LP work
        double gap = 0.0;                        ///< final MILP gap
    };

    TypeSolution solveAggregated(
        const std::vector<double>& demand,
        const std::vector<std::vector<int>>* current_counts);

    Allocation expand(const TypeSolution& sol,
                      const std::vector<double>& demand,
                      const std::vector<double>& original_demand,
                      const Allocation* current) const;

    /** Devices of type @p t not masked out by the failure mask. */
    int availableOfType(DeviceTypeId t) const;

    /** Ids of available (not down) devices of type @p t. */
    std::vector<DeviceId> availableDevicesOfType(DeviceTypeId t) const;

  protected:
    /** Mutable options access for baseline subclasses (Sommelier). */
    IlpAllocatorOptions& mutableOptions() { return options_; }

    const ModelRegistry* registry_;
    const Cluster* cluster_;
    const ProfileStore* profiles_;

  private:
    IlpAllocatorOptions options_;
    SolveStats stats_;
    /** Failure mask of the allocate() call in progress (may be null). */
    const std::vector<char>* down_ = nullptr;
};

/**
 * Build the per-device binary MILP of §4 verbatim (x_{d,m} booleans),
 * used by the Fig. 10 scalability study and by tests that cross-check
 * the aggregated formulation. The returned LP's variable layout is
 * x[d * M + m] followed by w[d * M + m].
 */
LinearProgram buildPerDeviceMilp(const ModelRegistry& registry,
                                 const Cluster& cluster,
                                 const ProfileStore& profiles,
                                 const std::vector<double>& demand_qps);

}  // namespace proteus

#endif  // PROTEUS_CORE_ILP_ALLOCATOR_H_
