/**
 * @file
 * Experiment configuration: which allocator and batching policy to
 * run, SLO settings and control-loop timing. Mirrors the JSON config
 * of the paper's artifact (model_allocation: ilp / infaas_v2 /
 * clipper / sommelier; batching: accscale / aimd / nexus).
 */

#ifndef PROTEUS_CORE_CONFIG_H_
#define PROTEUS_CORE_CONFIG_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "faults/fault_plan.h"
#include "obs/trace.h"
#include "pipeline/pipeline.h"

namespace proteus {

/** Resource-allocation policies available to a ServingSystem. */
enum class AllocatorKind {
    ProteusIlp,      ///< the paper's MILP resource manager ("ilp")
    InfaasAccuracy,  ///< greedy INFaaS-Accuracy ("infaas_v2")
    ClipperHT,       ///< static, least accurate variants ("clipper")
    ClipperHA,       ///< static, most accurate variants
    Sommelier,       ///< selection-only, placement frozen ("sommelier")
    ProteusNoMS,     ///< ablation §6.5: without model selection
    ProteusNoQA,     ///< ablation §6.5: without query assignment
};

/** Batching policies available to a ServingSystem. */
enum class BatchingKind {
    Proteus,         ///< proactive non-work-conserving ("accscale")
    ClipperAimd,     ///< reactive AIMD ("aimd")
    NexusEarlyDrop,  ///< proactive work-conserving ("nexus")
    StaticOne,       ///< fixed batch of one (ablation w/o AB)
};

/** @return a printable name for @p kind. */
const char* toString(AllocatorKind kind);

/** @return a printable name for @p kind. */
const char* toString(BatchingKind kind);

/** Full experiment configuration. */
struct SystemConfig {
    AllocatorKind allocator = AllocatorKind::ProteusIlp;
    BatchingKind batching = BatchingKind::Proteus;

    /** SLO = multiplier x (fastest variant, CPU, batch 1); §6.1.2. */
    double slo_multiplier = 2.0;
    /** Device type anchoring the SLO (kInvalidId = slowest type). */
    DeviceTypeId slo_anchor_type = kInvalidId;
    /** Upper cap on batch sizes considered by the profiler. */
    int max_batch_cap = 64;

    /** Periodic re-allocation interval (paper: 30 s). */
    Duration control_period = seconds(30.0);
    /** Demand headroom applied to estimates when planning. */
    double planning_headroom = 1.35;
    /** Monitor burst alarm threshold over planned capacity. */
    double burst_threshold = 1.2;
    /** Demand-estimation window of the monitoring daemons. */
    Duration monitor_window = seconds(2.0);
    /** Metrics snapshot interval (timeseries granularity). */
    Duration snapshot_interval = seconds(10.0);

    /** Simulated MILP decision latency for Proteus (§6.8: ~4.2 s). */
    Duration ilp_decision_delay = seconds(4.2);
    /**
     * Deterministic work budget per MILP solve (simplex iterations;
     * 0 disables). Binds before the wall clock so truncated solves
     * return the same incumbent regardless of machine load.
     */
    std::int64_t milp_work_budget = 2000000;
    /** Wall-clock backstop per MILP solve inside the allocator. */
    double milp_time_limit_sec = 10.0;

    /** Multiplicative execution-latency jitter (0 = deterministic). */
    double latency_jitter_frac = 0.0;
    /** Seed for all stochastic pieces of the run. */
    std::uint64_t seed = 1;

    /**
     * Fault-injection plan (empty = fault-free run). Scripted and
     * seeded-random supply shocks executed by the FaultInjector; see
     * DESIGN.md, "Fault model".
     */
    FaultPlan faults;

    /**
     * Pipeline serving (DESIGN.md, "Pipeline serving"): DAGs of model
     * families with end-to-end SLOs. Empty = single-family serving,
     * byte-identical to the pre-pipeline system.
     */
    std::vector<PipelineSpec> pipelines;
    /**
     * Plan per-stage budgets jointly across each pipeline (enumerate
     * variant combinations, split the e2e SLO proportionally to the
     * winner's needs). false = per-stage-independent baseline: equal
     * split, each stage provisioned in isolation.
     */
    bool pipeline_joint_planning = true;

    /**
     * Observability (DESIGN.md, "Observability"): per-query span
     * tracing into a preallocated ring buffer plus solver/controller
     * instrumentation in the metrics registry. Off by default; the
     * disabled hot path costs one null-pointer test per hook.
     */
    obs::ObsOptions obs;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_CONFIG_H_
