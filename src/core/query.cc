#include "core/query.h"

namespace proteus {

const char*
toString(QueryStatus status)
{
    switch (status) {
      case QueryStatus::Pending: return "pending";
      case QueryStatus::Served: return "served";
      case QueryStatus::ServedLate: return "served-late";
      case QueryStatus::Dropped: return "dropped";
    }
    return "unknown";
}

}  // namespace proteus
