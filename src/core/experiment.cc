#include "core/experiment.h"

#include <fstream>

#include "common/logging.h"
#include "obs/exporter.h"
#include "workload/generators.h"

namespace proteus {

AllocatorKind
allocatorKindFromName(const std::string& name)
{
    if (name == "ilp" || name == "proteus")
        return AllocatorKind::ProteusIlp;
    if (name == "infaas_v2" || name == "infaas")
        return AllocatorKind::InfaasAccuracy;
    if (name == "clipper_ht" || name == "clipper")
        return AllocatorKind::ClipperHT;
    if (name == "clipper_ha")
        return AllocatorKind::ClipperHA;
    if (name == "sommelier" || name == "ilp_no_mp")
        return AllocatorKind::Sommelier;
    if (name == "ilp_no_ms")
        return AllocatorKind::ProteusNoMS;
    if (name == "ilp_no_qa")
        return AllocatorKind::ProteusNoQA;
    PROTEUS_FATAL("unknown model_allocation algorithm: ", name);
}

BatchingKind
batchingKindFromName(const std::string& name)
{
    if (name == "accscale" || name == "proteus")
        return BatchingKind::Proteus;
    if (name == "aimd" || name == "clipper")
        return BatchingKind::ClipperAimd;
    if (name == "nexus")
        return BatchingKind::NexusEarlyDrop;
    if (name == "static" || name == "none")
        return BatchingKind::StaticOne;
    PROTEUS_FATAL("unknown batching algorithm: ", name);
}

namespace {

Cluster
clusterFromJson(const JsonValue& json)
{
    Cluster cluster;
    StandardTypes types = addStandardTypes(&cluster);
    if (!json.has("cluster")) {
        cluster.addDevices(types.cpu, 20);
        cluster.addDevices(types.gtx1080ti, 10);
        cluster.addDevices(types.v100, 10);
        return cluster;
    }
    const JsonValue& c = json.at("cluster");
    cluster.addDevices(types.cpu,
                       static_cast<int>(c.numberOr("cpu", 0)));
    cluster.addDevices(types.gtx1080ti,
                       static_cast<int>(c.numberOr("gtx1080ti", 0)));
    cluster.addDevices(types.v100,
                       static_cast<int>(c.numberOr("v100", 0)));
    if (cluster.numDevices() == 0)
        PROTEUS_FATAL("config cluster has no devices");
    return cluster;
}

ModelRegistry
registryFromJson(const JsonValue& json)
{
    std::string zoo = json.stringOr("zoo", "paper");
    ModelRegistry reg;
    if (zoo == "paper") {
        for (const auto& fam : paperModelZoo())
            reg.registerFamily(fam);
    } else if (zoo == "mini") {
        for (const auto& fam : miniModelZoo())
            reg.registerFamily(fam);
    } else {
        PROTEUS_FATAL("unknown zoo: ", zoo, " (use \"paper\"/\"mini\")");
    }
    return reg;
}

std::vector<PipelineSpec>
pipelinesFromJson(const JsonValue& json)
{
    std::vector<PipelineSpec> specs;
    if (!json.has("pipelines"))
        return specs;
    for (const JsonValue& p : json.at("pipelines").asArray()) {
        PipelineSpec spec;
        spec.name = p.stringOr("name", "");
        if (spec.name.empty())
            PROTEUS_FATAL("pipeline entry is missing \"name\"");
        spec.slo = seconds(p.numberOr("slo_sec", 0.0));
        spec.slo_multiplier = p.numberOr("slo_multiplier", 0.0);
        if (!p.has("stages"))
            PROTEUS_FATAL("pipeline \"", spec.name,
                          "\" is missing \"stages\"");
        for (const JsonValue& s : p.at("stages").asArray()) {
            PipelineStageSpec stage;
            stage.name = s.stringOr("name", "");
            stage.family = s.stringOr("family", "");
            if (s.has("deps")) {
                for (const JsonValue& d : s.at("deps").asArray())
                    stage.deps.push_back(d.asString());
            }
            spec.stages.push_back(std::move(stage));
        }
        specs.push_back(std::move(spec));
    }
    return specs;
}

Trace
traceFromJson(const JsonValue& json, const ModelRegistry& registry,
              const std::vector<PipelineSpec>& pipelines)
{
    const std::size_t num_families = registry.numFamilies();
    if (!json.has("workload"))
        PROTEUS_FATAL("config is missing the \"workload\" object");
    const JsonValue& w = json.at("workload");
    std::string kind = w.stringOr("kind", "diurnal");
    Duration duration = seconds(w.numberOr("duration_sec", 360.0));
    std::uint64_t seed =
        static_cast<std::uint64_t>(w.numberOr("seed", 42.0));

    if (kind == "diurnal") {
        DiurnalTraceConfig cfg;
        cfg.duration = duration;
        cfg.base_qps = w.numberOr("base_qps", 250.0);
        cfg.diurnal_amplitude_qps = w.numberOr("amplitude_qps", 350.0);
        cfg.cycles = w.numberOr("cycles", 2.0);
        cfg.seed = seed;
        return diurnalTrace(num_families, cfg);
    }
    if (kind == "burst") {
        BurstTraceConfig cfg;
        cfg.duration = duration;
        cfg.low_qps = w.numberOr("low_qps", 150.0);
        cfg.high_qps = w.numberOr("high_qps", 900.0);
        cfg.phase = seconds(w.numberOr("phase_sec", 240.0));
        cfg.seed = seed;
        return burstTrace(num_families, cfg);
    }
    if (kind == "steady") {
        std::string process = w.stringOr("process", "poisson");
        ArrivalProcess p;
        if (process == "uniform")
            p = ArrivalProcess::Uniform;
        else if (process == "poisson")
            p = ArrivalProcess::Poisson;
        else if (process == "gamma")
            p = ArrivalProcess::Gamma;
        else
            PROTEUS_FATAL("unknown arrival process: ", process);
        return steadyTrace(num_families, w.numberOr("qps", 100.0),
                           duration, p, seed);
    }
    if (kind == "file") {
        std::string path = w.stringOr("path", "");
        if (path.empty())
            PROTEUS_FATAL("workload kind \"file\" needs \"path\"");
        std::ifstream in(path);
        if (!in)
            PROTEUS_FATAL("cannot open trace file: ", path);
        return Trace::readCsv(in);
    }
    if (kind == "pipeline") {
        if (pipelines.empty())
            PROTEUS_FATAL("workload kind \"pipeline\" needs a "
                          "\"pipelines\" array in the config");
        // Compile here to resolve family names and topo order; the
        // serving system recompiles identically from the same specs.
        CompiledPipelines compiled;
        std::string error;
        if (!compilePipelines(pipelines, registry, &compiled, &error))
            PROTEUS_FATAL("pipeline config error: ", error);
        std::vector<FamilyId> entries;
        for (PipelineId p = 0; p < compiled.size(); ++p)
            entries.push_back(compiled.entryFamily(p));
        PipelineTraceConfig cfg;
        cfg.qps = w.numberOr("qps", cfg.qps);
        cfg.duration = duration;
        cfg.seed = seed;
        std::string process = w.stringOr("process", "poisson");
        if (process == "uniform")
            cfg.process = ArrivalProcess::Uniform;
        else if (process == "poisson")
            cfg.process = ArrivalProcess::Poisson;
        else if (process == "gamma")
            cfg.process = ArrivalProcess::Gamma;
        else
            PROTEUS_FATAL("unknown arrival process: ", process);
        return pipelineTrace(entries, cfg);
    }
    PROTEUS_FATAL("unknown workload kind: ", kind);
}

}  // namespace

ExperimentSpec
loadExperiment(const JsonValue& json)
{
    ExperimentSpec spec;
    spec.config.allocator = allocatorKindFromName(
        json.stringOr("model_allocation", "ilp"));
    spec.config.batching =
        batchingKindFromName(json.stringOr("batching", "accscale"));
    spec.config.slo_multiplier =
        json.numberOr("slo_multiplier", spec.config.slo_multiplier);
    spec.config.control_period = seconds(json.numberOr(
        "control_period_sec", toSeconds(spec.config.control_period)));
    spec.config.planning_headroom = json.numberOr(
        "planning_headroom", spec.config.planning_headroom);
    spec.config.burst_threshold =
        json.numberOr("burst_threshold", spec.config.burst_threshold);
    spec.config.snapshot_interval = seconds(json.numberOr(
        "snapshot_interval_sec",
        toSeconds(spec.config.snapshot_interval)));
    spec.config.ilp_decision_delay = seconds(json.numberOr(
        "decision_delay_sec",
        toSeconds(spec.config.ilp_decision_delay)));
    spec.config.milp_work_budget = static_cast<std::int64_t>(
        json.numberOr("milp_work_budget",
                      static_cast<double>(spec.config.milp_work_budget)));
    spec.config.latency_jitter_frac = json.numberOr(
        "latency_jitter", spec.config.latency_jitter_frac);
    spec.config.seed =
        static_cast<std::uint64_t>(json.numberOr("seed", 1.0));
    spec.config.pipelines = pipelinesFromJson(json);
    const std::string planning =
        json.stringOr("pipeline_planning", "joint");
    if (planning == "joint")
        spec.config.pipeline_joint_planning = true;
    else if (planning == "independent")
        spec.config.pipeline_joint_planning = false;
    else
        PROTEUS_FATAL("unknown pipeline_planning: ", planning,
                      " (use \"joint\"/\"independent\")");

    if (json.has("observability")) {
        const JsonValue& o = json.at("observability");
        spec.config.obs.enabled = o.boolOr("enabled", false);
        spec.config.obs.ring_capacity = static_cast<std::size_t>(
            o.numberOr("ring_capacity",
                       static_cast<double>(
                           spec.config.obs.ring_capacity)));
        spec.config.obs.sample_interval = seconds(o.numberOr(
            "sample_interval_sec",
            toSeconds(spec.config.obs.sample_interval)));
        spec.config.obs.timeseries_capacity = static_cast<std::size_t>(
            o.numberOr("timeseries_capacity",
                       static_cast<double>(
                           spec.config.obs.timeseries_capacity)));
        spec.config.obs.slo_window = seconds(o.numberOr(
            "slo_window_sec", toSeconds(spec.config.obs.slo_window)));
        spec.config.obs.slo_budget =
            o.numberOr("slo_budget", spec.config.obs.slo_budget);
        spec.config.obs.slo_burn_high =
            o.numberOr("slo_burn_high", spec.config.obs.slo_burn_high);
        spec.config.obs.slo_burn_low =
            o.numberOr("slo_burn_low", spec.config.obs.slo_burn_low);
        spec.config.obs.slo_min_count = static_cast<std::uint64_t>(
            o.numberOr("slo_min_count",
                       static_cast<double>(
                           spec.config.obs.slo_min_count)));
        spec.trace_path = o.stringOr("trace_file", "");
        spec.metrics_path = o.stringOr("metrics_file", "");
        spec.timeline_csv_path = o.stringOr("timeline_csv", "");
        spec.timeline_json_path = o.stringOr("timeline_json", "");
    }

    spec.cluster = clusterFromJson(json);
    spec.registry = registryFromJson(json);
    spec.trace =
        traceFromJson(json, spec.registry, spec.config.pipelines);
    return spec;
}

ExperimentSpec
loadExperimentFile(const std::string& path)
{
    JsonValue json;
    std::string error;
    if (!parseJsonFile(path, &json, &error))
        PROTEUS_FATAL("config parse error: ", error);
    return loadExperiment(json);
}

RunResult
runExperiment(ExperimentSpec* spec)
{
    if (!spec->trace_path.empty() || !spec->metrics_path.empty() ||
        !spec->timeline_csv_path.empty() ||
        !spec->timeline_json_path.empty()) {
        spec->config.obs.enabled = true;
    }
    ServingSystem system(&spec->cluster, &spec->registry,
                         spec->config);
    RunResult result = system.run(spec->trace);
    if (!spec->trace_path.empty()) {
        if (!obs::writeChromeTrace(*system.tracer(),
                                   system.traceNames(),
                                   spec->trace_path))
            warn("could not write trace file ", spec->trace_path);
    }
    if (!spec->metrics_path.empty()) {
        if (!obs::writeMetricsJson(system.metricsRegistry(),
                                   spec->metrics_path)) {
            warn("could not write metrics file ", spec->metrics_path);
        }
    }
    if (!spec->timeline_csv_path.empty()) {
        if (!system.timeseries()->writeCsv(spec->timeline_csv_path)) {
            warn("could not write timeline CSV ",
                 spec->timeline_csv_path);
        }
    }
    if (!spec->timeline_json_path.empty()) {
        if (!system.timeseries()->writeJson(spec->timeline_json_path)) {
            warn("could not write timeline JSON ",
                 spec->timeline_json_path);
        }
    }
    return result;
}

}  // namespace proteus
