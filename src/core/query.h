/**
 * @file
 * Inference query representation and the observer interface the
 * metrics layer implements.
 */

#ifndef PROTEUS_CORE_QUERY_H_
#define PROTEUS_CORE_QUERY_H_

#include "common/types.h"

namespace proteus {

/** Lifecycle state of a query. */
enum class QueryStatus {
    Pending,     ///< queued or executing
    Served,      ///< completed within its latency SLO
    ServedLate,  ///< completed, but after the SLO deadline
    Dropped,     ///< shed by a router or dropped by a worker
};

/** @return a printable name for @p status. */
const char* toString(QueryStatus status);

/** One inference query travelling through the system. */
struct Query {
    QueryId id = 0;
    FamilyId family = 0;
    Time arrival = 0;
    /** Absolute SLO deadline (arrival + family SLO). */
    Time deadline = 0;

    QueryStatus status = QueryStatus::Pending;
    /** Completion time (kNoTime until finished). */
    Time completion = kNoTime;
    /** Normalized accuracy of the variant that served it (0 if not). */
    double accuracy = 0.0;
    /** Device that served (or dropped) it, kInvalidId if none. */
    DeviceId served_by = kInvalidId;

    /** @return true once the query reached a terminal state. */
    bool
    finished() const
    {
        return status != QueryStatus::Pending;
    }

    /** @return true when the query counts as an SLO violation. */
    bool
    violatedSlo() const
    {
        return status == QueryStatus::ServedLate ||
               status == QueryStatus::Dropped;
    }
};

/** Sink for query lifecycle events; implemented by the metrics layer. */
class QueryObserver
{
  public:
    virtual ~QueryObserver() = default;

    /** A query entered the system. */
    virtual void onArrival(const Query& query) = 0;

    /** A query reached a terminal state (served, late or dropped). */
    virtual void onFinished(const Query& query) = 0;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_QUERY_H_
