/**
 * @file
 * Inference query representation and the observer interface the
 * metrics layer implements.
 */

#ifndef PROTEUS_CORE_QUERY_H_
#define PROTEUS_CORE_QUERY_H_

#include "common/types.h"
#include "obs/trace.h"

namespace proteus {

/** Lifecycle state of a query. */
enum class QueryStatus {
    Pending,     ///< queued or executing
    Served,      ///< completed within its latency SLO
    ServedLate,  ///< completed, but after the SLO deadline
    Dropped,     ///< shed by a router or dropped by a worker
};

/** @return a printable name for @p status. */
const char* toString(QueryStatus status);

/** One inference query travelling through the system. */
struct Query {
    QueryId id = 0;
    FamilyId family = 0;
    Time arrival = 0;
    /** Absolute SLO deadline (arrival + family SLO). */
    Time deadline = 0;

    QueryStatus status = QueryStatus::Pending;
    /** Completion time (kNoTime until finished). */
    Time completion = kNoTime;
    /** Normalized accuracy of the variant that served it (0 if not). */
    double accuracy = 0.0;
    /** Device that served (or dropped) it, kInvalidId if none. */
    DeviceId served_by = kInvalidId;

    // Stage timestamps for span tracing (DESIGN.md, "Observability").
    // Written unconditionally (plain stores, no branches) so the trace
    // subsystem can attribute latency without touching the hot path.
    /** Admission at the load balancer (kNoTime before routing). */
    Time routed_at = kNoTime;
    /** Most recent enqueue on a worker (re-set after re-routing). */
    Time enqueued_at = kNoTime;
    /** Start of the batch execution that served it. */
    Time exec_start = kNoTime;

    // Pipeline cursor (DESIGN.md, "Pipeline serving"). Single-family
    // queries keep the defaults; the one hot-path branch they pay is
    // the pipeline == kInvalidId test in the stage router.
    /** Pipeline this query traverses (kInvalidId = single-family). */
    PipelineId pipeline = kInvalidId;
    /** Current stage in the pipeline's topological order. */
    StageIndex stage = 0;
    /** Last stage index (stage == last_stage on the final hop). */
    StageIndex last_stage = 0;
    /** Product of completed stages' normalized accuracies (0..1). */
    double acc_product = 1.0;

    /** @return true once the query reached a terminal state. */
    bool
    finished() const
    {
        return status != QueryStatus::Pending;
    }

    /** @return true when the query counts as an SLO violation. */
    bool
    violatedSlo() const
    {
        return status == QueryStatus::ServedLate ||
               status == QueryStatus::Dropped;
    }
};

/**
 * Record the terminal Query span of @p query: arrival to completion,
 * tagged with its final status, serving device and (when known) the
 * variant that served it. Every drop/finish site calls this so each
 * query contributes exactly one Query span.
 */
inline void
traceQueryEnd(obs::Tracer* tracer, const Query& query,
              VariantId variant = kInvalidId)
{
    // An intermediate pipeline stage completing is not the end of the
    // query: the stage router forwards it, and the terminal hop (or a
    // drop at any stage) records the one Query span. The skip runs
    // before the stage router advances the cursor, so stage <
    // last_stage still identifies the hop as intermediate.
    if (query.pipeline != kInvalidId && query.stage < query.last_stage &&
        query.status != QueryStatus::Dropped) {
        return;
    }
    obs::SpanRecord s;
    s.kind = obs::SpanKind::Query;
    s.start = query.arrival;
    s.end = query.completion;
    s.id = query.id;
    s.a = query.family;
    s.b = variant;
    s.v0 = static_cast<std::int64_t>(query.status);
    s.v1 = query.served_by == kInvalidId
               ? -1
               : static_cast<std::int64_t>(query.served_by);
    s.v2 = query.pipeline == kInvalidId
               ? 0
               : static_cast<std::int64_t>(query.pipeline) + 1;
    tracer->record(s);
}

/** Sink for query lifecycle events; implemented by the metrics layer. */
class QueryObserver
{
  public:
    virtual ~QueryObserver() = default;

    /** A query entered the system. */
    virtual void onArrival(const Query& query) = 0;

    /** A query reached a terminal state (served, late or dropped). */
    virtual void onFinished(const Query& query) = 0;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_QUERY_H_
