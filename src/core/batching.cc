#include "core/batching.h"

#include <algorithm>

#include "common/logging.h"

namespace proteus {

int
countHopeless(const WorkerView& view)
{
    // The queue is FIFO and a worker serves one family, so deadlines
    // are non-decreasing: hopeless queries form a prefix.
    const Duration lat1 = view.profile->latencyFor(1);
    int n = 0;
    for (const Query* q : *view.queue) {
        if (q->deadline >= view.now + lat1)
            break;
        ++n;
    }
    return n;
}

BatchAction
ProteusBatching::decide(const WorkerView& view)
{
    BatchAction action;
    const auto& queue = *view.queue;
    if (queue.empty())
        return action;

    const BatchProfile& prof = *view.profile;
    PROTEUS_ASSERT(prof.usable(), "policy invoked on unusable profile");
    const int max_batch = prof.max_batch;

    if (drop_hopeless_)
        action.drop = countHopeless(view);
    int q = static_cast<int>(queue.size()) - action.drop;
    if (q <= 0)
        return action;

    if (q >= max_batch) {
        // Backlog: the device must run full batches to have any
        // chance of draining. Shed head queries that cannot survive
        // the batch they would ride in — serving them late would
        // burn the same violation at a far higher capacity cost
        // (trimming the batch to rescue a stale head spirals into
        // tiny batches under sustained load).
        if (drop_hopeless_) {
            while (q > 0) {
                int k = std::min(q, max_batch);
                const Query* head =
                    queue[static_cast<std::size_t>(action.drop)];
                if (head->deadline >= view.now + prof.latencyFor(k))
                    break;
                ++action.drop;
                --q;
            }
        }
        if (q <= 0)
            return action;
        action.execute = std::min(q, max_batch);
        return action;
    }

    const Time t_exp1 =
        queue[static_cast<std::size_t>(action.drop)]->deadline;

    // Largest batch that still lets the head query meet its deadline.
    // (Normally q itself; smaller only if this decision was delayed,
    // e.g. the worker was busy with a previous batch.)
    int k = q;
    while (k > 1 && view.now + prof.latencyFor(k) > t_exp1)
        --k;
    if (k < q) {
        action.execute = k;
        return action;
    }

    // T_max_wait(q+1) = T_exp(1) - T_process(q+1). Waiting past it
    // would endanger the head query if one more query joined.
    const Time t_max_wait = t_exp1 - prof.latencyFor(q + 1);
    if (view.now >= t_max_wait) {
        action.execute = q;
        return action;
    }
    action.wake_at = t_max_wait;
    return action;
}

BatchAction
StaticBatching::decide(const WorkerView& view)
{
    BatchAction action;
    const auto& queue = *view.queue;
    if (queue.empty())
        return action;
    int cap = std::max(
        1, std::min(batch_size_, view.profile->max_batch > 0
                                     ? view.profile->max_batch
                                     : 1));
    action.execute =
        std::min(cap, static_cast<int>(queue.size()));
    return action;
}

}  // namespace proteus
