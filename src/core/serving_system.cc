#include "core/serving_system.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "baselines/aimd_batching.h"
#include "common/alloc/alloc_counter.h"
#include "baselines/clipper.h"
#include "baselines/infaas.h"
#include "baselines/nexus_batching.h"
#include "baselines/sommelier.h"
#include "common/logging.h"
#include "core/batching.h"
#include "pipeline/planner.h"
#include <cstdlib>

namespace proteus {

namespace {

/**
 * Query-lifecycle fan-out used when observability is on: the metrics
 * collector stays the primary sink (results are identical with obs
 * off), the SLO monitor passively shadows every terminal outcome.
 */
class ObsFanout : public QueryObserver
{
  public:
    ObsFanout(QueryObserver* primary, obs::SloMonitor* slo,
              obs::TailReservoir* tail)
        : primary_(primary), slo_(slo), tail_(tail)
    {}

    void onArrival(const Query& query) override
    {
        primary_->onArrival(query);
    }

    void
    onFinished(const Query& query) override
    {
        primary_->onFinished(query);
        const bool violated = query.violatedSlo();
        slo_->onOutcome(query.family, violated);
        // Sample the tail: by the time the fanout sees a pipeline
        // query it is terminal and remapped to the entry family, so
        // the reservoir holds end-to-end violators only.
        tail_->offer(query.id, violated);
    }

  private:
    QueryObserver* primary_;
    obs::SloMonitor* slo_;
    obs::TailReservoir* tail_;
};

/**
 * Terminal stage of the observer chain: after every sink has seen the
 * outcome, the query's pool slot is recycled. This is what keeps
 * memory bounded on long traces — a finished query's storage is
 * reused by a later arrival instead of accumulating.
 */
class PoolReleaseObserver : public QueryObserver
{
  public:
    PoolReleaseObserver(QueryObserver* inner,
                        alloc::ObjectPool<Query>* pool)
        : inner_(inner), pool_(pool)
    {}

    void onArrival(const Query& query) override
    {
        inner_->onArrival(query);
    }

    void
    onFinished(const Query& query) override
    {
        inner_->onFinished(query);
        // The pool owns the storage; observers see const refs, but the
        // lifecycle ends here and ownership returns to the pool.
        pool_->release(const_cast<Query*>(&query));  // NOLINT-PROTEUS(S1): pool owns the non-const object; observer API is read-only by design
    }

  private:
    QueryObserver* inner_;
    alloc::ObjectPool<Query>* pool_;
};

}  // namespace

const char*
toString(AllocatorKind kind)
{
    switch (kind) {
      case AllocatorKind::ProteusIlp: return "proteus";
      case AllocatorKind::InfaasAccuracy: return "infaas-accuracy";
      case AllocatorKind::ClipperHT: return "clipper-ht";
      case AllocatorKind::ClipperHA: return "clipper-ha";
      case AllocatorKind::Sommelier: return "sommelier";
      case AllocatorKind::ProteusNoMS: return "proteus-w/o-ms";
      case AllocatorKind::ProteusNoQA: return "proteus-w/o-qa";
    }
    return "unknown";
}

const char*
toString(BatchingKind kind)
{
    switch (kind) {
      case BatchingKind::Proteus: return "proteus-accscale";
      case BatchingKind::ClipperAimd: return "clipper-aimd";
      case BatchingKind::NexusEarlyDrop: return "nexus-early-drop";
      case BatchingKind::StaticOne: return "static-1";
    }
    return "unknown";
}

ServingSystem::ServingSystem(const Cluster* cluster,
                             const ModelRegistry* registry,
                             SystemConfig config)
    : cluster_(cluster),
      registry_(registry),
      config_(config),
      cost_(*cluster, *registry),
      profiles_(profileModels(
          *registry, *cluster, cost_,
          ProfilerOptions{config.slo_multiplier,
                          config.slo_anchor_type,
                          config.max_batch_cap})),
      metrics_(&sim_, registry->numFamilies(),
               config.snapshot_interval),
      health_(cluster->numDevices())
{
    // Pipeline serving: compile the DAGs, derive end-to-end SLOs,
    // carve per-stage budgets and re-profile the stage families under
    // them — before the allocator reads profile capacity.
    if (!config_.pipelines.empty()) {
        std::string perr;
        if (!compilePipelines(config_.pipelines, *registry_,
                              &pipelines_, &perr)) {
            PROTEUS_FATAL("pipeline config: ", perr);
        }
        PipelinePlannerOptions popt;
        popt.slo_multiplier = config_.slo_multiplier;
        popt.slo_anchor_type = config_.slo_anchor_type;
        popt.joint = config_.pipeline_joint_planning;
        planPipelineBudgets(&pipelines_, *registry_, *cluster_, cost_,
                            popt);
        for (const CompiledPipeline& pipe : pipelines_.pipelines()) {
            for (const CompiledStage& st : pipe.stages) {
                reprofileFamilySlo(&profiles_, *registry_, *cluster_,
                                   cost_, st.family, st.budget,
                                   config_.max_batch_cap);
            }
        }
    }

    allocator_ = makeAllocator();

    // Observability: one tracer for the whole system, created only
    // when enabled so every hook below degrades to a null-pointer
    // test on the hot path. The SLO monitor and time-series recorder
    // are strictly passive (they observe, never steer), so the
    // simulated results are identical with observability on or off.
    observer_ = &metrics_;
    if (config_.obs.enabled) {
        tracer_ = std::make_unique<obs::Tracer>(config_.obs.ring_capacity,
                                                config_.obs.link_capacity);
        tail_reservoir_ = std::make_unique<obs::TailReservoir>(
            config_.obs.tail_exemplars, config_.seed);
        obs::SloMonitorOptions slo_opts;
        slo_opts.window = config_.obs.slo_window;
        slo_opts.buckets = config_.obs.slo_buckets;
        slo_opts.budget = config_.obs.slo_budget;
        slo_opts.burn_high = config_.obs.slo_burn_high;
        slo_opts.burn_low = config_.obs.slo_burn_low;
        slo_opts.min_count = config_.obs.slo_min_count;
        slo_monitor_ = std::make_unique<obs::SloMonitor>(&sim_, slo_opts);
        slo_monitor_->setTracer(tracer_.get());
        slo_monitor_->setRegistry(&obs_registry_);
        fanout_ = std::make_unique<ObsFanout>(
            &metrics_, slo_monitor_.get(), tail_reservoir_.get());
        observer_ = fanout_.get();
        obs::TimeSeriesOptions ts_opts;
        ts_opts.sample_interval = config_.obs.sample_interval;
        ts_opts.capacity = config_.obs.timeseries_capacity;
        timeseries_ =
            std::make_unique<obs::TimeSeriesRecorder>(&sim_, ts_opts);
    }
    // Terminal observer stage: recycle finished queries into the pool
    // after the metrics / SLO sinks ran.
    pool_release_ =
        std::make_unique<PoolReleaseObserver>(observer_, &query_pool_);
    observer_ = pool_release_.get();

    // Stage router: outermost, so intermediate pipeline-stage
    // completions are intercepted and forwarded before the metrics
    // sinks count them or the pool release recycles the slot. The
    // forwarder is a raw function pointer + context (no per-query
    // allocation); the hop itself is deferred one zero-delay event in
    // forwardQuery() because the completion that triggers it is still
    // inside Worker::finishBatch.
    if (!pipelines_.empty()) {
        stage_router_ =
            std::make_unique<StageRouter>(observer_, &pipelines_);
        stage_router_->setTracer(tracer_.get());
        stage_router_->setForwarder(
            [](void* ctx, Query* q) {
                static_cast<ServingSystem*>(ctx)->forwardQuery(q);
            },
            this);
        observer_ = stage_router_.get();
    }

    // One worker per device. Requeued queries (variant swaps, stale
    // routing) are re-submitted through the family's load balancer on
    // the next simulator step to avoid same-instant routing loops.
    for (const Device& dev : cluster_->devices()) {
        auto requeue = [this](Query* q) {
            sim_.scheduleAfter(millis(1.0), [this, q] {
                if (q->finished())
                    return;
                if (sim_.now() > q->deadline) {
                    q->status = QueryStatus::Dropped;
                    q->completion = sim_.now();
                    if (tracer_)
                        traceQueryEnd(tracer_.get(), *q);
                    observer_->onFinished(*q);
                    return;
                }
                // Resubmit without re-counting the arrival.
                balancers_[q->family]->resubmit(q);
            });
        };
        auto worker = std::make_unique<Worker>(
            &sim_, cluster_, dev.id, registry_, &cost_, &profiles_,
            observer_, requeue, config_.latency_jitter_frac,
            config_.seed);
        worker->setBatchingPolicy(makeBatchingPolicy());
        worker->setTracer(tracer_.get());
        worker->setHealthTracker(&health_);
        worker->setLoadFailureAlarm([this](DeviceId) {
            // A failed load leaves planned capacity unhosted: replan.
            controller_->notifyCapacityChange();
        });
        workers_.push_back(std::move(worker));
    }

    // One load balancer per registered application (query type).
    for (FamilyId f = 0; f < registry_->numFamilies(); ++f) {
        auto lb = std::make_unique<LoadBalancer>(
            &sim_, f, observer_, config_.monitor_window);
        lb->setTracer(tracer_.get());
        balancers_.push_back(std::move(lb));
    }

    controller_ = std::make_unique<Controller>(
        &sim_, allocator_.get(), [this] { return demandEstimate(); },
        [this](const Allocation& plan) { applyPlan(plan); },
        ControllerOptions{config_.control_period, seconds(5.0)});

    controller_->setAvailabilityProbe(
        [this] { return health_.downMask(); });

    if (config_.obs.enabled)
        controller_->setObs(tracer_.get(), &obs_registry_);

    for (auto& lb : balancers_) {
        lb->setBurstAlarm([this] { controller_->requestReallocation(); },
                          config_.burst_threshold);
    }

    // Fault injection: the injector owns scheduling and the health
    // state machine; these hooks apply the consequences to the data
    // path (workers), the control path (failure alarms) and the
    // metrics pipeline (fault windows).
    if (!config_.faults.empty()) {
        FaultHooks hooks;
        hooks.on_crash = [this](DeviceId d) {
            double lost = 0.0;
            if (auto v = workers_[d]->hostedVariant()) {
                lost = profiles_.get(*v, workers_[d]->deviceType())
                           .peak_qps;
            }
            metrics_.onDeviceDown(d, lost);
            workers_[d]->crash();
            controller_->notifyCapacityChange();
        };
        hooks.on_recovery = [this](DeviceId d) {
            metrics_.onDeviceUp(d);
            workers_[d]->recover();
            controller_->notifyCapacityChange();
        };
        hooks.on_stall = [this](DeviceId d, double factor,
                                Duration window) {
            workers_[d]->setStall(factor, window);
        };
        hooks.on_load_fail = [this](DeviceId d) {
            workers_[d]->failNextLoad();
        };
        injector_ = std::make_unique<FaultInjector>(
            &sim_, &health_, std::move(hooks), config_.faults);
    }

    if (timeseries_)
        registerTimeSeriesChannels();
}

ServingSystem::~ServingSystem() = default;

void
ServingSystem::registerTimeSeriesChannels()
{
    obs::TimeSeriesRecorder* ts = timeseries_.get();

    // Per-device utilization (busy-time fraction of the interval) and
    // instantaneous queue depth.
    for (DeviceId d = 0; d < workers_.size(); ++d) {
        Worker* w = workers_[d].get();
        const std::string prefix = "device." + std::to_string(d) + ".";
        ts->addCounterRate(prefix + "util",
                           [w] { return toSeconds(w->busyTime()); });
        ts->addProbe(prefix + "queue", [w] {
            return static_cast<double>(w->queueLength());
        });
    }

    // Per-family rates derived from the collector's live cumulative
    // counters, plus instantaneous depth/quality probes.
    for (FamilyId f = 0; f < registry_->numFamilies(); ++f) {
        const std::string prefix = "family." + std::to_string(f) + ".";
        const MetricsCollector* mc = &metrics_;
        ts->addCounterRate(prefix + "arrival_qps", [mc, f] {
            return static_cast<double>(mc->familyTotals()[f].arrivals);
        });
        ts->addCounterRate(prefix + "throughput_qps", [mc, f] {
            return static_cast<double>(mc->familyTotals()[f].completed());
        });
        ts->addCounterRate(prefix + "violation_qps", [mc, f] {
            return static_cast<double>(
                mc->familyTotals()[f].violations());
        });
        LoadBalancer* lb = balancers_[f].get();
        ts->addCounterRate(prefix + "shed_qps", [lb] {
            return static_cast<double>(lb->shed());
        });
        ts->addProbe(prefix + "queue", [this, f] {
            double depth = 0.0;
            for (const auto& w : workers_) {
                if (auto v = w->hostedVariant()) {
                    if (registry_->familyOf(*v) == f)
                        depth += static_cast<double>(w->queueLength());
                }
            }
            return depth;
        });
        // Interval mean batch size over the workers currently hosting
        // the family: ratio of executed-query/batch deltas. Workers
        // that swapped families mid-interval contribute a few foreign
        // batches to the delta — telemetry-grade, not an invariant.
        auto batch_last =
            std::make_shared<std::pair<std::uint64_t, std::uint64_t>>();
        ts->addProbe(prefix + "batch_size", [this, f, batch_last] {
            std::uint64_t queries = 0, batches = 0;
            for (const auto& w : workers_) {
                if (auto v = w->hostedVariant()) {
                    if (registry_->familyOf(*v) == f) {
                        queries += w->batchedQueries();
                        batches += w->batches();
                    }
                }
            }
            const std::uint64_t dq = queries - batch_last->first;
            const std::uint64_t db = batches - batch_last->second;
            *batch_last = {queries, batches};
            return db ? static_cast<double>(dq) /
                            static_cast<double>(db)
                      : 0.0;
        });
        // Interval mean served accuracy: ratio of the collector's
        // cumulative accuracy-sum/completed deltas (exact).
        auto acc_last = std::make_shared<std::pair<double, double>>();
        ts->addProbe(prefix + "accuracy", [mc, f, acc_last] {
            const IntervalCounters& t = mc->familyTotals()[f];
            const double sum = t.accuracy_sum;
            const double done = static_cast<double>(t.completed());
            const double dsum = sum - acc_last->first;
            const double ddone = done - acc_last->second;
            *acc_last = {sum, done};
            return ddone > 0.0 ? dsum / ddone : 0.0;
        });
        obs::SloMonitor* slo = slo_monitor_.get();
        ts->addProbe(prefix + "violation_ratio_w",
                     [slo, f] { return slo->violationRatio(f); });
        ts->addProbe(prefix + "burn_rate",
                     [slo, f] { return slo->burnRate(f); });
    }

    // Cluster health and solver budget consumption. The solver gauges
    // are sampled from the registry, fed by the controller at every
    // decision (Controller::noteSolve).
    ts->addProbe("cluster.devices_down", [this] {
        return static_cast<double>(metrics_.devicesDown());
    });
    const obs::Gauge* nodes = obs_registry_.gauge("solver.last_nodes");
    ts->addProbe("solver.last_nodes",
                 [nodes] { return nodes->value(); });
    const obs::Gauge* iters =
        obs_registry_.gauge("solver.last_simplex_iters");
    ts->addProbe("solver.last_simplex_iters",
                 [iters] { return iters->value(); });
    const obs::Gauge* frac = obs_registry_.gauge("solver.work_frac");
    ts->addProbe("solver.work_frac",
                 [frac] { return frac->value(); });

    // Allocation health: live pooled queries. Returning to the same
    // baseline between epochs is the no-leak invariant (ISSUE 6).
    ts->addProbe("alloc.pool_in_use", [this] {
        return static_cast<double>(query_pool_.in_use());
    });

    // Pipeline channels (registered only when pipelines exist, so
    // single-family timelines keep their exact channel set): per-
    // pipeline e2e completion rates plus per-stage forward/drop rates.
    if (stage_router_) {
        StageRouter* sr = stage_router_.get();
        for (PipelineId p = 0; p < pipelines_.size(); ++p) {
            const std::string prefix =
                "pipeline." + std::to_string(p) + ".";
            ts->addCounterRate(prefix + "e2e_served_qps", [sr, p] {
                return static_cast<double>(sr->stats(p).served);
            });
            ts->addCounterRate(prefix + "e2e_late_qps", [sr, p] {
                return static_cast<double>(sr->stats(p).served_late);
            });
            ts->addCounterRate(prefix + "e2e_dropped_qps", [sr, p] {
                return static_cast<double>(sr->stats(p).dropped);
            });
            const std::size_t stages =
                pipelines_.pipeline(p).stages.size();
            for (std::size_t s = 0; s < stages; ++s) {
                const std::string sp =
                    prefix + "stage." + std::to_string(s) + ".";
                ts->addCounterRate(sp + "forward_qps", [sr, p, s] {
                    return static_cast<double>(
                        sr->stats(p).stages[s].forwarded);
                });
                ts->addCounterRate(sp + "drop_qps", [sr, p, s] {
                    return static_cast<double>(
                        sr->stats(p).stages[s].dropped);
                });
            }
        }
    }
}

std::unique_ptr<BatchingPolicy>
ServingSystem::makeBatchingPolicy() const
{
    switch (config_.batching) {
      case BatchingKind::Proteus:
        return std::make_unique<ProteusBatching>();
      case BatchingKind::ClipperAimd:
        return std::make_unique<AimdBatching>();
      case BatchingKind::NexusEarlyDrop:
        return std::make_unique<NexusBatching>();
      case BatchingKind::StaticOne:
        return std::make_unique<StaticBatching>(1);
    }
    PROTEUS_PANIC("unhandled batching kind");
}

std::unique_ptr<Allocator>
ServingSystem::makeAllocator()
{
    IlpAllocatorOptions ilp;
    ilp.decision_delay = config_.ilp_decision_delay;
    ilp.milp_work_budget = config_.milp_work_budget;
    ilp.milp_time_limit_sec = config_.milp_time_limit_sec;
    ilp.planning_headroom = config_.planning_headroom;
    switch (config_.allocator) {
      case AllocatorKind::ProteusIlp:
        return std::make_unique<IlpAllocator>(registry_, cluster_,
                                              &profiles_, ilp);
      case AllocatorKind::ProteusNoMS:
        ilp.fix_most_accurate = true;
        return std::make_unique<IlpAllocator>(registry_, cluster_,
                                              &profiles_, ilp);
      case AllocatorKind::ProteusNoQA:
        ilp.uniform_assignment = true;
        return std::make_unique<IlpAllocator>(registry_, cluster_,
                                              &profiles_, ilp);
      case AllocatorKind::InfaasAccuracy: {
        InfaasOptions iopt;
        iopt.headroom = config_.planning_headroom;
        return std::make_unique<InfaasAllocator>(registry_, cluster_,
                                                 &profiles_, iopt);
      }
      case AllocatorKind::ClipperHT:
        return std::make_unique<ClipperAllocator>(
            registry_, cluster_, &profiles_,
            ClipperMode::HighThroughput, ilp);
      case AllocatorKind::ClipperHA:
        return std::make_unique<ClipperAllocator>(
            registry_, cluster_, &profiles_,
            ClipperMode::HighAccuracy, ilp);
      case AllocatorKind::Sommelier:
        ilp.decision_delay = seconds(1.0);
        return std::make_unique<SommelierAllocator>(
            registry_, cluster_, &profiles_, ilp);
    }
    PROTEUS_PANIC("unhandled allocator kind");
}

std::vector<double>
ServingSystem::demandEstimate() const
{
    std::vector<double> qps(registry_->numFamilies(), 0.0);
    for (std::size_t f = 0; f < balancers_.size(); ++f)
        qps[f] = balancers_[f]->windowQps();
    return qps;
}

void
ServingSystem::applyPlan(const Allocation& plan)
{
    // Debug tracing: PROTEUS_TRACE_PLAN=1 logs every applied plan.
    static const bool trace_plan = getenv("PROTEUS_TRACE_PLAN");
    if (trace_plan) {
        double cap = 0.0;
        for (double ccc : plan.family_capacity)
            cap += ccc;
        double est = 0.0;
        for (double d : demandEstimate())
            est += d;
        int swaps = 0;
        for (DeviceId d = 0; d < workers_.size(); ++d) {
            if (workers_[d]->hostedVariant() != plan.hosting[d])
                ++swaps;
        }
        warn("[plan] est_now=", est, " planned_cap=", cap,
             " swaps=", swaps, " exp_acc=", plan.expected_accuracy);
    }
    // Hosting changes first (loads start immediately) ... Each worker
    // is stamped with the decision number this plan came from, so the
    // batches it executes (and the loads it starts) link back to the
    // controller epoch that sized them.
    const std::uint64_t epoch =
        controller_ ? controller_->appliedDecision() : 0;
    for (DeviceId d = 0; d < workers_.size(); ++d) {
        workers_[d]->setPlanEpoch(epoch);
        workers_[d]->hostVariant(plan.hosting[d], first_apply_);
    }

    // Decision boundary: everything staged for the previous epoch is
    // dead, so the frame arena resets wholesale and the share lists
    // below reuse its high-water blocks.
    epoch_arena_.reset();

    // ... then the query-assignment policy for every application.
    for (FamilyId f = 0; f < balancers_.size(); ++f) {
        alloc::ArenaVector<LoadBalancer::WorkerShare> shares(
            &epoch_arena_);
        for (const DeviceShare& s : plan.routing[f])
            shares.push_back({workers_[s.device].get(), s.weight});
        balancers_[f]->setRouting(shares.begin(), shares.size());
        // Burst alarms compare observed demand against the demand the
        // plan was sized for, so the controller reacts before the
        // provisioned headroom is exhausted.
        double basis = f < plan.planned_demand.size()
                           ? plan.planned_demand[f]
                           : 0.0;
        if (basis <= 0.0 && f < plan.family_capacity.size())
            basis = plan.family_capacity[f];
        balancers_[f]->setPlannedCapacity(basis);
    }
    first_apply_ = false;
}

const Allocation&
ServingSystem::currentPlan() const
{
    return controller_->current();
}

void
ServingSystem::injectArrivals()
{
    // Chained arrival injection: one pending event at a time. Queries
    // draw recycled slots from the pool; ids stay monotonic via the
    // dedicated counter (byte-identical to the old grow-only arena).
    const auto& events = active_trace_->events();
    while (trace_cursor_ < events.size() &&
           events[trace_cursor_].at <= sim_.now()) {
        const TraceEvent& e = events[trace_cursor_++];
        Query* q = query_pool_.acquire();
        *q = Query{};  // reset whatever the previous occupant left
        q->id = ++next_query_id_;
        q->family = e.family;
        q->arrival = sim_.now();
        q->deadline = sim_.now() + profiles_.slo(e.family);
        if (!pipelines_.empty()) {
            const PipelineId p = pipelines_.pipelineOf(e.family);
            if (p != kInvalidId) {
                const CompiledPipeline& pipe = pipelines_.pipeline(p);
                q->pipeline = p;
                // Traces normally address the entry family; an
                // arrival at a later stage's family enters there.
                q->stage = pipelines_.stageOf(e.family);
                q->last_stage =
                    static_cast<StageIndex>(pipe.stages.size() - 1);
                // One deadline for the whole traversal: the e2e SLO.
                q->deadline = sim_.now() + pipe.slo;
            }
        }
        balancers_[e.family]->submit(q);
    }
    if (trace_cursor_ < events.size()) {
        sim_.scheduleAt(events[trace_cursor_].at,
                        [this] { injectArrivals(); });
    }
}

void
ServingSystem::forwardQuery(Query* query)
{
    // Deferred one zero-delay event: the completion that triggered
    // this hop is still inside Worker::finishBatch, which owns the
    // in-flight batch state. Same-time FIFO keeps runs deterministic.
    sim_.scheduleAfter(0, [this, query] {
        balancers_[query->family]->forward(query);
    });
}

Time
ServingSystem::beginRun(const Trace& trace,
                        std::vector<double> planning_demand)
{
    PROTEUS_ASSERT(!ran_, "a ServingSystem runs exactly one trace");
    ran_ = true;

    if (planning_demand.empty()) {
        Time window = std::min<Time>(seconds(60.0),
                                     std::max<Time>(trace.endTime(), 1));
        planning_demand =
            trace.demand(registry_->numFamilies(), 0, window);
    }
    PROTEUS_ASSERT(planning_demand.size() == registry_->numFamilies(),
                   "planning demand size mismatch");

    // Demand propagation: every query admitted at a pipeline's entry
    // stage eventually reaches each downstream stage, but the trace
    // only carries entry-family arrivals. Fold the entry demand into
    // the downstream families so the allocator provisions them too.
    for (const CompiledPipeline& pipe : pipelines_.pipelines()) {
        const double entry =
            planning_demand[pipe.stages.front().family];
        for (std::size_t s = 1; s < pipe.stages.size(); ++s) {
            double& d = planning_demand[pipe.stages[s].family];
            d = std::max(d, entry);
        }
    }

    metrics_.start();
    if (timeseries_)
        timeseries_->start();
    controller_->start(planning_demand);

    active_trace_ = &trace;
    trace_cursor_ = 0;
    sim_.reserveEvents(64);
    if (!trace.events().empty()) {
        sim_.scheduleAt(trace.events().front().at,
                        [this] { injectArrivals(); });
    }

    // Run past the end of the trace so in-flight queries drain; the
    // controller's periodic task keeps the event queue non-empty, so
    // a horizon is required.
    Duration max_slo = 0;
    for (FamilyId f = 0; f < registry_->numFamilies(); ++f)
        max_slo = std::max(max_slo, profiles_.slo(f));
    horizon_ = trace.endTime() + 4 * max_slo + seconds(5.0);
    if (injector_)
        injector_->arm(horizon_);
    return horizon_;
}

void
ServingSystem::advanceTo(Time at)
{
    PROTEUS_ASSERT(ran_ && !finished_, "advanceTo outside a run");
    sim_.run(std::min(at, horizon_));
}

RunResult
ServingSystem::finishRun()
{
    PROTEUS_ASSERT(ran_ && !finished_, "finishRun outside a run");
    finished_ = true;

    // Account for anything still stuck in queues at the horizon:
    // collect the still-live pool slots, then finish them in id order
    // — the exact order the old insertion-ordered arena walked them.
    drain_scratch_.clear();
    query_pool_.forEachMutable([this](Query& q) {
        if (!q.finished())
            drain_scratch_.push_back(&q);
    });
    std::sort(drain_scratch_.begin(), drain_scratch_.end(),
              [](const Query* a, const Query* b) { return a->id < b->id; });
    for (Query* q : drain_scratch_) {
        q->status = QueryStatus::Dropped;
        q->completion = sim_.now();
        if (tracer_)
            traceQueryEnd(tracer_.get(), *q);
        observer_->onFinished(*q);
    }
    drain_scratch_.clear();
    // Every query the trace injected must be back in the pool now;
    // anything still out is a lifecycle leak.
    PROTEUS_ASSERT(query_pool_.in_use() == 0,
                   "query pool leak: ", query_pool_.in_use(),
                   " slots still in use after drain");
    metrics_.finalize();
    if (timeseries_)
        timeseries_->finalize();

    // End-of-run registry summary (counters are deterministic; the
    // wall-time histograms were fed live by the controller).
    if (config_.obs.enabled) {
        const RunSummary& sum = metrics_.summary();
        obs_registry_.counter("queries.arrivals")->inc(sum.arrivals);
        obs_registry_.counter("queries.served")->inc(sum.served);
        obs_registry_.counter("queries.served_late")->inc(sum.served_late);
        obs_registry_.counter("queries.dropped")->inc(sum.dropped);
        obs_registry_.gauge("trace.spans_recorded")
            ->set(tracer_ ? static_cast<double>(tracer_->recorded()) : 0.0);
        obs_registry_.gauge("trace.spans_dropped")
            ->set(tracer_ ? static_cast<double>(tracer_->dropped()) : 0.0);
        obs_registry_.gauge("trace.links_recorded")
            ->set(tracer_
                      ? static_cast<double>(tracer_->linksRecorded())
                      : 0.0);
        obs_registry_.gauge("trace.links_dropped")
            ->set(tracer_
                      ? static_cast<double>(tracer_->linksDropped())
                      : 0.0);
        // Allocation accounting: pool occupancy must be back to zero
        // (asserted above); capacity records the in-flight high-water
        // mark; heap_allocs is non-zero only when the counting
        // operator new is linked (tests/bench).
        obs_registry_.gauge("alloc.pool_in_use")
            ->set(static_cast<double>(query_pool_.in_use()));
        obs_registry_.gauge("alloc.pool_capacity")
            ->set(static_cast<double>(query_pool_.capacity()));
        obs_registry_.gauge("alloc.heap_allocs")
            ->set(static_cast<double>(alloc::heapAllocs()));
    }

    RunResult result;
    result.summary = metrics_.summary();
    result.timeline = metrics_.timeline();
    result.family_totals = metrics_.familyTotals();
    result.reallocations = controller_->reallocations();
    std::uint64_t batches = 0, batched = 0;
    for (const auto& w : workers_) {
        batches += w->batches();
        batched +=
            static_cast<std::uint64_t>(w->meanBatchSize() *
                                       static_cast<double>(w->batches()) +
                                       0.5);
    }
    result.mean_batch_size =
        batches ? static_cast<double>(batched) /
                      static_cast<double>(batches)
                : 0.0;
    for (const auto& lb : balancers_)
        result.shed += lb->shed();
    result.fault_windows = metrics_.faultWindows();
    if (injector_)
        result.faults_injected = injector_->injected();
    if (slo_monitor_)
        result.slo_alarms = slo_monitor_->alarmsRaised();
    if (stage_router_) {
        result.forwarded = stage_router_->forwarded();
        for (PipelineId p = 0; p < pipelines_.size(); ++p) {
            PipelineRunStats prs;
            prs.name = pipelines_.pipeline(p).name;
            prs.stats = stage_router_->stats(p);
            result.pipelines.push_back(std::move(prs));
        }
    }
    return result;
}

RunResult
ServingSystem::run(const Trace& trace,
                   std::vector<double> planning_demand)
{
    const Time horizon = beginRun(trace, std::move(planning_demand));
    advanceTo(horizon);
    return finishRun();
}

obs::TraceNameTables
ServingSystem::traceNames() const
{
    obs::TraceNameTables names;
    names.families.reserve(registry_->numFamilies());
    for (FamilyId f = 0; f < registry_->numFamilies(); ++f)
        names.families.push_back(registry_->family(f).name);
    names.variants.reserve(registry_->numVariants());
    for (VariantId v = 0; v < registry_->numVariants(); ++v)
        names.variants.push_back(registry_->variant(v).name);
    for (const CompiledPipeline& pipe : pipelines_.pipelines()) {
        obs::TraceNameTables::Pipeline p;
        p.name = pipe.name;
        for (const CompiledStage& st : pipe.stages) {
            p.families.push_back(st.family);
            p.stages.push_back(st.name);
        }
        names.pipelines.push_back(std::move(p));
    }
    if (tail_reservoir_)
        names.tail_exemplars = tail_reservoir_->exemplars();
    return names;
}

}  // namespace proteus
