/**
 * @file
 * Resource-allocation plan and the allocator strategy interface.
 *
 * An Allocation is the joint output of the paper's three sub-problems
 * (§4): model selection + placement ({x_dm}: which variant each
 * device hosts) and query assignment ({y_dq}: what fraction of each
 * query type goes to each device). Allocators are the pluggable
 * policies: the Proteus MILP, the INFaaS-Accuracy greedy heuristic,
 * Clipper's static plans, Sommelier's selection-only adaptation, and
 * the ablated variants of §6.5.
 */

#ifndef PROTEUS_CORE_ALLOCATION_H_
#define PROTEUS_CORE_ALLOCATION_H_

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace proteus {

/** One routing share: fraction of a family's demand to one device. */
struct DeviceShare {
    DeviceId device = kInvalidId;
    double weight = 0.0;  ///< y_{d,q} in [0, 1]
};

/** A complete resource-allocation plan. */
struct Allocation {
    /** hosting[d]: variant hosted on device d (nullopt = idle). */
    std::vector<std::optional<VariantId>> hosting;
    /** routing[f]: shares of family f's demand (sum <= 1). */
    std::vector<std::vector<DeviceShare>> routing;
    /**
     * Fraction of the requested demand the plan serves (< 1 after
     * the infeasibility backoff of §4 sheds load).
     */
    double planned_fraction = 1.0;
    /** Plan-predicted effective accuracy of served queries. */
    double expected_accuracy = 0.0;
    /** Plan-predicted serving throughput in QPS. */
    double planned_qps = 0.0;
    /**
     * Peak capacity provisioned per family (QPS): the sum of
     * P(d, m, q) over hosted replicas.
     */
    std::vector<double> family_capacity;
    /**
     * Demand estimate (QPS per family) the plan was built for.
     * Monitors raise a burst alarm when observed demand exceeds this
     * by the configured threshold.
     */
    std::vector<double> planned_demand;

    /** @return total routed weight of family @p f (<= 1). */
    double
    routedFraction(FamilyId f) const
    {
        double w = 0.0;
        for (const auto& share : routing[f])
            w += share.weight;
        return w;
    }
};

/** Demand snapshot handed to an allocator. */
struct AllocationInput {
    /** Estimated demand per family in QPS. */
    std::vector<double> demand_qps;
    /** The plan currently in force (nullptr on the first call). */
    const Allocation* current = nullptr;
    /** Simulation time of the decision. */
    Time now = 0;
    /**
     * Failure mask from the health tracker: device_down[d] != 0 marks
     * device d dead — it must not be hosted or routed to. Empty means
     * every device is available. Failure-aware allocators (the
     * Proteus MILP) honour it; static baselines (Clipper) ignore it,
     * which is exactly the availability gap fig11_faults measures.
     */
    std::vector<char> device_down;

    /** @return true when device @p d is marked down. */
    bool
    isDown(DeviceId d) const
    {
        return d < device_down.size() && device_down[d] != 0;
    }
};

/**
 * Instrumentation of an allocator's most recent decision, consumed by
 * the controller's observability spans (DESIGN.md, "Observability").
 * Heuristic allocators leave the solver fields at zero.
 */
struct AllocatorSolveMeta {
    /** Wall-clock seconds the decision took to compute. */
    double wall_seconds = 0.0;
    /** Branch-and-bound nodes explored (MILP allocators). */
    std::int64_t nodes = 0;
    /** Simplex iterations across all LP relaxations. */
    std::int64_t simplex_iterations = 0;
    /** Final relative incumbent/bound gap (0 when proven optimal). */
    double gap = 0.0;
    /** Infeasibility backoff steps taken (§4 demand scale-down). */
    int backoff_steps = 0;
    /**
     * Deterministic work budget (simplex iterations) the solve ran
     * under; 0 when unlimited. Lets the observability layer report
     * budget consumption (simplex_iterations / work_budget).
     */
    std::int64_t work_budget = 0;
};

/** Strategy interface for resource allocation. */
class Allocator
{
  public:
    virtual ~Allocator() = default;

    /** Compute a plan for the given demand. */
    virtual Allocation allocate(const AllocationInput& input) = 0;

    /**
     * Instrumentation of the most recent allocate() call. The default
     * (all-zero) suits heuristic allocators with no solver phase.
     */
    virtual AllocatorSolveMeta lastSolveMeta() const { return {}; }

    /**
     * Decision latency to simulate between invoking the allocator and
     * the plan taking effect. The Proteus MILP runs off the critical
     * path and takes seconds (§6.8, mean 4.2 s); INFaaS's heuristic
     * is effectively instant because it runs on the query path.
     */
    virtual Duration decisionDelay() const { return 0; }

    /** Human-readable allocator name. */
    virtual const char* name() const = 0;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_ALLOCATION_H_
