#include "core/ilp_allocator.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/clock.h"
#include "common/logging.h"

namespace proteus {

IlpAllocator::IlpAllocator(const ModelRegistry* registry,
                           const Cluster* cluster,
                           const ProfileStore* profiles,
                           IlpAllocatorOptions options)
    : registry_(registry),
      cluster_(cluster),
      profiles_(profiles),
      options_(options)
{}

namespace {

/**
 * Exact objective of a fixed integer hosting plan: given per-(type,
 * variant) device counts, the optimal served-QPS assignment fills each
 * family's demand onto its highest-accuracy hosted capacity first
 * (the only coupling across families is the hosting budget, which the
 * counts already satisfy). Returns the accuracy-weighted served sum
 * minus the replica tie-penalty, or infeasible when some family's
 * capacity cannot cover its demand.
 */
struct CountsEval {
    bool feasible = false;
    double objective = 0.0;
};

struct CountsContext {
    const ModelRegistry* registry;
    const ProfileStore* profiles;
    double replica_penalty;
    /** Variants of family f sorted by accuracy descending. */
    std::vector<std::vector<VariantId>> by_acc_desc;
    /** Churn damping (may be null): bonus and current counts. */
    const std::vector<std::vector<double>>* keep_bonus = nullptr;
    const std::vector<std::vector<int>>* cur_counts = nullptr;
};

double
familyValue(const CountsContext& ctx,
            const std::vector<std::vector<int>>& count, FamilyId f,
            double demand, bool* feasible)
{
    double remaining = demand;
    double value = 0.0;
    for (VariantId m : ctx.by_acc_desc[f]) {
        if (remaining <= 1e-9)
            break;
        double acc = ctx.registry->variant(m).accuracy;
        for (std::size_t t = 0; t < count.size(); ++t) {
            if (count[t][m] <= 0)
                continue;
            double cap =
                ctx.profiles->get(m, static_cast<DeviceTypeId>(t))
                    .peak_qps *
                count[t][m];
            double used = std::min(cap, remaining);
            value += acc * used;
            remaining -= used;
            if (remaining <= 1e-9)
                break;
        }
    }
    *feasible = remaining <= 1e-6 * std::max(1.0, demand);
    return value;
}

CountsEval
evalCounts(const CountsContext& ctx,
           const std::vector<std::vector<int>>& count,
           const std::vector<double>& demand)
{
    CountsEval out;
    out.feasible = true;
    for (std::size_t f = 0; f < demand.size(); ++f) {
        if (demand[f] <= 0.0)
            continue;
        bool ok = false;
        out.objective += familyValue(ctx, count,
                                     static_cast<FamilyId>(f),
                                     demand[f], &ok);
        out.feasible &= ok;
    }
    int replicas = 0;
    for (const auto& row : count)
        for (int c : row)
            replicas += c;
    out.objective -= ctx.replica_penalty * replicas;
    if (ctx.keep_bonus && ctx.cur_counts) {
        for (std::size_t t = 0; t < count.size(); ++t) {
            for (std::size_t m = 0; m < count[t].size(); ++m) {
                int kept = std::min(count[t][m], (*ctx.cur_counts)[t][m]);
                if (kept > 0)
                    out.objective += (*ctx.keep_bonus)[t][m] * kept;
            }
        }
    }
    return out;
}

/** Greedy served-QPS assignment for fixed counts (highest acc first). */
std::vector<std::vector<double>>
greedyFill(const CountsContext& ctx,
           const std::vector<std::vector<int>>& count,
           const std::vector<double>& demand)
{
    std::vector<std::vector<double>> qps(
        count.size(), std::vector<double>(count.empty() ? 0
                                                        : count[0].size(),
                                          0.0));
    for (std::size_t f = 0; f < demand.size(); ++f) {
        double remaining = demand[f];
        for (VariantId m : ctx.by_acc_desc[f]) {
            if (remaining <= 1e-12)
                break;
            for (std::size_t t = 0; t < count.size(); ++t) {
                if (count[t][m] <= 0)
                    continue;
                double cap =
                    ctx.profiles->get(m, static_cast<DeviceTypeId>(t))
                        .peak_qps *
                    count[t][m];
                double used = std::min(cap, remaining);
                qps[t][m] += used;
                remaining -= used;
                if (remaining <= 1e-12)
                    break;
            }
        }
    }
    return qps;
}

}  // namespace

int
IlpAllocator::availableOfType(DeviceTypeId t) const
{
    if (!down_)
        return cluster_->countOfType(t);
    int n = 0;
    for (const Device& d : cluster_->devices()) {
        if (d.type == t &&
            (d.id >= down_->size() || (*down_)[d.id] == 0))
            ++n;
    }
    return n;
}

std::vector<DeviceId>
IlpAllocator::availableDevicesOfType(DeviceTypeId t) const
{
    std::vector<DeviceId> out = cluster_->devicesOfType(t);
    if (!down_)
        return out;
    out.erase(std::remove_if(out.begin(), out.end(),
                             [this](DeviceId d) {
                                 return d < down_->size() &&
                                        (*down_)[d] != 0;
                             }),
              out.end());
    return out;
}

IlpAllocator::TypeSolution
IlpAllocator::solveAggregated(const std::vector<double>& demand,
                              const std::vector<std::vector<int>>* cur)
{
    const std::size_t T = cluster_->numTypes();
    const std::size_t M = registry_->numVariants();
    const std::size_t F = registry_->numFamilies();

    LinearProgram lp(ObjSense::Maximize);
    // Tiny penalty on hosted replicas: prefer plans that leave
    // devices idle when capacity allows, reducing churn and energy.
    constexpr double kReplicaPenalty = 1e-4;

    // Variable layout bookkeeping: only (t, m) pairs with positive
    // capacity get columns.
    std::vector<std::vector<int>> n_col(
        T, std::vector<int>(M, -1));
    std::vector<std::vector<int>> w_col(
        T, std::vector<int>(M, -1));

    for (std::size_t t = 0; t < T; ++t) {
        int nt = availableOfType(static_cast<DeviceTypeId>(t));
        if (nt == 0)
            continue;
        for (std::size_t m = 0; m < M; ++m) {
            const BatchProfile& prof = profiles_->get(
                static_cast<VariantId>(m), static_cast<DeviceTypeId>(t));
            if (!prof.usable())
                continue;
            FamilyId f = registry_->familyOf(static_cast<VariantId>(m));
            if (demand[f] <= 0.0)
                continue;
            if (options_.fix_most_accurate &&
                static_cast<VariantId>(m) != registry_->mostAccurate(f))
                continue;
            if (options_.variant_filter &&
                !options_.variant_filter(static_cast<VariantId>(m)))
                continue;
            // Dominance pruning: skip variants beaten by a sibling in
            // both accuracy and per-device throughput on this type.
            // They can never appear in an optimal plan, and fewer
            // integer columns keep the branch & bound fast.
            bool dominated = false;
            for (VariantId other : registry_->variantsOf(f)) {
                if (other == static_cast<VariantId>(m))
                    continue;
                if (options_.variant_filter &&
                    !options_.variant_filter(other))
                    continue;
                const BatchProfile& op = profiles_->get(
                    other, static_cast<DeviceTypeId>(t));
                const VariantSpec& ov = registry_->variant(other);
                const VariantSpec& mv =
                    registry_->variant(static_cast<VariantId>(m));
                if (op.usable() && ov.accuracy >= mv.accuracy &&
                    op.peak_qps >= prof.peak_qps &&
                    (ov.accuracy > mv.accuracy ||
                     op.peak_qps > prof.peak_qps)) {
                    dominated = true;
                    break;
                }
            }
            if (dominated)
                continue;
            n_col[t][m] = lp.addIntVariable(0.0, nt, -kReplicaPenalty);
            w_col[t][m] = lp.addVariable(
                0.0, kInf,
                registry_->variant(static_cast<VariantId>(m)).accuracy);
        }
    }

    // Churn damping: reward keeping a device on its current variant.
    // k[t][m] <= min(n[t][m], currently hosted count) earns the
    // accuracy-weighted capacity a reload would forfeit.
    std::vector<std::vector<int>> k_col(T, std::vector<int>(M, -1));
    std::vector<std::vector<double>> keep_bonus(
        T, std::vector<double>(M, 0.0));
    if (cur && options_.churn_damping > 0.0) {
        for (std::size_t t = 0; t < T; ++t) {
            for (std::size_t m = 0; m < M; ++m) {
                if (n_col[t][m] < 0 || (*cur)[t][m] <= 0)
                    continue;
                double peak =
                    profiles_->get(static_cast<VariantId>(m),
                                   static_cast<DeviceTypeId>(t))
                        .peak_qps;
                double load_sec = toSeconds(
                    options_.load_time_fn
                        ? options_.load_time_fn(
                              static_cast<DeviceTypeId>(t),
                              static_cast<VariantId>(m))
                        : seconds(0.3));
                double bonus = options_.churn_damping * 100.0 * peak *
                               load_sec / options_.churn_period_sec;
                if (bonus <= 0.0)
                    continue;
                keep_bonus[t][m] = bonus;
                k_col[t][m] = lp.addVariable(
                    0.0, (*cur)[t][m], bonus, "keep");
                lp.addConstraint(
                    {{k_col[t][m], 1.0}, {n_col[t][m], -1.0}},
                    RowSense::LessEqual, 0.0);
            }
        }
    }

    // Families whose demand cannot be served by any usable variant
    // (e.g. a pinned variant that meets no SLO anywhere) are shed
    // entirely rather than making the whole program infeasible.
    std::vector<double> eff_demand = demand;
    for (std::size_t f = 0; f < F; ++f) {
        bool servable = false;
        for (VariantId m :
             registry_->variantsOf(static_cast<FamilyId>(f))) {
            for (std::size_t t = 0; t < T; ++t)
                servable |= w_col[t][m] >= 0;
        }
        if (!servable)
            eff_demand[f] = 0.0;
    }

    // Eq. 1 (hosting): sum_m n[t][m] <= N_t.
    for (std::size_t t = 0; t < T; ++t) {
        std::vector<Coeff> coeffs;
        for (std::size_t m = 0; m < M; ++m) {
            if (n_col[t][m] >= 0)
                coeffs.emplace_back(n_col[t][m], 1.0);
        }
        if (!coeffs.empty()) {
            lp.addConstraint(std::move(coeffs), RowSense::LessEqual,
                             availableOfType(
                                 static_cast<DeviceTypeId>(t)));
        }
    }

    // Eq. 5 (capacity): w[t][m] <= P[t][m] * n[t][m].
    for (std::size_t t = 0; t < T; ++t) {
        for (std::size_t m = 0; m < M; ++m) {
            if (w_col[t][m] < 0)
                continue;
            double peak = profiles_->get(static_cast<VariantId>(m),
                                         static_cast<DeviceTypeId>(t))
                              .peak_qps;
            lp.addConstraint(
                {{w_col[t][m], 1.0}, {n_col[t][m], -peak}},
                RowSense::LessEqual, 0.0);
        }
    }

    // Frozen placement (Sommelier / "w/o MP"): cap how many type-t
    // devices may host each family.
    if (!options_.family_quota.empty()) {
        for (std::size_t t = 0; t < T; ++t) {
            for (std::size_t f = 0; f < F; ++f) {
                std::vector<Coeff> coeffs;
                for (VariantId m :
                     registry_->variantsOf(static_cast<FamilyId>(f))) {
                    if (n_col[t][m] >= 0)
                        coeffs.emplace_back(n_col[t][m], 1.0);
                }
                if (!coeffs.empty()) {
                    lp.addConstraint(std::move(coeffs),
                                     RowSense::LessEqual,
                                     options_.family_quota[t][f]);
                }
            }
        }
    }

    // Eq. 6 (demand): sum w over the family's variants == s_f.
    bool any_demand = false;
    for (std::size_t f = 0; f < F; ++f) {
        if (eff_demand[f] <= 0.0)
            continue;
        std::vector<Coeff> coeffs;
        for (VariantId m : registry_->variantsOf(static_cast<FamilyId>(f))) {
            for (std::size_t t = 0; t < T; ++t) {
                if (w_col[t][m] >= 0)
                    coeffs.emplace_back(w_col[t][m], 1.0);
            }
        }
        if (coeffs.empty()) {
            // No usable variant at all for this family (e.g. the
            // pinned variant cannot meet the SLO on any device):
            // serve none of its demand instead of declaring the whole
            // problem infeasible. Its queries are shed at the router.
            continue;
        }
        lp.addConstraint(std::move(coeffs), RowSense::Equal,
                         eff_demand[f]);
        any_demand = true;
    }

    // Fairness extension (paper §7): reward the worst per-family
    // effective accuracy. t is bounded by each family's mean served
    // accuracy: sum A_m w >= t * s_f.
    if (options_.fairness_weight > 0.0) {
        double total_demand = 0.0;
        for (std::size_t f = 0; f < F; ++f)
            total_demand += eff_demand[f];
        if (total_demand > 0.0) {
            int t_col = lp.addVariable(
                0.0, 100.0,
                options_.fairness_weight * total_demand, "fair_t");
            for (std::size_t f = 0; f < F; ++f) {
                if (eff_demand[f] <= 0.0)
                    continue;
                std::vector<Coeff> coeffs;
                for (VariantId m : registry_->variantsOf(
                         static_cast<FamilyId>(f))) {
                    for (std::size_t t = 0; t < T; ++t) {
                        if (w_col[t][m] >= 0) {
                            coeffs.emplace_back(
                                w_col[t][m],
                                registry_->variant(m).accuracy);
                        }
                    }
                }
                coeffs.emplace_back(t_col, -eff_demand[f]);
                lp.addConstraint(std::move(coeffs),
                                 RowSense::GreaterEqual, 0.0);
            }
        }
    }

    TypeSolution out;
    out.count.assign(T, std::vector<int>(M, 0));
    out.qps.assign(T, std::vector<double>(M, 0.0));
    if (!any_demand) {
        out.feasible = true;  // nothing to serve
        return out;
    }

    // Warm-start hint, built in three steps:
    //  1. solve the LP relaxation and round the device counts with a
    //     per-budget repair (ceil in descending fractional order
    //     while the hosting/quota budgets allow, floor otherwise);
    //  2. improve the integer counts by local search, using the exact
    //     greedy evaluation of a fixed hosting plan (microseconds per
    //     move);
    //  3. synthesize the matching served-QPS values.
    // The result is typically within the MILP gap already, letting
    // branch & bound prune almost immediately.
    CountsContext ctx;
    ctx.registry = registry_;
    ctx.profiles = profiles_;
    ctx.replica_penalty = kReplicaPenalty;
    if (cur && options_.churn_damping > 0.0) {
        ctx.keep_bonus = &keep_bonus;
        ctx.cur_counts = cur;
    }
    ctx.by_acc_desc.resize(F);
    for (std::size_t f = 0; f < F; ++f) {
        auto vs = registry_->variantsOf(static_cast<FamilyId>(f));
        std::reverse(vs.begin(), vs.end());  // accuracy descending
        ctx.by_acc_desc[f] = std::move(vs);
    }
    // Only columns present in the MILP may get devices.
    auto col_ok = [&](std::size_t t, std::size_t m) {
        return n_col[t][m] >= 0;
    };

    std::vector<double> hint;
    if (options_.fairness_weight <= 0.0) {
        SimplexSolver splx;
        Solution relax = splx.solve(lp);
        if (relax.status == SolveStatus::Optimal) {
            // Step 1: budget-repair rounding of the LP counts.
            std::vector<std::vector<int>> count(
                T, std::vector<int>(M, 0));
            std::vector<int> budget(T);
            std::vector<std::vector<int>> quota_left;
            if (!options_.family_quota.empty())
                quota_left = options_.family_quota;
            for (std::size_t t = 0; t < T; ++t) {
                budget[t] =
                    availableOfType(static_cast<DeviceTypeId>(t));
                std::vector<std::pair<double, std::size_t>> fracs;
                for (std::size_t m = 0; m < M; ++m) {
                    if (!col_ok(t, m))
                        continue;
                    double v = relax.x[n_col[t][m]];
                    int fl = static_cast<int>(std::floor(v + 1e-9));
                    count[t][m] = fl;
                    budget[t] -= fl;
                    if (!quota_left.empty()) {
                        quota_left[t][registry_->familyOf(
                            static_cast<VariantId>(m))] -= fl;
                    }
                    if (v - fl > 1e-6)
                        fracs.emplace_back(v - fl, m);
                }
                std::sort(fracs.rbegin(), fracs.rend());
                for (const auto& [frac, m] : fracs) {
                    if (budget[t] <= 0)
                        break;
                    FamilyId f =
                        registry_->familyOf(static_cast<VariantId>(m));
                    if (!quota_left.empty() && quota_left[t][f] <= 0)
                        continue;
                    ++count[t][m];
                    --budget[t];
                    if (!quota_left.empty())
                        --quota_left[t][f];
                }
            }

            // Step 2: first-improvement local search over count moves
            // (re-purpose one device of a type, or add an idle one).
            CountsEval cur_eval = evalCounts(ctx, count, eff_demand);
            auto quota_allows = [&](std::size_t t, std::size_t m) {
                if (quota_left.empty())
                    return true;
                return quota_left[t][registry_->familyOf(
                           static_cast<VariantId>(m))] > 0;
            };
            for (int round = 0; round < 64; ++round) {
                bool improved = false;
                for (std::size_t t = 0; t < T; ++t) {
                    for (std::size_t dst = 0; dst < M; ++dst) {
                        if (!col_ok(t, dst))
                            continue;
                        // Pure add from idle budget.
                        if (budget[t] > 0 && quota_allows(t, dst)) {
                            ++count[t][dst];
                            CountsEval e =
                                evalCounts(ctx, count, eff_demand);
                            if ((e.feasible && !cur_eval.feasible) ||
                                (e.feasible == cur_eval.feasible &&
                                 e.objective >
                                     cur_eval.objective + 1e-9)) {
                                cur_eval = e;
                                --budget[t];
                                if (!quota_left.empty()) {
                                    --quota_left[t][registry_->familyOf(
                                        static_cast<VariantId>(dst))];
                                }
                                improved = true;
                                continue;
                            }
                            --count[t][dst];
                        }
                        // Re-purpose one device from another variant.
                        for (std::size_t src = 0; src < M; ++src) {
                            if (src == dst || count[t][src] <= 0)
                                continue;
                            FamilyId sf = registry_->familyOf(
                                static_cast<VariantId>(src));
                            FamilyId df = registry_->familyOf(
                                static_cast<VariantId>(dst));
                            if (!quota_left.empty() && sf != df &&
                                quota_left[t][df] <= 0) {
                                continue;
                            }
                            --count[t][src];
                            ++count[t][dst];
                            CountsEval e =
                                evalCounts(ctx, count, eff_demand);
                            if ((e.feasible && !cur_eval.feasible) ||
                                (e.feasible == cur_eval.feasible &&
                                 e.objective >
                                     cur_eval.objective + 1e-9)) {
                                cur_eval = e;
                                if (!quota_left.empty() && sf != df) {
                                    ++quota_left[t][sf];
                                    --quota_left[t][df];
                                }
                                improved = true;
                            } else {
                                ++count[t][src];
                                --count[t][dst];
                            }
                        }
                    }
                }
                if (!improved)
                    break;
            }

            // Step 3: synthesize the hint vector (counts + greedy w).
            if (cur_eval.feasible) {
                hint.assign(
                    static_cast<std::size_t>(lp.numVariables()), 0.0);
                for (std::size_t t = 0; t < T; ++t) {
                    for (std::size_t m = 0; m < M; ++m) {
                        if (col_ok(t, m))
                            hint[n_col[t][m]] = count[t][m];
                    }
                }
                auto qps = greedyFill(ctx, count, eff_demand);
                for (std::size_t t = 0; t < T; ++t) {
                    for (std::size_t m = 0; m < M; ++m) {
                        if (col_ok(t, m) && qps[t][m] > 0.0)
                            hint[w_col[t][m]] = qps[t][m];
                        if (k_col[t][m] >= 0 && cur) {
                            hint[k_col[t][m]] = std::min(
                                count[t][m], (*cur)[t][m]);
                        }
                    }
                }
            }
        }
    }

    MilpSolver::Options mopt;
    mopt.work_limit_iters = options_.milp_work_budget;
    mopt.time_limit_sec = options_.milp_time_limit_sec;
    mopt.gap_tol = options_.milp_gap;
    mopt.heuristic_period = 4;
    MilpSolver milp(mopt);
    Solution sol = milp.solve(lp, hint.empty() ? nullptr : &hint);
    out.nodes = sol.work;
    out.simplex_iters = milp.lastStats().simplex_iterations;
    out.gap = milp.lastStats().gap;
    if (sol.status == SolveStatus::Infeasible) {
        out.feasible = false;
        return out;
    }
    if (!sol.hasSolution()) {
        // Limit hit without an incumbent: extremely rare thanks to
        // the solver's diving heuristic. Treat as infeasible so the
        // demand backoff keeps the system making progress.
        warn("MILP returned ", toString(sol.status),
             " without an incumbent; backing demand off");
        out.feasible = false;
        return out;
    }
    out.feasible = true;
    out.objective = sol.objective;
    for (std::size_t t = 0; t < T; ++t) {
        for (std::size_t m = 0; m < M; ++m) {
            if (n_col[t][m] < 0)
                continue;
            out.count[t][m] = static_cast<int>(
                std::llround(sol.x[n_col[t][m]]));
            out.qps[t][m] = sol.x[w_col[t][m]];
        }
    }
    return out;
}

Allocation
IlpAllocator::expand(const TypeSolution& sol,
                     const std::vector<double>& demand,
                     const std::vector<double>& original_demand,
                     const Allocation* current) const
{
    const std::size_t T = cluster_->numTypes();
    const std::size_t M = registry_->numVariants();
    const std::size_t F = registry_->numFamilies();
    const std::size_t D = cluster_->numDevices();

    Allocation plan;
    plan.hosting.assign(D, std::nullopt);
    plan.routing.assign(F, {});

    // --- Expand counts onto concrete devices, minimizing churn. ---
    // With frozen placement, a device may only host its locked
    // family; the MILP quota rows guarantee the counts fit.
    auto lock_ok = [&](DeviceId d, VariantId m) {
        if (options_.device_family_lock.empty())
            return true;
        const auto& lock = options_.device_family_lock[d];
        return !lock.has_value() || *lock == registry_->familyOf(m);
    };

    for (std::size_t t = 0; t < T; ++t) {
        std::vector<DeviceId> devices =
            availableDevicesOfType(static_cast<DeviceTypeId>(t));
        std::vector<bool> taken(devices.size(), false);

        // Wanted replicas per variant on this type.
        std::vector<std::pair<VariantId, int>> wanted;
        for (std::size_t m = 0; m < M; ++m) {
            if (sol.count[t][m] > 0)
                wanted.emplace_back(static_cast<VariantId>(m),
                                    sol.count[t][m]);
        }

        // Pass 1: keep devices that already host the wanted variant.
        for (auto& [variant, need] : wanted) {
            for (std::size_t i = 0; i < devices.size() && need > 0;
                 ++i) {
                if (taken[i])
                    continue;
                if (!lock_ok(devices[i], variant))
                    continue;
                if (current && devices[i] < current->hosting.size() &&
                    current->hosting[devices[i]] == variant) {
                    plan.hosting[devices[i]] = variant;
                    taken[i] = true;
                    --need;
                }
            }
        }
        // Pass 2: prefer currently-idle devices (no load to disrupt).
        for (auto& [variant, need] : wanted) {
            for (std::size_t i = 0; i < devices.size() && need > 0;
                 ++i) {
                if (taken[i] || !lock_ok(devices[i], variant))
                    continue;
                bool idle = !current ||
                            devices[i] >= current->hosting.size() ||
                            !current->hosting[devices[i]].has_value();
                if (idle) {
                    plan.hosting[devices[i]] = variant;
                    taken[i] = true;
                    --need;
                }
            }
        }
        // Pass 3: whatever is left.
        for (auto& [variant, need] : wanted) {
            for (std::size_t i = 0; i < devices.size() && need > 0;
                 ++i) {
                if (taken[i] || !lock_ok(devices[i], variant))
                    continue;
                plan.hosting[devices[i]] = variant;
                taken[i] = true;
                --need;
            }
            PROTEUS_ASSERT(need == 0,
                           "not enough devices to expand counts");
        }
    }

    // --- Query assignment ({y_dq}). ---
    double acc_sum = 0.0;
    double served_sum = 0.0;
    for (std::size_t f = 0; f < F; ++f) {
        if (original_demand[f] <= 0.0)
            continue;
        // The plan's served QPS for this family may exceed the raw
        // demand (capacity headroom) or fall short of it (backoff):
        // route proportionally to the plan, but never weight more
        // than the whole demand.
        double planned_f = 0.0;
        for (std::size_t t = 0; t < T; ++t) {
            for (VariantId m :
                 registry_->variantsOf(static_cast<FamilyId>(f)))
                planned_f += sol.qps[t][m];
        }
        if (planned_f <= 0.0)
            continue;
        double fraction = std::min(1.0, planned_f / original_demand[f]);
        std::vector<DeviceShare> shares;
        for (std::size_t t = 0; t < T; ++t) {
            for (VariantId m :
                 registry_->variantsOf(static_cast<FamilyId>(f))) {
                int cnt = sol.count[t][m];
                if (cnt <= 0 || sol.qps[t][m] <= 0.0)
                    continue;
                // Split this (type, variant) aggregate QPS evenly
                // over its replicas.
                double per_device = sol.qps[t][m] / cnt;
                int assigned = 0;
                for (DeviceId d :
                     availableDevicesOfType(static_cast<DeviceTypeId>(t))) {
                    if (plan.hosting[d] == m && assigned < cnt) {
                        shares.push_back(DeviceShare{
                            d, per_device / planned_f * fraction});
                        ++assigned;
                    }
                }
                acc_sum += registry_->variant(m).accuracy *
                           sol.qps[t][m];
                served_sum += sol.qps[t][m];
            }
        }
        plan.routing[f] = std::move(shares);
    }

    if (options_.uniform_assignment) {
        // Ablation "w/o QA": spread each family uniformly across its
        // hosting devices, ignoring capacity differences.
        for (std::size_t f = 0; f < F; ++f) {
            if (plan.routing[f].empty())
                continue;
            double total = 0.0;
            for (const auto& share : plan.routing[f])
                total += share.weight;
            double uniform = total /
                             static_cast<double>(plan.routing[f].size());
            for (auto& share : plan.routing[f])
                share.weight = uniform;
        }
    }

    plan.family_capacity.assign(F, 0.0);
    for (std::size_t d = 0; d < D; ++d) {
        if (!plan.hosting[d])
            continue;
        VariantId m = *plan.hosting[d];
        DeviceTypeId t = cluster_->device(static_cast<DeviceId>(d)).type;
        plan.family_capacity[registry_->familyOf(m)] +=
            profiles_->get(m, t).peak_qps;
    }

    double original_total = 0.0;
    double planned_total = 0.0;
    for (std::size_t f = 0; f < F; ++f) {
        original_total += original_demand[f];
        planned_total += demand[f];
    }
    plan.planned_fraction =
        original_total > 0.0 ? planned_total / original_total : 1.0;
    plan.planned_qps = served_sum;
    plan.expected_accuracy =
        served_sum > 0.0 ? acc_sum / served_sum : 0.0;
    return plan;
}

Allocation
IlpAllocator::allocate(const AllocationInput& input)
{
    const WallTimer timer;

    PROTEUS_ASSERT(input.demand_qps.size() == registry_->numFamilies(),
                   "demand vector size mismatch");

    // Failure awareness: dead devices contribute no hosting budget,
    // are never expanded onto, and their current hosting is not
    // counted as kept capacity. Valid for this call only.
    down_ = input.device_down.empty() ? nullptr : &input.device_down;

    std::vector<double> demand = input.demand_qps;
    for (auto& d : demand)
        d *= options_.planning_headroom;

    std::vector<std::vector<int>> cur_counts;
    bool have_cur = false;
    if (input.current &&
        input.current->hosting.size() == cluster_->numDevices()) {
        cur_counts.assign(cluster_->numTypes(),
                          std::vector<int>(registry_->numVariants(), 0));
        for (DeviceId d = 0; d < cluster_->numDevices(); ++d) {
            if (input.isDown(d))
                continue;  // a dead device's model is not running
            const auto& h = input.current->hosting[d];
            if (h) {
                ++cur_counts[cluster_->device(d).type][*h];
                have_cur = true;
            }
        }
    }
    const std::vector<std::vector<int>>* cur =
        have_cur ? &cur_counts : nullptr;

    TypeSolution sol;
    int steps = 0;
    std::int64_t total_nodes = 0;
    std::int64_t total_iters = 0;
    while (true) {
        sol = solveAggregated(demand, cur);
        total_nodes += sol.nodes;
        total_iters += sol.simplex_iters;
        if (sol.feasible)
            break;
        ++steps;
        if (steps > options_.max_backoff_steps) {
            // Serve nothing rather than loop forever; the routers
            // will shed all load until demand falls.
            for (auto& d : demand)
                d = 0.0;
            sol = solveAggregated(demand, cur);
            total_nodes += sol.nodes;
            total_iters += sol.simplex_iters;
            break;
        }
        for (auto& d : demand)
            d /= options_.backoff_beta;
    }

    // Plan hysteresis: if the hosting currently in force can still
    // serve the (possibly backed-off) demand within a sliver of the
    // fresh optimum, keep it — swapping models costs load time and
    // transient SLO violations that a fraction of a percent of
    // accuracy cannot repay. Routing weights are still refreshed for
    // the new demand.
    if (sol.feasible && have_cur &&
        options_.keep_plan_hysteresis > 0.0 &&
        options_.fairness_weight <= 0.0) {
        const std::size_t T = cluster_->numTypes();
        {
            CountsContext ctx;
            ctx.registry = registry_;
            ctx.profiles = profiles_;
            ctx.replica_penalty = 0.0;
            ctx.by_acc_desc.resize(registry_->numFamilies());
            for (FamilyId f = 0; f < registry_->numFamilies(); ++f) {
                auto vs = registry_->variantsOf(f);
                std::reverse(vs.begin(), vs.end());
                ctx.by_acc_desc[f] = std::move(vs);
            }
            // Families with no usable variant anywhere are shed by
            // every plan; exclude them from the feasibility check.
            std::vector<double> check = demand;
            for (FamilyId f = 0; f < registry_->numFamilies(); ++f) {
                bool servable = false;
                for (VariantId m : registry_->variantsOf(f)) {
                    for (DeviceTypeId t = 0; t < T; ++t)
                        servable |= profiles_->get(m, t).usable();
                }
                if (!servable)
                    check[f] = 0.0;
            }
            CountsEval cur_eval = evalCounts(ctx, cur_counts, check);
            double fresh_obj = sol.objective;
            if (cur_eval.feasible &&
                cur_eval.objective >=
                    fresh_obj * (1.0 - options_.keep_plan_hysteresis)) {
                TypeSolution kept;
                kept.count = cur_counts;
                kept.qps = greedyFill(ctx, cur_counts, check);
                kept.objective = cur_eval.objective;
                kept.feasible = true;
                kept.nodes = sol.nodes;
                kept.simplex_iters = sol.simplex_iters;
                kept.gap = sol.gap;
                sol = std::move(kept);
            }
        }
    }

    Allocation plan = expand(sol, demand, input.demand_qps,
                             input.current);
    plan.planned_demand = input.demand_qps;
    down_ = nullptr;
    stats_.solve_seconds = timer.elapsedSeconds();
    stats_.nodes = total_nodes;
    stats_.simplex_iters = total_iters;
    stats_.gap = sol.gap;
    stats_.backoff_steps = steps;
    stats_.served_fraction = plan.planned_fraction;
    return plan;
}

LinearProgram
buildPerDeviceMilp(const ModelRegistry& registry, const Cluster& cluster,
                   const ProfileStore& profiles,
                   const std::vector<double>& demand_qps)
{
    const std::size_t D = cluster.numDevices();
    const std::size_t M = registry.numVariants();
    const std::size_t F = registry.numFamilies();

    LinearProgram lp(ObjSense::Maximize);
    // x[d*M + m] booleans, then w[d*M + m] continuous. Families with
    // no demand get no columns: they cannot contribute objective.
    std::vector<int> x(D * M, -1), w(D * M, -1);
    for (std::size_t d = 0; d < D; ++d) {
        DeviceTypeId t = cluster.device(static_cast<DeviceId>(d)).type;
        for (std::size_t m = 0; m < M; ++m) {
            if (demand_qps[registry.familyOf(
                    static_cast<VariantId>(m))] <= 0.0)
                continue;
            if (!profiles.get(static_cast<VariantId>(m), t).usable())
                continue;
            x[d * M + m] = lp.addIntVariable(0.0, 1.0, 0.0);
            w[d * M + m] = lp.addVariable(
                0.0, kInf,
                registry.variant(static_cast<VariantId>(m)).accuracy);
        }
    }
    // Eq. 1: each device hosts at most one variant.
    for (std::size_t d = 0; d < D; ++d) {
        std::vector<Coeff> coeffs;
        for (std::size_t m = 0; m < M; ++m) {
            if (x[d * M + m] >= 0)
                coeffs.emplace_back(x[d * M + m], 1.0);
        }
        if (!coeffs.empty())
            lp.addConstraint(std::move(coeffs), RowSense::LessEqual, 1.0);
    }
    // Eq. 5: w <= P * x.
    for (std::size_t d = 0; d < D; ++d) {
        DeviceTypeId t = cluster.device(static_cast<DeviceId>(d)).type;
        for (std::size_t m = 0; m < M; ++m) {
            if (w[d * M + m] < 0)
                continue;
            double peak =
                profiles.get(static_cast<VariantId>(m), t).peak_qps;
            lp.addConstraint(
                {{w[d * M + m], 1.0}, {x[d * M + m], -peak}},
                RowSense::LessEqual, 0.0);
        }
    }
    // Eq. 6: meet each family's demand exactly.
    for (std::size_t f = 0; f < F; ++f) {
        if (demand_qps[f] <= 0.0)
            continue;
        std::vector<Coeff> coeffs;
        for (VariantId m : registry.variantsOf(static_cast<FamilyId>(f))) {
            for (std::size_t d = 0; d < D; ++d) {
                if (w[d * M + m] >= 0)
                    coeffs.emplace_back(w[d * M + m], 1.0);
            }
        }
        lp.addConstraint(std::move(coeffs), RowSense::Equal,
                         demand_qps[f]);
    }
    return lp;
}

}  // namespace proteus
