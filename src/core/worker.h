/**
 * @file
 * Worker: one device executing batched inference (paper §3, Workers).
 *
 * A worker hosts at most one model variant (Eq. 1 of the MILP), keeps
 * a FIFO queue of assigned queries, and drives its adaptive-batching
 * policy: the policy is consulted whenever the worker is idle and the
 * queue may have changed, and may arm a wake-up timer (the
 * non-work-conserving wait). Variant swaps incur a model-load delay
 * during which the device cannot execute; queries of a different
 * family that are still queued when the hosted variant changes are
 * handed back for re-routing.
 */

#ifndef PROTEUS_CORE_WORKER_H_
#define PROTEUS_CORE_WORKER_H_

#include <functional>
#include <memory>
#include <optional>

#include "cluster/device.h"
#include "common/alloc/scratch_vector.h"
#include "common/rng.h"
#include "common/types.h"
#include "core/batching.h"
#include "core/query.h"
#include "models/cost_model.h"
#include "models/profiler.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace proteus {

/** One worker device executing batched inference queries. */
class Worker
{
  public:
    /** Called with queries that must be re-routed after a swap. */
    // NOLINTNEXTLINE-PROTEUS(A1): installed once at wiring time, not per-query
    using RequeueFn = std::function<void(Query*)>;

    /**
     * @param jitter_frac multiplicative uniform jitter on batch
     *        execution latency (0 = deterministic), modelling runtime
     *        variance the paper observed on real hardware (§6.2).
     */
    Worker(Simulator* sim, const Cluster* cluster, DeviceId device,
           const ModelRegistry* registry, const CostModel* cost,
           const ProfileStore* profiles, QueryObserver* observer,
           RequeueFn requeue, double jitter_frac = 0.0,
           std::uint64_t jitter_seed = 1);

    Worker(const Worker&) = delete;
    Worker& operator=(const Worker&) = delete;

    /** Install the batching policy (worker-owned). */
    void setBatchingPolicy(std::unique_ptr<BatchingPolicy> policy);

    /** Attach the span tracer (nullptr = tracing off, the default). */
    void setTracer(obs::Tracer* tracer) { tracer_ = tracer; }

    /**
     * Record the controller decision whose plan currently governs this
     * worker (lineage: batches link to the epoch that sized them).
     */
    void setPlanEpoch(std::uint64_t epoch) { plan_epoch_ = epoch; }

    /**
     * Attach the cluster health tracker (optional). The worker marks
     * its device Up when a model load completes while Recovering.
     */
    void setHealthTracker(DeviceHealthTracker* health)
    {
        health_ = health;
    }

    /** Called with the device id when a model load fails. */
    // NOLINTNEXTLINE-PROTEUS(A1): installed once at wiring time, not per-query
    using LoadFailureFn = std::function<void(DeviceId)>;

    /** Install the model-load-failure alarm (optional). */
    void setLoadFailureAlarm(LoadFailureFn alarm)
    {
        load_failure_alarm_ = std::move(alarm);
    }

    /**
     * The device died. The in-flight batch (if any) is aborted and
     * its queries handed back for re-routing together with everything
     * queued; the hosted model is lost. The worker refuses work until
     * recover().
     */
    void crash();

    /**
     * The device is back (Recovering): hosting is possible again. The
     * worker stays empty until the controller re-places a variant.
     */
    void recover();

    /** @return true while the device is crashed. */
    bool failed() const { return failed_; }

    /**
     * Transient stall: execution latency is multiplied by @p factor
     * until @p window from now. Overlapping stalls keep the maximum
     * factor and the later end.
     */
    void setStall(double factor, Duration window);

    /**
     * Fail the in-progress model load, or arm a one-shot failure for
     * the next load if none is in progress. Raises the load-failure
     * alarm when the load actually fails.
     */
    void failNextLoad();

    /**
     * Begin hosting @p variant (std::nullopt unloads). Unless
     * @p instant, the swap takes the model-load time during which the
     * worker cannot execute; queued queries of a different family are
     * re-routed immediately.
     */
    void hostVariant(std::optional<VariantId> variant,
                     bool instant = false);

    /** @return the hosting target (even while still loading). */
    std::optional<VariantId> hostedVariant() const { return target_; }

    /** @return true when the target variant is loaded and usable. */
    bool ready() const { return target_.has_value() && !loading_; }

    /** Assign a query to this worker. */
    void enqueue(Query* query);

    /** @return the device id. */
    DeviceId deviceId() const { return device_; }

    /** @return the device type. */
    DeviceTypeId deviceType() const { return type_; }

    /** @return current queue length. */
    std::size_t queueLength() const { return queue_.size(); }

    /** @return true while a batch is executing. */
    bool busy() const { return busy_; }

    /** @return total queries served (on time or late). */
    std::uint64_t served() const { return served_; }

    /** @return total queries dropped by this worker. */
    std::uint64_t dropped() const { return dropped_; }

    /** @return total batches executed. */
    std::uint64_t batches() const { return batches_; }

    /** @return crashes suffered by this worker. */
    std::uint64_t crashes() const { return crashes_; }

    /** @return model loads that failed on this worker. */
    std::uint64_t failedLoads() const { return failed_loads_; }

    /** @return total queries executed across all batches. */
    std::uint64_t batchedQueries() const { return batched_queries_; }

    /** @return mean executed batch size (0 when none). */
    double meanBatchSize() const;

    /** @return busy time accumulated so far. */
    Duration busyTime() const { return busy_time_; }

  private:
    void evaluate();
    void executeBatch(int count);
    void dropFront(int count);
    void finishBatch(VariantId executed_variant);
    void cancelTimer();
    void bounce(Query* query);
    /** Move everything queued into drain_scratch_ and bounce it. */
    void bounceQueued();

    Simulator* sim_;
    const Cluster* cluster_;
    DeviceId device_;
    DeviceTypeId type_;
    const ModelRegistry* registry_;
    const CostModel* cost_;
    const ProfileStore* profiles_;
    QueryObserver* observer_;
    RequeueFn requeue_;
    obs::Tracer* tracer_ = nullptr;
    double jitter_frac_;
    Rng rng_;

    std::unique_ptr<BatchingPolicy> policy_;
    std::optional<VariantId> target_;
    bool loading_ = false;
    std::uint64_t load_epoch_ = 0;
    /** Controller decision governing the current plan (0 = none). */
    std::uint64_t plan_epoch_ = 0;
    /** plan_epoch_ captured when the in-flight batch started. */
    std::uint64_t inflight_plan_epoch_ = 0;

    QueryQueue queue_;
    /** Reused drain buffer: swap/crash/load-failure paths park the
     *  queue here while bouncing, instead of rebuilding a fresh
     *  container every time (ISSUE 6 satellite). */
    alloc::ScratchVector<Query*> drain_scratch_;
    bool busy_ = false;
    EventId timer_ = kNoEvent;
    Time timer_at_ = kNoTime;

    // Fault state (driven by the fault-injection subsystem).
    DeviceHealthTracker* health_ = nullptr;
    LoadFailureFn load_failure_alarm_;
    bool failed_ = false;
    bool fail_next_load_ = false;
    double stall_factor_ = 1.0;
    Time stall_until_ = kNoTime;
    EventId inflight_event_ = kNoEvent;
    /** The executing batch (reused across batches; capacity sticks). */
    alloc::ScratchVector<Query*> inflight_;

    std::uint64_t served_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t batched_queries_ = 0;
    std::uint64_t crashes_ = 0;
    std::uint64_t failed_loads_ = 0;
    Duration busy_time_ = 0;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_WORKER_H_
