/**
 * @file
 * Config-file-driven experiments, mirroring the paper artifact's JSON
 * configuration interface (Appendix A.5/A.7): a JSON file selects the
 * resource-allocation algorithm ("ilp", "infaas_v2", "clipper_ht",
 * "clipper_ha", "sommelier", plus the ablations), the batching
 * algorithm ("accscale", "aimd", "nexus", "static"), the cluster
 * composition, the model zoo, and the workload (generated or loaded
 * from a trace CSV).
 *
 * Example:
 * @code{.json}
 * {
 *   "model_allocation": "ilp",
 *   "batching": "accscale",
 *   "slo_multiplier": 2.0,
 *   "cluster": {"cpu": 20, "gtx1080ti": 10, "v100": 10},
 *   "zoo": "paper",
 *   "workload": {
 *     "kind": "diurnal",
 *     "duration_sec": 1440,
 *     "base_qps": 400,
 *     "amplitude_qps": 900
 *   }
 * }
 * @endcode
 */

#ifndef PROTEUS_CORE_EXPERIMENT_H_
#define PROTEUS_CORE_EXPERIMENT_H_

#include <string>

#include "cluster/device.h"
#include "common/json.h"
#include "core/serving_system.h"
#include "models/model.h"
#include "workload/trace.h"

namespace proteus {

/** A fully described experiment parsed from JSON. */
struct ExperimentSpec {
    SystemConfig config;
    Cluster cluster;
    ModelRegistry registry;
    Trace trace;
    /**
     * When non-empty, span tracing is enabled for the run and the
     * Chrome trace-event JSON is written here afterwards (loadable in
     * chrome://tracing or Perfetto).
     */
    std::string trace_path;
    /** When non-empty, the metrics-registry JSON dump is written here. */
    std::string metrics_path;
    /** When non-empty, the time-series CSV export is written here. */
    std::string timeline_csv_path;
    /** When non-empty, the time-series JSON export is written here. */
    std::string timeline_json_path;
};

/**
 * Build an ExperimentSpec from a parsed JSON config. Unknown
 * algorithm or workload names are fatal (user error).
 */
ExperimentSpec loadExperiment(const JsonValue& json);

/** Convenience: parse the JSON file at @p path and load it. */
ExperimentSpec loadExperimentFile(const std::string& path);

/** Run the experiment to completion. */
RunResult runExperiment(ExperimentSpec* spec);

/** Map the artifact's allocation-algorithm names to AllocatorKind. */
AllocatorKind allocatorKindFromName(const std::string& name);

/** Map the artifact's batching-algorithm names to BatchingKind. */
BatchingKind batchingKindFromName(const std::string& name);

}  // namespace proteus

#endif  // PROTEUS_CORE_EXPERIMENT_H_
