/**
 * @file
 * Adaptive batching: the policy interface workers consult, and the
 * Proteus algorithm (paper §5) — proactive and non-work-conserving.
 *
 * A policy is consulted whenever its worker is idle and the queue may
 * have changed (arrival, batch completion, or a timer the policy armed
 * earlier). It answers with how many queued queries to drop (hopeless
 * ones), how many to execute as a batch right now, and/or when to be
 * woken again.
 *
 * Proteus's rule (Fig. 3): with q queries queued and the head query
 * expiring at T_exp(1), the worker may wait for a (q+1)-st query until
 *
 *     T_max_wait(q+1) = T_exp(1) - T_process(q+1).
 *
 * If that moment passes with no new arrival, execute the q queries;
 * if a query arrives earlier, recompute with q+1. The device is left
 * idle on purpose while waiting (non-work-conserving), which absorbs
 * micro-scale arrival variation; execution always starts before the
 * head query is in danger (proactive).
 */

#ifndef PROTEUS_CORE_BATCHING_H_
#define PROTEUS_CORE_BATCHING_H_

#include <functional>
#include <memory>

#include "common/alloc/ring_queue.h"
#include "common/types.h"
#include "core/query.h"
#include "models/profiler.h"

namespace proteus {

/** FIFO queue type workers keep their pending queries in. */
using QueryQueue = alloc::RingQueue<Query*>;

/** Read-only view of a worker's state offered to batching policies. */
struct WorkerView {
    Time now = 0;
    /** FIFO queue of pending queries (front = oldest). */
    const QueryQueue* queue = nullptr;
    /** Profile of the hosted variant on this device type. */
    const BatchProfile* profile = nullptr;
    /** Latency SLO of the family served by the hosted variant. */
    Duration slo = 0;
};

/** Decision returned by a batching policy. */
struct BatchAction {
    /** Drop this many queries from the queue front (hopeless ones). */
    int drop = 0;
    /** After dropping, execute this many as one batch (0 = none). */
    int execute = 0;
    /** Absolute time to be woken again (kNoTime = no timer). */
    Time wake_at = kNoTime;
};

/** Strategy interface for per-worker batch formation. */
class BatchingPolicy
{
  public:
    virtual ~BatchingPolicy() = default;

    /** Decide what to do now; called only while the worker is idle. */
    virtual BatchAction decide(const WorkerView& view) = 0;

    /**
     * Feedback after a batch finishes: its size and whether any query
     * in it missed its SLO. Reactive policies (AIMD) adapt on this.
     */
    virtual void
    onBatchOutcome(int batch_size, bool any_violation)
    {
        (void)batch_size;
        (void)any_violation;
    }

    /** Policy name for logs and reports. */
    virtual const char* name() const = 0;
};

/** Factory so each worker gets its own (stateful) policy instance. */
using BatchingPolicyFactory =
    // NOLINTNEXTLINE-PROTEUS(A1): construction-time factory, not per-query
    std::function<std::unique_ptr<BatchingPolicy>()>;

/**
 * Proteus adaptive batching (paper §5): proactive,
 * non-work-conserving.
 */
class ProteusBatching : public BatchingPolicy
{
  public:
    /**
     * @param drop_hopeless drop queries that cannot meet their SLO
     *        even if executed alone immediately. Keeps overload from
     *        wasting capacity on queries that will time out anyway.
     */
    explicit ProteusBatching(bool drop_hopeless = true)
        : drop_hopeless_(drop_hopeless)
    {}

    BatchAction decide(const WorkerView& view) override;

    const char* name() const override { return "proteus-accscale"; }

  private:
    bool drop_hopeless_;
};

/**
 * Fixed-size batching (batch = 1 by default): the "Proteus w/o AB"
 * ablation (§6.5). Work-conserving, never waits.
 */
class StaticBatching : public BatchingPolicy
{
  public:
    explicit StaticBatching(int batch_size = 1)
        : batch_size_(batch_size)
    {}

    BatchAction decide(const WorkerView& view) override;

    const char* name() const override { return "static"; }

  private:
    int batch_size_;
};

/** Count queries at the queue front that can no longer meet the SLO
 *  even when executed alone right now. */
int countHopeless(const WorkerView& view);

}  // namespace proteus

#endif  // PROTEUS_CORE_BATCHING_H_
