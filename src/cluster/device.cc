#include "cluster/device.h"

#include "common/logging.h"

namespace proteus {

DeviceTypeId
Cluster::addDeviceType(DeviceTypeInfo info)
{
    PROTEUS_ASSERT(info.overhead_ms >= 0.0 && info.gflops_per_ms > 0.0 &&
                       info.batch_efficiency > 0.0 &&
                       info.batch_efficiency <= 1.0 &&
                       info.memory_mb > 0.0,
                   "invalid device type ", info.name);
    types_.push_back(std::move(info));
    count_per_type_.push_back(0);
    return static_cast<DeviceTypeId>(types_.size() - 1);
}

void
Cluster::addDevices(DeviceTypeId type, int count)
{
    PROTEUS_ASSERT(type < types_.size(), "unknown device type ", type);
    PROTEUS_ASSERT(count >= 0, "negative device count");
    for (int i = 0; i < count; ++i) {
        Device d;
        d.id = static_cast<DeviceId>(devices_.size());
        d.type = type;
        devices_.push_back(d);
    }
    count_per_type_[type] += count;
}

const DeviceTypeInfo&
Cluster::typeInfo(DeviceTypeId t) const
{
    PROTEUS_ASSERT(t < types_.size(), "unknown device type ", t);
    return types_[t];
}

const Device&
Cluster::device(DeviceId d) const
{
    PROTEUS_ASSERT(d < devices_.size(), "unknown device ", d);
    return devices_[d];
}

int
Cluster::countOfType(DeviceTypeId t) const
{
    PROTEUS_ASSERT(t < types_.size(), "unknown device type ", t);
    return count_per_type_[t];
}

std::vector<DeviceId>
Cluster::devicesOfType(DeviceTypeId t) const
{
    std::vector<DeviceId> out;
    for (const auto& d : devices_) {
        if (d.type == t)
            out.push_back(d.id);
    }
    return out;
}

const char*
toString(DeviceHealth health)
{
    switch (health) {
      case DeviceHealth::Up: return "up";
      case DeviceHealth::Down: return "down";
      case DeviceHealth::Recovering: return "recovering";
    }
    return "unknown";
}

bool
DeviceHealthTracker::markDown(DeviceId d)
{
    DeviceHealth& s = state_.at(d);
    if (s == DeviceHealth::Down)
        return false;
    s = DeviceHealth::Down;
    return true;
}

bool
DeviceHealthTracker::markRecovering(DeviceId d)
{
    DeviceHealth& s = state_.at(d);
    if (s != DeviceHealth::Down)
        return false;
    s = DeviceHealth::Recovering;
    return true;
}

bool
DeviceHealthTracker::markUp(DeviceId d)
{
    DeviceHealth& s = state_.at(d);
    if (s == DeviceHealth::Down)
        return false;
    s = DeviceHealth::Up;
    return true;
}

std::size_t
DeviceHealthTracker::downCount() const
{
    std::size_t n = 0;
    for (DeviceHealth s : state_) {
        if (s == DeviceHealth::Down)
            ++n;
    }
    return n;
}

std::vector<char>
DeviceHealthTracker::downMask() const
{
    std::vector<char> mask(state_.size(), 0);
    for (std::size_t d = 0; d < state_.size(); ++d)
        mask[d] = state_[d] == DeviceHealth::Down ? 1 : 0;
    return mask;
}

StandardTypes
addStandardTypes(Cluster* cluster)
{
    StandardTypes t;
    t.cpu = cluster->addDeviceType(DeviceTypeInfo{
        "xeon-6126", /*overhead_ms=*/5.0, /*gflops_per_ms=*/0.008,
        /*batch_efficiency=*/0.90, /*memory_mb=*/65536.0});
    t.gtx1080ti = cluster->addDeviceType(DeviceTypeInfo{
        "gtx-1080ti", /*overhead_ms=*/8.0, /*gflops_per_ms=*/0.32,
        /*batch_efficiency=*/0.35, /*memory_mb=*/11264.0});
    t.v100 = cluster->addDeviceType(DeviceTypeInfo{
        "v100", /*overhead_ms=*/6.0, /*gflops_per_ms=*/0.45,
        /*batch_efficiency=*/0.25, /*memory_mb=*/16384.0});
    return t;
}

Cluster
paperCluster(StandardTypes* types_out)
{
    Cluster c;
    StandardTypes t = addStandardTypes(&c);
    c.addDevices(t.cpu, 20);
    c.addDevices(t.gtx1080ti, 10);
    c.addDevices(t.v100, 10);
    if (types_out)
        *types_out = t;
    return c;
}

Cluster
edgeCluster(StandardTypes* types_out)
{
    Cluster c;
    StandardTypes t = addStandardTypes(&c);
    c.addDevices(t.cpu, 4);
    c.addDevices(t.gtx1080ti, 2);
    c.addDevices(t.v100, 1);
    if (types_out)
        *types_out = t;
    return c;
}

}  // namespace proteus
