/**
 * @file
 * Hardware model: device types and the heterogeneous cluster.
 *
 * The paper's testbed (§6.1.5) is 20 Xeon Gold 6126 CPU workers, 10
 * GTX 1080 Ti and 10 V100 GPU workers. Device types here carry the
 * analytic performance parameters the synthetic cost model needs
 * (DESIGN.md, substitution table): fixed per-batch overhead, effective
 * compute throughput, a batching-amortization factor and memory
 * capacity. Types are an open set so tests and users can define
 * additional hardware.
 */

#ifndef PROTEUS_CLUSTER_DEVICE_H_
#define PROTEUS_CLUSTER_DEVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace proteus {

/** Index into the cluster's device-type table. */
using DeviceTypeId = std::uint32_t;

/** Performance/capacity description of one hardware type. */
struct DeviceTypeInfo {
    std::string name;
    /** Fixed per-batch overhead (launch, transfer) in milliseconds. */
    double overhead_ms = 1.0;
    /** Effective DNN compute throughput in GFLOPs per millisecond. */
    double gflops_per_ms = 1.0;
    /**
     * Marginal cost of each additional batched item relative to the
     * first (0 < eff <= 1). GPUs amortize well (small values), CPUs
     * barely (close to 1).
     */
    double batch_efficiency = 1.0;
    /** Device memory available for weights + activations, in MB. */
    double memory_mb = 1024.0;
};

/** One physical worker device. */
struct Device {
    DeviceId id = kInvalidId;
    DeviceTypeId type = kInvalidId;
};

/** The (fixed-size) heterogeneous cluster. */
class Cluster
{
  public:
    /** Register a device type. @return its id. */
    DeviceTypeId addDeviceType(DeviceTypeInfo info);

    /** Add @p count devices of type @p type. */
    void addDevices(DeviceTypeId type, int count);

    /** @return the number of device types. */
    std::size_t numTypes() const { return types_.size(); }

    /** @return the number of devices. */
    std::size_t numDevices() const { return devices_.size(); }

    /** @return the type table entry @p t. */
    const DeviceTypeInfo& typeInfo(DeviceTypeId t) const;

    /** @return device @p d. */
    const Device& device(DeviceId d) const;

    /** @return all devices. */
    const std::vector<Device>& devices() const { return devices_; }

    /** @return the number of devices of type @p t. */
    int countOfType(DeviceTypeId t) const;

    /** @return ids of all devices of type @p t. */
    std::vector<DeviceId> devicesOfType(DeviceTypeId t) const;

  private:
    std::vector<DeviceTypeInfo> types_;
    std::vector<Device> devices_;
    std::vector<int> count_per_type_;
};

/**
 * Liveness of one device. Transitions form a cycle:
 *
 *   Up --crash--> Down --recovery starts--> Recovering --ready--> Up
 *
 * Down devices hold no model and execute nothing; the resource
 * manager must exclude them. Recovering devices are plan-eligible
 * again (they behave like an idle device that needs a model load) but
 * are not yet serving.
 */
enum class DeviceHealth { Up, Down, Recovering };

/** @return a printable name for @p health. */
const char* toString(DeviceHealth health);

/**
 * Dynamic health state of every device in a cluster. The Cluster
 * itself stays immutable during a run (the hardware does not change);
 * this tracker carries the mutable liveness the fault-injection
 * subsystem and the controller consult. Transition methods enforce
 * the state machine and return false on an illegal transition instead
 * of asserting, so redundant fault events are harmless no-ops.
 */
class DeviceHealthTracker
{
  public:
    explicit DeviceHealthTracker(std::size_t num_devices)
        : state_(num_devices, DeviceHealth::Up)
    {}

    /** @return the health of device @p d. */
    DeviceHealth state(DeviceId d) const { return state_.at(d); }

    /** @return true when device @p d is fully operational. */
    bool up(DeviceId d) const
    {
        return state_.at(d) == DeviceHealth::Up;
    }

    /** Crash: Up | Recovering -> Down. @return false if already Down. */
    bool markDown(DeviceId d);

    /** Recovery begins: Down -> Recovering. */
    bool markRecovering(DeviceId d);

    /** Ready again: Recovering -> Up (Up is an idempotent no-op). */
    bool markUp(DeviceId d);

    /** @return the number of devices currently Down. */
    std::size_t downCount() const;

    /** @return the number of tracked devices. */
    std::size_t size() const { return state_.size(); }

    /**
     * Unavailability mask for the resource manager: mask[d] != 0 for
     * Down devices. Recovering devices count as available (hosting a
     * model there is exactly a fresh load).
     */
    std::vector<char> downMask() const;

  private:
    std::vector<DeviceHealth> state_;
};

/**
 * Standard device types used throughout the evaluation, calibrated so
 * relative per-variant latencies follow the shape of Fig. 1a
 * (V100 fastest, then GTX 1080 Ti, CPU slowest; GPUs amortize
 * batching far better than CPUs).
 */
struct StandardTypes {
    DeviceTypeId cpu;
    DeviceTypeId gtx1080ti;
    DeviceTypeId v100;
};

/** Register the three standard types on @p cluster. */
StandardTypes addStandardTypes(Cluster* cluster);

/**
 * Build the paper's evaluation cluster: 20 CPUs, 10 GTX 1080 Ti, 10
 * V100 (§6.1.5).
 */
Cluster paperCluster(StandardTypes* types_out = nullptr);

/** Build a small edge cluster (4 CPUs, 2 GTX 1080 Ti, 1 V100). */
Cluster edgeCluster(StandardTypes* types_out = nullptr);

}  // namespace proteus

#endif  // PROTEUS_CLUSTER_DEVICE_H_
