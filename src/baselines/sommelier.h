/**
 * @file
 * Sommelier baseline (paper §6.1.1): partially dynamic.
 *
 * Sommelier can swap a hosted model variant for a less/more accurate
 * one on a given device (model selection) but performs no
 * cluster-level placement: the initial device-to-family assignment —
 * obtained, as the paper does, from the Proteus MILP — stays frozen
 * for the rest of the run. This is identical to the "Proteus w/o MP"
 * ablation of §6.5. Sommelier also lacks adaptive batching by
 * itself; like the paper, we run it with Proteus's batching.
 */

#ifndef PROTEUS_BASELINES_SOMMELIER_H_
#define PROTEUS_BASELINES_SOMMELIER_H_

#include "core/ilp_allocator.h"

namespace proteus {

/** Selection-only allocator with frozen model placement. */
class SommelierAllocator : public IlpAllocator
{
  public:
    SommelierAllocator(const ModelRegistry* registry,
                       const Cluster* cluster,
                       const ProfileStore* profiles,
                       IlpAllocatorOptions options = {});

    Allocation allocate(const AllocationInput& input) override;

    const char* name() const override { return "sommelier"; }

  private:
    bool frozen_ = false;
};

}  // namespace proteus

#endif  // PROTEUS_BASELINES_SOMMELIER_H_
