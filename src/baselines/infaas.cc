#include "baselines/infaas.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace proteus {

InfaasAllocator::InfaasAllocator(const ModelRegistry* registry,
                                 const Cluster* cluster,
                                 const ProfileStore* profiles,
                                 InfaasOptions options)
    : registry_(registry),
      cluster_(cluster),
      profiles_(profiles),
      options_(options)
{}

double
InfaasAllocator::peak(VariantId v, DeviceId d) const
{
    return profiles_->get(v, cluster_->device(d).type).peak_qps;
}

double
InfaasAllocator::familyCapacity(
    const std::vector<std::optional<VariantId>>& hosting,
    FamilyId f) const
{
    double cap = 0.0;
    for (DeviceId d = 0; d < hosting.size(); ++d) {
        if (hosting[d] && registry_->familyOf(*hosting[d]) == f)
            cap += peak(*hosting[d], d);
    }
    return cap;
}

Allocation
InfaasAllocator::allocate(const AllocationInput& input)
{
    const std::size_t D = cluster_->numDevices();
    const std::size_t F = registry_->numFamilies();

    std::vector<std::optional<VariantId>> hosting(D);
    if (input.current && input.current->hosting.size() == D)
        hosting = input.current->hosting;

    // Drop hosting for families that no longer have demand.
    for (DeviceId d = 0; d < D; ++d) {
        if (hosting[d] &&
            input.demand_qps[registry_->familyOf(*hosting[d])] <= 0.0) {
            hosting[d].reset();
        }
    }

    auto target = [&](FamilyId f) {
        return input.demand_qps[f] * options_.headroom;
    };

    // Most accurate variant of family f usable on device d that has
    // per-device capacity >= want (or the highest-capacity one if
    // none reaches want). Returns false when nothing is usable.
    auto pick_variant = [&](FamilyId f, DeviceId d, double want,
                            VariantId* out) {
        bool found = false;
        VariantId best_cap_v = 0;
        double best_cap = 0.0;
        // variantsOf is accuracy-ascending; scan from the top.
        const auto& vs = registry_->variantsOf(f);
        for (auto it = vs.rbegin(); it != vs.rend(); ++it) {
            double p = peak(*it, d);
            if (p <= 0.0)
                continue;
            if (!found || p > best_cap) {
                best_cap = p;
                best_cap_v = *it;
                found = true;
            }
            if (p >= want) {
                *out = *it;
                return true;
            }
        }
        if (found)
            *out = best_cap_v;
        return found;
    };

    // --- Greedy repair per family, most-demanding first. ---
    std::vector<FamilyId> order(F);
    for (std::size_t f = 0; f < F; ++f)
        order[f] = static_cast<FamilyId>(f);
    std::sort(order.begin(), order.end(), [&](FamilyId a, FamilyId b) {
        return input.demand_qps[a] > input.demand_qps[b];
    });

    for (FamilyId f : order) {
        if (input.demand_qps[f] <= 0.0)
            continue;
        int steps = 0;
        while (familyCapacity(hosting, f) < target(f) &&
               steps++ < options_.max_steps) {
            double deficit = target(f) - familyCapacity(hosting, f);

            // Step 1: best single-device downgrade within the family.
            DeviceId best_dev = kInvalidId;
            VariantId best_var = 0;
            double best_gain = 0.0;
            for (DeviceId d = 0; d < D; ++d) {
                if (!hosting[d] ||
                    registry_->familyOf(*hosting[d]) != f) {
                    continue;
                }
                double cur = peak(*hosting[d], d);
                for (VariantId v : registry_->variantsOf(f)) {
                    if (registry_->variant(v).accuracy >=
                        registry_->variant(*hosting[d]).accuracy) {
                        continue;  // only downgrades gain throughput
                    }
                    double gain = peak(v, d) - cur;
                    if (gain > best_gain) {
                        best_gain = gain;
                        best_dev = d;
                        best_var = v;
                    }
                }
            }
            if (best_dev != kInvalidId) {
                hosting[best_dev] = best_var;
                continue;
            }

            // Step 2: claim an idle device (largest capacity first).
            DeviceId claim = kInvalidId;
            double claim_cap = 0.0;
            VariantId claim_var = 0;
            for (DeviceId d = 0; d < D; ++d) {
                if (hosting[d])
                    continue;
                VariantId v;
                if (!pick_variant(f, d, deficit, &v))
                    continue;
                if (peak(v, d) > claim_cap) {
                    claim_cap = peak(v, d);
                    claim = d;
                    claim_var = v;
                }
            }
            if (claim == kInvalidId) {
                // Steal from the family with the largest surplus.
                FamilyId victim = kInvalidId;
                double best_surplus = 0.0;
                for (std::size_t g = 0; g < F; ++g) {
                    if (static_cast<FamilyId>(g) == f)
                        continue;
                    double surplus =
                        familyCapacity(hosting,
                                       static_cast<FamilyId>(g)) -
                        target(static_cast<FamilyId>(g));
                    if (surplus > best_surplus) {
                        best_surplus = surplus;
                        victim = static_cast<FamilyId>(g);
                    }
                }
                if (victim == kInvalidId)
                    break;  // cluster exhausted: local optimum
                // Take the victim's smallest-capacity device that the
                // needy family can actually use.
                double smallest = 0.0;
                for (DeviceId d = 0; d < D; ++d) {
                    if (!hosting[d] ||
                        registry_->familyOf(*hosting[d]) != victim) {
                        continue;
                    }
                    VariantId v;
                    if (!pick_variant(f, d, deficit, &v))
                        continue;
                    double victim_cap = peak(*hosting[d], d);
                    if (claim == kInvalidId || victim_cap < smallest) {
                        smallest = victim_cap;
                        claim = d;
                        claim_var = v;
                    }
                }
                if (claim == kInvalidId)
                    break;
            }
            hosting[claim] = claim_var;
        }
    }

    // --- Accuracy upgrades where there is clear surplus. ---
    for (FamilyId f : order) {
        if (input.demand_qps[f] <= 0.0)
            continue;
        int steps = 0;
        while (steps++ < options_.max_steps) {
            double cap = familyCapacity(hosting, f);
            if (cap < target(f) * options_.upgrade_surplus)
                break;
            // Upgrade the least accurate hosted variant one step.
            DeviceId up_dev = kInvalidId;
            double worst_acc = 101.0;
            for (DeviceId d = 0; d < D; ++d) {
                if (!hosting[d] ||
                    registry_->familyOf(*hosting[d]) != f) {
                    continue;
                }
                double acc = registry_->variant(*hosting[d]).accuracy;
                if (acc < worst_acc) {
                    worst_acc = acc;
                    up_dev = d;
                }
            }
            if (up_dev == kInvalidId)
                break;
            // Next more accurate variant usable on that device.
            VariantId next = kInvalidId;
            for (VariantId v : registry_->variantsOf(f)) {
                if (registry_->variant(v).accuracy > worst_acc &&
                    peak(v, up_dev) > 0.0) {
                    next = v;
                    break;
                }
            }
            if (next == kInvalidId)
                break;
            double after = cap - peak(*hosting[up_dev], up_dev) +
                           peak(next, up_dev);
            if (after < target(f))
                break;  // upgrade would break the SLO capacity
            hosting[up_dev] = next;
        }
    }

    // --- Build the plan: capacity-proportional routing. ---
    Allocation plan;
    plan.hosting = hosting;
    plan.routing.assign(F, {});
    plan.family_capacity.assign(F, 0.0);
    double acc_sum = 0.0;
    double served_sum = 0.0;
    for (std::size_t f = 0; f < F; ++f) {
        double cap = familyCapacity(hosting, static_cast<FamilyId>(f));
        plan.family_capacity[f] = cap;
        if (input.demand_qps[f] <= 0.0 || cap <= 0.0)
            continue;
        double serve = std::min(input.demand_qps[f], cap);
        double fraction = serve / input.demand_qps[f];
        for (DeviceId d = 0; d < D; ++d) {
            if (!hosting[d] ||
                registry_->familyOf(*hosting[d]) !=
                    static_cast<FamilyId>(f)) {
                continue;
            }
            double share = peak(*hosting[d], d) / cap;
            plan.routing[f].push_back(
                DeviceShare{d, share * fraction});
            acc_sum += registry_->variant(*hosting[d]).accuracy *
                       share * serve;
        }
        served_sum += serve;
    }
    plan.planned_demand = input.demand_qps;
    double demand_total = 0.0;
    for (double q : input.demand_qps)
        demand_total += q;
    plan.planned_fraction =
        demand_total > 0.0 ? served_sum / demand_total : 1.0;
    plan.planned_qps = served_sum;
    plan.expected_accuracy =
        served_sum > 0.0 ? acc_sum / served_sum : 0.0;
    return plan;
}

}  // namespace proteus
