/**
 * @file
 * INFaaS-Accuracy baseline (paper §6.1.1): fully dynamic model
 * selection and placement by greedy heuristic.
 *
 * INFaaS makes its allocation decision on the query path, so it must
 * use a fast heuristic instead of a MILP; the paper tweaks it to
 * minimize accuracy drop subject to the fixed cluster size
 * ("INFaaS-Accuracy"). The heuristic here follows that description:
 *
 *   1. While a family's demand exceeds its provisioned capacity:
 *      first try downgrading one of its hosted variants to a
 *      higher-throughput (lower-accuracy) one on the same device
 *      (model selection), choosing the largest capacity gain; if no
 *      downgrade helps, claim an idle device — or steal one from the
 *      family with the largest capacity surplus — and host the most
 *      accurate variant that covers the remaining deficit.
 *   2. While a family has ample surplus, upgrade its least accurate
 *      hosted variant one step if capacity stays sufficient.
 *
 * Each step is locally optimal, which is exactly why INFaaS lands in
 * local optima under load (paper §6.2). Routing weights are
 * capacity-proportional. The decision delay is zero: being on the
 * critical path makes INFaaS the fastest to react (paper §6.3).
 */

#ifndef PROTEUS_BASELINES_INFAAS_H_
#define PROTEUS_BASELINES_INFAAS_H_

#include <vector>

#include "cluster/device.h"
#include "core/allocation.h"
#include "models/model.h"
#include "models/profiler.h"

namespace proteus {

/** Tunables of the greedy heuristic. */
struct InfaasOptions {
    /** Target capacity = demand * headroom before it stops scaling. */
    double headroom = 1.05;
    /** Surplus factor above which accuracy upgrades are attempted. */
    double upgrade_surplus = 1.5;
    /** Safety cap on greedy iterations per family. */
    int max_steps = 64;
};

/** Greedy dynamic allocator (INFaaS-Accuracy). */
class InfaasAllocator : public Allocator
{
  public:
    InfaasAllocator(const ModelRegistry* registry,
                    const Cluster* cluster,
                    const ProfileStore* profiles,
                    InfaasOptions options = {});

    Allocation allocate(const AllocationInput& input) override;

    Duration decisionDelay() const override { return 0; }

    const char* name() const override { return "infaas-accuracy"; }

  private:
    double peak(VariantId v, DeviceId d) const;
    double familyCapacity(
        const std::vector<std::optional<VariantId>>& hosting,
        FamilyId f) const;

    const ModelRegistry* registry_;
    const Cluster* cluster_;
    const ProfileStore* profiles_;
    InfaasOptions options_;
};

}  // namespace proteus

#endif  // PROTEUS_BASELINES_INFAAS_H_
