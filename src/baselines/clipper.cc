#include "baselines/clipper.h"

namespace proteus {

namespace {

/** @return true when the variant can serve on some device type. */
bool
usableSomewhere(const Cluster* cluster, const ProfileStore* profiles,
                VariantId v)
{
    for (DeviceTypeId t = 0; t < cluster->numTypes(); ++t) {
        if (profiles->get(v, t).usable())
            return true;
    }
    return false;
}

IlpAllocatorOptions
withPinnedVariants(IlpAllocatorOptions options,
                   const ModelRegistry* registry, const Cluster* cluster,
                   const ProfileStore* profiles, ClipperMode mode)
{
    // Pin one deployable variant per family: the least accurate
    // (high throughput) or the most accurate that meets its SLO on at
    // least one device type (a developer would not deploy a variant
    // that can never answer in time).
    options.variant_filter = [registry, cluster, profiles,
                              mode](VariantId v) {
        FamilyId f = registry->familyOf(v);
        const auto& vs = registry->variantsOf(f);  // accuracy asc
        VariantId pinned = vs.front();
        if (mode == ClipperMode::HighThroughput) {
            for (VariantId cand : vs) {
                if (usableSomewhere(cluster, profiles, cand)) {
                    pinned = cand;
                    break;
                }
            }
        } else {
            for (auto it = vs.rbegin(); it != vs.rend(); ++it) {
                if (usableSomewhere(cluster, profiles, *it)) {
                    pinned = *it;
                    break;
                }
            }
        }
        return v == pinned;
    };
    options.decision_delay = 0;
    return options;
}

}  // namespace

ClipperAllocator::ClipperAllocator(const ModelRegistry* registry,
                                   const Cluster* cluster,
                                   const ProfileStore* profiles,
                                   ClipperMode mode,
                                   IlpAllocatorOptions options)
    : registry_(registry),
      mode_(mode),
      inner_(registry, cluster, profiles,
             withPinnedVariants(options, registry, cluster, profiles,
                                mode))
{}

Allocation
ClipperAllocator::allocate(const AllocationInput& input)
{
    if (!has_plan_) {
        plan_ = inner_.allocate(input);
        has_plan_ = true;
    }
    return plan_;
}

}  // namespace proteus
