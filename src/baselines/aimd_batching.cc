#include "baselines/aimd_batching.h"

#include <algorithm>

namespace proteus {

BatchAction
AimdBatching::decide(const WorkerView& view)
{
    BatchAction action;
    const auto& queue = *view.queue;
    if (queue.empty())
        return action;

    // AIMD probes beyond the SLO-safe batch size on purpose; it is
    // only capped by what the device memory fits (the profiled range).
    const int hard_cap =
        static_cast<int>(view.profile->latency.size());
    if (target_ == 0)
        target_ = std::min(options_.initial_batch, hard_cap);
    target_ = std::min(target_, hard_cap);

    if (static_cast<int>(queue.size()) >= target_) {
        action.execute = target_;
        return action;
    }
    // Not enough queries for a full batch: wait a fixed fraction of
    // the SLO from the head query's arrival, then flush.
    const Time flush_at =
        queue.front()->arrival +
        static_cast<Duration>(static_cast<double>(view.slo) *
                              options_.wait_slo_frac);
    if (view.now >= flush_at) {
        action.execute = static_cast<int>(queue.size());
        return action;
    }
    action.wake_at = flush_at;
    return action;
}

void
AimdBatching::onBatchOutcome(int batch_size, bool any_violation)
{
    (void)batch_size;
    if (target_ == 0)
        return;
    if (any_violation) {
        target_ = std::max(
            1, static_cast<int>(target_ * options_.decrease));
    } else {
        target_ += options_.increase;
    }
}

}  // namespace proteus
