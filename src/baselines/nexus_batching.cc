#include "baselines/nexus_batching.h"

#include <algorithm>

namespace proteus {

BatchAction
NexusBatching::decide(const WorkerView& view)
{
    BatchAction action;
    const auto& queue = *view.queue;
    if (queue.empty())
        return action;

    // Early drop: queries that cannot meet their deadline even if
    // executed alone right now.
    action.drop = countHopeless(view);
    int q = static_cast<int>(queue.size()) - action.drop;
    if (q <= 0)
        return action;

    const BatchProfile& prof = *view.profile;

    if (eager_backlog_drop_ && q >= prof.max_batch) {
        // Optional eager variant: shed heads that would miss their
        // deadline in the full batch they would ride in.
        while (q > 0) {
            int k = std::min(q, prof.max_batch);
            const Query* head =
                queue[static_cast<std::size_t>(action.drop)];
            if (head->deadline >= view.now + prof.latencyFor(k))
                break;
            ++action.drop;
            --q;
        }
        if (q <= 0)
            return action;
        action.execute = std::min(q, prof.max_batch);
        return action;
    }

    // Largest batch whose completion meets the head query's deadline.
    const Time t_exp1 =
        queue[static_cast<std::size_t>(action.drop)]->deadline;
    int k = std::min(q, prof.max_batch);
    while (k > 1 && view.now + prof.latencyFor(k) > t_exp1)
        --k;
    action.execute = k;  // work-conserving: always execute now
    return action;
}

}  // namespace proteus
