#include "baselines/sommelier.h"

namespace proteus {

SommelierAllocator::SommelierAllocator(const ModelRegistry* registry,
                                       const Cluster* cluster,
                                       const ProfileStore* profiles,
                                       IlpAllocatorOptions options)
    : IlpAllocator(registry, cluster, profiles, options)
{}

Allocation
SommelierAllocator::allocate(const AllocationInput& input)
{
    Allocation plan = IlpAllocator::allocate(input);
    if (!frozen_) {
        // Freeze the device-to-family assignment chosen by the first
        // (full) MILP: later calls may only re-select variants within
        // each device's family.
        const std::size_t T = cluster_->numTypes();
        const std::size_t F = registry_->numFamilies();
        std::vector<std::vector<int>> quota(
            T, std::vector<int>(F, 0));
        std::vector<std::optional<FamilyId>> lock(
            cluster_->numDevices());
        for (DeviceId d = 0; d < cluster_->numDevices(); ++d) {
            if (!plan.hosting[d])
                continue;
            FamilyId f = registry_->familyOf(*plan.hosting[d]);
            lock[d] = f;
            ++quota[cluster_->device(d).type][f];
        }
        mutableOptions().family_quota = std::move(quota);
        mutableOptions().device_family_lock = std::move(lock);
        frozen_ = true;
    }
    return plan;
}

}  // namespace proteus
