/**
 * @file
 * Clipper's AIMD adaptive batching (paper §6.4): reactive.
 *
 * The policy maintains a target batch size B. It executes min(B,
 * queue) when enough queries accumulated or after a fixed wait, and
 * adapts B only on feedback: additively increasing it after clean
 * batches and multiplicatively backing off after a batch misses its
 * SLO. It never inspects queue deadlines — which is exactly why it
 * trails the proactive Proteus policy on bursty arrivals (paper:
 * 3.8-4x more violations on Poisson/Gamma traces).
 */

#ifndef PROTEUS_BASELINES_AIMD_BATCHING_H_
#define PROTEUS_BASELINES_AIMD_BATCHING_H_

#include "core/batching.h"

namespace proteus {

/** Additive-increase / multiplicative-decrease batching. */
class AimdBatching : public BatchingPolicy
{
  public:
    struct Options {
        int initial_batch = 1;
        /** Additive increment after a clean batch. */
        int increase = 1;
        /** Multiplicative factor after an SLO miss. */
        double decrease = 0.5;
        /** Max wait before a partial batch executes: SLO * this. */
        double wait_slo_frac = 0.25;
    };

    AimdBatching() : options_() {}
    explicit AimdBatching(const Options& options) : options_(options) {}

    BatchAction decide(const WorkerView& view) override;
    void onBatchOutcome(int batch_size, bool any_violation) override;

    const char* name() const override { return "clipper-aimd"; }

    /** @return the current target batch size (for tests). */
    int targetBatch() const { return target_; }

  private:
    Options options_;
    int target_ = 0;  ///< 0 = uninitialized
};

}  // namespace proteus

#endif  // PROTEUS_BASELINES_AIMD_BATCHING_H_
