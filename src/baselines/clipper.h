/**
 * @file
 * Clipper baseline (paper §6.1.1): a fully static system.
 *
 * Clipper pre-loads one resource allocation at the start of the
 * experiment and never adapts. Following the paper, the initial plan
 * is computed with the Proteus MILP restricted to a single pinned
 * variant per family: the least accurate (Clipper-HT, maximizing
 * throughput) or the most accurate (Clipper-HA, maximizing serving
 * accuracy). Clipper is also representative of TensorFlow-Serving
 * and Triton, which likewise leave cluster-level adaptation to the
 * application developer.
 */

#ifndef PROTEUS_BASELINES_CLIPPER_H_
#define PROTEUS_BASELINES_CLIPPER_H_

#include "core/ilp_allocator.h"

namespace proteus {

/** Variant-pinning mode for the static Clipper plan. */
enum class ClipperMode {
    HighThroughput,  ///< pin the least accurate (fastest) variants
    HighAccuracy,    ///< pin the most accurate variants
};

/** Static allocator: computes one plan and returns it forever. */
class ClipperAllocator : public Allocator
{
  public:
    ClipperAllocator(const ModelRegistry* registry,
                     const Cluster* cluster,
                     const ProfileStore* profiles, ClipperMode mode,
                     IlpAllocatorOptions options = {});

    Allocation allocate(const AllocationInput& input) override;

    /** The static plan is precomputed; applying it is instant. */
    Duration decisionDelay() const override { return 0; }

    const char*
    name() const override
    {
        return mode_ == ClipperMode::HighThroughput ? "clipper-ht"
                                                    : "clipper-ha";
    }

  private:
    const ModelRegistry* registry_;
    ClipperMode mode_;
    IlpAllocator inner_;
    Allocation plan_;
    bool has_plan_ = false;
};

}  // namespace proteus

#endif  // PROTEUS_BASELINES_CLIPPER_H_
