/**
 * @file
 * Nexus early-drop batching (paper §6.4): proactive but
 * work-conserving.
 *
 * Whenever the device goes idle, Nexus immediately drops the queries
 * that can no longer meet their deadline ("early drop") and executes
 * the largest batch whose completion still meets the head query's
 * deadline. It never waits for more queries to accumulate — the
 * work-conserving trait that costs it 2-3x more SLO violations than
 * Proteus when inter-arrivals are bursty (paper §6.4).
 */

#ifndef PROTEUS_BASELINES_NEXUS_BATCHING_H_
#define PROTEUS_BASELINES_NEXUS_BATCHING_H_

#include "core/batching.h"

namespace proteus {

/** Work-conserving early-drop batching. */
class NexusBatching : public BatchingPolicy
{
  public:
    /**
     * @param eager_backlog_drop if true, also shed head queries that
     *        cannot survive the full batch they would ride in when a
     *        backlog has formed. The paper describes only the lazy
     *        rule ("drop queries that cannot meet the deadline even
     *        executed immediately") plus a head-bounded batch size —
     *        which burns capacity rescuing stale heads with small
     *        batches under sustained backlog, the behaviour its
     *        evaluation penalizes (2-3x more violations than Proteus
     *        on bursty arrivals, §6.4). The eager variant closes most
     *        of that gap; EXPERIMENTS.md reports both.
     */
    explicit NexusBatching(bool eager_backlog_drop = false)
        : eager_backlog_drop_(eager_backlog_drop)
    {}

    BatchAction decide(const WorkerView& view) override;

    const char* name() const override { return "nexus-early-drop"; }

  private:
    bool eager_backlog_drop_;
};

}  // namespace proteus

#endif  // PROTEUS_BASELINES_NEXUS_BATCHING_H_
