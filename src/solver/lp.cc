#include "solver/lp.h"

#include <cmath>

#include "common/logging.h"

namespace proteus {

int
LinearProgram::addVariable(double lo, double hi, double obj,
                           std::string name)
{
    PROTEUS_ASSERT(std::isfinite(lo), "variables need a finite lower bound");
    PROTEUS_ASSERT(lo <= hi, "variable bounds crossed: ", name);
    vars_.push_back(Variable{lo, hi, obj, false, std::move(name)});
    return static_cast<int>(vars_.size()) - 1;
}

int
LinearProgram::addIntVariable(double lo, double hi, double obj,
                              std::string name)
{
    int j = addVariable(lo, hi, obj, std::move(name));
    vars_[j].is_integer = true;
    int_vars_.push_back(j);
    return j;
}

int
LinearProgram::addConstraint(std::vector<Coeff> coeffs, RowSense sense,
                             double rhs, std::string name)
{
    for (const auto& [col, coef] : coeffs) {
        PROTEUS_ASSERT(col >= 0 && col < numVariables(),
                       "row references unknown column ", col);
        PROTEUS_ASSERT(std::isfinite(coef), "non-finite coefficient");
    }
    rows_.push_back(Row{std::move(coeffs), sense, rhs, std::move(name)});
    return static_cast<int>(rows_.size()) - 1;
}

double
LinearProgram::objectiveValue(const std::vector<double>& x) const
{
    double v = 0.0;
    for (int j = 0; j < numVariables(); ++j)
        v += vars_[j].obj * x[j];
    return v;
}

bool
LinearProgram::isFeasible(const std::vector<double>& x, double tol) const
{
    if (static_cast<int>(x.size()) != numVariables())
        return false;
    for (int j = 0; j < numVariables(); ++j) {
        if (x[j] < vars_[j].lo - tol || x[j] > vars_[j].hi + tol)
            return false;
    }
    for (const auto& row : rows_) {
        double lhs = 0.0;
        for (const auto& [col, coef] : row.coeffs)
            lhs += coef * x[col];
        switch (row.sense) {
          case RowSense::LessEqual:
            if (lhs > row.rhs + tol)
                return false;
            break;
          case RowSense::Equal:
            if (std::abs(lhs - row.rhs) > tol)
                return false;
            break;
          case RowSense::GreaterEqual:
            if (lhs < row.rhs - tol)
                return false;
            break;
        }
    }
    return true;
}

const char*
toString(SolveStatus status)
{
    switch (status) {
      case SolveStatus::Optimal: return "Optimal";
      case SolveStatus::Feasible: return "Feasible";
      case SolveStatus::Infeasible: return "Infeasible";
      case SolveStatus::Unbounded: return "Unbounded";
      case SolveStatus::IterLimit: return "IterLimit";
      case SolveStatus::TimeLimit: return "TimeLimit";
    }
    return "Unknown";
}

}  // namespace proteus
