#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace proteus {

namespace {

/**
 * Internal tableau state for one solve. Columns are laid out as
 * [structural | slacks | artificials]; rows are the constraints in
 * model order with a uniform "A x + s = rhs" form.
 */
class Tableau
{
  public:
    Tableau(const LinearProgram& lp,
            const std::vector<std::pair<double, double>>* bound_override,
            const SimplexSolver::Options& options);

    /** Run phase 1 (if needed) and phase 2. */
    Solution run();

  private:
    double& at(int i, int j) { return tab_[static_cast<std::size_t>(i) *
                                            stride_ + j]; }
    double get(int i, int j) const
    {
        return tab_[static_cast<std::size_t>(i) * stride_ + j];
    }

    bool isFixed(int j) const { return hi_[j] - lo_[j] < 1e-15; }

    /** Value a nonbasic column currently sits at. */
    double
    nonbasicValue(int j) const
    {
        return nb_at_upper_[j] ? hi_[j] : lo_[j];
    }

    void buildInitialBasis();
    void computeReducedCosts();

    enum class IterResult { Progress, Optimal, Unbounded, Stalled };
    IterResult iterate(bool bland);

    /** Paranoid invariant check: A x + s = b and bounds hold. */
    void checkInvariants(const char* where) const;

    /** Run simplex to optimality on the current objective. */
    SolveStatus optimize();

    void extractSolution(Solution* out) const;

    const LinearProgram& lp_;
    const SimplexSolver::Options& opt_;

    int m_;                  ///< number of rows
    int n_struct_;           ///< structural columns
    int n_;                  ///< total columns (struct + slack + artif)
    int stride_;             ///< row stride of the tableau

    std::vector<double> tab_;       ///< m x n dense tableau
    std::vector<double> rhs0_;      ///< original rhs per row
    std::vector<double> cost_;      ///< current objective (maximize)
    std::vector<double> cost2_;     ///< phase-2 objective (maximize)
    std::vector<double> lo_, hi_;   ///< per-column bounds
    std::vector<int> basis_;        ///< basic column per row
    std::vector<int> pos_in_basis_; ///< row of basic col, -1 if nonbasic
    std::vector<char> nb_at_upper_; ///< nonbasic at upper bound?
    std::vector<double> xb_;        ///< values of basic variables
    std::vector<double> d_;         ///< reduced costs

    std::int64_t iters_ = 0;
    int n_artificial_ = 0;
    std::vector<double> artif_coeff_;  ///< original artificial columns
};

Tableau::Tableau(const LinearProgram& lp,
                 const std::vector<std::pair<double, double>>* bound_override,
                 const SimplexSolver::Options& options)
    : lp_(lp), opt_(options)
{
    m_ = lp.numConstraints();
    n_struct_ = lp.numVariables();

    const double sign = lp.objSense() == ObjSense::Maximize ? 1.0 : -1.0;

    // Bounds and phase-2 costs for structural columns.
    lo_.reserve(n_struct_ + m_);
    hi_.reserve(n_struct_ + m_);
    cost2_.reserve(n_struct_ + m_);
    for (int j = 0; j < n_struct_; ++j) {
        double lo = lp.variable(j).lo;
        double hi = lp.variable(j).hi;
        if (bound_override) {
            lo = (*bound_override)[j].first;
            hi = (*bound_override)[j].second;
        }
        lo_.push_back(lo);
        hi_.push_back(hi);
        cost2_.push_back(sign * lp.variable(j).obj);
    }
    // Slack columns: one per row; bounds encode the row sense.
    for (int i = 0; i < m_; ++i) {
        switch (lp.row(i).sense) {
          case RowSense::LessEqual:
            lo_.push_back(0.0);
            hi_.push_back(kInf);
            break;
          case RowSense::Equal:
            lo_.push_back(0.0);
            hi_.push_back(0.0);
            break;
          case RowSense::GreaterEqual:
            // s <= 0, unbounded below. Nonbasic position is the upper
            // bound (0); the -inf side never hosts a nonbasic var.
            lo_.push_back(-kInf);
            hi_.push_back(0.0);
            break;
        }
        cost2_.push_back(0.0);
    }
}

void
Tableau::buildInitialBasis()
{
    // Start every structural column nonbasic at a finite bound.
    // Compute the implied slack values; rows whose slack violates its
    // bounds get an artificial column that absorbs the residual.
    const int n_slack_end = n_struct_ + m_;
    std::vector<double> x0(n_slack_end, 0.0);
    for (int j = 0; j < n_struct_; ++j) {
        PROTEUS_ASSERT(std::isfinite(lo_[j]),
                       "structural variables need finite lower bounds");
        x0[j] = lo_[j];
    }

    std::vector<double> slack_val(m_);
    rhs0_.resize(m_);
    for (int i = 0; i < m_; ++i) {
        double ax = 0.0;
        for (const auto& [col, coef] : lp_.row(i).coeffs)
            ax += coef * x0[col];
        rhs0_[i] = lp_.row(i).rhs;
        slack_val[i] = rhs0_[i] - ax;
    }

    // Decide which rows need artificials.
    std::vector<int> artif_row;
    std::vector<double> artif_sign;
    std::vector<double> slack_start(m_);
    for (int i = 0; i < m_; ++i) {
        const int sj = n_struct_ + i;
        if (slack_val[i] >= lo_[sj] - opt_.feas_tol &&
            slack_val[i] <= hi_[sj] + opt_.feas_tol) {
            slack_start[i] = slack_val[i];
            continue;  // slack can be basic and feasible
        }
        // Park the slack at its nearest bound; artificial holds the rest.
        double parked = slack_val[i] > hi_[sj] ? hi_[sj] : lo_[sj];
        PROTEUS_ASSERT(std::isfinite(parked),
                       "slack of an infeasible row has no finite bound");
        slack_start[i] = parked;
        artif_row.push_back(i);
        artif_sign.push_back(slack_val[i] > parked ? 1.0 : -1.0);
    }
    n_artificial_ = static_cast<int>(artif_row.size());
    n_ = n_slack_end + n_artificial_;
    stride_ = n_;

    for (int k = 0; k < n_artificial_; ++k) {
        lo_.push_back(0.0);
        hi_.push_back(kInf);
        cost2_.push_back(0.0);
    }

    // Dense tableau: structural coefficients, identity slacks, signed
    // identity artificials. The starting basis is one column per row:
    // the slack where feasible, the artificial otherwise.
    tab_.assign(static_cast<std::size_t>(m_) * n_, 0.0);
    for (int i = 0; i < m_; ++i) {
        for (const auto& [col, coef] : lp_.row(i).coeffs)
            at(i, col) += coef;
        at(i, n_struct_ + i) = 1.0;
    }
    for (int k = 0; k < n_artificial_; ++k)
        at(artif_row[k], n_slack_end + k) = artif_sign[k];
    if (opt_.paranoid && n_artificial_ > 0) {
        artif_coeff_.assign(
            static_cast<std::size_t>(m_) * n_artificial_, 0.0);
        for (int k = 0; k < n_artificial_; ++k) {
            artif_coeff_[static_cast<std::size_t>(artif_row[k]) *
                         n_artificial_ + k] = artif_sign[k];
        }
    }

    basis_.assign(m_, -1);
    pos_in_basis_.assign(n_, -1);
    nb_at_upper_.assign(n_, 0);
    xb_.assign(m_, 0.0);

    for (int j = 0; j < n_struct_; ++j) {
        // Nonbasic at lower bound unless only the upper bound is finite.
        nb_at_upper_[j] = 0;
    }
    std::vector<char> has_artif(m_, 0);
    for (int k = 0; k < n_artificial_; ++k)
        has_artif[artif_row[k]] = 1;

    for (int i = 0; i < m_; ++i) {
        if (!has_artif[i]) {
            basis_[i] = n_struct_ + i;
            xb_[i] = slack_start[i];
            pos_in_basis_[n_struct_ + i] = i;
        }
    }
    for (int k = 0; k < n_artificial_; ++k) {
        int i = artif_row[k];
        int aj = n_slack_end + k;
        // The tableau must hold B^-1 A. With an artificial of
        // coefficient -1 basic in this row, normalize the row so the
        // basic column reads +1.
        if (artif_sign[k] < 0.0) {
            double* row = &tab_[static_cast<std::size_t>(i) * stride_];
            for (int j = 0; j < n_; ++j)
                row[j] = -row[j];
        }
        basis_[i] = aj;
        // Artificial value: residual after parking the slack, made
        // positive by the sign of its coefficient.
        double resid = slack_val[i] - slack_start[i];
        xb_[i] = resid * artif_sign[k];  // == |resid|
        pos_in_basis_[aj] = i;
        // Slack is nonbasic, parked at the bound chosen above.
        const int sj = n_struct_ + i;
        nb_at_upper_[sj] = (slack_start[i] == hi_[sj] &&
                            std::isfinite(hi_[sj]) && hi_[sj] != lo_[sj])
                           ? 1 : 0;
        if (lo_[sj] == hi_[sj])
            nb_at_upper_[sj] = 0;
    }
}

void
Tableau::computeReducedCosts()
{
    // d_j = c_j - c_B' (B^-1 A_j); with the tableau already equal to
    // B^-1 A, this is a dense dot down each column.
    d_.assign(n_, 0.0);
    std::vector<double> cb(m_);
    bool any_cb = false;
    for (int i = 0; i < m_; ++i) {
        cb[i] = cost_[basis_[i]];
        if (cb[i] != 0.0)
            any_cb = true;
    }
    for (int j = 0; j < n_; ++j)
        d_[j] = cost_[j];
    if (!any_cb)
        return;
    for (int i = 0; i < m_; ++i) {
        if (cb[i] == 0.0)
            continue;
        const double* row = &tab_[static_cast<std::size_t>(i) * stride_];
        for (int j = 0; j < n_; ++j)
            d_[j] -= cb[i] * row[j];
    }
}

void
Tableau::checkInvariants(const char* where) const
{
    // Assemble the full solution vector (structural + slack + artif).
    std::vector<double> x(n_);
    for (int j = 0; j < n_; ++j) {
        if (pos_in_basis_[j] >= 0)
            x[j] = xb_[pos_in_basis_[j]];
        else
            x[j] = nb_at_upper_[j] ? hi_[j] : lo_[j];
    }
    for (int j = 0; j < n_; ++j) {
        PROTEUS_ASSERT(x[j] >= lo_[j] - 1e-5 && x[j] <= hi_[j] + 1e-5,
                       where, ": column ", j, " value ", x[j],
                       " outside [", lo_[j], ",", hi_[j], "]");
    }
    // Original equality system: structural row coeffs + slack +
    // signed artificial must reproduce the rhs.
    for (int i = 0; i < m_; ++i) {
        double lhs = 0.0;
        for (const auto& [col, coef] : lp_.row(i).coeffs)
            lhs += coef * x[col];
        lhs += x[n_struct_ + i];
        for (int j = n_struct_ + m_; j < n_; ++j) {
            lhs += artif_coeff_[static_cast<std::size_t>(i) *
                                n_artificial_ + (j - n_struct_ - m_)] *
                   x[j];
        }
        PROTEUS_ASSERT(std::abs(lhs - rhs0_[i]) < 1e-5,
                       where, ": row ", i, " lhs ", lhs, " rhs ",
                       rhs0_[i]);
    }
}

Tableau::IterResult
Tableau::iterate(bool bland)
{
    // --- Pricing: pick an entering column. ---
    int enter = -1;
    double best_score = opt_.opt_tol;
    double sigma = 1.0;
    for (int j = 0; j < n_; ++j) {
        if (pos_in_basis_[j] >= 0 || isFixed(j))
            continue;
        double dj = d_[j];
        double score;
        double dir;
        if (!nb_at_upper_[j] && dj > opt_.opt_tol) {
            score = dj;
            dir = 1.0;
        } else if (nb_at_upper_[j] && dj < -opt_.opt_tol) {
            score = -dj;
            dir = -1.0;
        } else {
            continue;
        }
        if (bland) {
            enter = j;
            sigma = dir;
            break;
        }
        if (score > best_score) {
            best_score = score;
            enter = j;
            sigma = dir;
        }
    }
    if (enter < 0)
        return IterResult::Optimal;

    // --- Ratio test. ---
    // Entering variable moves by t >= 0 in direction sigma; basic
    // variable i changes at rate -sigma * T[i][enter].
    double t_limit = hi_[enter] - lo_[enter];  // bound-flip distance
    int leave_row = -1;
    bool leave_to_upper = false;
    double best_pivot_mag = 0.0;

    for (int i = 0; i < m_; ++i) {
        double a = get(i, enter);
        if (std::abs(a) < opt_.pivot_tol)
            continue;
        double rate = -sigma * a;
        double allowance;
        bool to_upper;
        if (rate < 0.0) {
            // basic i decreases toward its lower bound
            if (!std::isfinite(lo_[basis_[i]]))
                continue;
            allowance = (xb_[i] - lo_[basis_[i]]) / (-rate);
            to_upper = false;
        } else {
            if (!std::isfinite(hi_[basis_[i]]))
                continue;
            allowance = (hi_[basis_[i]] - xb_[i]) / rate;
            to_upper = true;
        }
        if (allowance < -opt_.feas_tol)
            allowance = 0.0;  // slightly out of bounds: degenerate step
        if (allowance < 0.0)
            allowance = 0.0;
        bool better;
        if (allowance < t_limit - 1e-12) {
            better = true;
        } else if (allowance <= t_limit + 1e-12 && leave_row >= 0) {
            // Tie: prefer larger pivot magnitude (stability), or
            // smallest basis index under Bland's rule.
            if (bland) {
                better = basis_[i] < basis_[leave_row];
            } else {
                better = std::abs(a) > best_pivot_mag;
            }
        } else {
            better = false;
        }
        if (better) {
            t_limit = std::min(t_limit, allowance);
            leave_row = i;
            leave_to_upper = to_upper;
            best_pivot_mag = std::abs(a);
        }
    }

    if (!std::isfinite(t_limit))
        return IterResult::Unbounded;

    if (leave_row < 0) {
        // Pure bound flip: the entering variable runs to its other
        // bound without any basic variable blocking.
        double t = t_limit;
        for (int i = 0; i < m_; ++i) {
            double a = get(i, enter);
            if (a != 0.0)
                xb_[i] += -sigma * a * t;
        }
        nb_at_upper_[enter] = nb_at_upper_[enter] ? 0 : 1;
        return t > 1e-12 ? IterResult::Progress : IterResult::Stalled;
    }

    // --- Pivot on (leave_row, enter). ---
    double t = t_limit;
    double enter_value = nonbasicValue(enter) + sigma * t;
    for (int i = 0; i < m_; ++i) {
        if (i == leave_row)
            continue;
        double a = get(i, enter);
        if (a != 0.0)
            xb_[i] += -sigma * a * t;
    }

    int leave_col = basis_[leave_row];
    // The leaving variable exits exactly at the bound that blocked it.
    nb_at_upper_[leave_col] = leave_to_upper ? 1 : 0;
    if (lo_[leave_col] == hi_[leave_col])
        nb_at_upper_[leave_col] = 0;
    pos_in_basis_[leave_col] = -1;

    // Gaussian elimination on the tableau and the reduced-cost row.
    double piv = get(leave_row, enter);
    double* prow = &tab_[static_cast<std::size_t>(leave_row) * stride_];
    double inv = 1.0 / piv;
    for (int j = 0; j < n_; ++j)
        prow[j] *= inv;
    for (int i = 0; i < m_; ++i) {
        if (i == leave_row)
            continue;
        double f = get(i, enter);
        if (f == 0.0)
            continue;
        double* row = &tab_[static_cast<std::size_t>(i) * stride_];
        for (int j = 0; j < n_; ++j)
            row[j] -= f * prow[j];
        row[enter] = 0.0;
    }
    double df = d_[enter];
    if (df != 0.0) {
        for (int j = 0; j < n_; ++j)
            d_[j] -= df * prow[j];
        d_[enter] = 0.0;
    }

    basis_[leave_row] = enter;
    pos_in_basis_[enter] = leave_row;
    xb_[leave_row] = enter_value;

    return t > 1e-12 ? IterResult::Progress : IterResult::Stalled;
}

SolveStatus
Tableau::optimize()
{
    computeReducedCosts();
    int stall = 0;
    bool bland = false;
    while (true) {
        if (++iters_ > opt_.max_iters)
            return SolveStatus::IterLimit;
        IterResult r = iterate(bland);
        if (opt_.paranoid)
            checkInvariants("post-iterate");
        switch (r) {
          case IterResult::Optimal:
            return SolveStatus::Optimal;
          case IterResult::Unbounded:
            return SolveStatus::Unbounded;
          case IterResult::Progress:
            stall = 0;
            bland = false;
            break;
          case IterResult::Stalled:
            if (++stall > 2 * (m_ + n_))
                bland = true;  // guarantee termination
            break;
        }
    }
}

void
Tableau::extractSolution(Solution* out) const
{
    out->x.assign(n_struct_, 0.0);
    for (int j = 0; j < n_struct_; ++j) {
        if (pos_in_basis_[j] >= 0)
            out->x[j] = xb_[pos_in_basis_[j]];
        else
            out->x[j] = nonbasicValue(j);
        // Clean tiny numerical dust.
        if (std::abs(out->x[j]) < 1e-11)
            out->x[j] = 0.0;
    }
    out->objective = lp_.objectiveValue(out->x);
    out->work = iters_;
}

Solution
Tableau::run()
{
    Solution out;
    buildInitialBasis();

    if (n_artificial_ > 0) {
        // Phase 1: maximize -(sum of artificials).
        cost_.assign(n_, 0.0);
        for (int j = n_struct_ + m_; j < n_; ++j)
            cost_[j] = -1.0;
        SolveStatus s1 = optimize();
        if (s1 == SolveStatus::IterLimit) {
            out.status = SolveStatus::IterLimit;
            return out;
        }
        double infeas = 0.0;
        for (int j = n_struct_ + m_; j < n_; ++j) {
            double v = pos_in_basis_[j] >= 0 ? xb_[pos_in_basis_[j]]
                                             : nonbasicValue(j);
            infeas += v;
        }
        if (infeas > 1e-6) {
            out.status = SolveStatus::Infeasible;
            out.work = iters_;
            return out;
        }
        // Freeze artificials at zero for phase 2.
        for (int j = n_struct_ + m_; j < n_; ++j) {
            lo_[j] = 0.0;
            hi_[j] = 0.0;
            if (pos_in_basis_[j] < 0)
                nb_at_upper_[j] = 0;
        }
    } else {
        cost_.assign(n_, 0.0);
    }

    cost_ = cost2_;
    SolveStatus s2 = optimize();
    if (s2 == SolveStatus::Optimal) {
        out.status = SolveStatus::Optimal;
        extractSolution(&out);
    } else if (s2 == SolveStatus::Unbounded) {
        out.status = SolveStatus::Unbounded;
        out.work = iters_;
    } else {
        out.status = s2;
        out.work = iters_;
    }
    return out;
}

}  // namespace

Solution
SimplexSolver::solve(const LinearProgram& lp,
                     const std::vector<std::pair<double, double>>*
                         bound_override)
{
    if (bound_override) {
        PROTEUS_ASSERT(static_cast<int>(bound_override->size()) ==
                           lp.numVariables(),
                       "bound override size mismatch");
        for (const auto& [lo, hi] : *bound_override) {
            if (lo > hi + 1e-12) {
                Solution out;
                out.status = SolveStatus::Infeasible;
                return out;
            }
        }
    }
    Tableau t(lp, bound_override, options_);
    return t.run();
}

}  // namespace proteus
