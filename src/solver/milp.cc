#include "solver/milp.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"

namespace proteus {

namespace {

using Bounds = std::vector<std::pair<double, double>>;

/** One open node of the branch-and-bound tree. */
struct Node {
    Bounds bounds;
    double parent_bound;  ///< LP bound inherited from the parent
    int depth;
};

/** Best-first: expand the node with the most promising bound first. */
struct NodeWorse {
    bool
    operator()(const Node& a, const Node& b) const
    {
        if (a.parent_bound != b.parent_bound)
            return a.parent_bound < b.parent_bound;
        return a.depth < b.depth;  // prefer deeper on ties (diving)
    }
};

/** Index of the most fractional integer variable, or -1 if integral. */
int
mostFractional(const LinearProgram& lp, const std::vector<double>& x,
               double int_tol)
{
    int best = -1;
    double best_frac = int_tol;
    for (int j : lp.integerVariables()) {
        double frac = std::abs(x[j] - std::round(x[j]));
        if (frac > best_frac) {
            best_frac = frac;
            best = j;
        }
    }
    return best;
}

}  // namespace

Solution
MilpSolver::solve(const LinearProgram& lp,
                  const std::vector<double>* hint)
{
    const WallTimer timer;
    const bool maximize = lp.objSense() == ObjSense::Maximize;
    // All bounds below are handled in "maximize" orientation.
    auto orient = [&](double v) { return maximize ? v : -v; };

    stats_ = Stats{};
    SimplexSolver lp_solver(options_.lp);
    auto solveLp = [&](const Bounds* bounds) {
        Solution s = lp_solver.solve(lp, bounds);
        ++stats_.lp_solves;
        stats_.simplex_iterations += s.work;
        return s;
    };

    Bounds root_bounds;
    root_bounds.reserve(lp.numVariables());
    for (int j = 0; j < lp.numVariables(); ++j) {
        double lo = lp.variable(j).lo;
        double hi = lp.variable(j).hi;
        if (lp.variable(j).is_integer) {
            lo = std::ceil(lo - options_.int_tol);
            hi = std::floor(hi + options_.int_tol);
        }
        root_bounds.emplace_back(lo, hi);
    }

    Solution best;
    best.status = SolveStatus::Infeasible;
    double incumbent = -kInf;  // oriented
    double best_dual = kInf;   // oriented upper bound on the optimum

    // Warm start: accept the hint as the initial incumbent when it is
    // feasible and integral.
    if (hint && static_cast<int>(hint->size()) == lp.numVariables() &&
        lp.isFeasible(*hint, 1e-6)) {
        bool integral = true;
        for (int j : lp.integerVariables()) {
            if (std::abs((*hint)[j] - std::round((*hint)[j])) >
                options_.int_tol) {
                integral = false;
                break;
            }
        }
        if (integral) {
            incumbent = orient(lp.objectiveValue(*hint));
            best.x = *hint;
            best.objective = lp.objectiveValue(*hint);
            best.status = SolveStatus::Feasible;
        }
    }

    std::priority_queue<Node, std::vector<Node>, NodeWorse> open;
    open.push(Node{root_bounds, kInf, 0});

    std::int64_t nodes = 0;
    bool hit_node_limit = false;
    bool hit_work_limit = false;
    bool hit_time_limit = false;
    bool root_infeasible = false;
    bool root_unbounded = false;

    auto timeUp = [&]() {
        if (options_.time_limit_sec <= 0.0)
            return false;
        return timer.elapsedSeconds() >= options_.time_limit_sec;
    };

    auto offerIncumbent = [&](const Solution& s) {
        double obj = orient(s.objective);
        if (obj > incumbent + 1e-12) {
            incumbent = obj;
            best.x = s.x;
            best.objective = s.objective;
            best.status = SolveStatus::Feasible;
            ++stats_.incumbents;
        }
    };

    // Rounding-and-repair heuristic: fix every integer variable to the
    // rounded relaxation value and re-solve the LP for the continuous
    // completion.
    auto tryRounding = [&](const std::vector<double>& x,
                           const Bounds& node_bounds) {
        Bounds fixed = node_bounds;
        for (int j : lp.integerVariables()) {
            double v = std::round(x[j]);
            v = std::clamp(v, node_bounds[j].first, node_bounds[j].second);
            fixed[j] = {v, v};
        }
        Solution s = solveLp(&fixed);
        if (s.status == SolveStatus::Optimal)
            offerIncumbent(s);
    };

    // Fractional diving heuristic: repeatedly fix the *least*
    // fractional unfixed integer to its nearest neighbour (minimal
    // perturbation of the relaxation) and re-solve. Costs at most ~2
    // LP solves per integer variable and almost always lands a good
    // incumbent, which is what lets best-first search prune.
    auto leastFractional = [&](const std::vector<double>& x,
                               const Bounds& bounds) {
        int best_j = -1;
        double best_frac = 1.0;
        for (int j : lp.integerVariables()) {
            if (bounds[j].second - bounds[j].first < 0.5)
                continue;  // already fixed
            double frac = std::abs(x[j] - std::round(x[j]));
            if (frac <= options_.int_tol)
                continue;
            if (frac < best_frac) {
                best_frac = frac;
                best_j = j;
            }
        }
        return best_j;
    };

    auto dive = [&](std::vector<double> x, Bounds bounds) {
        while (true) {
            int j = leastFractional(x, bounds);
            if (j < 0) {
                // Integral: x may come from an LP solve, so it is
                // feasible by construction.
                Solution s;
                s.status = SolveStatus::Optimal;
                s.x = x;
                s.objective = lp.objectiveValue(x);
                offerIncumbent(s);
                return;
            }
            double lo_v = std::floor(x[j]);
            double hi_v = std::ceil(x[j]);
            double first = x[j] - lo_v <= hi_v - x[j] ? lo_v : hi_v;
            double second = first == lo_v ? hi_v : lo_v;
            bool advanced = false;
            for (double v : {first, second}) {
                if (v < bounds[j].first - 1e-9 ||
                    v > bounds[j].second + 1e-9) {
                    continue;
                }
                Bounds trial = bounds;
                trial[j] = {v, v};
                Solution s = solveLp(&trial);
                if (s.status != SolveStatus::Optimal)
                    continue;
                bounds = std::move(trial);
                x = s.x;
                advanced = true;
                break;
            }
            if (!advanced)
                return;  // dead end; give up the dive
        }
    };

    while (!open.empty()) {
        if (nodes >= options_.max_nodes) {
            hit_node_limit = true;
            break;
        }
        // Checked before the wall clock so that when both limits
        // would fire, the deterministic one decides the outcome.
        if (options_.work_limit_iters > 0 &&
            stats_.simplex_iterations >= options_.work_limit_iters) {
            hit_work_limit = true;
            break;
        }
        if (timeUp()) {
            hit_time_limit = true;
            break;
        }
        Node node = open.top();
        open.pop();
        if (node.parent_bound <= incumbent + 1e-12 && nodes > 0) {
            // Best-first: every remaining node is no better.
            break;
        }
        ++nodes;

        Solution relax = solveLp(&node.bounds);
        if (relax.status == SolveStatus::Infeasible) {
            if (nodes == 1)
                root_infeasible = true;
            continue;
        }
        if (relax.status == SolveStatus::Unbounded) {
            if (nodes == 1) {
                root_unbounded = true;
                break;
            }
            continue;
        }
        if (relax.status != SolveStatus::Optimal)
            continue;  // iteration limit in relaxation: prune (rare)

        double bound = orient(relax.objective);
        if (nodes == 1)
            best_dual = bound;
        if (bound <= incumbent + std::abs(incumbent) * options_.gap_tol +
                         1e-12) {
            continue;  // cannot improve
        }

        int frac = mostFractional(lp, relax.x, options_.int_tol);
        if (frac < 0) {
            // Integral relaxation: candidate incumbent.
            if (bound > incumbent) {
                incumbent = bound;
                best.x = relax.x;
                best.objective = relax.objective;
                best.status = SolveStatus::Feasible;
                ++stats_.incumbents;
            }
            continue;
        }

        if (nodes == 1 || nodes % (8 * options_.heuristic_period) == 0)
            dive(relax.x, node.bounds);
        else if (nodes % options_.heuristic_period == 0)
            tryRounding(relax.x, node.bounds);

        double v = relax.x[frac];
        Node down = node;
        down.bounds[frac].second =
            std::min(down.bounds[frac].second, std::floor(v));
        down.parent_bound = bound;
        down.depth = node.depth + 1;
        Node up = node;
        up.bounds[frac].first =
            std::max(up.bounds[frac].first, std::ceil(v));
        up.parent_bound = bound;
        up.depth = node.depth + 1;
        if (down.bounds[frac].first <= down.bounds[frac].second)
            open.push(std::move(down));
        if (up.bounds[frac].first <= up.bounds[frac].second)
            open.push(std::move(up));
    }

    best.work = nodes;
    stats_.nodes = nodes;
    auto finish = [&]() { stats_.wall_seconds = timer.elapsedSeconds(); };

    if (root_unbounded) {
        best.status = SolveStatus::Unbounded;
        finish();
        return best;
    }

    if (best.status == SolveStatus::Feasible) {
        // Compute the tightest remaining dual bound.
        double dual = incumbent;
        if (hit_node_limit || hit_work_limit || hit_time_limit) {
            dual = best_dual;
            if (!open.empty())
                dual = std::min(best_dual, open.top().parent_bound);
        } else if (!open.empty()) {
            dual = std::max(incumbent, open.top().parent_bound);
        }
        best.bound = maximize ? dual : -dual;
        double gap = std::abs(dual - incumbent) /
                     std::max(1.0, std::abs(incumbent));
        stats_.gap = gap;
        if (!hit_node_limit && !hit_work_limit && !hit_time_limit) {
            best.status = SolveStatus::Optimal;
        } else if (gap <= options_.gap_tol) {
            best.status = SolveStatus::Optimal;
        }
        finish();
        return best;
    }

    if (hit_time_limit) {
        best.status = SolveStatus::TimeLimit;
    } else if (hit_node_limit || hit_work_limit) {
        best.status = SolveStatus::IterLimit;
    } else {
        best.status = SolveStatus::Infeasible;
        (void)root_infeasible;
    }
    finish();
    return best;
}

}  // namespace proteus
