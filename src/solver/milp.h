/**
 * @file
 * Branch-and-bound solver for mixed-integer linear programs.
 *
 * Best-first search over LP relaxations solved by SimplexSolver, with
 * most-fractional branching and a rounding-and-repair primal heuristic
 * that produces incumbents early. Supports relative gap, node and
 * wall-clock limits; within the limits the returned solution is
 * globally optimal, matching the paper's use of an exact MILP
 * (§4, "Solving the MILP").
 */

#ifndef PROTEUS_SOLVER_MILP_H_
#define PROTEUS_SOLVER_MILP_H_

#include <cstdint>

#include "solver/lp.h"
#include "solver/simplex.h"

namespace proteus {

/** Exact MILP solver (branch & bound over simplex relaxations). */
class MilpSolver
{
  public:
    /** Tunables; defaults mirror the paper's solver budget. */
    struct Options {
        /** Integrality tolerance on relaxation values. */
        double int_tol = 1e-6;
        /** Relative optimality gap at which search stops. */
        double gap_tol = 1e-6;
        /** Hard cap on branch-and-bound nodes. */
        std::int64_t max_nodes = 1000000;
        /**
         * Deterministic work budget: total simplex iterations across
         * all LP solves; 0 disables the limit. Unlike time_limit_sec
         * this counts machine-independent work, so a truncated solve
         * returns the same incumbent regardless of machine load.
         */
        std::int64_t work_limit_iters = 0;
        /**
         * Wall-clock budget in seconds; 0 disables the limit. The
         * paper caps Gurobi at 60 s (§6.8). Kept as a backstop behind
         * work_limit_iters — the one sanctioned nondeterministic
         * truncation (DESIGN.md, "Static analysis").
         */
        double time_limit_sec = 60.0;
        /** Run the rounding heuristic every this many nodes. */
        int heuristic_period = 16;
        /** Options forwarded to the LP relaxation solver. */
        SimplexSolver::Options lp;
    };

    /**
     * Instrumentation of the most recent solve() call, feeding the
     * observability layer's solver spans (DESIGN.md,
     * "Observability"): where a slow solve spent its effort.
     */
    struct Stats {
        /** Branch-and-bound nodes expanded. */
        std::int64_t nodes = 0;
        /** LP relaxations solved (nodes + heuristic solves). */
        std::int64_t lp_solves = 0;
        /** Simplex iterations summed over all LP solves. */
        std::int64_t simplex_iterations = 0;
        /** Incumbents accepted (warm start, heuristics, search). */
        int incumbents = 0;
        /** Final relative incumbent/dual-bound gap (0 when proven). */
        double gap = 0.0;
        /** Wall-clock time of the solve in seconds. */
        double wall_seconds = 0.0;
    };

    MilpSolver() : options_() {}

    explicit MilpSolver(const Options& options) : options_(options) {}

    /** @return instrumentation of the most recent solve(). */
    const Stats& lastStats() const { return stats_; }

    /**
     * Solve @p lp to proven optimality (within the configured gap)
     * or until a limit is hit.
     *
     * @param hint optional warm-start assignment. When it is feasible
     *        and integral it seeds the incumbent, letting best-first
     *        search prune immediately (the Proteus allocator passes
     *        an LP-rounding repair solution here).
     *
     * Solution::work reports branch-and-bound nodes; Solution::bound
     * reports the best proven dual bound in the model's sense.
     */
    Solution solve(const LinearProgram& lp,
                   const std::vector<double>* hint = nullptr);

  private:
    Options options_;
    Stats stats_;
};

}  // namespace proteus

#endif  // PROTEUS_SOLVER_MILP_H_
