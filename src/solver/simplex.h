/**
 * @file
 * Two-phase primal simplex for linear programs with bounded variables.
 *
 * The implementation keeps a dense tableau (B^-1 A) with an explicit
 * reduced-cost row, supports variables with arbitrary finite lower
 * bounds and finite-or-infinite upper bounds, performs bound flips for
 * nonbasic variables, and falls back from Dantzig pricing to Bland's
 * rule when it detects stalling, which guarantees termination.
 *
 * Phase 1 introduces artificial variables only for rows whose initial
 * slack value violates the slack bounds, then minimizes their sum.
 *
 * Problem sizes in Proteus (hundreds of rows/columns for the
 * device-type aggregated allocation MILP, a few thousand for the
 * Fig. 10 stress formulations) are well within dense-tableau range.
 */

#ifndef PROTEUS_SOLVER_SIMPLEX_H_
#define PROTEUS_SOLVER_SIMPLEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "solver/lp.h"

namespace proteus {

/** Bounded-variable two-phase primal simplex solver. */
class SimplexSolver
{
  public:
    /** Tunables; the defaults suit all Proteus formulations. */
    struct Options {
        /** Reduced-cost optimality tolerance. */
        double opt_tol = 1e-7;
        /** Primal feasibility tolerance. */
        double feas_tol = 1e-7;
        /** Smallest acceptable pivot magnitude. */
        double pivot_tol = 1e-9;
        /** Hard cap on simplex iterations across both phases. */
        std::int64_t max_iters = 500000;
        /**
         * Verify the tableau invariants (A x = b, bounds) after every
         * iteration. Extremely slow; intended for tests/debugging.
         */
        bool paranoid = false;
    };

    SimplexSolver() : options_() {}

    explicit SimplexSolver(const Options& options) : options_(options) {}

    /**
     * Solve @p lp, ignoring integrality restrictions.
     *
     * @param lp the problem; integer markers are treated as continuous.
     * @param bound_override optional per-column (lo, hi) replacing the
     *        model bounds — used by branch & bound. Must have size
     *        lp.numVariables() when provided.
     */
    Solution solve(const LinearProgram& lp,
                   const std::vector<std::pair<double, double>>*
                       bound_override = nullptr);

  private:
    Options options_;
};

}  // namespace proteus

#endif  // PROTEUS_SOLVER_SIMPLEX_H_
