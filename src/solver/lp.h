/**
 * @file
 * Linear / mixed-integer program model description.
 *
 * This is the in-memory problem representation consumed by the simplex
 * and branch-and-bound solvers in this directory. It plays the role
 * Gurobi's model object plays in the paper's implementation (§6.1.5);
 * see DESIGN.md for the substitution rationale.
 */

#ifndef PROTEUS_SOLVER_LP_H_
#define PROTEUS_SOLVER_LP_H_

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace proteus {

/** Positive infinity used for unbounded variable/constraint limits. */
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/** Sense of a linear constraint row. */
enum class RowSense { LessEqual, Equal, GreaterEqual };

/** Direction of optimization. */
enum class ObjSense { Maximize, Minimize };

/** One (column index, coefficient) pair of a sparse row. */
using Coeff = std::pair<int, double>;

/**
 * A mixed-integer linear program:
 *
 *     opt  c'x   s.t.  rows,  lo <= x <= hi,  x_j integer for j in I.
 *
 * Variables must have a finite lower bound (all Proteus formulations
 * are naturally non-negative).
 */
class LinearProgram
{
  public:
    /** Metadata for one decision variable. */
    struct Variable {
        double lo = 0.0;
        double hi = kInf;
        double obj = 0.0;
        bool is_integer = false;
        std::string name;
    };

    /** One sparse constraint row. */
    struct Row {
        std::vector<Coeff> coeffs;
        RowSense sense = RowSense::LessEqual;
        double rhs = 0.0;
        std::string name;
    };

    explicit LinearProgram(ObjSense sense = ObjSense::Maximize)
        : sense_(sense)
    {}

    /**
     * Add a continuous variable.
     * @return its column index.
     */
    int addVariable(double lo, double hi, double obj,
                    std::string name = "");

    /** Add an integer variable. @return its column index. */
    int addIntVariable(double lo, double hi, double obj,
                       std::string name = "");

    /** Add a constraint row. @return its row index. */
    int addConstraint(std::vector<Coeff> coeffs, RowSense sense,
                      double rhs, std::string name = "");

    /** @return the optimization direction. */
    ObjSense objSense() const { return sense_; }

    /** Set the optimization direction. */
    void setObjSense(ObjSense sense) { sense_ = sense; }

    /** @return the number of variables (columns). */
    int numVariables() const { return static_cast<int>(vars_.size()); }

    /** @return the number of constraints (rows). */
    int numConstraints() const { return static_cast<int>(rows_.size()); }

    /** @return metadata for column @p j. */
    const Variable& variable(int j) const { return vars_[j]; }

    /** @return mutable metadata for column @p j (bounds tweaking). */
    Variable& variable(int j) { return vars_[j]; }

    /** @return row @p i. */
    const Row& row(int i) const { return rows_[i]; }

    /** @return indices of the integer variables. */
    const std::vector<int>& integerVariables() const { return int_vars_; }

    /** @return the objective value of assignment @p x. */
    double objectiveValue(const std::vector<double>& x) const;

    /**
     * Check whether @p x satisfies all rows and bounds to tolerance
     * @p tol (integrality is not checked).
     */
    bool isFeasible(const std::vector<double>& x, double tol = 1e-6) const;

  private:
    ObjSense sense_;
    std::vector<Variable> vars_;
    std::vector<Row> rows_;
    std::vector<int> int_vars_;
};

/** Termination status of an LP or MILP solve. */
enum class SolveStatus {
    Optimal,      ///< proven optimal (within gap tolerance for MILP)
    Feasible,     ///< feasible incumbent, optimality not proven
    Infeasible,   ///< no feasible point exists
    Unbounded,    ///< the objective is unbounded
    IterLimit,    ///< iteration/node limit reached without an incumbent
    TimeLimit,    ///< wall-clock limit reached without an incumbent
};

/** @return a human-readable name for @p status. */
const char* toString(SolveStatus status);

/** Result of an LP or MILP solve. */
struct Solution {
    SolveStatus status = SolveStatus::Infeasible;
    double objective = 0.0;
    std::vector<double> x;
    /** Best proven bound (MILP); equals objective when Optimal. */
    double bound = 0.0;
    /** Simplex iterations (LP) or B&B nodes (MILP) used. */
    std::int64_t work = 0;

    /** @return true when a usable assignment is available. */
    bool
    hasSolution() const
    {
        return status == SolveStatus::Optimal ||
               status == SolveStatus::Feasible;
    }
};

}  // namespace proteus

#endif  // PROTEUS_SOLVER_LP_H_
