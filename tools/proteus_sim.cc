/**
 * @file
 * proteus_sim: the config-driven simulator front-end, mirroring the
 * paper artifact's workflow (a JSON configuration file describes the
 * allocation algorithm, batching algorithm, cluster, zoo and
 * workload; the simulator prints the summary and timeseries).
 *
 * Usage:
 *   proteus_sim <config.json> [--csv <timeline.csv>] [--quiet]
 *               [--trace <trace.json>] [--metrics <metrics.json>]
 *               [--timeline <series.csv>] [--timeline-json <series.json>]
 *
 * --trace enables span tracing and writes a Chrome trace-event file
 * (chrome://tracing / Perfetto); analyse it with proteus_trace.
 * --metrics dumps the metrics registry as JSON.
 * --timeline / --timeline-json export the sampled observability time
 * series (per-device utilization, per-family rates, burn rates, ...);
 * render them with proteus_report.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/experiment.h"

int
main(int argc, char** argv)
{
    using namespace proteus;
    if (argc < 2) {
        std::cerr << "usage: proteus_sim <config.json> "
                     "[--csv <timeline.csv>] [--quiet] "
                     "[--trace <trace.json>] [--metrics <metrics.json>] "
                     "[--timeline <series.csv>] "
                     "[--timeline-json <series.json>]\n";
        return 2;
    }
    std::string config_path = argv[1];
    std::string csv_path;
    std::string trace_path;
    std::string metrics_path;
    std::string timeline_csv;
    std::string timeline_json;
    bool quiet = false;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--csv" && i + 1 < argc) {
            csv_path = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--metrics" && i + 1 < argc) {
            metrics_path = argv[++i];
        } else if (arg == "--timeline" && i + 1 < argc) {
            timeline_csv = argv[++i];
        } else if (arg == "--timeline-json" && i + 1 < argc) {
            timeline_json = argv[++i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }

    ExperimentSpec spec = loadExperimentFile(config_path);
    if (!trace_path.empty())
        spec.trace_path = trace_path;
    if (!metrics_path.empty())
        spec.metrics_path = metrics_path;
    if (!timeline_csv.empty())
        spec.timeline_csv_path = timeline_csv;
    if (!timeline_json.empty())
        spec.timeline_json_path = timeline_json;
    std::cout << "allocator: " << toString(spec.config.allocator)
              << "  batching: " << toString(spec.config.batching)
              << "  cluster: " << spec.cluster.numDevices()
              << " devices  families: " << spec.registry.numFamilies()
              << "  queries: " << spec.trace.size() << "\n";

    RunResult r = runExperiment(&spec);

    TextTable summary;
    summary.setHeader({"metric", "value"});
    summary.addRow({"arrivals", std::to_string(r.summary.arrivals)});
    summary.addRow({"served", std::to_string(r.summary.served)});
    summary.addRow({"served_late",
                    std::to_string(r.summary.served_late)});
    summary.addRow({"dropped", std::to_string(r.summary.dropped)});
    summary.addRow({"avg_demand_qps",
                    fmtDouble(r.summary.avg_demand_qps, 2)});
    summary.addRow({"avg_throughput_qps",
                    fmtDouble(r.summary.avg_throughput_qps, 2)});
    summary.addRow({"effective_accuracy",
                    fmtPercent(r.summary.effective_accuracy, 2)});
    summary.addRow({"max_accuracy_drop",
                    fmtPercent(r.summary.max_accuracy_drop, 2)});
    summary.addRow({"slo_violation_ratio",
                    fmtDouble(r.summary.slo_violation_ratio, 4)});
    summary.addRow({"mean_batch_size",
                    fmtDouble(r.mean_batch_size, 2)});
    summary.addRow({"reallocations",
                    std::to_string(r.reallocations)});
    summary.print(std::cout);

    if (!quiet) {
        TextTable timeline;
        timeline.setHeader({"t_s", "demand_qps", "throughput_qps",
                            "effective_acc", "violations"});
        for (const auto& snap : r.timeline) {
            timeline.addRow(
                {fmtDouble(toSeconds(snap.start), 0),
                 fmtDouble(snap.demandQps(), 1),
                 fmtDouble(snap.throughputQps(), 1),
                 fmtPercent(snap.total.effectiveAccuracy(), 2),
                 std::to_string(snap.total.violations())});
        }
        std::cout << "\n";
        timeline.print(std::cout);
    }

    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out) {
            std::cerr << "cannot write " << csv_path << "\n";
            return 1;
        }
        TextTable csv;
        csv.setHeader({"t_s", "demand_qps", "throughput_qps",
                       "effective_acc", "violations", "dropped"});
        for (const auto& snap : r.timeline) {
            csv.addRow({fmtDouble(toSeconds(snap.start), 1),
                        fmtDouble(snap.demandQps(), 3),
                        fmtDouble(snap.throughputQps(), 3),
                        fmtDouble(snap.total.effectiveAccuracy(), 3),
                        std::to_string(snap.total.violations()),
                        std::to_string(snap.total.dropped)});
        }
        csv.printCsv(out);
        std::cout << "timeline written to " << csv_path << "\n";
    }
    if (!spec.trace_path.empty())
        std::cout << "trace written to " << spec.trace_path << "\n";
    if (!spec.metrics_path.empty())
        std::cout << "metrics written to " << spec.metrics_path << "\n";
    if (!spec.timeline_csv_path.empty()) {
        std::cout << "timeline series written to "
                  << spec.timeline_csv_path << "\n";
    }
    if (!spec.timeline_json_path.empty()) {
        std::cout << "timeline series written to "
                  << spec.timeline_json_path << "\n";
    }
    return 0;
}
