/**
 * @file
 * proteus_sweep: the parallel experiment driver. Expands a declarative
 * config × scenario × seed matrix (see src/sweep/matrix.h), fans the
 * jobs across a worker-thread pool, streams rows into the append-only
 * journal, writes the deterministic merged JSONL store, and (optional)
 * emits the mean/CI BENCH report that `bench_diff --stats` gates.
 *
 * Usage:
 *   proteus_sweep <sweep.json> [--threads N] [--out <store.jsonl>]
 *                 [--report <BENCH_x.json>] [--budget-ms N]
 *                 [--list] [--quiet]
 *   proteus_sweep --aggregate <store.jsonl> --report <BENCH_x.json>
 *
 * The journal is written next to the store as <store>.journal in
 * completion order with wall-time stamps; the merged store itself is
 * byte-identical for any thread count.
 *
 * Exit codes: 0 = all jobs ok, 1 = at least one failure row (or IO
 * error), 2 = usage/spec error.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "sweep/aggregate.h"
#include "sweep/matrix.h"
#include "sweep/runner.h"
#include "sweep/store.h"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: proteus_sweep <sweep.json> [--threads N] "
                 "[--out <store.jsonl>] [--report <BENCH_x.json>] "
                 "[--budget-ms N] [--list] [--quiet]\n"
                 "       proteus_sweep --aggregate <store.jsonl> "
                 "--report <BENCH_x.json>\n");
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace proteus;

    std::string spec_path;
    std::string aggregate_path;
    std::string out_path = "sweep_store.jsonl";
    std::string report_path;
    int threads = 1;
    double budget_ms = 0.0;
    bool list_only = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads" && i + 1 < argc) {
            threads = std::atoi(argv[++i]);
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--report" && i + 1 < argc) {
            report_path = argv[++i];
        } else if (arg == "--budget-ms" && i + 1 < argc) {
            budget_ms = std::atof(argv[++i]);
        } else if (arg == "--aggregate" && i + 1 < argc) {
            aggregate_path = argv[++i];
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "proteus_sweep: unknown option %s\n",
                         arg.c_str());
            return usage();
        } else if (spec_path.empty()) {
            spec_path = arg;
        } else {
            return usage();
        }
    }

    // Offline aggregation of an existing store.
    if (!aggregate_path.empty()) {
        if (report_path.empty() || !spec_path.empty())
            return usage();
        sweep::StoreData store;
        std::string error;
        if (!sweep::readStore(aggregate_path, &store, &error)) {
            std::fprintf(stderr, "proteus_sweep: %s\n", error.c_str());
            return 1;
        }
        if (!sweep::writeAggregateBench(store, report_path)) {
            std::fprintf(stderr, "proteus_sweep: cannot write %s\n",
                         report_path.c_str());
            return 1;
        }
        std::printf("aggregated %zu rows -> %s\n", store.rows.size(),
                    report_path.c_str());
        return 0;
    }

    if (spec_path.empty())
        return usage();
    if (threads < 1) {
        std::fprintf(stderr, "proteus_sweep: --threads must be >= 1\n");
        return 2;
    }

    const sweep::SweepSpec spec = sweep::loadSweepSpecFile(spec_path);
    const auto jobs = sweep::expandJobs(spec);
    if (!quiet) {
        std::printf("sweep %s: %zu jobs (%zu configs x %zu scenarios "
                    "x %zu seeds) on %d thread(s)\n",
                    spec.name.c_str(), jobs.size(), spec.configs.size(),
                    spec.scenarios.size(), spec.seeds.size(), threads);
    }
    if (list_only) {
        for (const auto& job : jobs) {
            std::printf("%4zu  %-20s %-14s seed=%llu\n", job.id,
                        job.config.c_str(), job.scenario.c_str(),
                        static_cast<unsigned long long>(job.seed));
        }
        return 0;
    }

    sweep::RunnerOptions options;
    options.threads = threads;
    options.job_budget_ms = budget_ms;
    options.journal_path = out_path + ".journal";

    const sweep::SweepOutcome outcome = sweep::runSweep(spec, options);

    std::ofstream store_file(out_path,
                             std::ios::binary | std::ios::trunc);
    if (!store_file || !(store_file << outcome.store_text)) {
        std::fprintf(stderr, "proteus_sweep: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    store_file.close();
    if (!quiet)
        std::printf("store written to %s\n", out_path.c_str());

    if (!report_path.empty()) {
        sweep::StoreData store;
        std::string error;
        if (!sweep::readStore(out_path, &store, &error)) {
            std::fprintf(stderr, "proteus_sweep: %s\n", error.c_str());
            return 1;
        }
        if (!sweep::writeAggregateBench(store, report_path)) {
            std::fprintf(stderr, "proteus_sweep: cannot write %s\n",
                         report_path.c_str());
            return 1;
        }
        if (!quiet)
            std::printf("report written to %s\n", report_path.c_str());
    }

    if (outcome.failed > 0) {
        std::fprintf(stderr,
                     "proteus_sweep: %zu of %zu job(s) failed (see "
                     "failure rows in %s)\n",
                     outcome.failed, outcome.rows.size(),
                     out_path.c_str());
        return 1;
    }
    if (!quiet)
        std::printf("all %zu job(s) ok\n", outcome.rows.size());
    return 0;
}
