/**
 * @file
 * Pass 1 of the cross-file analysis: build a FileIndex for one
 * translation unit. The indexer is a brace/statement state machine
 * over the token stream — it is NOT a C++ parser. It tracks just
 * enough structure for the C rules:
 *
 *   - a scope stack (namespace / class / enum / function / block),
 *     classified from the statement preceding each '{';
 *   - namespace-scope variable declarations and function-local
 *     statics, with const/atomic/mutex/thread_local qualifiers and
 *     PROTEUS_GUARDED_BY annotations;
 *   - mutex declarations (std::mutex family, proteus::Mutex) at
 *     namespace, class-member and function-local scope;
 *   - lock acquisitions: RAII guard declarations (MutexLock,
 *     lock_guard, scoped_lock, unique_lock, shared_lock) and raw
 *     .lock()/.unlock()/.try_lock() calls, each with the stack of
 *     locks already held at the site (C2's ordering edges);
 *   - #include operands, for C3's thread-reachability closure.
 *
 * Known simplifications, on purpose: preprocessor conditionals are
 * taken at face value (every branch's tokens on non-directive lines
 * are seen), brace-initializers are skipped inline, and a lock
 * reached through a call expression (getMutex().lock()) does not
 * resolve. Each is cheap to describe and none has false-positive
 * cost on this tree.
 */

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lint.h"
#include "scan.h"

namespace proteus::lint {

namespace {

using detail::Comment;
using detail::Scan;
using detail::SuppressionScan;
using detail::TokKind;
using detail::Token;
using detail::trim;

// ---------------------------------------------------------------------------
// Preprocessor lines
// ---------------------------------------------------------------------------

/**
 * @return the set of 1-based line numbers occupied by preprocessor
 * directives (including backslash continuations); also extracts
 * #include operands into @p includes.
 */
std::set<int>
preprocessorLines(const std::string& text,
                  std::vector<std::string>* includes)
{
    std::set<int> pp;
    int line = 1;
    bool continued = false;
    std::size_t i = 0;
    const std::size_t n = text.size();
    while (i < n) {
        std::size_t eol = text.find('\n', i);
        if (eol == std::string::npos)
            eol = n;
        std::string raw = text.substr(i, eol - i);
        const std::string body = trim(raw);
        const bool directive = continued || (!body.empty() && body[0] == '#');
        if (directive) {
            pp.insert(line);
            if (!continued && body.size() > 1) {
                std::string rest = trim(body.substr(1));
                if (rest.rfind("include", 0) == 0) {
                    rest = trim(rest.substr(7));
                    if (!rest.empty() &&
                        (rest[0] == '"' || rest[0] == '<')) {
                        const char close = rest[0] == '"' ? '"' : '>';
                        const std::size_t end = rest.find(close, 1);
                        if (end != std::string::npos)
                            includes->push_back(rest.substr(1, end - 1));
                    }
                }
            }
            continued = !body.empty() && body.back() == '\\';
        } else {
            continued = false;
        }
        i = eol + 1;
        ++line;
    }
    return pp;
}

// ---------------------------------------------------------------------------
// Token classification helpers
// ---------------------------------------------------------------------------

bool
isMutexType(const std::string& id)
{
    return id == "mutex" || id == "Mutex" || id == "shared_mutex" ||
           id == "recursive_mutex" || id == "timed_mutex" ||
           id == "recursive_timed_mutex" || id == "shared_timed_mutex";
}

bool
isGuardType(const std::string& id)
{
    return id == "lock_guard" || id == "scoped_lock" ||
           id == "unique_lock" || id == "shared_lock" ||
           id == "MutexLock";
}

bool
isGuardTag(const std::string& id)
{
    return id == "adopt_lock" || id == "defer_lock" ||
           id == "try_to_lock" || id == "std";
}

bool
isDeclKeyword(const std::string& id)
{
    return id == "using" || id == "typedef" || id == "friend" ||
           id == "static_assert" || id == "return" || id == "if" ||
           id == "for" || id == "while" || id == "switch" ||
           id == "case" || id == "default" || id == "break" ||
           id == "continue" || id == "goto" || id == "delete" ||
           id == "throw" || id == "namespace" || id == "template" ||
           id == "class" || id == "struct" || id == "union" ||
           id == "enum" || id == "concept" || id == "requires";
}

bool
isAnnotationMacro(const std::string& id)
{
    return id == "PROTEUS_GUARDED_BY" || id == "PROTEUS_PT_GUARDED_BY";
}

// ---------------------------------------------------------------------------
// The scope state machine
// ---------------------------------------------------------------------------

enum class FrameKind { Namespace, Class, Enum, Function, Block };

struct Frame {
    FrameKind kind;
    std::string name;       ///< class or namespace name, may be ""
    std::string function;   ///< qualified name for Function frames
    std::string owner;      ///< owning class of a Function frame
};

struct HeldLock {
    std::string object;
    std::size_t depth;  ///< frames.size() at acquisition
};

class Indexer
{
  public:
    Indexer(const std::string& path, FileIndex* out) : out_(out)
    {
        (void)path;
    }

    void
    run(const std::vector<Token>& toks)
    {
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const Token& t = toks[i];
            if (t.kind == TokKind::Punct && t.text == "{") {
                if (skipInlineInitializer(toks, &i))
                    continue;
                openBrace();
                continue;
            }
            if (t.kind == TokKind::Punct && t.text == "}") {
                closeBrace();
                continue;
            }
            if (t.kind == TokKind::Punct && t.text == ";") {
                endStatement();
                continue;
            }
            stmt_.push_back(t);
        }
    }

  private:
    FrameKind
    innermost() const
    {
        return frames_.empty() ? FrameKind::Namespace
                               : frames_.back().kind;
    }

    bool
    inFunction() const
    {
        return innermost() == FrameKind::Function ||
               innermost() == FrameKind::Block;
    }

    /** The nearest enclosing Function frame, or nullptr. */
    const Frame*
    enclosingFunction() const
    {
        for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
            if (it->kind == FrameKind::Function)
                return &*it;
        }
        return nullptr;
    }

    /** The nearest enclosing Class frame's name, or "". */
    std::string
    enclosingClass() const
    {
        for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
            if (it->kind == FrameKind::Class)
                return it->name;
            if (it->kind == FrameKind::Function)
                break;
        }
        return "";
    }

    /**
     * A '{' that continues an expression (brace initializer, member
     * init in a constructor's init list, designated init) rather than
     * opening a scope: the previous significant token is an
     * identifier, '=', ',', '(' or 'return'. Its tokens are folded
     * into the current statement so declarations like
     * 'std::atomic<int> g{0};' keep their name visible.
     */
    bool
    skipInlineInitializer(const std::vector<Token>& toks, std::size_t* i)
    {
        if (stmt_.empty())
            return false;
        // A type/namespace definition header always opens a scope, no
        // matter what precedes its '{'.
        if (hasIdent("class") || hasIdent("struct") ||
            hasIdent("union") || hasIdent("enum") ||
            hasIdent("namespace") || hasIdent("extern"))
            return false;
        const Token& prev = stmt_.back();
        const bool initish =
            (prev.kind == TokKind::Ident && prev.text != "else" &&
             prev.text != "do" && prev.text != "try" &&
             prev.text != "noexcept" && prev.text != "const" &&
             prev.text != "override" && prev.text != "final") ||
            (prev.kind == TokKind::Punct &&
             (prev.text == "=" || prev.text == "," || prev.text == "("));
        if (!initish)
            return false;
        // Fold the initializer's tokens (braces included) into the
        // statement so declarations like 'std::atomic<int> g{0};' and
        // guard declarations 'MutexLock l{mu};' stay analyzable, and
        // so a constructor body after brace member-initializers is
        // preceded by '}' rather than an identifier.
        int depth = 0;
        std::size_t j = *i;
        for (; j < toks.size(); ++j) {
            stmt_.push_back(toks[j]);
            if (toks[j].kind != TokKind::Punct)
                continue;
            if (toks[j].text == "{")
                ++depth;
            if (toks[j].text == "}") {
                --depth;
                if (depth == 0)
                    break;
            }
        }
        *i = j;
        return true;
    }

    void
    openBrace()
    {
        if (inFunction()) {
            // Control-flow headers (if/while/for (...) {) can carry
            // lock acquisitions in their condition.
            detectLocks();
            frames_.push_back({FrameKind::Block, "", "", ""});
            stmt_.clear();
            return;
        }

        stripTemplatePrefix();
        Frame f{FrameKind::Block, "", "", ""};
        if (hasIdent("namespace") || hasIdent("extern")) {
            f.kind = FrameKind::Namespace;
        } else if (hasIdent("enum")) {
            f.kind = FrameKind::Enum;
        } else if (hasIdent("class") || hasIdent("struct") ||
                   hasIdent("union")) {
            f.kind = FrameKind::Class;
            f.name = classNameFromStmt();
        } else if (firstTopLevelParen() != stmt_.size()) {
            f.kind = FrameKind::Function;
            functionNameFromStmt(&f);
        } else {
            // Unrecognized brace at namespace scope (array init that
            // slipped past the inline check, ...): treat as a block so
            // nesting stays balanced.
            f.kind = FrameKind::Block;
        }
        frames_.push_back(f);
        stmt_.clear();
    }

    void
    closeBrace()
    {
        if (inFunction())
            detectLocks();
        if (!frames_.empty())
            frames_.pop_back();
        while (!held_.empty() && held_.back().depth > frames_.size())
            held_.pop_back();
        stmt_.clear();
    }

    void
    endStatement()
    {
        const FrameKind scope = innermost();
        if (scope == FrameKind::Namespace) {
            extractDeclaration(/*member=*/false, /*local=*/false);
        } else if (scope == FrameKind::Class) {
            extractDeclaration(/*member=*/true, /*local=*/false);
        } else if (scope == FrameKind::Function ||
                   scope == FrameKind::Block) {
            detectLocks();
            extractDeclaration(/*member=*/false, /*local=*/true);
        }
        stmt_.clear();
    }

    /**
     * Drop a leading 'template <...>' so 'template <class T> void
     * f()' classifies as a function, not a class.
     */
    void
    stripTemplatePrefix()
    {
        if (stmt_.empty() || stmt_[0].kind != TokKind::Ident ||
            stmt_[0].text != "template")
            return;
        std::size_t j = 1;
        if (j < stmt_.size() && stmt_[j].kind == TokKind::Punct &&
            stmt_[j].text == "<") {
            int depth = 0;
            for (; j < stmt_.size(); ++j) {
                if (stmt_[j].kind != TokKind::Punct)
                    continue;
                if (stmt_[j].text == "<")
                    ++depth;
                else if (stmt_[j].text == ">") {
                    --depth;
                    if (depth == 0) {
                        ++j;
                        break;
                    }
                }
            }
        }
        stmt_.erase(stmt_.begin(),
                    stmt_.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(j, stmt_.size())));
    }

    bool
    hasIdent(const char* id) const
    {
        for (const Token& t : stmt_) {
            if (t.kind == TokKind::Ident && t.text == id)
                return true;
        }
        return false;
    }

    /** Index of the first paren at bracket depth 0, or stmt size. */
    std::size_t
    firstTopLevelParen() const
    {
        for (std::size_t i = 0; i < stmt_.size(); ++i) {
            if (stmt_[i].kind == TokKind::Punct && stmt_[i].text == "(")
                return i;
        }
        return stmt_.size();
    }

    /**
     * Class name: the last identifier before the base-clause ':' (or
     * the whole statement), skipping a trailing 'final'. Attribute
     * macros with string arguments (class PROTEUS_CAPABILITY("m") X)
     * contribute no identifier after the macro name, so the last
     * identifier is the class name.
     */
    std::string
    classNameFromStmt() const
    {
        std::string name;
        for (const Token& t : stmt_) {
            if (t.kind == TokKind::Punct && t.text == ":")
                break;
            if (t.kind == TokKind::Ident && t.text != "final" &&
                t.text != "class" && t.text != "struct" &&
                t.text != "union" && t.text != "alignas")
                name = t.text;
        }
        return name;
    }

    /**
     * Function name and owning class from the definition header: the
     * identifier before the first '(' names the function; a 'X::name'
     * qualifier (or the lexically enclosing class) names the owner.
     */
    void
    functionNameFromStmt(Frame* f) const
    {
        const std::size_t paren = firstTopLevelParen();
        std::size_t name_at = stmt_.size();
        for (std::size_t i = paren; i-- > 0;) {
            if (stmt_[i].kind == TokKind::Ident) {
                name_at = i;
                break;
            }
            if (stmt_[i].kind == TokKind::Punct && stmt_[i].text != "~")
                break;
        }
        if (name_at == stmt_.size())
            return;
        f->name = stmt_[name_at].text;
        f->owner = enclosingClass();
        if (name_at >= 2 && stmt_[name_at - 1].kind == TokKind::Punct &&
            stmt_[name_at - 1].text == "::" &&
            stmt_[name_at - 2].kind == TokKind::Ident) {
            f->owner = stmt_[name_at - 2].text;
        }
        f->function = f->owner.empty() ? f->name
                                       : f->owner + "::" + f->name;
    }

    // -----------------------------------------------------------------
    // Declarations
    // -----------------------------------------------------------------

    /**
     * Extract a variable declaration from the finished statement.
     * At namespace scope every variable is recorded; at class scope
     * only mutex members and annotated members matter; inside
     * functions only 'static' locals and local mutex declarations.
     */
    void
    extractDeclaration(bool member, bool local)
    {
        // Strip access-specifier prefixes ('public:') left in the
        // statement buffer by class bodies, and skip labels.
        std::size_t begin = 0;
        while (begin + 1 < stmt_.size() &&
               stmt_[begin].kind == TokKind::Ident &&
               (stmt_[begin].text == "public" ||
                stmt_[begin].text == "private" ||
                stmt_[begin].text == "protected") &&
               stmt_[begin + 1].kind == TokKind::Punct &&
               stmt_[begin + 1].text == ":") {
            begin += 2;
        }
        if (begin >= stmt_.size())
            return;
        const Token& first = stmt_[begin];
        if (first.kind != TokKind::Ident || isDeclKeyword(first.text))
            return;

        // Find the declarator's end: annotation macro, initializer or
        // array bound — whichever comes first.
        std::size_t ann_at = stmt_.size();
        std::size_t end = stmt_.size();
        for (std::size_t i = begin; i < stmt_.size(); ++i) {
            const Token& t = stmt_[i];
            if (t.kind == TokKind::Ident && isAnnotationMacro(t.text)) {
                ann_at = i;
                end = std::min(end, i);
                break;
            }
            if (t.kind == TokKind::Punct &&
                (t.text == "=" || t.text == "{" || t.text == "[")) {
                end = i;
                break;
            }
        }

        // A top-level '(' before the declarator end is either a
        // function declaration (skip) or a function-pointer
        // declarator '(*name)'.
        std::size_t name_at = stmt_.size();
        std::size_t paren = end;
        for (std::size_t i = begin; i < end; ++i) {
            if (stmt_[i].kind == TokKind::Punct && stmt_[i].text == "(") {
                paren = i;
                break;
            }
        }
        if (paren != end) {
            std::size_t p = paren + 1;
            bool pointer = false;
            while (p < end && stmt_[p].kind == TokKind::Punct &&
                   stmt_[p].text == "*") {
                pointer = true;
                ++p;
            }
            if (!pointer || p >= end ||
                stmt_[p].kind != TokKind::Ident)
                return;  // function declaration, not a variable
            name_at = p;
        } else {
            for (std::size_t i = end; i-- > begin;) {
                if (stmt_[i].kind == TokKind::Ident &&
                    !isAnnotationMacro(stmt_[i].text)) {
                    name_at = i;
                    break;
                }
            }
        }
        if (name_at >= stmt_.size())
            return;
        const Token& name_tok = stmt_[name_at];

        // Qualifiers over the type part.
        bool is_static = false, is_extern = false, is_tls = false;
        bool is_atomic = false, is_mutex = false;
        std::size_t last_const = stmt_.size();
        std::size_t last_star = stmt_.size();
        for (std::size_t i = begin; i < name_at; ++i) {
            const Token& t = stmt_[i];
            if (t.kind == TokKind::Ident) {
                if (t.text == "static")
                    is_static = true;
                else if (t.text == "extern")
                    is_extern = true;
                else if (t.text == "thread_local")
                    is_tls = true;
                else if (t.text == "atomic" || t.text == "atomic_flag")
                    is_atomic = true;
                else if (isMutexType(t.text))
                    is_mutex = true;
                else if (t.text == "const" || t.text == "constexpr" ||
                         t.text == "constinit")
                    last_const = i;
            } else if (t.text == "*") {
                last_star = i;
            }
        }
        // const applies to the variable unless a '*' follows the last
        // const (pointer-to-const with a mutable pointer).
        const bool is_const =
            last_const != stmt_.size() &&
            (last_star == stmt_.size() || last_star < last_const);

        std::string guard;
        if (ann_at != stmt_.size()) {
            for (std::size_t i = ann_at + 1; i < stmt_.size(); ++i) {
                const Token& t = stmt_[i];
                if (t.kind == TokKind::Punct && t.text == ")")
                    break;
                if (t.kind == TokKind::Ident && t.text != "this")
                    guard = t.text;
            }
        }

        if (local && is_mutex) {
            const Frame* fn = enclosingFunction();
            MutexDecl m;
            m.name = name_tok.text;
            m.function = fn ? fn->function : "";
            m.line = name_tok.line;
            m.col = name_tok.col;
            out_->mutexes.push_back(std::move(m));
            return;
        }
        if (local && !is_static)
            return;  // plain local variable: thread-confined

        if (member) {
            if (is_mutex && !is_static) {
                MutexDecl m;
                m.name = name_tok.text;
                m.scope_class = enclosingClass();
                m.line = name_tok.line;
                m.col = name_tok.col;
                out_->mutexes.push_back(std::move(m));
            } else if (ann_at != stmt_.size()) {
                AnnotatedMember m;
                m.name = name_tok.text;
                m.guard = guard;
                m.scope_class = enclosingClass();
                m.line = name_tok.line;
                m.col = name_tok.col;
                out_->annotated_members.push_back(std::move(m));
            }
            // Static data members are shared state too, but their
            // definitions appear at namespace scope and are indexed
            // there.
            return;
        }

        if (is_mutex) {
            MutexDecl m;
            m.name = name_tok.text;
            m.line = name_tok.line;
            m.col = name_tok.col;
            out_->mutexes.push_back(std::move(m));
        }
        VarDecl v;
        v.name = name_tok.text;
        v.line = name_tok.line;
        v.col = name_tok.col;
        v.is_const = is_const;
        v.is_atomic = is_atomic;
        v.is_mutex = is_mutex;
        v.is_extern = is_extern;
        v.is_thread_local = is_tls;
        v.is_function_local = local;
        v.annotated = ann_at != stmt_.size();
        v.guard = guard;
        out_->globals.push_back(std::move(v));
    }

    // -----------------------------------------------------------------
    // Lock sites
    // -----------------------------------------------------------------

    std::vector<std::string>
    heldSnapshot() const
    {
        std::vector<std::string> held;
        held.reserve(held_.size());
        for (const HeldLock& h : held_)
            held.push_back(h.object);
        return held;
    }

    void
    recordSite(const std::string& object, const Token& at, bool raw,
               bool unlock)
    {
        const Frame* fn = enclosingFunction();
        LockSite s;
        s.object = object;
        s.owner_class = fn ? fn->owner : enclosingClass();
        s.function = fn ? fn->function : "";
        s.raw = raw;
        s.unlock = unlock;
        s.line = at.line;
        s.col = at.col;
        s.held = heldSnapshot();
        out_->locks.push_back(std::move(s));
    }

    void
    acquire(const std::string& object)
    {
        held_.push_back({object, frames_.size()});
    }

    void
    release(const std::string& object)
    {
        for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
            if (it->object == object) {
                held_.erase(std::next(it).base());
                return;
            }
        }
    }

    /** Scan the finished statement for guard declarations and raw
     *  lock/unlock calls. */
    void
    detectLocks()
    {
        for (std::size_t i = 0; i < stmt_.size(); ++i) {
            const Token& t = stmt_[i];
            if (t.kind != TokKind::Ident)
                continue;

            if (isGuardType(t.text)) {
                detectGuard(i);
                continue;
            }

            const bool raw_call =
                (t.text == "lock" || t.text == "unlock" ||
                 t.text == "try_lock") &&
                i > 0 && stmt_[i - 1].kind == TokKind::Punct &&
                (stmt_[i - 1].text == "." || stmt_[i - 1].text == "->") &&
                i + 1 < stmt_.size() &&
                stmt_[i + 1].kind == TokKind::Punct &&
                stmt_[i + 1].text == "(";
            if (!raw_call)
                continue;
            std::string object;
            if (i >= 2 && stmt_[i - 2].kind == TokKind::Ident)
                object = stmt_[i - 2].text;
            if (object.empty())
                continue;  // lock via a call expression: unresolvable
            const bool unlock = t.text == "unlock";
            if (unlock) {
                recordSite(object, t, /*raw=*/true, /*unlock=*/true);
                release(object);
            } else {
                recordSite(object, t, /*raw=*/true, /*unlock=*/false);
                acquire(object);
            }
        }
    }

    /**
     * Parse a guard declaration starting at the guard type name:
     * GuardType[<...>] var(mutex[, mutex...]); Each argument's mutex
     * is taken as the last identifier of the argument expression.
     */
    void
    detectGuard(std::size_t type_at)
    {
        std::size_t i = type_at + 1;
        // Skip template arguments.
        if (i < stmt_.size() && stmt_[i].kind == TokKind::Punct &&
            stmt_[i].text == "<") {
            int depth = 0;
            for (; i < stmt_.size(); ++i) {
                if (stmt_[i].kind != TokKind::Punct)
                    continue;
                if (stmt_[i].text == "<")
                    ++depth;
                else if (stmt_[i].text == ">") {
                    --depth;
                    if (depth == 0) {
                        ++i;
                        break;
                    }
                }
            }
        }
        if (i >= stmt_.size() || stmt_[i].kind != TokKind::Ident)
            return;  // not a declaration (e.g. a return type mention)
        ++i;  // past the variable name
        if (i >= stmt_.size() || stmt_[i].kind != TokKind::Punct ||
            (stmt_[i].text != "(" && stmt_[i].text != "{"))
            return;

        const std::string open = stmt_[i].text;
        const std::string close = open == "(" ? ")" : "}";
        int depth = 0;
        std::vector<std::string> args;
        std::string current;
        const Token* at = &stmt_[i];
        for (; i < stmt_.size(); ++i) {
            const Token& t = stmt_[i];
            if (t.kind == TokKind::Punct) {
                if (t.text == open) {
                    if (++depth == 1)
                        continue;
                }
                if (t.text == close) {
                    if (--depth == 0)
                        break;
                }
                if (t.text == "," && depth == 1) {
                    if (!current.empty())
                        args.push_back(current);
                    current.clear();
                    continue;
                }
                continue;
            }
            if (depth >= 1 && t.kind == TokKind::Ident &&
                t.text != "this" && !isGuardTag(t.text))
                current = t.text;
        }
        if (!current.empty())
            args.push_back(current);

        for (const std::string& mu : args) {
            recordSite(mu, *at, /*raw=*/false, /*unlock=*/false);
            acquire(mu);
        }
    }

    FileIndex* out_;
    std::vector<Frame> frames_;
    std::vector<Token> stmt_;
    std::vector<HeldLock> held_;
};

}  // namespace

FileIndex
indexSource(const std::string& path, const std::string& text)
{
    FileIndex out;
    out.path = detail::normalizePath(path);

    std::set<int> pp = preprocessorLines(text, &out.includes);

    const Scan scan = detail::scanSource(text);
    std::vector<Token> toks;
    toks.reserve(scan.tokens.size());
    for (const Token& t : scan.tokens) {
        if (pp.count(t.line) == 0)
            toks.push_back(t);
    }

    Indexer indexer(out.path, &out);
    indexer.run(toks);

    SuppressionScan sups;
    for (const Comment& c : scan.comments)
        detail::parseSuppressions(out.path, c, &sups);
    out.suppressions = std::move(sups.suppressions);

    return out;
}

}  // namespace proteus::lint
