/**
 * @file
 * Pass 2 of the cross-file analysis: the concurrency rules C1..C3,
 * run over the merged per-TU indexes from pass 1.
 *
 * Mutex identity. Every mutex declaration gets a qualified id:
 *   - class member:     "Class::name" — unified across TUs, which is
 *     what lets a lock-order cycle span translation units;
 *   - namespace scope:  "path::name" — internal linkage is assumed,
 *     so same-named file-local mutexes in different TUs stay
 *     distinct; an extern declaration in a header unifies through
 *     name resolution (same-file first, then unique-across-tree);
 *   - function local:   "path::function::name".
 *
 * Resolution of a lock site's object name tries, in order: a local
 * mutex of the same function, a member of the site's owning class, a
 * namespace-scope mutex (same file first, then unique across the
 * tree), and finally a uniquely-named member of any class. Unresolved
 * objects (weak_ptr.lock(), locks reached through calls) are ignored
 * — C1 deliberately fires only on objects the index can prove are
 * mutexes, so it never misfires on unrelated .lock() methods.
 *
 * C3's thread-reachability closure: files under src/sweep/ seed the
 * set; #include edges (suffix-matched against the indexed paths) and
 * header-to-source stem pairing (a reachable foo.h pulls in foo.cc,
 * whose definitions run on the worker threads) extend it to a fixed
 * point. Obligations apply to src/ files only — tests and tools in
 * the closure are exercised single-threaded or own their threads.
 */

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint.h"
#include "scan.h"

namespace proteus::lint {

namespace {

using detail::endsWith;
using detail::pathHas;

/** The annotated wrapper itself — the one sanctioned raw-lock site. */
bool
isSyncShim(const std::string& path)
{
    return endsWith(path, "src/common/sync.h") ||
           path == "common/sync.h" || path == "sync.h";
}

std::string
localKey(const std::string& path, const std::string& function,
         const std::string& name)
{
    return path + "::" + function + "::" + name;
}

/** All mutex declarations across the tree, keyed for resolution. */
struct MutexTable {
    /** name -> [(path, qid)] for namespace-scope mutexes. */
    std::map<std::string, std::vector<std::pair<std::string, std::string>>>
        globals;
    /** (class, name) -> qid for member mutexes. */
    std::map<std::pair<std::string, std::string>, std::string> members;
    /** member name -> qids (for unique-across-classes fallback). */
    std::map<std::string, std::vector<std::string>> member_by_name;
    /** path::function::name keys of function-local mutexes. */
    std::set<std::string> locals;
    /** qid -> short display name for messages. */
    std::map<std::string, std::string> display;
    /** every declared mutex name (lenient annotation fallback). */
    std::set<std::string> any_name;

    void
    build(const std::vector<FileIndex>& indexes)
    {
        for (const FileIndex& idx : indexes) {
            for (const MutexDecl& m : idx.mutexes) {
                any_name.insert(m.name);
                if (!m.scope_class.empty()) {
                    const std::string qid = m.scope_class + "::" + m.name;
                    members[{m.scope_class, m.name}] = qid;
                    member_by_name[m.name].push_back(qid);
                    display[qid] = qid;
                } else if (!m.function.empty()) {
                    const std::string qid =
                        localKey(idx.path, m.function, m.name);
                    locals.insert(qid);
                    display[qid] = m.name + " (in " + m.function + ")";
                } else {
                    const std::string qid = idx.path + "::" + m.name;
                    globals[m.name].emplace_back(idx.path, qid);
                    display[qid] = m.name;
                }
            }
        }
        for (auto& [name, qids] : member_by_name) {
            std::sort(qids.begin(), qids.end());
            qids.erase(std::unique(qids.begin(), qids.end()),
                       qids.end());
        }
    }

    /** @return the qid of @p object at @p site, or "" if unresolved. */
    std::string
    resolve(const std::string& path, const LockSite& site,
            const std::string& object) const
    {
        const std::string local = localKey(path, site.function, object);
        if (locals.count(local))
            return local;
        if (!site.owner_class.empty()) {
            auto it = members.find({site.owner_class, object});
            if (it != members.end())
                return it->second;
        }
        auto git = globals.find(object);
        if (git != globals.end()) {
            for (const auto& [p, qid] : git->second) {
                if (p == path)
                    return qid;
            }
            if (git->second.size() == 1)
                return git->second.front().second;
        }
        auto mit = member_by_name.find(object);
        if (mit != member_by_name.end() && mit->second.size() == 1)
            return mit->second.front();
        return "";
    }

    /** Lenient check for annotation guards: does any mutex (global,
     *  member of @p cls, or — as a fallback — any declaration at all)
     *  answer to @p guard? */
    bool
    guardResolves(const std::string& guard,
                  const std::string& cls) const
    {
        if (guard.empty())
            return false;
        if (!cls.empty() && members.count({cls, guard}))
            return true;
        if (globals.count(guard))
            return true;
        return any_name.count(guard) != 0;
    }
};

struct SiteRef {
    std::string file;
    int line = 0;
    int col = 0;

    bool
    operator<(const SiteRef& o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        return col < o.col;
    }
};

Finding
makeFinding(const std::string& file, int line, int col, const char* rule,
            std::string message)
{
    Finding f;
    f.file = file;
    f.line = line;
    f.col = col;
    f.rule = rule;
    f.message = std::move(message);
    return f;
}

// ---------------------------------------------------------------------------
// C1: raw lock/unlock calls
// ---------------------------------------------------------------------------

void
checkRawLocks(const std::vector<FileIndex>& indexes,
              const MutexTable& table, std::vector<Finding>* findings)
{
    for (const FileIndex& idx : indexes) {
        if (isSyncShim(idx.path))
            continue;
        for (const LockSite& s : idx.locks) {
            if (!s.raw)
                continue;
            if (table.resolve(idx.path, s, s.object).empty())
                continue;
            const char* call = s.unlock ? "unlock" : "lock";
            findings->push_back(makeFinding(
                idx.path, s.line, s.col, "C1",
                "raw '" + s.object + "." + call +
                    "()' on a mutex; hold locks through a RAII guard "
                    "(proteus::MutexLock, std::lock_guard, "
                    "std::scoped_lock) so every exit path releases "
                    "them — the only sanctioned raw-lock site is "
                    "src/common/sync.h"));
        }
    }
}

// ---------------------------------------------------------------------------
// C2: lock-order inversions
// ---------------------------------------------------------------------------

void
checkLockOrder(const std::vector<FileIndex>& indexes,
               const MutexTable& table, std::vector<Finding>* findings)
{
    // held-before-acquired edges, with every site contributing one.
    std::map<std::pair<std::string, std::string>, std::vector<SiteRef>>
        edges;
    for (const FileIndex& idx : indexes) {
        for (const LockSite& s : idx.locks) {
            if (s.unlock || s.held.empty())
                continue;
            const std::string to = table.resolve(idx.path, s, s.object);
            if (to.empty())
                continue;
            for (const std::string& h : s.held) {
                const std::string from = table.resolve(idx.path, s, h);
                if (from.empty() || from == to)
                    continue;
                edges[{from, to}].push_back({idx.path, s.line, s.col});
            }
        }
    }
    for (auto& [edge, sites] : edges)
        std::sort(sites.begin(), sites.end());

    std::map<std::string, std::set<std::string>> adj;
    for (const auto& [edge, sites] : edges)
        adj[edge.first].insert(edge.second);

    // An edge u->v is part of a cycle iff v reaches u. Report each
    // such edge once, anchored at its first acquisition site, citing
    // the first site of the returning path's first hop as the
    // conflicting order's witness.
    for (const auto& [edge, sites] : edges) {
        const std::string& u = edge.first;
        const std::string& v = edge.second;
        // BFS from v towards u, remembering parents for the witness.
        std::map<std::string, std::string> parent;
        std::vector<std::string> queue{v};
        parent[v] = "";
        bool found = false;
        for (std::size_t qi = 0; qi < queue.size() && !found; ++qi) {
            auto ait = adj.find(queue[qi]);
            if (ait == adj.end())
                continue;
            for (const std::string& next : ait->second) {
                if (parent.count(next))
                    continue;
                parent[next] = queue[qi];
                if (next == u) {
                    found = true;
                    break;
                }
                queue.push_back(next);
            }
        }
        if (!found)
            continue;
        // Walk back from u to v; the last parent step leaving v is
        // the returning path's first hop.
        std::string hop = u;
        while (parent[hop] != v)
            hop = parent[hop];
        const SiteRef& witness = edges.at({v, hop}).front();
        const SiteRef& site = sites.front();
        findings->push_back(makeFinding(
            site.file, site.line, site.col, "C2",
            "lock-order inversion (deadlock risk): '" +
                table.display.at(v) + "' is acquired while '" +
                table.display.at(u) +
                "' is held, but the opposite order occurs at " +
                witness.file + ":" + std::to_string(witness.line) +
                "; pick one global acquisition order"));
    }
}

// ---------------------------------------------------------------------------
// C3: unguarded shared state in thread-reachable code
// ---------------------------------------------------------------------------

/** @return the indexed paths reachable from src/sweep/ (see @file). */
std::set<std::string>
threadReachable(const std::vector<FileIndex>& indexes)
{
    std::set<std::string> all;
    for (const FileIndex& idx : indexes)
        all.insert(idx.path);

    std::map<std::string, std::vector<std::string>> includes_of;
    for (const FileIndex& idx : indexes)
        includes_of[idx.path] = idx.includes;

    auto matches = [&](const std::string& inc) {
        std::vector<std::string> out;
        for (const std::string& p : all) {
            if (p == inc || endsWith(p, "/" + inc))
                out.push_back(p);
        }
        return out;
    };
    auto stemPair = [&](const std::string& p) {
        std::vector<std::string> out;
        for (const char* h : {".h", ".hpp"}) {
            if (!endsWith(p, h))
                continue;
            const std::string stem =
                p.substr(0, p.size() - std::string(h).size());
            for (const char* s : {".cc", ".cpp"}) {
                if (all.count(stem + s))
                    out.push_back(stem + s);
            }
        }
        return out;
    };

    std::set<std::string> reach;
    std::vector<std::string> queue;
    for (const std::string& p : all) {
        if (pathHas(p, "src/sweep/")) {
            reach.insert(p);
            queue.push_back(p);
        }
    }
    while (!queue.empty()) {
        const std::string p = queue.back();
        queue.pop_back();
        std::vector<std::string> next;
        for (const std::string& inc : includes_of[p]) {
            for (const std::string& m : matches(inc))
                next.push_back(m);
        }
        for (const std::string& m : stemPair(p))
            next.push_back(m);
        for (const std::string& m : next) {
            if (reach.insert(m).second)
                queue.push_back(m);
        }
    }
    return reach;
}

void
checkSharedState(const std::vector<FileIndex>& indexes,
                 const MutexTable& table, std::vector<Finding>* findings)
{
    const std::set<std::string> reach = threadReachable(indexes);

    for (const FileIndex& idx : indexes) {
        if (!pathHas(idx.path, "src/"))
            continue;
        const bool reachable = reach.count(idx.path) != 0;

        for (const VarDecl& v : idx.globals) {
            if (v.is_const || v.is_atomic || v.is_mutex || v.is_extern ||
                v.is_thread_local)
                continue;
            if (v.annotated) {
                // Annotations are verified everywhere in src/, not
                // just in reachable files — a guard that does not
                // resolve is wrong wherever it appears.
                if (!table.guardResolves(v.guard, "")) {
                    findings->push_back(makeFinding(
                        idx.path, v.line, v.col, "C3",
                        "PROTEUS_GUARDED_BY on '" + v.name +
                            "' names '" + v.guard +
                            "', which does not resolve to any known "
                            "mutex"));
                }
                continue;
            }
            if (!reachable)
                continue;
            const char* what = v.is_function_local
                                   ? "non-const function-local static '"
                                   : "non-const global '";
            findings->push_back(makeFinding(
                idx.path, v.line, v.col, "C3",
                std::string(what) + v.name +
                    "' in thread-reachable code (src/sweep include "
                    "closure); make it std::atomic, const or "
                    "thread_local, or guard it with a mutex and "
                    "annotate PROTEUS_GUARDED_BY(<mutex>)"));
        }

        for (const AnnotatedMember& m : idx.annotated_members) {
            if (table.guardResolves(m.guard, m.scope_class))
                continue;
            findings->push_back(makeFinding(
                idx.path, m.line, m.col, "C3",
                "PROTEUS_GUARDED_BY on member '" + m.scope_class +
                    "::" + m.name + "' names '" + m.guard +
                    "', which does not resolve to a mutex member of " +
                    m.scope_class + " or a namespace-scope mutex"));
        }
    }
}

}  // namespace

std::vector<Finding>
lintCrossFile(const std::vector<FileIndex>& indexes,
              const LintOptions& options)
{
    MutexTable table;
    table.build(indexes);

    std::vector<Finding> findings;
    if (options.enabled("C1"))
        checkRawLocks(indexes, table, &findings);
    if (options.enabled("C2"))
        checkLockOrder(indexes, table, &findings);
    if (options.enabled("C3"))
        checkSharedState(indexes, table, &findings);

    // Suppress at the anchor: the file a finding is reported in,
    // which for cross-file rules can differ from its cause's file.
    std::map<std::string, std::vector<Suppression>> sups;
    for (const FileIndex& idx : indexes)
        sups[idx.path] = idx.suppressions;
    for (Finding& f : findings) {
        auto it = sups.find(f.file);
        if (it == sups.end())
            continue;
        std::vector<Finding> one;
        one.push_back(std::move(f));
        detail::applySuppressions(it->second, &one);
        f = std::move(one.front());
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.col != b.col)
                      return a.col < b.col;
                  return a.rule < b.rule;
              });
    return findings;
}

}  // namespace proteus::lint
