/**
 * @file
 * proteus_lint — determinism-and-safety static analysis for the tree.
 *
 * The linter runs in two passes. Pass 1 tokenizes each translation
 * unit (comments, string/char/raw-string literals, identifiers,
 * numbers, punctuation), applies the per-file rules, and builds a
 * lightweight symbol index: namespace/class scopes, function
 * definitions, namespace-scope and static-local variables, mutex
 * declarations, lock-acquisition sites with the set of locks held at
 * each, and #include edges. Pass 2 merges the per-TU indexes and runs
 * the cross-file concurrency rules over the whole program.
 *
 * Per-file rules (see ruleRegistry() for the authoritative table):
 *   D1  no unordered_map/unordered_set in solver/controller/router/sim
 *       code (src/solver/, src/core/, src/sim/) — iteration order is
 *       unspecified and has leaked into decisions in other systems.
 *   D2  no direct wall-clock reads (std::chrono::{steady,system,
 *       high_resolution}_clock, time()/clock()/rand()/srand()) outside
 *       the audited shims: src/common/clock.h (WallTimer) and
 *       src/sweep/sweep_clock.h (sweep job timing; see the allowlist
 *       rationale at isClockShim()).
 *   D3  no float/double std::accumulate without an explicit
 *       "det-order:" comment justifying the summation order.
 *   D4  no std::cout / raw printf-family output outside bench/ and
 *       tools/ — library code must use common/logging.
 *   S1  no const_cast / reinterpret_cast in src/.
 *   S2  stale-marker comments must carry an issue reference, i.e.
 *       the TODO(#123) form.
 *   S3  suppression hygiene: every suppression marker names known
 *       rule ids and carries a non-empty reason.
 *
 * Cross-file concurrency rules (pass 2):
 *   C1  no raw mutex .lock()/.unlock()/.try_lock() calls on objects
 *       the index resolves to mutexes — hold locks through RAII
 *       guards (proteus::MutexLock, std::lock_guard, std::scoped_lock,
 *       std::unique_lock). The single sanctioned raw-lock site is
 *       src/common/sync.h, the annotated wrapper itself.
 *   C2  globally consistent lock-acquisition order: every guard
 *       nesting contributes a held-before-acquired edge; a cycle in
 *       the merged graph (e.g. TU a locks A then B, TU b locks B then
 *       A) is a deadlock risk and is flagged at each offending edge.
 *   C3  non-const namespace-scope / static-local variables in
 *       thread-reachable code (src/sweep plus its transitive include
 *       closure) must be std::atomic, const/constexpr, thread_local,
 *       or carry a PROTEUS_GUARDED_BY(mutex) annotation naming a
 *       mutex the index can resolve. Annotated class members are
 *       verified the same way everywhere in src/.
 *
 * Suppressions:
 *   code();  // NOLINT-PROTEUS(D2): reason why this is safe
 *   // NOLINTNEXTLINE-PROTEUS(D1,D3): reason covering the next line
 *   // NOLINT-PROTEUS(*): reason — suppress every rule on this line
 * Cross-file findings are suppressed at the line they anchor to (the
 * acquisition site / variable declaration), which may live in a
 * different file than the rule's cause.
 */

#ifndef PROTEUS_TOOLS_LINT_LINT_H_
#define PROTEUS_TOOLS_LINT_LINT_H_

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace proteus::lint {

/** One rule violation (or suppressed would-be violation). */
struct Finding {
    std::string file;           ///< path as passed to lintSource()
    int line = 0;               ///< 1-based line of the offending token
    int col = 0;                ///< 1-based column
    std::string rule;           ///< rule id, e.g. "D2"
    std::string message;        ///< human-readable explanation
    bool suppressed = false;    ///< true when a suppression covers it
    std::string suppress_reason;  ///< the suppression's reason text
};

/** One parsed suppression marker (see the forms in @file). */
struct Suppression {
    std::set<std::string> rules;  ///< empty when all == true
    bool all = false;             ///< "*" form
    std::string reason;
    int applies_to_line = 0;  ///< line whose findings it covers
    bool used = false;
};

/** Registry entry describing one rule. */
struct RuleInfo {
    const char* id;       ///< short id, e.g. "D1"
    const char* summary;  ///< one-line description for --list-rules
};

/** @return the full rule registry, in display order. */
const std::vector<RuleInfo>& ruleRegistry();

/** @return true when @p id names a registered rule. */
bool isKnownRule(const std::string& id);

/** Rule selection: empty set means every rule runs. */
struct LintOptions {
    std::set<std::string> rules;

    /** @return true when rule @p id should run under this filter. */
    bool
    enabled(const std::string& id) const
    {
        return rules.empty() || rules.count(id) != 0;
    }
};

// ---------------------------------------------------------------------------
// Pass 1: per-TU symbol index
// ---------------------------------------------------------------------------

/** A mutex declaration (std::mutex family or proteus::Mutex). */
struct MutexDecl {
    std::string name;
    std::string scope_class;  ///< owning class; empty at namespace scope
    std::string function;     ///< set for function-local mutexes
    int line = 0;
    int col = 0;
};

/** A namespace-scope variable or function-local static (C3 universe). */
struct VarDecl {
    std::string name;
    int line = 0;
    int col = 0;
    bool is_const = false;   ///< const/constexpr/constinit pointee
    bool is_atomic = false;
    bool is_mutex = false;
    bool is_extern = false;  ///< declaration only; definition is checked
    bool is_thread_local = false;
    bool is_function_local = false;  ///< static local inside a function
    bool annotated = false;  ///< PROTEUS_GUARDED_BY present
    std::string guard;       ///< mutex named by the annotation
};

/** An annotated class member; its guard must resolve (C3). */
struct AnnotatedMember {
    std::string name;
    std::string guard;
    std::string scope_class;
    int line = 0;
    int col = 0;
};

/** One lock acquisition or release, with the locks held at the site. */
struct LockSite {
    std::string object;       ///< mutex expression's last identifier
    std::string owner_class;  ///< enclosing/qualifying class, may be ""
    std::string function;     ///< enclosing function (Class::name form)
    bool raw = false;         ///< .lock()/.unlock() call, not a guard
    bool unlock = false;      ///< raw .unlock()
    int line = 0;
    int col = 0;
    std::vector<std::string> held;  ///< objects already held here
};

/** The pass-1 product for one translation unit. */
struct FileIndex {
    std::string path;                   ///< normalized path
    std::vector<std::string> includes;  ///< #include operands, verbatim
    std::vector<MutexDecl> mutexes;
    std::vector<VarDecl> globals;
    std::vector<AnnotatedMember> annotated_members;
    std::vector<LockSite> locks;
    std::vector<Suppression> suppressions;
};

/** Build the symbol index of one translation unit. */
FileIndex indexSource(const std::string& path, const std::string& text);

/**
 * Pass 2: run the cross-file concurrency rules (C1..C3) over the
 * merged indexes. Findings anchor at their acquisition/declaration
 * site; suppressions from the anchoring file are applied.
 */
std::vector<Finding> lintCrossFile(const std::vector<FileIndex>& indexes,
                                   const LintOptions& options = {});

// ---------------------------------------------------------------------------
// Whole-analysis drivers
// ---------------------------------------------------------------------------

/** The combined result of both passes over a set of sources. */
struct Analysis {
    std::vector<Finding> findings;  ///< sorted by (file, line, col, rule)
    std::size_t files_scanned = 0;
};

/**
 * Run both passes over in-memory (path, text) pairs. The CLI and the
 * golden test share this entry point so their outputs are
 * byte-identical for the same inputs.
 */
Analysis analyzeSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const LintOptions& options = {});

/** Read @p files and run both passes. IO errors become "IO" findings. */
Analysis analyzeFiles(const std::vector<std::string>& files,
                      const LintOptions& options = {});

/**
 * Lint one translation unit with the per-file rules only (pass 1
 * without indexing; cross-file rules need analyzeSources). @p path is
 * used both for reporting and for directory-scoped rule applicability
 * (substring match on "src/solver/", "bench/", ... so fixture trees
 * that mirror the layout exercise the same scoping).
 */
std::vector<Finding> lintSource(const std::string& path,
                                const std::string& text,
                                const LintOptions& options = {});

/** Read @p path and lint it. IO errors produce a "IO" finding. */
std::vector<Finding> lintFile(const std::string& path);

/**
 * Recursively collect .cc/.cpp/.h/.hpp files under @p roots, sorted
 * for deterministic output. When @p skip_fixtures is set, paths
 * containing "tests/lint/fixtures" are excluded (they contain
 * intentional violations).
 */
std::vector<std::string> collectFiles(const std::vector<std::string>& roots,
                                      bool skip_fixtures);

/** Serialize findings as the stable --json schema (schema 2). */
std::string toJson(const std::vector<Finding>& findings,
                   std::size_t files_scanned);

/** Format one finding as "file:line:col: [rule] message". */
std::string formatHuman(const Finding& f);

}  // namespace proteus::lint

#endif  // PROTEUS_TOOLS_LINT_LINT_H_
