/**
 * @file
 * proteus_lint — determinism-and-safety static analysis for the tree.
 *
 * A small tokenizer (comments, string/char/raw-string literals,
 * identifiers, numbers, punctuation) feeds a registry of project
 * rules. The rules encode the invariants that PR 2 made load-bearing:
 * byte-identical same-seed traces require that nothing in the decision
 * path iterates an unordered container, reads the wall clock outside
 * the sanctioned shim, or folds floats in an unspecified order.
 *
 * Rules (see ruleRegistry() for the authoritative table):
 *   D1  no unordered_map/unordered_set in solver/controller/router/sim
 *       code (src/solver/, src/core/, src/sim/) — iteration order is
 *       unspecified and has leaked into decisions in other systems.
 *   D2  no direct wall-clock reads (std::chrono::{steady,system,
 *       high_resolution}_clock, time()/clock()/rand()/srand()) outside
 *       the audited shims: src/common/clock.h (WallTimer) and
 *       src/sweep/sweep_clock.h (sweep job timing; see the allowlist
 *       rationale at isClockShim()).
 *   D3  no float/double std::accumulate without an explicit
 *       "det-order:" comment justifying the summation order.
 *   D4  no std::cout / raw printf-family output outside bench/ and
 *       tools/ — library code must use common/logging.
 *   S1  no const_cast / reinterpret_cast in src/.
 *   S2  stale-marker comments must carry an issue reference, i.e.
 *       the TODO(#123) form.
 *   S3  suppression hygiene: every suppression marker names known
 *       rule ids and carries a non-empty reason.
 *
 * Suppressions:
 *   code();  // NOLINT-PROTEUS(D2): reason why this is safe
 *   // NOLINTNEXTLINE-PROTEUS(D1,D3): reason covering the next line
 *   // NOLINT-PROTEUS(*): reason — suppress every rule on this line
 */

#ifndef PROTEUS_TOOLS_LINT_LINT_H_
#define PROTEUS_TOOLS_LINT_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace proteus::lint {

/** One rule violation (or suppressed would-be violation). */
struct Finding {
    std::string file;           ///< path as passed to lintSource()
    int line = 0;               ///< 1-based line of the offending token
    int col = 0;                ///< 1-based column
    std::string rule;           ///< rule id, e.g. "D2"
    std::string message;        ///< human-readable explanation
    bool suppressed = false;    ///< true when a suppression covers it
    std::string suppress_reason;  ///< the suppression's reason text
};

/** Registry entry describing one rule. */
struct RuleInfo {
    const char* id;       ///< short id, e.g. "D1"
    const char* summary;  ///< one-line description for --list-rules
};

/** @return the full rule registry, in display order. */
const std::vector<RuleInfo>& ruleRegistry();

/** @return true when @p id names a registered rule. */
bool isKnownRule(const std::string& id);

/**
 * Lint one translation unit. @p path is used both for reporting and
 * for directory-scoped rule applicability (substring match on
 * "src/solver/", "bench/", ... so fixture trees that mirror the
 * layout exercise the same scoping).
 */
std::vector<Finding> lintSource(const std::string& path,
                                const std::string& text);

/** Read @p path and lint it. IO errors produce a "IO" finding. */
std::vector<Finding> lintFile(const std::string& path);

/**
 * Recursively collect .cc/.cpp/.h/.hpp files under @p roots, sorted
 * for deterministic output. When @p skip_fixtures is set, paths
 * containing "tests/lint/fixtures" are excluded (they contain
 * intentional violations).
 */
std::vector<std::string> collectFiles(const std::vector<std::string>& roots,
                                      bool skip_fixtures);

/** Serialize findings as the stable --json schema (version 1). */
std::string toJson(const std::vector<Finding>& findings,
                   std::size_t files_scanned);

/** Format one finding as "file:line:col: [rule] message". */
std::string formatHuman(const Finding& f);

}  // namespace proteus::lint

#endif  // PROTEUS_TOOLS_LINT_LINT_H_
