/**
 * @file
 * proteus_lint CLI — the determinism-and-safety gate for the tree.
 *
 *   proteus_lint                  # scan src/ bench/ tools/ tests/
 *   proteus_lint --json           # machine-readable findings
 *   proteus_lint --root DIR       # scan relative to DIR
 *   proteus_lint path...          # scan explicit files/dirs (keeps
 *                                 # lint fixtures, used by the tests)
 *   proteus_lint --list-rules     # print the rule registry
 *   proteus_lint --rule C1,C3     # run only the named rules
 *
 * The scan runs both passes: the per-file rules, then the cross-file
 * concurrency rules over the merged symbol index of every input.
 *
 * Exit status: 0 clean, 1 unsuppressed findings, 2 usage/IO error.
 */

#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

int
usage()
{
    std::cerr << "usage: proteus_lint [--json] [--show-suppressed] "
                 "[--list-rules] [--rule ID[,ID...]] [--root DIR] "
                 "[path...]\n";
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    namespace lint = proteus::lint;

    bool json = false;
    bool show_suppressed = false;
    std::string root;
    std::vector<std::string> paths;
    lint::LintOptions options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--show-suppressed") {
            show_suppressed = true;
        } else if (arg == "--list-rules") {
            for (const lint::RuleInfo& r : lint::ruleRegistry())
                std::cout << r.id << "  " << r.summary << "\n";
            return 0;
        } else if (arg == "--rule") {
            if (++i >= argc)
                return usage();
            std::stringstream ss(argv[i]);
            std::string id;
            while (std::getline(ss, id, ',')) {
                if (id.empty())
                    continue;
                if (!lint::isKnownRule(id)) {
                    std::cerr << "proteus_lint: unknown rule '" << id
                              << "' (see --list-rules)\n";
                    return 2;
                }
                options.rules.insert(id);
            }
            if (options.rules.empty())
                return usage();
        } else if (arg == "--root") {
            if (++i >= argc)
                return usage();
            root = argv[i];
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            paths.push_back(arg);
        }
    }

    const bool explicit_paths = !paths.empty();
    if (!explicit_paths) {
        const std::string base = root.empty() ? "" : root + "/";
        for (const char* d : {"src", "bench", "tools", "tests"})
            paths.push_back(base + d);
    }

    const std::vector<std::string> files =
        lint::collectFiles(paths, /*skip_fixtures=*/!explicit_paths);
    if (files.empty()) {
        std::cerr << "proteus_lint: no input files\n";
        return 2;
    }

    const lint::Analysis analysis = lint::analyzeFiles(files, options);

    bool io_error = false;
    std::size_t unsuppressed = 0;
    std::size_t suppressed = 0;
    for (const lint::Finding& f : analysis.findings) {
        io_error = io_error || f.rule == "IO";
        if (f.suppressed)
            ++suppressed;
        else
            ++unsuppressed;
    }

    if (json) {
        std::cout << lint::toJson(analysis.findings,
                                  analysis.files_scanned);
    } else {
        for (const lint::Finding& f : analysis.findings) {
            if (f.suppressed && !show_suppressed)
                continue;
            std::cout << lint::formatHuman(f) << "\n";
        }
        std::cout << "proteus_lint: scanned " << analysis.files_scanned
                  << " files, " << unsuppressed
                  << " unsuppressed findings (" << suppressed
                  << " suppressed)\n";
    }

    if (io_error)
        return 2;
    return unsuppressed > 0 ? 1 : 0;
}
