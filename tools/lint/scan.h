/**
 * @file
 * proteus_lint internals shared between the per-file rule pass
 * (lint.cc) and the cross-file index/concurrency pass (index.cc,
 * concurrency.cc): the tokenizer, suppression parsing and path
 * helpers. Not installed and not part of the public lint.h API —
 * tests and the CLI go through lint.h.
 */

#ifndef PROTEUS_TOOLS_LINT_SCAN_H_
#define PROTEUS_TOOLS_LINT_SCAN_H_

#include <string>
#include <vector>

#include "lint.h"

namespace proteus::lint::detail {

enum class TokKind { Ident, Number, Punct };

struct Token {
    TokKind kind;
    std::string text;
    int line;
    int col;
};

/** A comment with the line span it occupies (block comments span). */
struct Comment {
    std::string text;
    int line;
    int end_line;
};

struct Scan {
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/**
 * Single-pass scanner. Strings, char literals and raw strings are
 * consumed without emitting tokens (rule matching must never fire on
 * literal text); comments are collected separately for suppression
 * parsing and the comment-based rules (S2, D3's det-order).
 */
Scan scanSource(const std::string& text);

struct SuppressionScan {
    std::vector<Suppression> suppressions;
    std::vector<Finding> malformed;  ///< S3 findings
};

/**
 * Parse all suppression markers (same-line and next-line forms) in
 * one comment. Syntax: MARKER(rule[,rule...]): reason. Malformed
 * markers become S3 findings rather than silently suppressing
 * nothing.
 */
void parseSuppressions(const std::string& path, const Comment& comment,
                       SuppressionScan* out);

std::string trim(const std::string& s);

std::string normalizePath(const std::string& path);

bool pathHas(const std::string& path, const char* frag);

bool endsWith(const std::string& s, const std::string& suffix);

/**
 * Mark a finding suppressed when one of @p sups covers its line and
 * rule. @p sups must come from the same file the finding anchors in —
 * cross-file rules are suppressed where the finding is *reported*,
 * not where its cause lives.
 */
void applySuppressions(std::vector<Suppression>& sups,
                       std::vector<Finding>* findings);

/** Stable finding order: (line, col, rule) within one file. */
void sortFindings(std::vector<Finding>* findings);

}  // namespace proteus::lint::detail

#endif  // PROTEUS_TOOLS_LINT_SCAN_H_
