#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "scan.h"

namespace proteus::lint::detail {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

namespace {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

Scan
scanSource(const std::string& text)
{
    Scan out;
    std::size_t i = 0;
    const std::size_t n = text.size();
    int line = 1;
    int col = 1;

    auto advance = [&](char c) {
        if (c == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
    };
    auto take = [&]() {
        advance(text[i]);
        ++i;
    };

    while (i < n) {
        const char c = text[i];

        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            const int start_line = line;
            std::string body;
            while (i < n && text[i] != '\n') {
                body += text[i];
                take();
            }
            out.comments.push_back({body, start_line, start_line});
            continue;
        }

        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            const int start_line = line;
            std::string body;
            take();
            take();
            body += "/*";
            while (i < n) {
                if (text[i] == '*' && i + 1 < n && text[i + 1] == '/') {
                    take();
                    take();
                    body += "*/";
                    break;
                }
                body += text[i];
                take();
            }
            out.comments.push_back({body, start_line, line});
            continue;
        }

        if (c == '"') {
            take();
            while (i < n) {
                if (text[i] == '\\' && i + 1 < n) {
                    take();
                    take();
                    continue;
                }
                const bool done = text[i] == '"' || text[i] == '\n';
                take();
                if (done)
                    break;
            }
            continue;
        }

        if (c == '\'') {
            take();
            while (i < n) {
                if (text[i] == '\\' && i + 1 < n) {
                    take();
                    take();
                    continue;
                }
                const bool done = text[i] == '\'' || text[i] == '\n';
                take();
                if (done)
                    break;
            }
            continue;
        }

        if (isIdentStart(c)) {
            const int tl = line;
            const int tc = col;
            std::string id;
            while (i < n && isIdentChar(text[i])) {
                id += text[i];
                take();
            }
            // Raw string literal: R"delim( ... )delim"
            if (i < n && text[i] == '"' &&
                (id == "R" || id == "LR" || id == "uR" || id == "UR" ||
                 id == "u8R")) {
                take();  // opening quote
                std::string delim;
                while (i < n && text[i] != '(' && text[i] != '\n') {
                    delim += text[i];
                    take();
                }
                if (i < n)
                    take();  // '('
                const std::string closer = ")" + delim + "\"";
                while (i < n) {
                    if (text.compare(i, closer.size(), closer) == 0) {
                        for (std::size_t k = 0; k < closer.size(); ++k)
                            take();
                        break;
                    }
                    take();
                }
                continue;
            }
            out.tokens.push_back({TokKind::Ident, id, tl, tc});
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(text[i + 1])) != 0)) {
            const int tl = line;
            const int tc = col;
            std::string num;
            while (i < n) {
                const char d = text[i];
                if (isIdentChar(d) || d == '.' || d == '\'') {
                    num += d;
                    take();
                    continue;
                }
                if ((d == '+' || d == '-') && !num.empty() &&
                    (num.back() == 'e' || num.back() == 'E' ||
                     num.back() == 'p' || num.back() == 'P')) {
                    num += d;
                    take();
                    continue;
                }
                break;
            }
            out.tokens.push_back({TokKind::Number, num, tl, tc});
            continue;
        }

        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            take();
            continue;
        }

        const int tl = line;
        const int tc = col;
        if (c == ':' && i + 1 < n && text[i + 1] == ':') {
            take();
            take();
            out.tokens.push_back({TokKind::Punct, "::", tl, tc});
            continue;
        }
        if (c == '-' && i + 1 < n && text[i + 1] == '>') {
            take();
            take();
            out.tokens.push_back({TokKind::Punct, "->", tl, tc});
            continue;
        }
        out.tokens.push_back({TokKind::Punct, std::string(1, c), tl, tc});
        take();
    }
    return out;
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

std::string
trim(const std::string& s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

void
parseSuppressions(const std::string& path, const Comment& comment,
                  SuppressionScan* out)
{
    static const std::string kNext = "NOLINTNEXTLINE-PROTEUS";
    static const std::string kHere = "NOLINT-PROTEUS";

    const std::string& body = comment.text;
    std::size_t pos = 0;
    while (true) {
        std::size_t at_next = body.find(kNext, pos);
        std::size_t at_here = body.find(kHere, pos);
        bool next_form = false;
        std::size_t at;
        if (at_next != std::string::npos && at_next <= at_here) {
            // kHere is a substring of kNext, so a NOLINTNEXTLINE match
            // also matches kHere a few chars later; prefer the longer.
            next_form = true;
            at = at_next;
        } else if (at_here != std::string::npos) {
            at = at_here;
        } else {
            break;
        }
        const std::size_t marker_len =
            next_form ? kNext.size() : kHere.size();
        pos = at + marker_len;

        const int marker_line =
            comment.line +
            static_cast<int>(std::count(body.begin(),
                                        body.begin() +
                                            static_cast<std::ptrdiff_t>(at),
                                        '\n'));
        auto malformed = [&](const std::string& why) {
            Finding f;
            f.file = path;
            f.line = marker_line;
            f.col = 1;
            f.rule = "S3";
            f.message = "malformed NOLINT-PROTEUS suppression: " + why;
            out->malformed.push_back(f);
        };

        if (pos >= body.size() || body[pos] != '(') {
            malformed("expected '(rule[,rule...])' after marker");
            continue;
        }
        const std::size_t close = body.find(')', pos);
        if (close == std::string::npos) {
            malformed("unterminated rule list");
            continue;
        }
        const std::string rule_list = body.substr(pos + 1, close - pos - 1);
        pos = close + 1;

        Suppression sup;
        bool ok = true;
        std::stringstream ss(rule_list);
        std::string item;
        int items = 0;
        while (std::getline(ss, item, ',')) {
            item = trim(item);
            if (item.empty())
                continue;
            ++items;
            if (item == "*") {
                sup.all = true;
            } else if (isKnownRule(item)) {
                sup.rules.insert(item);
            } else {
                malformed("unknown rule id '" + item + "'");
                ok = false;
            }
        }
        if (items == 0) {
            malformed("empty rule list");
            ok = false;
        }
        if (!ok)
            continue;

        // Reason: everything after a ':' up to the end of the comment
        // line the marker sits on.
        std::size_t colon = pos;
        while (colon < body.size() &&
               (body[colon] == ' ' || body[colon] == '\t'))
            ++colon;
        if (colon >= body.size() || body[colon] != ':') {
            malformed("missing ': reason'");
            continue;
        }
        std::size_t reason_end = body.find('\n', colon);
        if (reason_end == std::string::npos)
            reason_end = body.size();
        std::string reason =
            trim(body.substr(colon + 1, reason_end - colon - 1));
        // Strip a trailing block-comment closer from one-line /* */.
        if (reason.size() >= 2 && reason.substr(reason.size() - 2) == "*/")
            reason = trim(reason.substr(0, reason.size() - 2));
        if (reason.empty()) {
            malformed("empty reason");
            continue;
        }
        sup.reason = reason;
        sup.applies_to_line =
            next_form ? comment.end_line + 1 : marker_line;
        out->suppressions.push_back(sup);
    }
}

void
applySuppressions(std::vector<Suppression>& sups,
                  std::vector<Finding>* findings)
{
    for (Finding& f : *findings) {
        if (f.suppressed)
            continue;
        for (Suppression& s : sups) {
            if (s.applies_to_line != f.line)
                continue;
            if (!s.all && s.rules.count(f.rule) == 0)
                continue;
            f.suppressed = true;
            f.suppress_reason = s.reason;
            s.used = true;
            break;
        }
    }
}

void
sortFindings(std::vector<Finding>* findings)
{
    std::sort(findings->begin(), findings->end(),
              [](const Finding& a, const Finding& b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.col != b.col)
                      return a.col < b.col;
                  return a.rule < b.rule;
              });
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

std::string
normalizePath(const std::string& path)
{
    std::string p = path;
    std::replace(p.begin(), p.end(), '\\', '/');
    return p;
}

bool
pathHas(const std::string& path, const char* frag)
{
    return path.find(frag) != std::string::npos;
}

bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace proteus::lint::detail

namespace proteus::lint {

namespace {

using detail::Comment;
using detail::Scan;
using detail::SuppressionScan;
using detail::TokKind;
using detail::Token;
using detail::endsWith;
using detail::pathHas;

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/** D1 scope: the deterministic decision path. */
bool
isDecisionPath(const std::string& path)
{
    return pathHas(path, "src/solver/") || pathHas(path, "src/core/") ||
           pathHas(path, "src/sim/") || pathHas(path, "src/pipeline/");
}

/**
 * D2 allowlist: the sanctioned wall-clock sites. Each entry is a
 * single audited file, never a directory — adding one requires the
 * same audit common/clock.h got (reads are measurement-only and can
 * never change a deterministic result):
 *   - src/common/clock.h: the WallTimer shim (solver time limits).
 *   - src/sweep/sweep_clock.h: sweep job timing + journal stamps;
 *     wall time there only aborts over-budget jobs into explicit
 *     failure rows and annotates the journal, never the merged store.
 */
bool
isClockShim(const std::string& path)
{
    return endsWith(path, "src/common/clock.h") ||
           path == "common/clock.h" || path == "clock.h" ||
           endsWith(path, "src/sweep/sweep_clock.h");
}

/** D4 scope: raw stdout/stderr output is fine in bench and tools. */
bool
isOutputAllowed(const std::string& path)
{
    return pathHas(path, "bench/") || pathHas(path, "tools/");
}

/** A1 scope: the zero-allocation query hot path (ISSUE 6). */
bool
isHotPath(const std::string& path)
{
    if (pathHas(path, "src/sim/") || pathHas(path, "src/common/alloc/"))
        return true;
    return pathHas(path, "src/core/worker") ||
           pathHas(path, "src/core/router") ||
           pathHas(path, "src/core/batching") ||
           pathHas(path, "src/core/query") ||
           pathHas(path, "src/pipeline/stage_router");
}

// ---------------------------------------------------------------------------
// Token rules
// ---------------------------------------------------------------------------

bool
isClockIdent(const std::string& id)
{
    // Spelled with a runtime concatenation so proteus_lint's own
    // sources stay clean under the rule it enforces.
    static const std::string suffix = "_clock";
    return id == "steady" + suffix || id == "system" + suffix ||
           id == "high_resolution" + suffix;
}

bool
isClockCall(const std::string& id)
{
    return id == "time" || id == "clock" || id == "rand" || id == "srand";
}

bool
isPrintfFamily(const std::string& id)
{
    return id == "printf" || id == "fprintf" || id == "vprintf" ||
           id == "vfprintf" || id == "puts" || id == "fputs" ||
           id == "putchar" || id == "putc" || id == "fputc";
}

/** @return true when any comment intersecting [line-2, line] contains
 *  a "det-order" marker — D3's escape hatch. */
bool
hasDetOrderComment(const std::vector<Comment>& comments, int line)
{
    for (const Comment& c : comments) {
        if (c.end_line < line - 2 || c.line > line)
            continue;
        if (c.text.find("det-order") != std::string::npos)
            return true;
    }
    return false;
}

/**
 * Scan the balanced-paren argument list starting at tokens[open] (the
 * '(') for evidence of floating-point accumulation: a float literal
 * or a float/double keyword.
 */
bool
argsLookFloating(const std::vector<Token>& tokens, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        const Token& t = tokens[i];
        if (t.kind == TokKind::Punct) {
            if (t.text == "(")
                ++depth;
            else if (t.text == ")") {
                --depth;
                if (depth == 0)
                    break;
            }
            continue;
        }
        if (depth == 0)
            break;
        if (t.kind == TokKind::Ident &&
            (t.text == "float" || t.text == "double"))
            return true;
        if (t.kind == TokKind::Number) {
            const std::string& v = t.text;
            const bool is_hex =
                v.size() > 1 && v[0] == '0' && (v[1] == 'x' || v[1] == 'X');
            if (!is_hex &&
                (v.find('.') != std::string::npos ||
                 v.find('e') != std::string::npos ||
                 v.find('E') != std::string::npos ||
                 v.back() == 'f' || v.back() == 'F'))
                return true;
        }
    }
    return false;
}

void
checkTokens(const std::string& path, const Scan& scan,
            std::vector<Finding>* findings)
{
    const bool decision = isDecisionPath(path);
    const bool clock_ok = isClockShim(path);
    const bool output_ok = isOutputAllowed(path);
    const bool in_src = pathHas(path, "src/");
    const bool hot = isHotPath(path);

    const std::vector<Token>& toks = scan.tokens;
    auto add = [&](const Token& t, const char* rule, std::string msg) {
        Finding f;
        f.file = path;
        f.line = t.line;
        f.col = t.col;
        f.rule = rule;
        f.message = std::move(msg);
        findings->push_back(std::move(f));
    };
    auto prevText = [&](std::size_t i) -> std::string {
        return i > 0 ? toks[i - 1].text : std::string();
    };
    auto nextIsCallParen = [&](std::size_t i) {
        return i + 1 < toks.size() && toks[i + 1].kind == TokKind::Punct &&
               toks[i + 1].text == "(";
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind != TokKind::Ident)
            continue;
        const std::string& id = t.text;

        if (decision &&
            (id == "unordered_map" || id == "unordered_set" ||
             id == "unordered_multimap" || id == "unordered_multiset")) {
            add(t, "D1",
                "unordered container '" + id +
                    "' in deterministic decision path; iteration order "
                    "is unspecified — use std::map/std::set or an "
                    "insertion-ordered wrapper");
            continue;
        }

        if (!clock_ok && isClockIdent(id)) {
            add(t, "D2",
                "direct wall-clock '" + id +
                    "'; use proteus::WallTimer from common/clock.h, "
                    "the one sanctioned wall-clock site");
            continue;
        }
        if (!clock_ok && isClockCall(id) && nextIsCallParen(i)) {
            const std::string prev = prevText(i);
            if (prev != "." && prev != "->") {
                add(t, "D2",
                    "call to '" + id +
                        "()' reads ambient wall-clock/PRNG state; use "
                        "proteus::WallTimer (common/clock.h) or "
                        "proteus::Rng (common/rng.h)");
                continue;
            }
        }

        if (id == "accumulate" && nextIsCallParen(i) &&
            argsLookFloating(toks, i + 1) &&
            !hasDetOrderComment(scan.comments, t.line)) {
            add(t, "D3",
                "floating-point std::accumulate without a det-order "
                "comment; add '// det-order: <why the fold order is "
                "fixed>' within the two lines above");
            continue;
        }

        if (!output_ok && id == "cout") {
            add(t, "D4",
                "raw std::cout outside bench/tools; use common/logging "
                "(inform/warn/debugLog)");
            continue;
        }
        if (!output_ok && isPrintfFamily(id) && nextIsCallParen(i)) {
            const std::string prev = prevText(i);
            if (prev != "." && prev != "->") {
                add(t, "D4",
                    "raw " + id +
                        "() outside bench/tools; use common/logging "
                        "(inform/warn/debugLog)");
                continue;
            }
        }

        if (hot) {
            // Allocating 'new' is always followed by a type name.
            // This skips placement new ('new (addr) T' — storage the
            // caller already owns), 'operator new' declarations (the
            // interposition shim itself) and '#include <new>'.
            const bool alloc_new =
                id == "new" && prevText(i) != "operator" &&
                i + 1 < toks.size() &&
                toks[i + 1].kind == TokKind::Ident;
            if (alloc_new) {
                add(t, "A1",
                    "heap 'new' in hot-path file; use "
                    "alloc::ObjectPool/FrameArena/ScratchVector (or "
                    "placement new into pooled storage)");
                continue;
            }
            if (id == "make_unique" || id == "make_shared") {
                add(t, "A1",
                    "std::" + id +
                        " in hot-path file; hot-path objects come from "
                        "alloc::ObjectPool/FrameArena, not the heap");
                continue;
            }
            if (id == "function" && prevText(i) == "::") {
                add(t, "A1",
                    "std::function in hot-path file; it heap-allocates "
                    "for large captures — use alloc::InplaceFunction");
                continue;
            }
        }

        if (in_src && (id == "const_cast" || id == "reinterpret_cast")) {
            add(t, "S1",
                id + " in src/; redesign the interface instead of "
                     "casting around it");
            continue;
        }
    }
}

// ---------------------------------------------------------------------------
// Comment rules
// ---------------------------------------------------------------------------

void
checkComments(const std::string& path, const Scan& scan,
              std::vector<Finding>* findings)
{
    for (const Comment& c : scan.comments) {
        for (const char* marker : {"TODO", "FIXME"}) {
            std::size_t pos = 0;
            const std::string m(marker);
            while ((pos = c.text.find(m, pos)) != std::string::npos) {
                // Reject TODOS/, xTODO, ... — require a bare word.
                const bool word_start =
                    pos == 0 || !isIdentChar(c.text[pos - 1]);
                const std::size_t after = pos + m.size();
                const bool word_end =
                    after >= c.text.size() || !isIdentChar(c.text[after]);
                if (!word_start || !word_end) {
                    pos = after;
                    continue;
                }
                // Valid form: TODO(#123)
                bool ok = false;
                if (after + 2 < c.text.size() && c.text[after] == '(' &&
                    c.text[after + 1] == '#') {
                    std::size_t d = after + 2;
                    while (d < c.text.size() &&
                           std::isdigit(static_cast<unsigned char>(
                               c.text[d])) != 0)
                        ++d;
                    ok = d > after + 2 && d < c.text.size() &&
                         c.text[d] == ')';
                }
                if (!ok) {
                    Finding f;
                    f.file = path;
                    f.line = c.line +
                             static_cast<int>(std::count(
                                 c.text.begin(),
                                 c.text.begin() +
                                     static_cast<std::ptrdiff_t>(pos),
                                 '\n'));
                    f.col = 1;
                    f.rule = "S2";
                    f.message =
                        m + " without an issue reference; use " + m +
                        "(#<issue>) so stale markers stay traceable";
                    findings->push_back(std::move(f));
                }
                pos = after;
            }
        }
    }
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>&
ruleRegistry()
{
    static const std::vector<RuleInfo> kRules = {
        {"D1", "no unordered containers in solver/controller/router/sim "
               "code (src/solver, src/core, src/sim, src/pipeline)"},
        {"D2", "no direct wall-clock or ambient PRNG reads outside the "
               "audited shims (src/common/clock.h, "
               "src/sweep/sweep_clock.h)"},
        {"D3", "no float/double std::accumulate without a det-order "
               "comment"},
        {"D4", "no std::cout / raw printf-family output outside "
               "bench/ and tools/ (use common/logging)"},
        {"A1", "no heap allocation (new / make_unique / make_shared) or "
               "std::function in hot-path files (src/sim, "
               "src/common/alloc, src/core/{worker,router,batching,"
               "query}, src/pipeline/stage_router)"},
        {"S1", "no const_cast / reinterpret_cast in src/"},
        {"S2", "no TODO/FIXME without an issue reference TODO(#N)"},
        {"S3", "every NOLINT-PROTEUS names known rules and carries a "
               "non-empty reason"},
        {"C1", "no raw mutex .lock()/.unlock() calls; hold locks through "
               "RAII guards (MutexLock, lock_guard, scoped_lock, "
               "unique_lock) — the only sanctioned raw-lock site is "
               "src/common/sync.h"},
        {"C2", "globally consistent lock-acquisition order: a cycle in "
               "the cross-TU held-before-acquired graph is a deadlock "
               "risk"},
        {"C3", "non-const globals/statics in thread-reachable code "
               "(src/sweep + its include closure) must be std::atomic, "
               "const, thread_local or PROTEUS_GUARDED_BY a resolvable "
               "mutex"},
    };
    return kRules;
}

bool
isKnownRule(const std::string& id)
{
    for (const RuleInfo& r : ruleRegistry()) {
        if (id == r.id)
            return true;
    }
    return false;
}

std::vector<Finding>
lintSource(const std::string& path, const std::string& text,
           const LintOptions& options)
{
    const std::string norm = detail::normalizePath(path);
    const Scan scan = detail::scanSource(text);

    SuppressionScan sups;
    for (const Comment& c : scan.comments)
        detail::parseSuppressions(norm, c, &sups);

    std::vector<Finding> findings;
    checkTokens(norm, scan, &findings);
    checkComments(norm, scan, &findings);
    for (Finding& f : sups.malformed)
        findings.push_back(std::move(f));

    detail::applySuppressions(sups.suppressions, &findings);

    if (!options.rules.empty()) {
        findings.erase(std::remove_if(findings.begin(), findings.end(),
                                      [&](const Finding& f) {
                                          return !options.enabled(f.rule);
                                      }),
                       findings.end());
    }

    detail::sortFindings(&findings);
    return findings;
}

std::vector<Finding>
lintFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        Finding f;
        f.file = path;
        f.line = 0;
        f.col = 0;
        f.rule = "IO";
        f.message = "cannot open file";
        return {f};
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return lintSource(path, ss.str());
}

Analysis
analyzeSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const LintOptions& options)
{
    Analysis out;
    out.files_scanned = sources.size();

    std::vector<FileIndex> indexes;
    indexes.reserve(sources.size());
    for (const auto& [path, text] : sources) {
        std::vector<Finding> per_file = lintSource(path, text, options);
        out.findings.insert(out.findings.end(),
                            std::make_move_iterator(per_file.begin()),
                            std::make_move_iterator(per_file.end()));
        indexes.push_back(indexSource(path, text));
    }

    std::vector<Finding> cross = lintCrossFile(indexes, options);
    out.findings.insert(out.findings.end(),
                        std::make_move_iterator(cross.begin()),
                        std::make_move_iterator(cross.end()));

    std::sort(out.findings.begin(), out.findings.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.col != b.col)
                      return a.col < b.col;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
    return out;
}

Analysis
analyzeFiles(const std::vector<std::string>& files,
             const LintOptions& options)
{
    std::vector<std::pair<std::string, std::string>> sources;
    sources.reserve(files.size());
    std::vector<Finding> io_errors;
    for (const std::string& path : files) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            Finding f;
            f.file = path;
            f.line = 0;
            f.col = 0;
            f.rule = "IO";
            f.message = "cannot open file";
            io_errors.push_back(std::move(f));
            continue;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        sources.emplace_back(path, ss.str());
    }

    Analysis out = analyzeSources(sources, options);
    out.files_scanned = files.size();
    if (!io_errors.empty()) {
        out.findings.insert(out.findings.begin(),
                            std::make_move_iterator(io_errors.begin()),
                            std::make_move_iterator(io_errors.end()));
    }
    return out;
}

std::vector<std::string>
collectFiles(const std::vector<std::string>& roots, bool skip_fixtures)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    auto wanted = [](const fs::path& p) {
        const std::string ext = p.extension().string();
        return ext == ".cc" || ext == ".cpp" || ext == ".h" ||
               ext == ".hpp";
    };
    for (const std::string& root : roots) {
        std::error_code ec;
        if (fs::is_regular_file(root, ec)) {
            files.push_back(detail::normalizePath(root));
            continue;
        }
        fs::recursive_directory_iterator it(root, ec);
        if (ec)
            continue;
        for (const auto& entry :
             fs::recursive_directory_iterator(root)) {
            if (!entry.is_regular_file() || !wanted(entry.path()))
                continue;
            std::string p =
                detail::normalizePath(entry.path().generic_string());
            if (skip_fixtures && pathHas(p, "tests/lint/fixtures"))
                continue;
            files.push_back(std::move(p));
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

std::string
toJson(const std::vector<Finding>& findings, std::size_t files_scanned)
{
    std::size_t suppressed = 0;
    for (const Finding& f : findings)
        suppressed += f.suppressed ? 1 : 0;

    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": 2,\n";
    out << "  \"files_scanned\": " << files_scanned << ",\n";
    out << "  \"counts\": {\"total\": " << findings.size()
        << ", \"suppressed\": " << suppressed
        << ", \"unsuppressed\": " << findings.size() - suppressed
        << "},\n";
    out << "  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"file\": \"" << jsonEscape(f.file) << "\", "
            << "\"line\": " << f.line << ", \"col\": " << f.col << ", "
            << "\"rule\": \"" << jsonEscape(f.rule) << "\", "
            << "\"message\": \"" << jsonEscape(f.message) << "\", "
            << "\"suppressed\": " << (f.suppressed ? "true" : "false")
            << ", \"reason\": \"" << jsonEscape(f.suppress_reason)
            << "\"}";
    }
    out << (findings.empty() ? "]" : "\n  ]") << "\n}\n";
    return out.str();
}

std::string
formatHuman(const Finding& f)
{
    std::ostringstream out;
    out << f.file << ":" << f.line << ":" << f.col << ": [" << f.rule
        << "] " << f.message;
    if (f.suppressed)
        out << " (suppressed: " << f.suppress_reason << ")";
    return out.str();
}

}  // namespace proteus::lint
