#!/usr/bin/env bash
# Tier-1 verification and static-analysis gates.
#
#   tools/check.sh          # all passes: plain, asan, lint, strict
#   tools/check.sh plain    # build + ctest
#   tools/check.sh asan     # build + ctest under ASan+UBSan
#   tools/check.sh lint     # proteus_lint + clang-tidy (if installed)
#   tools/check.sh strict   # -Wshadow -Wconversion -Wextra-semi -Werror
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"
mode="${1:-all}"

case "${mode}" in
    all|plain|asan|lint|strict) ;;
    *)
        echo "usage: tools/check.sh [all|plain|asan|lint|strict]" >&2
        exit 2
        ;;
esac

run_pass() {
    local name="$1" dir="$2"
    shift 2
    echo "=== ${name}: configure ==="
    cmake -B "${dir}" -S . "$@"
    echo "=== ${name}: build ==="
    cmake --build "${dir}" -j "${jobs}"
    echo "=== ${name}: ctest ==="
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

trace_smoke() {
    # End-to-end observability smoke: run one bench binary with span
    # tracing and timeline sampling enabled, make sure the trace
    # analyser and dashboard renderer can read the results back, and
    # that bench_diff accepts a report compared against itself.
    local dir="$1"
    echo "=== obs smoke: fig05_bursty + proteus_trace ==="
    (cd "${dir}" &&
         PROTEUS_TRACE_FILE=trace_smoke.json \
         PROTEUS_TIMELINE_FILE=timeline_smoke.json \
         ./bench/fig05_bursty > /dev/null)
    "${dir}/tools/proteus_trace" "${dir}/trace_smoke.json" > /dev/null
    echo "=== obs smoke: observability config + proteus_report ==="
    (cd "${dir}" &&
         ./tools/proteus_sim ../config/observability.json --quiet \
             > /dev/null &&
         ./tools/proteus_report observability_timeline.json \
             --trace observability_trace.json \
             --out observability_report.html > /dev/null)
    echo "=== obs smoke: bench_diff self-compare ==="
    "${dir}/tools/bench_diff" "${dir}/BENCH_fig05_bursty.json" \
        "${dir}/BENCH_fig05_bursty.json" > /dev/null
    echo "obs smoke OK (${dir}/observability_report.html)"
}

alloc_smoke() {
    # Zero-allocation smoke (ISSUE 6): the allocation bench links the
    # counting operator new and must report allocs_per_query == 0 for
    # the steady-state window; the bench_diff gate against the
    # committed baseline enforces it (LowerBetter, abs 0.01).
    local dir="$1"
    echo "=== alloc smoke: events_per_sec + bench_diff ==="
    (cd "${dir}" && ./bench/events_per_sec)
    "${dir}/tools/bench_diff" \
        bench/baselines/BENCH_events_per_sec.json \
        "${dir}/BENCH_events_per_sec.json"
}

sweep_smoke() {
    # Parallel experiment runner smoke (ISSUE 7): a 2-config x 10-seed
    # matrix on 4 worker threads must produce a merged store
    # byte-identical to the single-threaded run, and the aggregated
    # report must gate through bench_diff --stats (CI-overlap) against
    # the committed baseline.
    local dir="$1"
    echo "=== sweep smoke: proteus_sweep 4-thread vs 1-thread ==="
    "${dir}/tools/proteus_sweep" config/sweep_smoke.json \
        --threads 4 --out "${dir}/sweep_store.jsonl" \
        --report "${dir}/BENCH_sweep_smoke.json" --quiet
    "${dir}/tools/proteus_sweep" config/sweep_smoke.json \
        --threads 1 --out "${dir}/sweep_store_1t.jsonl" --quiet
    cmp "${dir}/sweep_store.jsonl" "${dir}/sweep_store_1t.jsonl"
    echo "=== sweep smoke: bench_diff --stats vs committed baseline ==="
    "${dir}/tools/bench_diff" --stats \
        bench/baselines/BENCH_sweep_smoke.json \
        "${dir}/BENCH_sweep_smoke.json"
}

pipeline_smoke() {
    # Pipeline serving smoke (ISSUE 8): fig12 must reproduce the joint
    # vs per-stage-independent separation (nonzero exit on a flipped
    # shape), and its report must gate against the committed baseline.
    local dir="$1"
    echo "=== pipeline smoke: fig12_pipelines shape check ==="
    (cd "${dir}" && ./bench/fig12_pipelines > /dev/null)
    echo "=== pipeline smoke: bench_diff vs committed baseline ==="
    "${dir}/tools/bench_diff" \
        bench/baselines/BENCH_fig12_pipelines.json \
        "${dir}/BENCH_fig12_pipelines.json"
}

lint_pass() {
    # proteus_lint has no dependencies, so compile it directly: the
    # lint gate must work on machines without GTest/benchmark.
    echo "=== lint: build proteus_lint ==="
    mkdir -p build-lint
    c++ -std=c++20 -O2 -Wall -Wextra \
        tools/lint/lint.cc tools/lint/proteus_lint.cc \
        -o build-lint/proteus_lint
    echo "=== lint: proteus_lint (src bench tools tests) ==="
    build-lint/proteus_lint
    if command -v clang-tidy > /dev/null 2>&1; then
        echo "=== lint: clang-tidy (src/) ==="
        find src -name '*.cc' -print0 |
            xargs -0 -P "${jobs}" -n 4 clang-tidy --quiet \
                -- -std=c++20 -I src
    else
        echo "=== lint: clang-tidy not installed; skipped (CI runs it) ==="
    fi
}

strict_pass() {
    # Build-only: the point is that the tree compiles warning-free at
    # the raised baseline; plain/asan passes already run the tests.
    run_strict_dir=build-strict
    echo "=== strict: configure (PROTEUS_STRICT_WARNINGS + -Werror) ==="
    cmake -B "${run_strict_dir}" -S . \
        -DPROTEUS_STRICT_WARNINGS=ON -DPROTEUS_WERROR=ON
    echo "=== strict: build ==="
    cmake --build "${run_strict_dir}" -j "${jobs}"
}

if [[ "${mode}" == "all" || "${mode}" == "lint" ]]; then
    lint_pass
fi

if [[ "${mode}" == "all" || "${mode}" == "plain" ]]; then
    run_pass "plain" build
    trace_smoke build
    alloc_smoke build
    sweep_smoke build
    pipeline_smoke build
fi

if [[ "${mode}" == "all" || "${mode}" == "strict" ]]; then
    strict_pass
fi

if [[ "${mode}" == "all" || "${mode}" == "asan" ]]; then
    run_pass "asan+ubsan" build-asan \
        -DPROTEUS_SANITIZE=address,undefined
fi

echo "=== all requested passes OK ==="
