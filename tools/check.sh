#!/usr/bin/env bash
# Tier-1 verification: build + ctest, plain and under ASan+UBSan.
#
#   tools/check.sh          # both passes
#   tools/check.sh plain    # plain pass only
#   tools/check.sh asan     # sanitized pass only
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"
mode="${1:-all}"

case "${mode}" in
    all|plain|asan) ;;
    *)
        echo "usage: tools/check.sh [all|plain|asan]" >&2
        exit 2
        ;;
esac

run_pass() {
    local name="$1" dir="$2"
    shift 2
    echo "=== ${name}: configure ==="
    cmake -B "${dir}" -S . "$@"
    echo "=== ${name}: build ==="
    cmake --build "${dir}" -j "${jobs}"
    echo "=== ${name}: ctest ==="
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

if [[ "${mode}" == "all" || "${mode}" == "plain" ]]; then
    run_pass "plain" build
fi

if [[ "${mode}" == "all" || "${mode}" == "asan" ]]; then
    run_pass "asan+ubsan" build-asan \
        -DPROTEUS_SANITIZE=address,undefined
fi

echo "=== all requested passes OK ==="
