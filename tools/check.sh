#!/usr/bin/env bash
# Tier-1 verification and static-analysis gates, one mode per pass.
# Run `tools/check.sh --help` for the mode table; `all` is the default
# pre-push bundle (lint, plain, strict, asan). The sanitizer and
# thread-safety passes (tsan, tsa) are requested explicitly — CI runs
# them on every push, locally they cost a full extra build each.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

# When ccache is installed (CI caches its dir across runs), route every
# compile through it: the lint/strict/tsan passes rebuild the whole
# tree from scratch and hit the cache on unchanged files.
launcher_args=()
cxx=(c++)
if command -v ccache > /dev/null 2>&1; then
    launcher_args=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
    cxx=(ccache c++)
fi

usage() {
    cat <<'EOF'
usage: tools/check.sh [MODE]

modes:
  all     lint + plain + strict + asan (the default)
  plain   build + ctest + the obs/alloc/sweep/pipeline smokes
  asan    build + ctest under ASan+UBSan (build-asan/)
  tsan    build + `ctest -L threads` under ThreadSanitizer, then the
          4-thread sweep smoke, in build-tsan/ (PROTEUS_SANITIZE=thread;
          includes the WILL_FAIL racy-counter fixture proving the
          sanitizer fires)
  tsa     clang -Wthread-safety (as errors) build in build-tsa/
          (PROTEUS_THREAD_SAFETY=ON; requires clang++)
  lint    proteus_lint over the tree + clang-tidy (if installed)
  strict  -Wshadow -Wconversion -Wextra-semi -Werror build (build-strict/)
  obs     observability smoke only (trace + report + bench_diff)
  sweep   parallel sweep smoke only (4-thread vs 1-thread + --stats gate)
  --help  this table

Modes that need tier-1 binaries (plain, obs, sweep) build into build/.
EOF
}

mode="${1:-all}"

case "${mode}" in
    -h|--help|help)
        usage
        exit 0
        ;;
    all|plain|asan|tsan|tsa|lint|strict|obs|sweep) ;;
    *)
        echo "tools/check.sh: unknown mode '${mode}'" >&2
        usage >&2
        exit 2
        ;;
esac

run_pass() {
    local name="$1" dir="$2"
    shift 2
    echo "=== ${name}: configure ==="
    cmake -B "${dir}" -S . "${launcher_args[@]}" "$@"
    echo "=== ${name}: build ==="
    cmake --build "${dir}" -j "${jobs}"
    echo "=== ${name}: ctest ==="
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

build_plain() {
    # obs/sweep smokes reuse the plain tree's binaries; build them
    # without rerunning ctest when the smoke is the requested mode.
    echo "=== plain: configure + build (for smokes) ==="
    cmake -B build -S . "${launcher_args[@]}"
    cmake --build build -j "${jobs}"
}

trace_smoke() {
    # End-to-end observability smoke: run one bench binary with span
    # tracing and timeline sampling enabled, make sure the trace
    # analyser and dashboard renderer can read the results back, and
    # that bench_diff accepts a report compared against itself.
    local dir="$1"
    echo "=== obs smoke: fig05_bursty + proteus_trace ==="
    (cd "${dir}" &&
         PROTEUS_TRACE_FILE=trace_smoke.json \
         PROTEUS_TIMELINE_FILE=timeline_smoke.json \
         ./bench/fig05_bursty > /dev/null)
    "${dir}/tools/proteus_trace" "${dir}/trace_smoke.json" > /dev/null
    echo "=== obs smoke: lineage round-trip (critical path + blame) ==="
    "${dir}/tools/proteus_trace" "${dir}/trace_smoke.json" \
        --critical-path --blame-json "${dir}/blame_smoke.json" > /dev/null
    # The blame JSON must carry at least one family row with time
    # attributed (a zero table means the lineage graph fell apart).
    grep -q '"by_family":{"' "${dir}/blame_smoke.json"
    grep -q '"execution_us":' "${dir}/blame_smoke.json"
    echo "=== obs smoke: observability config + proteus_report ==="
    (cd "${dir}" &&
         ./tools/proteus_sim ../config/observability.json --quiet \
             > /dev/null &&
         ./tools/proteus_report observability_timeline.json \
             --trace observability_trace.json \
             --blame blame_smoke.json \
             --out observability_report.html > /dev/null)
    echo "=== obs smoke: bench_diff self-compare ==="
    "${dir}/tools/bench_diff" "${dir}/BENCH_fig05_bursty.json" \
        "${dir}/BENCH_fig05_bursty.json" > /dev/null
    echo "obs smoke OK (${dir}/observability_report.html)"
}

alloc_smoke() {
    # Zero-allocation smoke (ISSUE 6): the allocation bench links the
    # counting operator new and must report allocs_per_query == 0 for
    # the steady-state window; the bench_diff gate against the
    # committed baseline enforces it (LowerBetter, abs 0.01).
    local dir="$1"
    echo "=== alloc smoke: events_per_sec + bench_diff ==="
    (cd "${dir}" && ./bench/events_per_sec)
    "${dir}/tools/bench_diff" \
        bench/baselines/BENCH_events_per_sec.json \
        "${dir}/BENCH_events_per_sec.json"
}

sweep_smoke() {
    # Parallel experiment runner smoke (ISSUE 7): a 2-config x 10-seed
    # matrix on 4 worker threads must produce a merged store
    # byte-identical to the single-threaded run, and the aggregated
    # report must gate through bench_diff --stats (CI-overlap) against
    # the committed baseline.
    local dir="$1"
    echo "=== sweep smoke: proteus_sweep 4-thread vs 1-thread ==="
    "${dir}/tools/proteus_sweep" config/sweep_smoke.json \
        --threads 4 --out "${dir}/sweep_store.jsonl" \
        --report "${dir}/BENCH_sweep_smoke.json" --quiet
    "${dir}/tools/proteus_sweep" config/sweep_smoke.json \
        --threads 1 --out "${dir}/sweep_store_1t.jsonl" --quiet
    cmp "${dir}/sweep_store.jsonl" "${dir}/sweep_store_1t.jsonl"
    echo "=== sweep smoke: bench_diff --stats vs committed baseline ==="
    "${dir}/tools/bench_diff" --stats \
        bench/baselines/BENCH_sweep_smoke.json \
        "${dir}/BENCH_sweep_smoke.json"
}

pipeline_smoke() {
    # Pipeline serving smoke (ISSUE 8): fig12 must reproduce the joint
    # vs per-stage-independent separation (nonzero exit on a flipped
    # shape), and its report must gate against the committed baseline.
    local dir="$1"
    echo "=== pipeline smoke: fig12_pipelines shape check ==="
    (cd "${dir}" && ./bench/fig12_pipelines > /dev/null)
    echo "=== pipeline smoke: bench_diff vs committed baseline ==="
    "${dir}/tools/bench_diff" \
        bench/baselines/BENCH_fig12_pipelines.json \
        "${dir}/BENCH_fig12_pipelines.json"
}

lint_pass() {
    # proteus_lint has no dependencies, so compile it directly: the
    # lint gate must work on machines without GTest/benchmark.
    echo "=== lint: build proteus_lint ==="
    mkdir -p build-lint
    "${cxx[@]}" -std=c++20 -O2 -Wall -Wextra \
        tools/lint/lint.cc tools/lint/index.cc \
        tools/lint/concurrency.cc tools/lint/proteus_lint.cc \
        -o build-lint/proteus_lint
    echo "=== lint: proteus_lint (src bench tools tests) ==="
    build-lint/proteus_lint
    if command -v clang-tidy > /dev/null 2>&1; then
        echo "=== lint: clang-tidy (src/) ==="
        find src -name '*.cc' -print0 |
            xargs -0 -P "${jobs}" -n 4 clang-tidy --quiet \
                -- -std=c++20 -I src
    else
        echo "=== lint: clang-tidy not installed; skipped (CI runs it) ==="
    fi
}

strict_pass() {
    # Build-only: the point is that the tree compiles warning-free at
    # the raised baseline; plain/asan passes already run the tests.
    run_strict_dir=build-strict
    echo "=== strict: configure (PROTEUS_STRICT_WARNINGS + -Werror) ==="
    cmake -B "${run_strict_dir}" -S . "${launcher_args[@]}" \
        -DPROTEUS_STRICT_WARNINGS=ON -DPROTEUS_WERROR=ON
    echo "=== strict: build ==="
    cmake --build "${run_strict_dir}" -j "${jobs}"
}

tsan_pass() {
    # ThreadSanitizer over the threaded suites (labeled "threads" in
    # tests/CMakeLists.txt: the seed-sweep harness users plus the sweep
    # runner) and the deliberately-racy WILL_FAIL fixture, then the
    # 4-thread sweep smoke under instrumentation. Full per-test ctest
    # under tsan would multiply process spawns for suites that never
    # touch a thread; -L threads spends the sanitizer budget where the
    # races could be.
    echo "=== tsan: configure (PROTEUS_SANITIZE=thread) ==="
    cmake -B build-tsan -S . "${launcher_args[@]}" \
        -DPROTEUS_SANITIZE=thread
    echo "=== tsan: build ==="
    cmake --build build-tsan -j "${jobs}"
    echo "=== tsan: ctest -L threads ==="
    ctest --test-dir build-tsan --output-on-failure -L threads
    echo "=== tsan: 4-thread sweep smoke ==="
    "build-tsan/tools/proteus_sweep" config/sweep_smoke.json \
        --threads 4 --out "build-tsan/sweep_store.jsonl" --quiet
    echo "tsan pass OK"
}

tsa_pass() {
    # Clang thread-safety analysis over the PROTEUS_GUARDED_BY /
    # PROTEUS_REQUIRES annotations (src/common/annotations.h). The
    # attributes are no-ops under gcc, so this build must use clang.
    if ! command -v clang++ > /dev/null 2>&1; then
        echo "tools/check.sh tsa: clang++ not found; the thread-safety" >&2
        echo "attributes only fire under clang (CI runs this pass)." >&2
        exit 2
    fi
    echo "=== tsa: configure (clang + PROTEUS_THREAD_SAFETY) ==="
    cmake -B build-tsa -S . "${launcher_args[@]}" \
        -DCMAKE_CXX_COMPILER=clang++ -DPROTEUS_THREAD_SAFETY=ON
    echo "=== tsa: build ==="
    cmake --build build-tsa -j "${jobs}"
    echo "tsa pass OK"
}

if [[ "${mode}" == "all" || "${mode}" == "lint" ]]; then
    lint_pass
fi

if [[ "${mode}" == "all" || "${mode}" == "plain" ]]; then
    run_pass "plain" build
    trace_smoke build
    alloc_smoke build
    sweep_smoke build
    pipeline_smoke build
fi

if [[ "${mode}" == "obs" ]]; then
    build_plain
    trace_smoke build
fi

if [[ "${mode}" == "sweep" ]]; then
    build_plain
    sweep_smoke build
fi

if [[ "${mode}" == "all" || "${mode}" == "strict" ]]; then
    strict_pass
fi

if [[ "${mode}" == "all" || "${mode}" == "asan" ]]; then
    run_pass "asan+ubsan" build-asan \
        -DPROTEUS_SANITIZE=address,undefined
fi

if [[ "${mode}" == "tsan" ]]; then
    tsan_pass
fi

if [[ "${mode}" == "tsa" ]]; then
    tsa_pass
fi

echo "=== all requested passes OK ==="
