#!/usr/bin/env bash
# Tier-1 verification: build + ctest, plain and under ASan+UBSan.
#
#   tools/check.sh          # both passes
#   tools/check.sh plain    # plain pass only
#   tools/check.sh asan     # sanitized pass only
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"
mode="${1:-all}"

case "${mode}" in
    all|plain|asan) ;;
    *)
        echo "usage: tools/check.sh [all|plain|asan]" >&2
        exit 2
        ;;
esac

run_pass() {
    local name="$1" dir="$2"
    shift 2
    echo "=== ${name}: configure ==="
    cmake -B "${dir}" -S . "$@"
    echo "=== ${name}: build ==="
    cmake --build "${dir}" -j "${jobs}"
    echo "=== ${name}: ctest ==="
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

trace_smoke() {
    # End-to-end observability smoke: run one bench binary with span
    # tracing enabled and make sure the trace analyser can read the
    # result back.
    local dir="$1"
    local trace="${dir}/trace_smoke.json"
    echo "=== trace smoke: fig05_bursty + proteus_trace ==="
    PROTEUS_TRACE_FILE="${trace}" "${dir}/bench/fig05_bursty" > /dev/null
    "${dir}/tools/proteus_trace" "${trace}" > /dev/null
    echo "trace smoke OK (${trace})"
}

if [[ "${mode}" == "all" || "${mode}" == "plain" ]]; then
    run_pass "plain" build
    trace_smoke build
fi

if [[ "${mode}" == "all" || "${mode}" == "asan" ]]; then
    run_pass "asan+ubsan" build-asan \
        -DPROTEUS_SANITIZE=address,undefined
fi

echo "=== all requested passes OK ==="
