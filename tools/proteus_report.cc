/**
 * @file
 * proteus_report: render a sampled observability timeline (the JSON
 * written by TimeSeriesRecorder via --timeline-json / the
 * PROTEUS_TIMELINE_FILE hook) — and optionally a Chrome trace — into
 * one self-contained HTML dashboard: inline SVG line charts, a
 * legend and hover read-out per chart, per-phase span breakdowns,
 * and a data-table view. No external scripts, stylesheets or fonts;
 * the file opens offline and uploads cleanly as a CI artifact.
 *
 * Usage:
 *   proteus_report <timeline.json> [--trace <trace.json>]
 *                  [--blame <blame.json>] [--out <report.html>]
 *                  [--title <title>]
 *
 * Exit codes: 0 = ok, 1 = findings or error (unreadable input,
 * unwritable output), 2 = usage.
 *
 * Channels named "<group>.<entity>.<metric>" are folded into one
 * chart per "<group>.<metric>" with one series per entity (all
 * device utilizations together, all family burn rates together);
 * two-part names become single-series charts. Charts cap at eight
 * series — the palette's fixed slot count — and note any overflow;
 * every series is always present in the chart's data table.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"

namespace {

using proteus::JsonValue;

constexpr int kChartW = 860;
constexpr int kChartH = 240;
constexpr int kPadL = 58;
constexpr int kPadR = 14;
constexpr int kPadT = 12;
constexpr int kPadB = 28;
constexpr std::size_t kMaxSeriesPerChart = 8;
constexpr std::size_t kMaxTableRows = 512;

struct Series {
    std::string label;
    std::vector<double> values;
};

struct Chart {
    std::string title;
    std::vector<Series> series;
};

struct PhaseStat {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
};

void
usage(std::ostream& os)
{
    os << "usage: proteus_report <timeline.json> [options]\n"
          "\n"
          "options:\n"
          "  --trace FILE   fold a Chrome trace's phase breakdown into "
          "the report\n"
          "  --blame FILE   render a proteus_trace --blame-json "
          "critical-path\n"
          "                 decomposition as a per-segment stacked "
          "chart\n"
          "  --out FILE     output path (default report.html)\n"
          "  --title TEXT   report title\n"
          "  --help         this text\n"
          "\n"
          "exit codes: 0 ok, 1 findings or error, 2 usage\n";
}

std::string
fmt(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
escapeHtml(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default: out += c;
        }
    }
    return out;
}

/** Round @p raw up to a 1/2/5 x 10^k "nice" tick step. */
double
niceStep(double raw)
{
    if (raw <= 0.0)
        return 1.0;
    const double mag = std::pow(10.0, std::floor(std::log10(raw)));
    const double frac = raw / mag;
    if (frac <= 1.0)
        return mag;
    if (frac <= 2.0)
        return 2.0 * mag;
    if (frac <= 5.0)
        return 5.0 * mag;
    return 10.0 * mag;
}

std::vector<double>
ticksFor(double lo, double hi, int target)
{
    std::vector<double> ticks;
    const double step = niceStep((hi - lo) / std::max(1, target));
    const double first = std::ceil(lo / step) * step;
    for (double t = first; t <= hi + step * 1e-9; t += step) {
        // Snap -0 and accumulated float error to the tick grid.
        ticks.push_back(std::round(t / step) * step);
    }
    return ticks;
}

/**
 * Fold flat channel names into charts: "a.b.c" groups under chart
 * "a.c" with series label "b"; anything else is its own
 * single-series chart.
 */
std::map<std::string, Chart>
groupChannels(const JsonValue& timeline)
{
    std::map<std::string, Chart> charts;
    if (!timeline.has("channels") || !timeline.at("channels").isArray())
        return charts;
    for (const JsonValue& ch : timeline.at("channels").asArray()) {
        const std::string name = ch.stringOr("name", "");
        if (name.empty() || !ch.has("values") ||
            !ch.at("values").isArray()) {
            continue;
        }
        std::vector<double> values;
        for (const JsonValue& v : ch.at("values").asArray())
            values.push_back(v.isNumber() ? v.asNumber() : 0.0);

        const auto dot1 = name.find('.');
        const auto dot2 = name.rfind('.');
        std::string chart_key = name;
        std::string label = name;
        if (dot1 != std::string::npos && dot2 != dot1) {
            chart_key = name.substr(0, dot1) + "." + name.substr(dot2 + 1);
            label = name.substr(dot1 + 1, dot2 - dot1 - 1);
        }
        Chart& chart = charts[chart_key];
        chart.title = chart_key;
        chart.series.push_back(Series{label, std::move(values)});
    }
    return charts;
}

/** Join @p vals as a comma-separated %.6g list (data attributes). */
std::string
joinValues(const std::vector<double>& vals)
{
    std::string out;
    for (std::size_t i = 0; i < vals.size(); ++i) {
        if (i)
            out += ',';
        out += fmt(vals[i]);
    }
    return out;
}

void
appendChart(std::string* html, const Chart& chart,
            const std::vector<double>& times)
{
    const std::size_t shown =
        std::min(chart.series.size(), kMaxSeriesPerChart);
    const double t0 = times.empty() ? 0.0 : times.front();
    const double t1 = times.empty() ? 1.0 : times.back();
    double lo = 0.0;
    double hi = 0.0;
    bool any = false;
    for (std::size_t s = 0; s < shown; ++s) {
        for (double v : chart.series[s].values) {
            if (!std::isfinite(v))
                continue;
            lo = any ? std::min(lo, v) : v;
            hi = any ? std::max(hi, v) : v;
            any = true;
        }
    }
    if (!any) {
        lo = 0.0;
        hi = 1.0;
    }
    if (lo > 0.0)
        lo = 0.0;  // anchor positive series at zero
    if (hi <= lo)
        hi = lo + 1.0;

    const double x0 = kPadL;
    const double x1 = kChartW - kPadR;
    const double y0 = kChartH - kPadB;
    const double y1 = kPadT;
    const auto xOf = [&](double t) {
        return t1 > t0 ? x0 + (t - t0) / (t1 - t0) * (x1 - x0) : x0;
    };
    const auto yOf = [&](double v) {
        return y0 + (v - lo) / (hi - lo) * (y1 - y0);
    };

    *html += "<section class=\"card\">\n";
    *html += "<h2>" + escapeHtml(chart.title) + "</h2>\n";
    *html += "<div class=\"plot\">\n";
    *html += "<svg class=\"chart\" viewBox=\"0 0 " +
             std::to_string(kChartW) + " " + std::to_string(kChartH) +
             "\" data-t0=\"" + fmt(t0) + "\" data-t1=\"" + fmt(t1) +
             "\" data-x0=\"" + fmt(x0) + "\" data-x1=\"" + fmt(x1) +
             "\" data-times=\"" + joinValues(times) +
             "\" role=\"img\" aria-label=\"" + escapeHtml(chart.title) +
             "\">\n";

    // Recessive grid + y tick labels (muted ink, never series color).
    for (double t : ticksFor(lo, hi, 4)) {
        const double y = yOf(t);
        *html += "<line class=\"grid\" x1=\"" + fmt(x0) + "\" y1=\"" +
                 fmt(y) + "\" x2=\"" + fmt(x1) + "\" y2=\"" + fmt(y) +
                 "\"/>\n";
        *html += "<text class=\"tick\" x=\"" + fmt(x0 - 6) + "\" y=\"" +
                 fmt(y + 4) + "\" text-anchor=\"end\">" + fmt(t) +
                 "</text>\n";
    }
    for (double t : ticksFor(t0, t1, 6)) {
        const double x = xOf(t);
        *html += "<text class=\"tick\" x=\"" + fmt(x) + "\" y=\"" +
                 fmt(y0 + 18) + "\" text-anchor=\"middle\">" + fmt(t) +
                 "</text>\n";
    }
    *html += "<line class=\"axis\" x1=\"" + fmt(x0) + "\" y1=\"" +
             fmt(y0) + "\" x2=\"" + fmt(x1) + "\" y2=\"" + fmt(y0) +
             "\"/>\n";
    *html += "<line class=\"axis\" x1=\"" + fmt(x0) + "\" y1=\"" +
             fmt(y1) + "\" x2=\"" + fmt(x0) + "\" y2=\"" + fmt(y0) +
             "\"/>\n";
    *html += "<text class=\"tick\" x=\"" + fmt((x0 + x1) / 2) +
             "\" y=\"" + fmt(static_cast<double>(kChartH - 2)) +
             "\" text-anchor=\"middle\">time (s)</text>\n";

    for (std::size_t s = 0; s < shown; ++s) {
        const Series& series = chart.series[s];
        std::string points;
        const std::size_t n =
            std::min(series.values.size(), times.size());
        for (std::size_t i = 0; i < n; ++i) {
            if (i)
                points += ' ';
            points += fmt(xOf(times[i])) + "," + fmt(yOf(series.values[i]));
        }
        *html += "<polyline class=\"s" + std::to_string(s + 1) +
                 "\" data-name=\"" + escapeHtml(series.label) +
                 "\" data-vals=\"" + joinValues(series.values) +
                 "\" points=\"" + points + "\"/>\n";
    }
    *html += "<line class=\"cross\" x1=\"0\" y1=\"" + fmt(y1) +
             "\" x2=\"0\" y2=\"" + fmt(y0) +
             "\" style=\"display:none\"/>\n";
    *html += "</svg>\n</div>\n";

    // Legend: identity never rides on color alone; one series needs
    // no legend box (the title names it).
    if (chart.series.size() > 1) {
        *html += "<div class=\"legend\">";
        for (std::size_t s = 0; s < shown; ++s) {
            *html += "<span class=\"key\"><span class=\"swatch s" +
                     std::to_string(s + 1) + "\"></span>" +
                     escapeHtml(chart.series[s].label) + "</span>";
        }
        *html += "</div>\n";
    }
    if (chart.series.size() > shown) {
        *html += "<p class=\"note\">+" +
                 std::to_string(chart.series.size() - shown) +
                 " series beyond the 8-color palette omitted from the "
                 "plot; all series are in the data table.</p>\n";
    }

    // Table view (the accessibility fallback), downsampled with an
    // explicit note rather than silently truncated.
    const std::size_t rows = times.size();
    const std::size_t stride =
        rows > kMaxTableRows ? (rows + kMaxTableRows - 1) / kMaxTableRows
                             : 1;
    *html += "<details><summary>Data table (" + std::to_string(rows) +
             " samples" +
             (stride > 1 ? ", every " + std::to_string(stride) + "th shown"
                         : std::string()) +
             ")</summary>\n<table><tr><th>t_s</th>";
    for (const Series& s : chart.series)
        *html += "<th>" + escapeHtml(s.label) + "</th>";
    *html += "</tr>\n";
    for (std::size_t i = 0; i < rows; i += stride) {
        *html += "<tr><td>" + fmt(times[i]) + "</td>";
        for (const Series& s : chart.series) {
            *html += "<td>" +
                     (i < s.values.size() ? fmt(s.values[i])
                                          : std::string("-")) +
                     "</td>";
        }
        *html += "</tr>\n";
    }
    *html += "</table></details>\n</section>\n";
}

/** Aggregate complete ("X") and instant ("I"/"i") trace events. */
std::map<std::string, PhaseStat>
phaseStats(const JsonValue& trace)
{
    std::map<std::string, PhaseStat> stats;
    if (!trace.has("traceEvents") || !trace.at("traceEvents").isArray())
        return stats;
    for (const JsonValue& ev : trace.at("traceEvents").asArray()) {
        const std::string ph = ev.stringOr("ph", "");
        const std::string name = ev.stringOr("name", "");
        if (name.empty())
            continue;
        if (ph == "X") {
            PhaseStat& st = stats[name];
            const double dur = ev.numberOr("dur", 0.0);
            ++st.count;
            st.total_us += dur;
            st.max_us = std::max(st.max_us, dur);
        } else if (ph == "I" || ph == "i") {
            ++stats[name].count;
        }
    }
    return stats;
}

void
appendPhaseTable(std::string* html,
                 const std::map<std::string, PhaseStat>& stats)
{
    if (stats.empty())
        return;
    std::vector<std::pair<std::string, PhaseStat>> rows(stats.begin(),
                                                        stats.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) {
                  if (a.second.total_us != b.second.total_us)
                      return a.second.total_us > b.second.total_us;
                  return a.first < b.first;
              });
    *html += "<section class=\"card\">\n<h2>trace phase breakdown</h2>\n";
    *html += "<table><tr><th>phase</th><th>count</th><th>total_ms</th>"
             "<th>mean_ms</th><th>max_ms</th></tr>\n";
    for (const auto& [name, st] : rows) {
        const double mean =
            st.count > 0
                ? st.total_us / static_cast<double>(st.count)
                : 0.0;
        *html += "<tr><td>" + escapeHtml(name) + "</td><td>" +
                 std::to_string(st.count) + "</td><td>" +
                 fmt(st.total_us / 1000.0) + "</td><td>" +
                 fmt(mean / 1000.0) + "</td><td>" +
                 fmt(st.max_us / 1000.0) + "</td></tr>\n";
    }
    *html += "</table>\n</section>\n";
}

/** Critical-path segment kinds in partition order (fixed palette). */
const char* const kSegmentKinds[] = {
    "route",       "stage_handoff",    "queue_behind_batch",
    "epoch_stall", "batch_formation",  "execution",
    "stall",
};
constexpr std::size_t kNumSegmentKinds =
    sizeof(kSegmentKinds) / sizeof(kSegmentKinds[0]);

/** Palette slot (1-based) of segment kind @p kind; 8 = unknown. */
std::size_t
segmentSlot(const std::string& kind)
{
    for (std::size_t i = 0; i < kNumSegmentKinds; ++i) {
        if (kind == kSegmentKinds[i])
            return i + 1;
    }
    return 8;
}

/**
 * Render the proteus_trace --blame-json decomposition: one stacked
 * horizontal bar per exemplar (segments laid out on a shared
 * end-to-end time axis, colored by kind) plus the per-family blame
 * table. Exact partition means the colored segments tile each bar
 * with no gaps.
 */
void
appendBlameSection(std::string* html, const JsonValue& blame)
{
    if (!blame.has("exemplars") || !blame.at("exemplars").isArray())
        return;
    const auto& exemplars = blame.at("exemplars").asArray();
    if (exemplars.empty())
        return;
    double max_e2e = 1.0;
    for (const JsonValue& e : exemplars)
        max_e2e = std::max(max_e2e, e.numberOr("e2e_us", 0.0));

    constexpr int kBarH = 18;
    constexpr int kGap = 8;
    constexpr int kLabelW = 96;
    const int height = kPadT +
                       static_cast<int>(exemplars.size()) *
                           (kBarH + kGap) +
                       kPadB;
    const double x0 = kLabelW;
    const double x1 = kChartW - kPadR;
    const auto xOf = [&](double us) {
        return x0 + us / max_e2e * (x1 - x0);
    };

    *html += "<section class=\"card\">\n";
    *html += "<h2>critical-path blame (" +
             escapeHtml(blame.stringOr("exemplar_source", "exemplars")) +
             ")</h2>\n";
    *html += "<svg class=\"blame\" viewBox=\"0 0 " +
             std::to_string(kChartW) + " " + std::to_string(height) +
             "\" role=\"img\" aria-label=\"critical-path blame\">\n";
    int y = kPadT;
    for (const JsonValue& e : exemplars) {
        const long long qid =
            static_cast<long long>(e.numberOr("qid", -1.0));
        *html += "<text class=\"tick\" x=\"" + fmt(x0 - 8) + "\" y=\"" +
                 std::to_string(y + kBarH - 5) +
                 "\" text-anchor=\"end\">q" + std::to_string(qid) +
                 "</text>\n";
        if (e.has("segments") && e.at("segments").isArray()) {
            for (const JsonValue& s : e.at("segments").asArray()) {
                const double start = s.numberOr("start_us", 0.0);
                const double dur = s.numberOr("dur_us", 0.0);
                if (dur <= 0.0)
                    continue;
                const std::string kind = s.stringOr("kind", "");
                *html += "<rect class=\"s" +
                         std::to_string(segmentSlot(kind)) + "\" x=\"" +
                         fmt(xOf(start)) + "\" y=\"" +
                         std::to_string(y) + "\" width=\"" +
                         fmt(std::max(0.5, xOf(start + dur) -
                                               xOf(start))) +
                         "\" height=\"" + std::to_string(kBarH) +
                         "\"><title>" + escapeHtml(kind) + " " +
                         fmt(dur / 1000.0) + " ms</title></rect>\n";
            }
        }
        y += kBarH + kGap;
    }
    *html += "<text class=\"tick\" x=\"" + fmt((x0 + x1) / 2) +
             "\" y=\"" + std::to_string(height - 4) +
             "\" text-anchor=\"middle\">0 .. " + fmt(max_e2e / 1000.0) +
             " ms since arrival</text>\n";
    *html += "</svg>\n";

    *html += "<div class=\"legend\">";
    for (std::size_t i = 0; i < kNumSegmentKinds; ++i) {
        *html += "<span class=\"key\"><span class=\"swatch s" +
                 std::to_string(i + 1) + "\"></span>" +
                 escapeHtml(kSegmentKinds[i]) + "</span>";
    }
    *html += "</div>\n";

    if (blame.has("by_family")) {
        const JsonValue& fams = blame.at("by_family");
        *html += "<details open><summary>blame by family "
                 "(ms)</summary>\n<table><tr><th>family</th>"
                 "<th>queries</th>";
        for (std::size_t i = 0; i < kNumSegmentKinds; ++i)
            *html += "<th>" + escapeHtml(kSegmentKinds[i]) + "</th>";
        *html += "</tr>\n";
        for (const std::string& fam : fams.keys()) {
            const JsonValue& row = fams.at(fam);
            *html += "<tr><td>" + escapeHtml(fam) + "</td><td>" +
                     std::to_string(static_cast<long long>(
                         row.numberOr("queries", 0.0))) +
                     "</td>";
            for (std::size_t i = 0; i < kNumSegmentKinds; ++i) {
                *html +=
                    "<td>" +
                    fmt(row.numberOr(std::string(kSegmentKinds[i]) +
                                         "_us",
                                     0.0) /
                        1000.0) +
                    "</td>";
            }
            *html += "</tr>\n";
        }
        *html += "</table></details>\n";
    }
    *html += "</section>\n";
}

/**
 * Style block: palette slots and chrome as CSS custom properties so
 * the dark values swap in one place; chart bodies reference roles,
 * never raw hex. Slot order is the CVD-validated order — fixed,
 * never cycled.
 */
const char* kStyle = R"css(<style>
body { margin: 0; padding: 24px; background: var(--page);
  color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
.viz-root {
  color-scheme: light;
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  --series-7: #4a3aa7; --series-8: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
    --series-7: #9085e9; --series-8: #e66767;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 14px; font-weight: 600; margin: 0 0 8px;
  color: var(--ink-2); }
.meta { color: var(--muted); margin: 0 0 20px; }
.card { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin: 0 0 16px; }
.plot { position: relative; }
svg.chart { width: 100%; height: auto; display: block; }
svg.chart polyline { fill: none; stroke-width: 2;
  stroke-linejoin: round; stroke-linecap: round; }
.s1 { stroke: var(--series-1); } .s2 { stroke: var(--series-2); }
.s3 { stroke: var(--series-3); } .s4 { stroke: var(--series-4); }
.s5 { stroke: var(--series-5); } .s6 { stroke: var(--series-6); }
.s7 { stroke: var(--series-7); } .s8 { stroke: var(--series-8); }
svg.blame { width: 100%; height: auto; display: block; }
svg.blame rect { stroke: none; }
svg.blame rect.s1 { fill: var(--series-1); }
svg.blame rect.s2 { fill: var(--series-2); }
svg.blame rect.s3 { fill: var(--series-3); }
svg.blame rect.s4 { fill: var(--series-4); }
svg.blame rect.s5 { fill: var(--series-5); }
svg.blame rect.s6 { fill: var(--series-6); }
svg.blame rect.s7 { fill: var(--series-7); }
svg.blame rect.s8 { fill: var(--series-8); }
.grid { stroke: var(--grid); stroke-width: 1; }
.axis { stroke: var(--axis); stroke-width: 1; }
.cross { stroke: var(--axis); stroke-width: 1; }
.tick { fill: var(--muted); font-size: 11px;
  font-variant-numeric: tabular-nums; }
.legend { margin-top: 8px; color: var(--ink-2); font-size: 12px; }
.key { margin-right: 14px; white-space: nowrap; }
.swatch { display: inline-block; width: 12px; height: 12px;
  border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
.swatch.s1 { background: var(--series-1); }
.swatch.s2 { background: var(--series-2); }
.swatch.s3 { background: var(--series-3); }
.swatch.s4 { background: var(--series-4); }
.swatch.s5 { background: var(--series-5); }
.swatch.s6 { background: var(--series-6); }
.swatch.s7 { background: var(--series-7); }
.swatch.s8 { background: var(--series-8); }
.note { color: var(--muted); font-size: 12px; margin: 6px 0 0; }
details { margin-top: 8px; color: var(--ink-2); font-size: 12px; }
summary { cursor: pointer; color: var(--muted); }
table { border-collapse: collapse; margin-top: 6px;
  font-variant-numeric: tabular-nums; }
th, td { border: 1px solid var(--grid); padding: 3px 8px;
  text-align: right; }
th { color: var(--ink-2); font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
.tip { position: absolute; display: none; pointer-events: none;
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 6px; padding: 6px 9px; font-size: 12px;
  color: var(--ink-2); box-shadow: 0 2px 8px rgba(0,0,0,0.15);
  font-variant-numeric: tabular-nums; }
.tip b { color: var(--ink); }
</style>
)css";

/** Hover layer: crosshair + nearest-sample read-out per chart. */
const char* kScript = R"js(<script>
(function () {
  'use strict';
  function attach(svg) {
    var times = svg.getAttribute('data-times');
    if (!times) return;
    times = times.split(',').map(Number);
    var series = [];
    var lines = svg.querySelectorAll('polyline[data-name]');
    for (var i = 0; i < lines.length; ++i) {
      series.push({ name: lines[i].getAttribute('data-name'),
                    vals: lines[i].getAttribute('data-vals')
                             .split(',').map(Number) });
    }
    var tip = document.createElement('div');
    tip.className = 'tip';
    svg.parentNode.appendChild(tip);
    var x0 = +svg.getAttribute('data-x0');
    var x1 = +svg.getAttribute('data-x1');
    var t0 = +svg.getAttribute('data-t0');
    var t1 = +svg.getAttribute('data-t1');
    var cross = svg.querySelector('.cross');
    svg.addEventListener('mousemove', function (ev) {
      if (!times.length) return;
      var r = svg.getBoundingClientRect();
      var vw = svg.viewBox.baseVal.width;
      var px = (ev.clientX - r.left) * (vw / r.width);
      var t = t1 > t0 ? t0 + (px - x0) / (x1 - x0) * (t1 - t0) : t0;
      var idx = 0, best = Infinity;
      for (var k = 0; k < times.length; ++k) {
        var d = Math.abs(times[k] - t);
        if (d < best) { best = d; idx = k; }
      }
      var cx = t1 > t0 ? x0 + (times[idx] - t0) / (t1 - t0) * (x1 - x0)
                       : x0;
      cross.setAttribute('x1', cx);
      cross.setAttribute('x2', cx);
      cross.style.display = 'block';
      var html = '<b>t = ' + times[idx] + ' s</b>';
      for (var s = 0; s < series.length; ++s) {
        html += '<br>' + series[s].name + ': ' + series[s].vals[idx];
      }
      tip.innerHTML = html;
      tip.style.display = 'block';
      tip.style.left =
          Math.min(ev.clientX - r.left + 14, r.width - 170) + 'px';
      tip.style.top = (ev.clientY - r.top + 14) + 'px';
    });
    svg.addEventListener('mouseleave', function () {
      tip.style.display = 'none';
      cross.style.display = 'none';
    });
  }
  var charts = document.querySelectorAll('svg.chart');
  for (var i = 0; i < charts.length; ++i) attach(charts[i]);
})();
</script>
)js";

}  // namespace

int
main(int argc, char** argv)
{
    std::string timeline_path;
    std::string trace_path;
    std::string blame_path;
    std::string out_path = "report.html";
    std::string title = "Proteus run report";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--blame" && i + 1 < argc) {
            blame_path = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--title" && i + 1 < argc) {
            title = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "proteus_report: unknown option " << arg << "\n";
            usage(std::cerr);
            return 2;
        } else if (timeline_path.empty()) {
            timeline_path = arg;
        } else {
            std::cerr << "proteus_report: unexpected argument " << arg
                      << "\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (timeline_path.empty()) {
        usage(std::cerr);
        return 2;
    }

    JsonValue timeline;
    std::string error;
    if (!proteus::parseJsonFile(timeline_path, &timeline, &error)) {
        std::cerr << "proteus_report: cannot parse " << timeline_path
                  << ": " << error << "\n";
        return 1;
    }
    std::vector<double> times;
    if (timeline.has("t_s") && timeline.at("t_s").isArray()) {
        for (const JsonValue& t : timeline.at("t_s").asArray())
            times.push_back(t.isNumber() ? t.asNumber() : 0.0);
    }
    const auto charts = groupChannels(timeline);

    std::map<std::string, PhaseStat> phases;
    if (!trace_path.empty()) {
        JsonValue trace;
        if (!proteus::parseJsonFile(trace_path, &trace, &error)) {
            std::cerr << "proteus_report: cannot parse " << trace_path
                      << ": " << error << "\n";
            return 1;
        }
        phases = phaseStats(trace);
    }
    JsonValue blame;
    if (!blame_path.empty() &&
        !proteus::parseJsonFile(blame_path, &blame, &error)) {
        std::cerr << "proteus_report: cannot parse " << blame_path
                  << ": " << error << "\n";
        return 1;
    }

    std::string html;
    html += "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n";
    html += "<meta charset=\"utf-8\">\n";
    html += "<meta name=\"viewport\" "
            "content=\"width=device-width, initial-scale=1\">\n";
    html += "<title>" + escapeHtml(title) + "</title>\n";
    html += kStyle;
    html += "</head>\n<body class=\"viz-root\">\n";
    html += "<h1>" + escapeHtml(title) + "</h1>\n";
    html += "<p class=\"meta\">" + std::to_string(times.size()) +
            " samples at " +
            fmt(timeline.numberOr("sample_interval_s", 0.0)) +
            " s cadence, " + std::to_string(charts.size()) +
            " charts from " + escapeHtml(timeline_path);
    const double dropped = timeline.numberOr("dropped_samples", 0.0);
    if (dropped > 0.0) {
        html += " (" + fmt(dropped) +
                " samples dropped at recorder capacity)";
    }
    html += "</p>\n";

    for (const auto& [key, chart] : charts)
        appendChart(&html, chart, times);
    appendBlameSection(&html, blame);
    appendPhaseTable(&html, phases);

    if (charts.empty())
        html += "<p class=\"meta\">timeline has no channels</p>\n";
    html += kScript;
    html += "</body>\n</html>\n";

    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out || !(out << html)) {
        std::cerr << "proteus_report: cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "proteus_report: wrote " << out_path << " ("
              << charts.size() << " charts, " << phases.size()
              << " trace phases)\n";
    return 0;
}
