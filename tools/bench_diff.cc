/**
 * @file
 * bench_diff: compare two BENCH_<name>.json reports (or directories
 * of them) and flag metric regressions beyond configurable tolerance
 * bands. This is the CI gate that makes the perf trajectory
 * accumulate: fig04/fig05 runs are diffed against committed baselines
 * and a regression fails the job.
 *
 * Usage:
 *   bench_diff <baseline.json|dir> <candidate.json|dir>
 *              [--rel <frac>] [--abs <delta>] [--stats]
 *
 * A metric regresses when it moves in its bad direction by more than
 * `abs + rel * |baseline|`. Directions are metric-specific (higher
 * throughput is better, lower violation ratio is better; neutral
 * metrics such as demand_qps use a symmetric band). Reports with
 * different schema versions or bench names refuse to compare.
 *
 * --stats switches to confidence-interval gating for multi-seed
 * aggregate reports (proteus_sweep): a metric with a sibling
 * `<metric>_ci95` entry on both sides regresses only when it moves in
 * its bad direction by more than the two half-widths combined (i.e.
 * the 95% intervals are disjoint the wrong way). Metrics without CI
 * data on both sides — single-seed groups — degenerate to the
 * tolerance band above. `<metric>_ci95` entries themselves are
 * metadata and never compared directly.
 *
 * Exit codes: 0 = within tolerance, 1 = regression (or schema/name
 * mismatch, or a baseline report missing from the candidate side),
 * 2 = usage or IO error.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"

namespace {

using proteus::JsonValue;

/** Which movement of a metric counts as getting worse. */
enum class Direction {
    HigherBetter,  ///< regression when the value drops
    LowerBetter,   ///< regression when the value rises
    Neutral,       ///< any drift beyond the band is flagged
};

Direction
directionOf(const std::string& metric)
{
    static const std::map<std::string, Direction> kDirections = {
        {"throughput_qps", Direction::HigherBetter},
        {"effective_accuracy", Direction::HigherBetter},
        {"served", Direction::HigherBetter},
        {"events_per_sec", Direction::HigherBetter},
        {"slo_violation_ratio", Direction::LowerBetter},
        {"allocs_per_query", Direction::LowerBetter},
        {"trace_overhead_frac", Direction::LowerBetter},
        {"served_late", Direction::LowerBetter},
        {"failed_jobs", Direction::LowerBetter},
        {"violations", Direction::LowerBetter},
        {"max_accuracy_drop", Direction::LowerBetter},
        {"dropped", Direction::LowerBetter},
        {"shed", Direction::LowerBetter},
        {"demand_qps", Direction::Neutral},
        {"arrivals", Direction::Neutral},
        {"reallocations", Direction::Neutral},
        {"mean_batch_size", Direction::Neutral},
    };
    auto it = kDirections.find(metric);
    return it != kDirections.end() ? it->second : Direction::Neutral;
}

struct Tolerances {
    double rel = 0.10;
    double abs = 0.01;
    bool stats = false;  ///< CI-overlap gating where _ci95 data exists
};

/** CI-metadata suffix emitted by proteus_sweep's aggregation pass. */
const std::string kCiSuffix = "_ci95";

bool
isCiKey(const std::string& metric)
{
    return metric.size() > kCiSuffix.size() &&
           metric.compare(metric.size() - kCiSuffix.size(),
                          kCiSuffix.size(), kCiSuffix) == 0;
}

void
usage(std::ostream& os)
{
    os << "usage: bench_diff <baseline.json|dir> <candidate.json|dir> "
          "[options]\n"
          "\n"
          "options:\n"
          "  --rel FRAC   relative tolerance band (default 0.10)\n"
          "  --abs DELTA  absolute tolerance band (default 0.01)\n"
          "  --stats      CI-overlap gating where _ci95 data exists\n"
          "  --help       this text\n"
          "\n"
          "exit codes: 0 ok, 1 findings or error, 2 usage\n";
}

struct Finding {
    std::string where;  ///< "bench/system/metric"
    double baseline = 0.0;
    double candidate = 0.0;
    double worse_by = 0.0;
    double allowed = 0.0;
};

std::string
fmt(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/**
 * Collect every numeric leaf under "results" as flat
 * "<system>/<metric>" (or "<key>" for scalar entries) → value.
 */
std::map<std::string, double>
flattenResults(const JsonValue& report)
{
    std::map<std::string, double> out;
    if (!report.has("results") || !report.at("results").isObject())
        return out;
    const JsonValue& results = report.at("results");
    for (const std::string& key : results.keys()) {
        const JsonValue& entry = results.at(key);
        if (entry.isNumber()) {
            out[key] = entry.asNumber();
        } else if (entry.isObject()) {
            for (const std::string& metric : entry.keys()) {
                const JsonValue& v = entry.at(metric);
                if (v.isNumber())
                    out[key + "/" + metric] = v.asNumber();
            }
        }
    }
    return out;
}

/** Leaf metric name of a flattened key ("sys/metric" or "metric"). */
std::string
metricOf(const std::string& key)
{
    auto slash = key.rfind('/');
    return slash == std::string::npos ? key : key.substr(slash + 1);
}

/**
 * Compare one baseline/candidate report pair.
 * @return 0 ok, 1 regression or mismatch, 2 parse error.
 */
int
diffReports(const std::string& base_path, const std::string& cand_path,
            const Tolerances& tol, std::vector<Finding>* findings)
{
    JsonValue base, cand;
    std::string error;
    if (!proteus::parseJsonFile(base_path, &base, &error)) {
        std::cerr << "bench_diff: cannot parse " << base_path << ": "
                  << error << "\n";
        return 2;
    }
    if (!proteus::parseJsonFile(cand_path, &cand, &error)) {
        std::cerr << "bench_diff: cannot parse " << cand_path << ": "
                  << error << "\n";
        return 2;
    }

    const double base_schema = base.numberOr("schema", 1.0);
    const double cand_schema = cand.numberOr("schema", 1.0);
    if (base_schema != cand_schema) {
        std::cerr << "bench_diff: schema mismatch: " << base_path
                  << " has schema " << fmt(base_schema) << ", "
                  << cand_path << " has schema " << fmt(cand_schema)
                  << " — refusing to compare\n";
        return 1;
    }
    const std::string base_bench = base.stringOr("bench", "");
    const std::string cand_bench = cand.stringOr("bench", "");
    if (base_bench != cand_bench) {
        std::cerr << "bench_diff: bench name mismatch: \"" << base_bench
                  << "\" vs \"" << cand_bench
                  << "\" — refusing to compare\n";
        return 1;
    }

    const auto base_vals = flattenResults(base);
    const auto cand_vals = flattenResults(cand);
    bool regressed = false;
    for (const auto& [key, bval] : base_vals) {
        if (isCiKey(metricOf(key)))
            continue;  // CI half-widths are metadata, not metrics
        auto it = cand_vals.find(key);
        if (it == cand_vals.end()) {
            std::cerr << "bench_diff: " << base_bench << "/" << key
                      << " missing from candidate\n";
            regressed = true;
            continue;
        }
        const double cval = it->second;
        double allowed = tol.abs + tol.rel * std::abs(bval);
        if (tol.stats) {
            // CI-overlap gating: only when both sides carry a CI for
            // this metric; single-seed groups keep the tolerance band.
            auto bci = base_vals.find(key + kCiSuffix);
            auto cci = cand_vals.find(key + kCiSuffix);
            if (bci != base_vals.end() && cci != cand_vals.end())
                allowed = bci->second + cci->second;
        }
        double worse = 0.0;
        switch (directionOf(metricOf(key))) {
          case Direction::HigherBetter:
            worse = bval - cval;
            break;
          case Direction::LowerBetter:
            worse = cval - bval;
            break;
          case Direction::Neutral:
            worse = std::abs(cval - bval);
            break;
        }
        if (worse > allowed) {
            regressed = true;
            findings->push_back(Finding{base_bench + "/" + key, bval,
                                        cval, worse, allowed});
        }
    }
    return regressed ? 1 : 0;
}

/** BENCH_*.json files directly inside @p dir, sorted by name. */
std::vector<std::string>
benchFilesIn(const std::string& dir)
{
    std::vector<std::string> names;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 &&
            name.size() > 5 &&
            name.substr(name.size() - 5) == ".json") {
            names.push_back(name);
        }
    }
    std::sort(names.begin(), names.end());
    return names;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> paths;
    Tolerances tol;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--rel" && i + 1 < argc) {
            tol.rel = std::atof(argv[++i]);
        } else if (arg == "--abs" && i + 1 < argc) {
            tol.abs = std::atof(argv[++i]);
        } else if (arg == "--stats") {
            tol.stats = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "bench_diff: unknown option " << arg << "\n";
            usage(std::cerr);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2) {
        usage(std::cerr);
        return 2;
    }

    std::vector<std::pair<std::string, std::string>> pairs;
    std::error_code ec;
    const bool base_is_dir =
        std::filesystem::is_directory(paths[0], ec);
    const bool cand_is_dir =
        std::filesystem::is_directory(paths[1], ec);
    if (base_is_dir != cand_is_dir) {
        std::cerr << "bench_diff: both arguments must be files or both "
                     "directories\n";
        return 2;
    }
    bool missing = false;
    if (base_is_dir) {
        const auto base_names = benchFilesIn(paths[0]);
        const auto cand_names = benchFilesIn(paths[1]);
        if (base_names.empty()) {
            std::cerr << "bench_diff: no BENCH_*.json in " << paths[0]
                      << "\n";
            return 2;
        }
        // Compare the two sorted listings both ways so a rename shows
        // up as one missing + one extra file, not a silent skip.
        for (const std::string& name : base_names) {
            if (!std::filesystem::exists(paths[1] + "/" + name, ec)) {
                std::cerr
                    << "bench_diff: baseline " << name
                    << " has no candidate in " << paths[1]
                    << " — run the corresponding bench binary to "
                       "produce it, or delete " << paths[0] << "/"
                    << name << " if the bench was retired\n";
                missing = true;
                continue;
            }
            pairs.emplace_back(paths[0] + "/" + name,
                               paths[1] + "/" + name);
        }
        for (const std::string& name : cand_names) {
            if (!std::filesystem::exists(paths[0] + "/" + name, ec)) {
                std::cerr
                    << "bench_diff: candidate " << name
                    << " has no committed baseline — add one with: "
                       "cp " << paths[1] << "/" << name << " "
                    << paths[0] << "/\n";
                missing = true;
            }
        }
    } else {
        pairs.emplace_back(paths[0], paths[1]);
    }

    std::vector<Finding> findings;
    int worst = missing ? 1 : 0;
    int compared = 0;
    for (const auto& [base, cand] : pairs) {
        const int rc = diffReports(base, cand, tol, &findings);
        worst = std::max(worst, rc);
        ++compared;
    }

    if (!findings.empty()) {
        std::cout << "metric                                        "
                     "baseline   candidate   worse_by   allowed\n";
        for (const Finding& f : findings) {
            std::printf("%-45s %9s %11s %10s %9s\n", f.where.c_str(),
                        fmt(f.baseline).c_str(),
                        fmt(f.candidate).c_str(), fmt(f.worse_by).c_str(),
                        fmt(f.allowed).c_str());
        }
    }
    if (worst == 0) {
        std::cout << "bench_diff: " << compared << " report(s) within "
                  << (tol.stats ? "CI bounds/" : "") << "tolerance "
                  << "(rel=" << fmt(tol.rel) << ", abs=" << fmt(tol.abs)
                  << ")\n";
    } else if (worst == 1) {
        std::cout << "bench_diff: " << findings.size()
                  << " regression(s) detected";
        if (missing)
            std::cout << " (plus missing/extra report files, see "
                         "above)";
        std::cout << "\n";
    }
    return worst;
}
