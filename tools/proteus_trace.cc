/**
 * @file
 * proteus_trace: offline analyser for the Chrome trace-event files
 * written by the observability subsystem (proteus_sim --trace, or any
 * bench binary run with PROTEUS_TRACE_FILE set).
 *
 * Prints a per-stage latency breakdown (route wait, queue wait,
 * execution, end-to-end) with p50/p95/p99 per model variant, the
 * controller/solver decision summary, and the top-N slowest queries.
 *
 * Usage:
 *   proteus_trace <trace.json> [--top N]
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/stats.h"
#include "common/table.h"

namespace {

using proteus::JsonValue;

/** One parsed trace event (times in microseconds). */
struct Event {
    std::string name;
    double ts = 0.0;
    double dur = 0.0;
    std::map<std::string, double> args;
};

double
argOr(const Event& e, const std::string& key, double fallback)
{
    auto it = e.args.find(key);
    return it == e.args.end() ? fallback : it->second;
}

std::string
ms(double us)
{
    return proteus::fmtDouble(us / 1000.0, 2);
}

/** Name tables parsed from otherData (empty on older traces). */
struct NameTables {
    std::vector<std::string> families;
    std::vector<std::string> variants;
    struct Pipeline {
        std::string name;
        std::vector<std::string> stages;
    };
    std::vector<Pipeline> pipelines;

    /** @return the name for @p id, or the bare id when unnamed. */
    static std::string
    label(const std::vector<std::string>& names, long long id)
    {
        if (id >= 0 && static_cast<std::size_t>(id) < names.size())
            return names[static_cast<std::size_t>(id)];
        return std::to_string(id);
    }
};

NameTables
parseNameTables(const JsonValue& doc)
{
    NameTables names;
    if (!doc.has("otherData"))
        return names;
    const JsonValue& other = doc.at("otherData");
    if (other.has("families")) {
        for (const JsonValue& f : other.at("families").asArray())
            names.families.push_back(f.asString());
    }
    if (other.has("variants")) {
        for (const JsonValue& v : other.at("variants").asArray())
            names.variants.push_back(v.asString());
    }
    if (other.has("pipelines")) {
        for (const JsonValue& p : other.at("pipelines").asArray()) {
            NameTables::Pipeline pipe;
            pipe.name = p.stringOr("name", "");
            if (p.has("stages")) {
                for (const JsonValue& s : p.at("stages").asArray())
                    pipe.stages.push_back(s.asString());
            }
            names.pipelines.push_back(std::move(pipe));
        }
    }
    return names;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace proteus;
    if (argc < 2) {
        std::cerr << "usage: proteus_trace <trace.json> [--top N]\n";
        return 2;
    }
    const std::string path = argv[1];
    int top_n = 10;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--top" && i + 1 < argc) {
            top_n = std::max(1, std::atoi(argv[++i]));
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }

    JsonValue doc;
    std::string error;
    if (!parseJsonFile(path, &doc, &error)) {
        std::cerr << "cannot parse " << path << ": " << error << "\n";
        return 1;
    }
    if (!doc.isObject() || !doc.has("traceEvents")) {
        std::cerr << path << " is not a Chrome trace-event file\n";
        return 1;
    }

    std::vector<Event> events;
    for (const JsonValue& je : doc.at("traceEvents").asArray()) {
        Event e;
        e.name = je.stringOr("name", "");
        e.ts = je.numberOr("ts", 0.0);
        e.dur = je.numberOr("dur", 0.0);
        if (je.has("args")) {
            const JsonValue& args = je.at("args");
            for (const std::string& key : args.keys())
                e.args[key] = args.at(key).asNumber();
        }
        events.push_back(std::move(e));
    }

    std::cout << "== " << path << ": " << events.size()
              << " spans";
    if (doc.has("otherData")) {
        const JsonValue& other = doc.at("otherData");
        std::cout << " (recorded "
                  << static_cast<long long>(
                         other.numberOr("spans_recorded", 0.0))
                  << ", dropped "
                  << static_cast<long long>(
                         other.numberOr("spans_dropped", 0.0))
                  << ")";
    }
    std::cout << " ==\n\n";

    const NameTables names = parseNameTables(doc);

    // Per-variant stage breakdown. Stage durations are grouped by the
    // variant that served the query: queue/exec spans carry it
    // directly; route waits and end-to-end times come from the query
    // span (variant -1 = dropped before execution).
    struct StageDurations {
        std::vector<double> route, queue, exec, total;
    };
    std::map<long long, StageDurations> by_variant;
    std::map<long long, long long> route_variant_of_query;
    std::vector<const Event*> queries;
    std::vector<double> solve_durs, solve_nodes;

    for (const Event& e : events) {
        if (e.name == "queue" || e.name == "exec") {
            long long v =
                static_cast<long long>(argOr(e, "variant", -1));
            auto& s = by_variant[v];
            (e.name == "queue" ? s.queue : s.exec).push_back(e.dur);
            route_variant_of_query[static_cast<long long>(
                argOr(e, "qid", -1))] = v;
        } else if (e.name == "solve") {
            solve_durs.push_back(e.dur);
            solve_nodes.push_back(argOr(e, "nodes", 0.0));
        } else if (e.name == "query") {
            queries.push_back(&e);
        }
    }
    for (const Event& e : events) {
        if (e.name == "query") {
            long long v =
                static_cast<long long>(argOr(e, "variant", -1));
            by_variant[v].total.push_back(e.dur);
        } else if (e.name == "route") {
            long long qid =
                static_cast<long long>(argOr(e, "qid", -1));
            auto it = route_variant_of_query.find(qid);
            long long v = it == route_variant_of_query.end()
                              ? -1
                              : it->second;
            by_variant[v].route.push_back(e.dur);
        }
    }

    const std::vector<double> kPs{50.0, 95.0, 99.0};
    TextTable stages;
    stages.setHeader({"variant", "stage", "count", "p50_ms", "p95_ms",
                      "p99_ms"});
    for (auto& [variant, s] : by_variant) {
        struct Row {
            const char* stage;
            std::vector<double>* vals;
        };
        for (const Row& row :
             {Row{"route", &s.route}, Row{"queue", &s.queue},
              Row{"exec", &s.exec}, Row{"total", &s.total}}) {
            if (row.vals->empty())
                continue;
            std::vector<double> p = percentiles(*row.vals, kPs);
            stages.addRow({variant < 0
                               ? std::string("(dropped)")
                               : NameTables::label(names.variants,
                                                   variant),
                           row.stage,
                           std::to_string(row.vals->size()), ms(p[0]),
                           ms(p[1]), ms(p[2])});
        }
    }
    std::cout << "-- per-variant stage latency --\n";
    stages.print(std::cout);

    // Per-pipeline e2e breakdown: exec time per stage, the queue gap
    // between consecutive stages (next stage's exec start minus the
    // previous stage's exec end — routing plus queueing of the hop),
    // and the end-to-end latency from the query span. Only present
    // when the trace carries pipeline/stage args.
    struct PipelineDurations {
        std::map<long long, std::vector<double>> stage_exec;
        std::map<long long, std::vector<double>> stage_gap;
        std::vector<double> e2e;
    };
    std::map<long long, PipelineDurations> by_pipeline;
    // qid -> pipeline, from the (terminal) query spans.
    std::map<long long, long long> pipeline_of_query;
    // qid -> per-stage exec (ts, dur), for the gap computation.
    std::map<long long,
             std::map<long long, std::pair<double, double>>>
        exec_of_query;
    for (const Event& e : events) {
        if (e.name == "exec" && e.args.count("stage")) {
            long long stage =
                static_cast<long long>(e.args.at("stage"));
            long long qid =
                static_cast<long long>(argOr(e, "qid", -1));
            exec_of_query[qid][stage] = {e.ts, e.dur};
        }
        auto pit = e.args.find("pipeline");
        if (pit == e.args.end())
            continue;
        long long p = static_cast<long long>(pit->second);
        if (e.name == "query") {
            by_pipeline[p].e2e.push_back(e.dur);
            pipeline_of_query[static_cast<long long>(
                argOr(e, "qid", -1))] = p;
        }
    }
    for (const auto& [qid, stages_of] : exec_of_query) {
        auto pit = pipeline_of_query.find(qid);
        if (pit == pipeline_of_query.end())
            continue;  // dropped before the terminal query span
        PipelineDurations& pd = by_pipeline[pit->second];
        const std::pair<double, double>* prev = nullptr;
        long long prev_stage = -1;
        for (const auto& [stage, td] : stages_of) {
            pd.stage_exec[stage].push_back(td.second);
            if (prev && stage == prev_stage + 1) {
                pd.stage_gap[stage].push_back(
                    td.first - (prev->first + prev->second));
            }
            prev = &td;
            prev_stage = stage;
        }
    }
    for (const auto& [pipe, pd] : by_pipeline) {
        std::string pname =
            pipe >= 0 &&
                    static_cast<std::size_t>(pipe) <
                        names.pipelines.size()
                ? names.pipelines[static_cast<std::size_t>(pipe)].name
                : std::to_string(pipe);
        const std::vector<std::string>* stage_names =
            pipe >= 0 && static_cast<std::size_t>(pipe) <
                             names.pipelines.size()
                ? &names.pipelines[static_cast<std::size_t>(pipe)]
                       .stages
                : nullptr;
        auto stageLabel = [&](long long s) {
            if (stage_names &&
                static_cast<std::size_t>(s) < stage_names->size())
                return (*stage_names)[static_cast<std::size_t>(s)];
            return "stage " + std::to_string(s);
        };
        TextTable bt;
        bt.setHeader({"segment", "count", "p50_ms", "p95_ms",
                      "p99_ms"});
        for (const auto& [stage, durs] : pd.stage_exec) {
            std::vector<double> p = percentiles(durs, kPs);
            bt.addRow({stageLabel(stage) + " exec",
                       std::to_string(durs.size()), ms(p[0]),
                       ms(p[1]), ms(p[2])});
            auto git = pd.stage_gap.find(stage);
            if (git != pd.stage_gap.end()) {
                std::vector<double> g =
                    percentiles(git->second, kPs);
                bt.addRow({stageLabel(stage - 1) + " -> " +
                               stageLabel(stage) + " gap",
                           std::to_string(git->second.size()),
                           ms(g[0]), ms(g[1]), ms(g[2])});
            }
        }
        if (!pd.e2e.empty()) {
            std::vector<double> p = percentiles(pd.e2e, kPs);
            bt.addRow({"e2e", std::to_string(pd.e2e.size()), ms(p[0]),
                       ms(p[1]), ms(p[2])});
        }
        std::cout << "\n-- pipeline " << pname
                  << " e2e breakdown --\n";
        bt.print(std::cout);
    }

    if (!solve_durs.empty()) {
        std::vector<double> dp = percentiles(solve_durs, kPs);
        std::vector<double> np = percentiles(solve_nodes, kPs);
        std::cout << "\n-- controller decisions --\n"
                  << "solves: " << solve_durs.size()
                  << "  solve->apply p50/p95/p99 ms: " << ms(dp[0])
                  << "/" << ms(dp[1]) << "/" << ms(dp[2])
                  << "  B&B nodes p50/p99: " << fmtDouble(np[0], 0)
                  << "/" << fmtDouble(np[2], 0) << "\n";
    }

    std::sort(queries.begin(), queries.end(),
              [](const Event* a, const Event* b) {
                  if (a->dur != b->dur)
                      return a->dur > b->dur;
                  // Exact integer qid tie-break: comparing the raw
                  // double arg would go inexact past 2^53 and make
                  // the top-N order depend on span-buffer layout.
                  return static_cast<long long>(argOr(*a, "qid", -1)) <
                         static_cast<long long>(argOr(*b, "qid", -1));
              });
    TextTable slow;
    slow.setHeader({"qid", "family", "variant", "device", "status",
                    "latency_ms"});
    const char* kStatus[] = {"pending", "served", "late", "dropped"};
    int shown = 0;
    for (const Event* e : queries) {
        if (shown++ >= top_n)
            break;
        int status = static_cast<int>(argOr(*e, "status", 0));
        const long long fam =
            static_cast<long long>(argOr(*e, "family", -1));
        const long long var =
            static_cast<long long>(argOr(*e, "variant", -1));
        slow.addRow({std::to_string(
                         static_cast<long long>(argOr(*e, "qid", -1))),
                     NameTables::label(names.families, fam),
                     var < 0 ? std::string("-")
                             : NameTables::label(names.variants, var),
                     std::to_string(static_cast<long long>(
                         argOr(*e, "device", -1))),
                     status >= 0 && status <= 3 ? kStatus[status]
                                                : "?",
                     ms(e->dur)});
    }
    std::cout << "\n-- top " << std::min<std::size_t>(
                                    static_cast<std::size_t>(top_n),
                                    queries.size())
              << " slowest queries --\n";
    slow.print(std::cout);
    return 0;
}
