/**
 * @file
 * proteus_trace: offline analyser for the Chrome trace-event files
 * written by the observability subsystem (proteus_sim --trace, or any
 * bench binary run with PROTEUS_TRACE_FILE set).
 *
 * Prints a per-stage latency breakdown (route wait, queue wait,
 * execution, end-to-end) with p50/p95/p99 per model variant, the
 * controller/solver decision summary, and the top-N slowest queries.
 * With --critical-path, reconstructs the causal lineage graph from
 * the trace and decomposes each tail exemplar's end-to-end latency
 * into the exact segment partition (obs/lineage.h), aggregating
 * per-family/per-variant blame tables (JSON via --blame-json).
 *
 * Exit codes: 0 = ok, 1 = findings or error (unreadable trace,
 * inexact partition), 2 = usage.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/stats.h"
#include "common/table.h"
#include "obs/lineage.h"
#include "obs/trace.h"

namespace {

using proteus::JsonValue;

void
usage(std::ostream& os)
{
    os << "usage: proteus_trace <trace.json> [options]\n"
          "\n"
          "options:\n"
          "  --top N              rows in the slowest-queries table "
          "(default 10)\n"
          "  --critical-path [Q]  decompose query Q's latency into the "
          "exact segment\n"
          "                       partition; without Q, analyze the "
          "trace's tail\n"
          "                       exemplars (fallback: top-N slowest)\n"
          "  --blame-json PATH    write the per-family/per-variant "
          "blame tables as\n"
          "                       JSON (implies --critical-path)\n"
          "  --help               this text\n"
          "\n"
          "exit codes: 0 ok, 1 findings or error, 2 usage\n";
}

/** One parsed trace event (times in microseconds). */
struct Event {
    std::string name;
    double ts = 0.0;
    double dur = 0.0;
    std::map<std::string, double> args;
};

double
argOr(const Event& e, const std::string& key, double fallback)
{
    auto it = e.args.find(key);
    return it == e.args.end() ? fallback : it->second;
}

std::string
ms(double us)
{
    return proteus::fmtDouble(us / 1000.0, 2);
}

/** Name tables parsed from otherData (empty on older traces). */
struct NameTables {
    std::vector<std::string> families;
    std::vector<std::string> variants;
    struct Pipeline {
        std::string name;
        std::vector<std::string> stages;
    };
    std::vector<Pipeline> pipelines;

    /** @return the name for @p id, or the bare id when unnamed. */
    static std::string
    label(const std::vector<std::string>& names, long long id)
    {
        if (id >= 0 && static_cast<std::size_t>(id) < names.size())
            return names[static_cast<std::size_t>(id)];
        return std::to_string(id);
    }
};

NameTables
parseNameTables(const JsonValue& doc)
{
    NameTables names;
    if (!doc.has("otherData"))
        return names;
    const JsonValue& other = doc.at("otherData");
    if (other.has("families")) {
        for (const JsonValue& f : other.at("families").asArray())
            names.families.push_back(f.asString());
    }
    if (other.has("variants")) {
        for (const JsonValue& v : other.at("variants").asArray())
            names.variants.push_back(v.asString());
    }
    if (other.has("pipelines")) {
        for (const JsonValue& p : other.at("pipelines").asArray()) {
            NameTables::Pipeline pipe;
            pipe.name = p.stringOr("name", "");
            if (p.has("stages")) {
                for (const JsonValue& s : p.at("stages").asArray())
                    pipe.stages.push_back(s.asString());
            }
            names.pipelines.push_back(std::move(pipe));
        }
    }
    return names;
}

/**
 * Reverse the exporter's per-kind args mapping: rebuild the
 * SpanRecords the tracer held so the lineage analyzer runs on trace
 * files exactly as it runs on a live tracer.
 */
std::vector<proteus::obs::SpanRecord>
reconstructSpans(const std::vector<Event>& events)
{
    using proteus::kInvalidId;
    using proteus::obs::SpanKind;
    using proteus::obs::SpanRecord;
    static const std::map<std::string, SpanKind> kKinds = {
        {"query", SpanKind::Query},   {"route", SpanKind::Route},
        {"queue", SpanKind::Queue},   {"exec", SpanKind::Exec},
        {"batch", SpanKind::Batch},   {"load", SpanKind::Load},
        {"solve", SpanKind::Solve},   {"apply", SpanKind::Apply},
        {"alarm", SpanKind::Alarm},   {"slo_alarm", SpanKind::SloAlarm},
    };
    const auto i64 = [](const Event& e, const char* key,
                        std::int64_t fallback) {
        auto it = e.args.find(key);
        return it == e.args.end()
                   ? fallback
                   : static_cast<std::int64_t>(std::llround(it->second));
    };
    const auto variantOf = [&](const Event& e) {
        const std::int64_t v = i64(e, "variant", -1);
        return v < 0 ? kInvalidId : static_cast<std::uint32_t>(v);
    };
    std::vector<SpanRecord> spans;
    spans.reserve(events.size());
    for (const Event& e : events) {
        const auto kit = kKinds.find(e.name);
        if (kit == kKinds.end())
            continue;
        SpanRecord s;
        s.kind = kit->second;
        s.start = static_cast<proteus::Time>(std::llround(e.ts));
        s.end = s.start + static_cast<proteus::Time>(std::llround(e.dur));
        s.span_id = static_cast<std::uint64_t>(i64(e, "sid", 0));
        const std::int64_t pid = i64(e, "pid", 0);
        if (pid != 0) {
            s.parent_id = static_cast<std::uint64_t>(pid);
            s.parent_kind = static_cast<SpanKind>(i64(e, "pk", 0));
        }
        switch (s.kind) {
          case SpanKind::Query:
            s.id = static_cast<std::uint64_t>(i64(e, "qid", 0));
            s.a = static_cast<std::uint32_t>(i64(e, "family", 0));
            s.b = variantOf(e);
            s.v0 = i64(e, "status", 0);
            s.v1 = i64(e, "device", -1);
            s.v2 = e.args.count("pipeline") ? i64(e, "pipeline", 0) + 1
                                            : 0;
            break;
          case SpanKind::Route:
            s.id = static_cast<std::uint64_t>(i64(e, "qid", 0));
            s.a = static_cast<std::uint32_t>(i64(e, "family", 0));
            s.v0 = e.args.count("stage") ? i64(e, "stage", 0) + 1 : 0;
            break;
          case SpanKind::Queue:
          case SpanKind::Exec:
            s.id = static_cast<std::uint64_t>(i64(e, "qid", 0));
            s.a = static_cast<std::uint32_t>(i64(e, "family", 0));
            s.b = variantOf(e);
            s.v0 = i64(e, "device", 0);
            s.v1 = e.args.count("stage") ? i64(e, "stage", 0) + 1 : 0;
            break;
          case SpanKind::Batch:
            s.id = static_cast<std::uint64_t>(i64(e, "batch", 0));
            s.a = static_cast<std::uint32_t>(i64(e, "device", 0));
            s.b = static_cast<std::uint32_t>(i64(e, "variant", 0));
            s.v0 = i64(e, "size", 0);
            break;
          case SpanKind::Load:
            s.a = static_cast<std::uint32_t>(i64(e, "device", 0));
            s.b = static_cast<std::uint32_t>(i64(e, "variant", 0));
            break;
          case SpanKind::Solve:
            s.id = static_cast<std::uint64_t>(i64(e, "decision", 0));
            s.v0 = i64(e, "nodes", 0);
            s.v1 = i64(e, "simplex_iters", 0);
            s.v2 = i64(e, "gap_ppm", 0);
            break;
          case SpanKind::Apply:
            s.id = static_cast<std::uint64_t>(i64(e, "decision", 0));
            s.v0 = i64(e, "plans", 0);
            break;
          case SpanKind::Alarm:
            s.a = static_cast<std::uint32_t>(i64(e, "family", 0));
            break;
          case SpanKind::SloAlarm:
            s.a = static_cast<std::uint32_t>(i64(e, "family", 0));
            s.v0 = i64(e, "raised", 0);
            s.v1 = i64(e, "burn_milli", 0);
            s.v2 = i64(e, "window_completed", 0);
            break;
        }
        spans.push_back(s);
    }
    return spans;
}

/** Parse the top-level "links" array (empty on pre-lineage traces). */
std::vector<proteus::obs::LinkRecord>
parseLinks(const JsonValue& doc)
{
    using proteus::obs::LinkKind;
    using proteus::obs::LinkRecord;
    std::vector<LinkRecord> links;
    if (!doc.has("links"))
        return links;
    static const std::map<std::string, LinkKind> kKinds = {
        {"query_in_batch", LinkKind::QueryInBatch},
        {"batch_on_device", LinkKind::BatchOnDevice},
        {"batch_on_epoch", LinkKind::BatchOnEpoch},
        {"stage_handoff", LinkKind::StageHandoff},
        {"queued_behind", LinkKind::QueuedBehind},
    };
    for (const JsonValue& jl : doc.at("links").asArray()) {
        const auto kit = kKinds.find(jl.stringOr("k", ""));
        if (kit == kKinds.end())
            continue;
        LinkRecord l;
        l.kind = kit->second;
        l.at = static_cast<proteus::Time>(
            std::llround(jl.numberOr("ts", 0.0)));
        l.from = static_cast<std::uint64_t>(
            std::llround(jl.numberOr("from", 0.0)));
        l.to = static_cast<std::uint64_t>(
            std::llround(jl.numberOr("to", 0.0)));
        l.aux = static_cast<std::int64_t>(
            std::llround(jl.numberOr("aux", 0.0)));
        links.push_back(l);
    }
    return links;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace proteus;
    std::string path;
    int top_n = 10;
    bool critical_path = false;
    long long critical_qid = -1;
    std::string blame_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--top" && i + 1 < argc) {
            top_n = std::max(1, std::atoi(argv[++i]));
        } else if (arg == "--critical-path") {
            critical_path = true;
            // Optional query id operand (digits only).
            if (i + 1 < argc) {
                const std::string next = argv[i + 1];
                if (!next.empty() &&
                    next.find_first_not_of("0123456789") ==
                        std::string::npos) {
                    critical_qid = std::atoll(argv[++i]);
                }
            }
        } else if (arg == "--blame-json" && i + 1 < argc) {
            critical_path = true;
            blame_path = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "proteus_trace: unknown option " << arg
                      << "\n";
            usage(std::cerr);
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            std::cerr << "proteus_trace: unexpected argument " << arg
                      << "\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (path.empty()) {
        usage(std::cerr);
        return 2;
    }

    JsonValue doc;
    std::string error;
    if (!parseJsonFile(path, &doc, &error)) {
        std::cerr << "cannot parse " << path << ": " << error << "\n";
        return 1;
    }
    if (!doc.isObject() || !doc.has("traceEvents")) {
        std::cerr << path << " is not a Chrome trace-event file\n";
        return 1;
    }

    std::vector<Event> events;
    for (const JsonValue& je : doc.at("traceEvents").asArray()) {
        Event e;
        e.name = je.stringOr("name", "");
        e.ts = je.numberOr("ts", 0.0);
        e.dur = je.numberOr("dur", 0.0);
        if (je.has("args")) {
            const JsonValue& args = je.at("args");
            for (const std::string& key : args.keys())
                e.args[key] = args.at(key).asNumber();
        }
        events.push_back(std::move(e));
    }

    std::cout << "== " << path << ": " << events.size()
              << " spans";
    if (doc.has("otherData")) {
        const JsonValue& other = doc.at("otherData");
        std::cout << " (recorded "
                  << static_cast<long long>(
                         other.numberOr("spans_recorded", 0.0))
                  << ", dropped "
                  << static_cast<long long>(
                         other.numberOr("spans_dropped", 0.0))
                  << ")";
    }
    std::cout << " ==\n\n";

    const NameTables names = parseNameTables(doc);

    // Per-variant stage breakdown. Stage durations are grouped by the
    // variant that served the query: queue/exec spans carry it
    // directly; route waits and end-to-end times come from the query
    // span (variant -1 = dropped before execution).
    struct StageDurations {
        std::vector<double> route, queue, exec, total;
    };
    std::map<long long, StageDurations> by_variant;
    std::map<long long, long long> route_variant_of_query;
    std::vector<const Event*> queries;
    std::vector<double> solve_durs, solve_nodes;

    for (const Event& e : events) {
        if (e.name == "queue" || e.name == "exec") {
            long long v =
                static_cast<long long>(argOr(e, "variant", -1));
            auto& s = by_variant[v];
            (e.name == "queue" ? s.queue : s.exec).push_back(e.dur);
            route_variant_of_query[static_cast<long long>(
                argOr(e, "qid", -1))] = v;
        } else if (e.name == "solve") {
            solve_durs.push_back(e.dur);
            solve_nodes.push_back(argOr(e, "nodes", 0.0));
        } else if (e.name == "query") {
            queries.push_back(&e);
        }
    }
    for (const Event& e : events) {
        if (e.name == "query") {
            long long v =
                static_cast<long long>(argOr(e, "variant", -1));
            by_variant[v].total.push_back(e.dur);
        } else if (e.name == "route") {
            long long qid =
                static_cast<long long>(argOr(e, "qid", -1));
            auto it = route_variant_of_query.find(qid);
            long long v = it == route_variant_of_query.end()
                              ? -1
                              : it->second;
            by_variant[v].route.push_back(e.dur);
        }
    }

    const std::vector<double> kPs{50.0, 95.0, 99.0};
    TextTable stages;
    stages.setHeader({"variant", "stage", "count", "p50_ms", "p95_ms",
                      "p99_ms"});
    for (auto& [variant, s] : by_variant) {
        struct Row {
            const char* stage;
            std::vector<double>* vals;
        };
        for (const Row& row :
             {Row{"route", &s.route}, Row{"queue", &s.queue},
              Row{"exec", &s.exec}, Row{"total", &s.total}}) {
            if (row.vals->empty())
                continue;
            std::vector<double> p = percentiles(*row.vals, kPs);
            stages.addRow({variant < 0
                               ? std::string("(dropped)")
                               : NameTables::label(names.variants,
                                                   variant),
                           row.stage,
                           std::to_string(row.vals->size()), ms(p[0]),
                           ms(p[1]), ms(p[2])});
        }
    }
    std::cout << "-- per-variant stage latency --\n";
    stages.print(std::cout);

    // Per-pipeline e2e breakdown: exec time per stage, the queue gap
    // between consecutive stages (next stage's exec start minus the
    // previous stage's exec end — routing plus queueing of the hop),
    // and the end-to-end latency from the query span. Only present
    // when the trace carries pipeline/stage args.
    struct PipelineDurations {
        std::map<long long, std::vector<double>> stage_exec;
        std::map<long long, std::vector<double>> stage_gap;
        std::vector<double> e2e;
    };
    std::map<long long, PipelineDurations> by_pipeline;
    // qid -> pipeline, from the (terminal) query spans.
    std::map<long long, long long> pipeline_of_query;
    // qid -> per-stage exec (ts, dur), for the gap computation.
    std::map<long long,
             std::map<long long, std::pair<double, double>>>
        exec_of_query;
    for (const Event& e : events) {
        if (e.name == "exec" && e.args.count("stage")) {
            long long stage =
                static_cast<long long>(e.args.at("stage"));
            long long qid =
                static_cast<long long>(argOr(e, "qid", -1));
            exec_of_query[qid][stage] = {e.ts, e.dur};
        }
        auto pit = e.args.find("pipeline");
        if (pit == e.args.end())
            continue;
        long long p = static_cast<long long>(pit->second);
        if (e.name == "query") {
            by_pipeline[p].e2e.push_back(e.dur);
            pipeline_of_query[static_cast<long long>(
                argOr(e, "qid", -1))] = p;
        }
    }
    for (const auto& [qid, stages_of] : exec_of_query) {
        auto pit = pipeline_of_query.find(qid);
        if (pit == pipeline_of_query.end())
            continue;  // dropped before the terminal query span
        PipelineDurations& pd = by_pipeline[pit->second];
        const std::pair<double, double>* prev = nullptr;
        long long prev_stage = -1;
        for (const auto& [stage, td] : stages_of) {
            pd.stage_exec[stage].push_back(td.second);
            if (prev && stage == prev_stage + 1) {
                pd.stage_gap[stage].push_back(
                    td.first - (prev->first + prev->second));
            }
            prev = &td;
            prev_stage = stage;
        }
    }
    for (const auto& [pipe, pd] : by_pipeline) {
        std::string pname =
            pipe >= 0 &&
                    static_cast<std::size_t>(pipe) <
                        names.pipelines.size()
                ? names.pipelines[static_cast<std::size_t>(pipe)].name
                : std::to_string(pipe);
        const std::vector<std::string>* stage_names =
            pipe >= 0 && static_cast<std::size_t>(pipe) <
                             names.pipelines.size()
                ? &names.pipelines[static_cast<std::size_t>(pipe)]
                       .stages
                : nullptr;
        auto stageLabel = [&](long long s) {
            if (stage_names &&
                static_cast<std::size_t>(s) < stage_names->size())
                return (*stage_names)[static_cast<std::size_t>(s)];
            return "stage " + std::to_string(s);
        };
        TextTable bt;
        bt.setHeader({"segment", "count", "p50_ms", "p95_ms",
                      "p99_ms"});
        for (const auto& [stage, durs] : pd.stage_exec) {
            std::vector<double> p = percentiles(durs, kPs);
            bt.addRow({stageLabel(stage) + " exec",
                       std::to_string(durs.size()), ms(p[0]),
                       ms(p[1]), ms(p[2])});
            auto git = pd.stage_gap.find(stage);
            if (git != pd.stage_gap.end()) {
                std::vector<double> g =
                    percentiles(git->second, kPs);
                bt.addRow({stageLabel(stage - 1) + " -> " +
                               stageLabel(stage) + " gap",
                           std::to_string(git->second.size()),
                           ms(g[0]), ms(g[1]), ms(g[2])});
            }
        }
        if (!pd.e2e.empty()) {
            std::vector<double> p = percentiles(pd.e2e, kPs);
            bt.addRow({"e2e", std::to_string(pd.e2e.size()), ms(p[0]),
                       ms(p[1]), ms(p[2])});
        }
        std::cout << "\n-- pipeline " << pname
                  << " e2e breakdown --\n";
        bt.print(std::cout);
    }

    if (!solve_durs.empty()) {
        std::vector<double> dp = percentiles(solve_durs, kPs);
        std::vector<double> np = percentiles(solve_nodes, kPs);
        std::cout << "\n-- controller decisions --\n"
                  << "solves: " << solve_durs.size()
                  << "  solve->apply p50/p95/p99 ms: " << ms(dp[0])
                  << "/" << ms(dp[1]) << "/" << ms(dp[2])
                  << "  B&B nodes p50/p99: " << fmtDouble(np[0], 0)
                  << "/" << fmtDouble(np[2], 0) << "\n";
    }

    std::sort(queries.begin(), queries.end(),
              [](const Event* a, const Event* b) {
                  if (a->dur != b->dur)
                      return a->dur > b->dur;
                  // Exact integer qid tie-break: comparing the raw
                  // double arg would go inexact past 2^53 and make
                  // the top-N order depend on span-buffer layout.
                  return static_cast<long long>(argOr(*a, "qid", -1)) <
                         static_cast<long long>(argOr(*b, "qid", -1));
              });
    TextTable slow;
    slow.setHeader({"qid", "family", "variant", "device", "status",
                    "latency_ms"});
    const char* kStatus[] = {"pending", "served", "late", "dropped"};
    int shown = 0;
    for (const Event* e : queries) {
        if (shown++ >= top_n)
            break;
        int status = static_cast<int>(argOr(*e, "status", 0));
        const long long fam =
            static_cast<long long>(argOr(*e, "family", -1));
        const long long var =
            static_cast<long long>(argOr(*e, "variant", -1));
        slow.addRow({std::to_string(
                         static_cast<long long>(argOr(*e, "qid", -1))),
                     NameTables::label(names.families, fam),
                     var < 0 ? std::string("-")
                             : NameTables::label(names.variants, var),
                     std::to_string(static_cast<long long>(
                         argOr(*e, "device", -1))),
                     status >= 0 && status <= 3 ? kStatus[status]
                                                : "?",
                     ms(e->dur)});
    }
    std::cout << "\n-- top " << std::min<std::size_t>(
                                    static_cast<std::size_t>(top_n),
                                    queries.size())
              << " slowest queries --\n";
    slow.print(std::cout);

    if (!critical_path)
        return 0;

    // Critical-path analysis: rebuild the lineage records from the
    // trace and run the exact-partition decomposition on the chosen
    // queries (explicit id > recorded tail exemplars > slowest).
    const obs::LineageIndex index(reconstructSpans(events),
                                  parseLinks(doc));
    std::vector<std::uint64_t> exemplar_ids;
    const char* exemplar_source = "";
    if (critical_qid >= 0) {
        exemplar_ids.push_back(
            static_cast<std::uint64_t>(critical_qid));
        exemplar_source = "requested query";
    } else {
        if (doc.has("otherData") &&
            doc.at("otherData").has("tail_exemplars")) {
            for (const JsonValue& q :
                 doc.at("otherData").at("tail_exemplars").asArray()) {
                exemplar_ids.push_back(static_cast<std::uint64_t>(
                    std::llround(q.asNumber())));
            }
            exemplar_source = "tail exemplars (seeded reservoir)";
        }
        if (exemplar_ids.empty()) {
            exemplar_ids = index.slowestQueries(
                static_cast<std::size_t>(top_n));
            exemplar_source = "slowest traced queries (fallback)";
        }
    }

    std::vector<obs::CriticalPath> paths;
    std::size_t missing = 0, inexact = 0;
    const auto analyzeInto = [&](const std::vector<std::uint64_t>& ids) {
        for (const std::uint64_t qid : ids) {
            obs::CriticalPath cp = index.analyze(qid);
            if (cp.family == kInvalidId) {
                ++missing;
                continue;
            }
            if (!cp.exact())
                ++inexact;
            paths.push_back(std::move(cp));
        }
    };
    analyzeInto(exemplar_ids);
    // Reservoir exemplars sample the whole run while the span ring
    // keeps only the newest spans, so exemplars can be evicted from
    // the trace. That is not an error: fall back to the slowest
    // queries that are still fully present.
    if (paths.empty() && critical_qid < 0 && !exemplar_ids.empty()) {
        missing = 0;
        exemplar_source = "slowest traced queries (exemplars evicted)";
        analyzeInto(
            index.slowestQueries(static_cast<std::size_t>(top_n)));
    }

    const auto us_ms = [](Duration d) {
        return ms(static_cast<double>(d));
    };
    std::cout << "\n-- critical path: " << paths.size() << " "
              << exemplar_source << " --\n";

    // One summary row per exemplar: e2e plus the per-kind totals of
    // its partition (columns sum to e2e exactly).
    TextTable summary;
    {
        std::vector<std::string> header = {"qid", "family", "variant",
                                           "e2e_ms"};
        for (std::size_t k = 0; k < obs::kNumSegmentKinds; ++k)
            header.push_back(std::string(obs::toString(
                                 static_cast<obs::SegmentKind>(k))) +
                             "_ms");
        summary.setHeader(header);
    }
    for (const obs::CriticalPath& cp : paths) {
        Duration by_kind[obs::kNumSegmentKinds] = {};
        for (const obs::Segment& s : cp.segments)
            by_kind[static_cast<std::size_t>(s.kind)] += s.duration();
        std::vector<std::string> row = {
            std::to_string(cp.query),
            NameTables::label(names.families,
                              static_cast<long long>(cp.family)),
            cp.variant == kInvalidId
                ? std::string("-")
                : NameTables::label(names.variants,
                                    static_cast<long long>(cp.variant)),
            us_ms(cp.total())};
        for (const Duration d : by_kind)
            row.push_back(us_ms(d));
        summary.addRow(row);
    }
    summary.print(std::cout);

    // Detailed segment walk for an explicitly requested query.
    if (critical_qid >= 0 && !paths.empty()) {
        const obs::CriticalPath& cp = paths.front();
        TextTable walk;
        walk.setHeader({"segment", "start_ms", "dur_ms", "device",
                        "ref"});
        for (const obs::Segment& s : cp.segments) {
            walk.addRow({obs::toString(s.kind),
                         us_ms(s.start - cp.arrival),
                         us_ms(s.duration()),
                         s.device < 0 ? std::string("-")
                                      : std::to_string(s.device),
                         s.ref == 0 ? std::string("-")
                                    : std::to_string(s.ref)});
        }
        std::cout << "\n-- query " << cp.query << " segment walk ("
                  << (cp.exact() ? "exact" : "INEXACT")
                  << " partition) --\n";
        walk.print(std::cout);
    }

    // Blame tables: per-family / per-variant totals over the set.
    const obs::BlameTables blame = obs::aggregateBlame(paths);
    const auto printBlame =
        [&](const char* title,
            const std::unordered_map<std::uint32_t, obs::BlameRow>& rows,
            const std::vector<std::string>& name_table,
            bool variant_keys) {
            if (rows.empty())
                return;
            TextTable bt;
            std::vector<std::string> header = {variant_keys ? "variant"
                                                            : "family",
                                               "queries"};
            for (std::size_t k = 0; k < obs::kNumSegmentKinds; ++k)
                header.push_back(
                    std::string(obs::toString(
                        static_cast<obs::SegmentKind>(k))) +
                    "_ms");
            bt.setHeader(header);
            std::vector<std::uint32_t> keys;
            keys.reserve(rows.size());
            for (const auto& [key, row] : rows)
                keys.push_back(key);
            std::sort(keys.begin(), keys.end());
            for (const std::uint32_t key : keys) {
                const obs::BlameRow& row = rows.at(key);
                std::vector<std::string> cells = {
                    variant_keys && key == kInvalidId
                        ? std::string("(dropped)")
                        : NameTables::label(name_table,
                                            static_cast<long long>(key)),
                    std::to_string(row.queries)};
                for (const Duration d : row.by_kind)
                    cells.push_back(us_ms(d));
                bt.addRow(cells);
            }
            std::cout << "\n-- blame " << title << " --\n";
            bt.print(std::cout);
        };
    printBlame("by family", blame.by_family, names.families, false);
    printBlame("by variant", blame.by_variant, names.variants, true);

    if (!blame_path.empty()) {
        std::string out = "{\"schema\":1,\"trace\":\"";
        out += path;
        out += "\",\"exemplar_source\":\"";
        out += exemplar_source;
        out += "\",\"exemplars\":[";
        bool first = true;
        for (const obs::CriticalPath& cp : paths) {
            if (!first)
                out += ',';
            first = false;
            out += "{\"qid\":" + std::to_string(cp.query);
            out += ",\"family\":" + std::to_string(cp.family);
            out += ",\"variant\":" +
                   std::to_string(
                       cp.variant == kInvalidId
                           ? -1
                           : static_cast<std::int64_t>(cp.variant));
            out += ",\"status\":" + std::to_string(cp.status);
            out += ",\"pipeline\":" + std::to_string(cp.pipeline);
            out += ",\"e2e_us\":" + std::to_string(cp.total());
            out += ",\"exact\":";
            out += cp.exact() ? "true" : "false";
            out += ",\"segments\":[";
            bool sfirst = true;
            for (const obs::Segment& s : cp.segments) {
                if (!sfirst)
                    out += ',';
                sfirst = false;
                out += "{\"kind\":\"";
                out += obs::toString(s.kind);
                out += "\",\"start_us\":" +
                       std::to_string(s.start - cp.arrival);
                out += ",\"dur_us\":" + std::to_string(s.duration());
                out += ",\"device\":" + std::to_string(s.device);
                out += ",\"ref\":" + std::to_string(s.ref);
                out += '}';
            }
            out += "]}";
        }
        out += "]";
        const auto appendBlame =
            [&](const char* key,
                const std::unordered_map<std::uint32_t, obs::BlameRow>&
                    rows,
                const std::vector<std::string>& name_table,
                bool variant_keys) {
                out += ",\"";
                out += key;
                out += "\":{";
                std::vector<std::uint32_t> keys;
                keys.reserve(rows.size());
                for (const auto& [k, row] : rows)
                    keys.push_back(k);
                std::sort(keys.begin(), keys.end());
                bool bfirst = true;
                for (const std::uint32_t k : keys) {
                    const obs::BlameRow& row = rows.at(k);
                    if (!bfirst)
                        out += ',';
                    bfirst = false;
                    out += '"';
                    out += variant_keys && k == kInvalidId
                               ? std::string("(dropped)")
                               : NameTables::label(
                                     name_table,
                                     static_cast<long long>(k));
                    out += "\":{\"queries\":" +
                           std::to_string(row.queries);
                    for (std::size_t s = 0;
                         s < obs::kNumSegmentKinds; ++s) {
                        out += ",\"";
                        out += obs::toString(
                            static_cast<obs::SegmentKind>(s));
                        out += "_us\":" +
                               std::to_string(row.by_kind[s]);
                    }
                    out += '}';
                }
                out += '}';
            };
        appendBlame("by_family", blame.by_family, names.families,
                    false);
        appendBlame("by_variant", blame.by_variant, names.variants,
                    true);
        out += "}\n";
        std::ofstream f(blame_path,
                        std::ios::binary | std::ios::trunc);
        if (!f || !f.write(out.data(),
                           static_cast<std::streamsize>(out.size()))) {
            std::cerr << "proteus_trace: cannot write " << blame_path
                      << "\n";
            return 1;
        }
        std::cout << "\nblame tables written to " << blame_path
                  << "\n";
    }

    if (inexact > 0 || (critical_qid >= 0 && missing > 0)) {
        std::cerr << "proteus_trace: " << inexact
                  << " inexact partition(s), " << missing
                  << " missing query span(s)\n";
        return 1;
    }
    return 0;
}
