/**
 * @file
 * Flash-crowd scenario: demand steps from calm to 5x within a second
 * (e.g. a viral event). Shows the control-path timeline: burst alarm,
 * MILP decision delay, accuracy scaling kicking in, recovery.
 *
 *   $ ./examples/burst_absorption
 */

#include <iostream>

#include "common/table.h"
#include "core/serving_system.h"
#include "models/model.h"
#include "workload/generators.h"

int
main()
{
    using namespace proteus;

    Cluster cluster = paperCluster();
    ModelRegistry registry = paperRegistry();

    // Flat 250 QPS, one 4x burst for two minutes, then calm again.
    BurstTraceConfig tc;
    tc.duration = seconds(6 * 60);
    tc.low_qps = 250.0;
    tc.high_qps = 1000.0;
    tc.phase = seconds(2 * 60);
    Trace trace = burstTrace(registry.numFamilies(), tc);

    SystemConfig cfg;
    cfg.snapshot_interval = seconds(10.0);
    ServingSystem system(&cluster, &registry, cfg);
    RunResult r = system.run(trace);

    std::cout << "flash crowd: " << tc.low_qps << " -> " << tc.high_qps
              << " QPS steps every " << toSeconds(tc.phase)
              << " s\n\n";
    TextTable table;
    table.setHeader({"t_s", "demand_qps", "throughput_qps",
                     "effective_acc", "violations"});
    for (const auto& snap : r.timeline) {
        table.addRow({fmtDouble(toSeconds(snap.start), 0),
                      fmtDouble(snap.demandQps(), 0),
                      fmtDouble(snap.throughputQps(), 0),
                      fmtPercent(snap.total.effectiveAccuracy(), 2),
                      std::to_string(snap.total.violations())});
    }
    table.print(std::cout);
    std::cout << "\nWatch the effective accuracy dip during the burst "
                 "phases (accuracy scaling absorbing load the most "
                 "accurate variants could not serve) and recover in "
                 "the calm phases. The short violation spike at each "
                 "step is the decoupled control path reacting (burst "
                 "alarm + MILP decision delay, paper Fig. 5).\n";
    return 0;
}
