/**
 * @file
 * Quickstart: register applications (model families), build a
 * heterogeneous cluster, run an inference workload through Proteus
 * and read the results.
 *
 *   $ ./examples/quickstart
 */

#include <iostream>

#include "core/serving_system.h"
#include "models/model.h"
#include "workload/generators.h"

int
main()
{
    using namespace proteus;

    // 1. A heterogeneous cluster: 4 CPUs, 2 GTX 1080 Ti, 2 V100.
    Cluster cluster;
    StandardTypes types = addStandardTypes(&cluster);
    cluster.addDevices(types.cpu, 4);
    cluster.addDevices(types.gtx1080ti, 2);
    cluster.addDevices(types.v100, 2);

    // 2. Register applications. Each model family is one query type;
    //    here: the ResNet, EfficientNet and MobileNet classifiers.
    ModelRegistry registry;
    for (const auto& family : miniModelZoo())
        registry.registerFamily(family);

    // 3. Configure the system. Defaults give you the full Proteus:
    //    MILP resource manager + proactive adaptive batching.
    SystemConfig config;
    config.slo_multiplier = 2.0;              // SLO = 2x fastest CPU
    config.control_period = seconds(30.0);    // MILP invocation period

    // 4. A workload: 80 QPS Poisson arrivals, Zipf across families.
    Trace trace = steadyTrace(registry.numFamilies(), 80.0,
                              seconds(120.0), ArrivalProcess::Poisson);

    // 5. Run and inspect.
    ServingSystem system(&cluster, &registry, config);
    RunResult result = system.run(trace);

    std::cout << "queries        : " << result.summary.arrivals << "\n"
              << "served in SLO  : " << result.summary.served << "\n"
              << "served late    : " << result.summary.served_late << "\n"
              << "dropped        : " << result.summary.dropped << "\n"
              << "throughput     : "
              << result.summary.avg_throughput_qps << " QPS\n"
              << "effective acc. : "
              << result.summary.effective_accuracy << " %\n"
              << "max acc. drop  : "
              << result.summary.max_accuracy_drop << " %\n"
              << "SLO violations : "
              << result.summary.slo_violation_ratio * 100.0 << " %\n"
              << "mean batch     : " << result.mean_batch_size << "\n"
              << "re-allocations : " << result.reallocations << "\n";
    return 0;
}
