/**
 * @file
 * Batching playground: a single V100 worker serving one model under
 * micro-bursty arrivals, comparing the three adaptive batching
 * policies in isolation (the per-device view of paper §5/§6.4).
 *
 *   $ ./examples/batching_playground
 */

#include <deque>
#include <iostream>
#include <memory>

#include "baselines/aimd_batching.h"
#include "baselines/nexus_batching.h"
#include "common/table.h"
#include "core/batching.h"
#include "core/worker.h"
#include "models/model.h"
#include "workload/generators.h"

namespace {

using namespace proteus;

class Counter : public QueryObserver
{
  public:
    void onArrival(const Query&) override {}
    void
    onFinished(const Query& q) override
    {
        switch (q.status) {
          case QueryStatus::Served: ++served; break;
          case QueryStatus::ServedLate: ++late; break;
          case QueryStatus::Dropped: ++dropped; break;
          case QueryStatus::Pending: break;
        }
    }
    int served = 0;
    int late = 0;
    int dropped = 0;
};

struct Outcome {
    int served = 0, late = 0, dropped = 0;
    double mean_batch = 0.0;
};

Outcome
runPolicy(std::unique_ptr<BatchingPolicy> policy,
          ArrivalProcess process, double qps)
{
    Cluster cluster;
    StandardTypes types = addStandardTypes(&cluster);
    cluster.addDevices(types.v100, 1);
    ModelRegistry reg;
    for (const auto& fam : miniModelZoo())
        reg.registerFamily(fam);
    CostModel cost(cluster, reg);
    ProfileStore profiles = profileModels(reg, cluster, cost);

    Simulator sim;
    Counter counter;
    Worker worker(&sim, &cluster, 0, &reg, &cost, &profiles, &counter,
                  nullptr);
    worker.setBatchingPolicy(std::move(policy));
    FamilyId resnet = reg.findFamily("resnet");
    worker.hostVariant(reg.mostAccurate(resnet), true);

    Trace trace = steadySingleFamilyTrace(resnet, qps, seconds(60.0),
                                          process, 99);
    std::deque<Query> arena;
    for (const auto& e : trace.events()) {
        sim.scheduleAt(e.at, [&, at = e.at] {
            arena.push_back(Query{});
            arena.back().family = resnet;
            arena.back().arrival = at;
            arena.back().deadline = at + profiles.slo(resnet);
            worker.enqueue(&arena.back());
        });
    }
    sim.run();
    Outcome out;
    out.served = counter.served;
    out.late = counter.late;
    out.dropped = counter.dropped;
    out.mean_batch = worker.meanBatchSize();
    return out;
}

}  // namespace

int
main()
{
    using namespace proteus;
    const double qps = 120.0;  // close to the device's peak

    std::cout << "single V100, resnet-152, " << qps
              << " QPS for 60 s per run\n\n";
    TextTable table;
    table.setHeader({"arrivals", "policy", "served", "late", "dropped",
                     "mean_batch"});
    for (ArrivalProcess process :
         {ArrivalProcess::Uniform, ArrivalProcess::Poisson,
          ArrivalProcess::Gamma}) {
        for (int p = 0; p < 3; ++p) {
            std::unique_ptr<BatchingPolicy> policy;
            const char* name = "";
            if (p == 0) {
                policy = std::make_unique<ProteusBatching>();
                name = "proteus";
            } else if (p == 1) {
                policy = std::make_unique<NexusBatching>();
                name = "nexus";
            } else {
                policy = std::make_unique<AimdBatching>();
                name = "aimd";
            }
            Outcome out = runPolicy(std::move(policy), process, qps);
            table.addRow({toString(process), name,
                          std::to_string(out.served),
                          std::to_string(out.late),
                          std::to_string(out.dropped),
                          fmtDouble(out.mean_batch, 1)});
        }
    }
    table.print(std::cout);
    std::cout << "\nThe non-work-conserving Proteus policy builds "
                 "larger batches by waiting exactly as long as the "
                 "head query's deadline allows; the gap versus Nexus "
                 "and AIMD widens as arrivals get burstier.\n";
    return 0;
}
