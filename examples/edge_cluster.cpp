/**
 * @file
 * Edge-cluster scenario: a small fixed-size cluster that cannot scale
 * hardware (the paper's motivating setting, §1-2). A diurnal workload
 * repeatedly exceeds what the most accurate models could serve;
 * accuracy scaling absorbs the peaks while a static high-accuracy
 * deployment collapses.
 *
 *   $ ./examples/edge_cluster
 */

#include <iostream>

#include "common/table.h"
#include "core/serving_system.h"
#include "models/model.h"
#include "workload/generators.h"

int
main()
{
    using namespace proteus;

    // A 7-device edge box: no way to add hardware at peak.
    Cluster cluster = edgeCluster();
    ModelRegistry registry;
    for (const auto& family : miniModelZoo())
        registry.registerFamily(family);

    DiurnalTraceConfig tc;
    tc.duration = seconds(10 * 60);
    tc.base_qps = 40.0;
    tc.diurnal_amplitude_qps = 160.0;  // 5x peak-to-trough
    tc.cycles = 2.0;
    Trace trace = diurnalTrace(registry.numFamilies(), tc);

    std::cout << "edge cluster: " << cluster.numDevices()
              << " devices; diurnal demand "
              << tc.base_qps << " - "
              << tc.base_qps + tc.diurnal_amplitude_qps << " QPS\n\n";

    TextTable table;
    table.setHeader({"deployment", "throughput_qps", "effective_acc",
                     "max_acc_drop", "violation_ratio"});
    struct Row {
        const char* name;
        AllocatorKind kind;
    };
    for (Row row : {Row{"accuracy scaling (proteus)",
                        AllocatorKind::ProteusIlp},
                    Row{"static, most accurate (clipper-ha)",
                        AllocatorKind::ClipperHA},
                    Row{"static, fastest (clipper-ht)",
                        AllocatorKind::ClipperHT}}) {
        SystemConfig cfg;
        cfg.allocator = row.kind;
        ServingSystem system(&cluster, &registry, cfg);
        RunResult r = system.run(trace);
        table.addRow({row.name,
                      fmtDouble(r.summary.avg_throughput_qps, 1),
                      fmtPercent(r.summary.effective_accuracy, 2),
                      fmtPercent(r.summary.max_accuracy_drop, 2),
                      fmtDouble(r.summary.slo_violation_ratio, 4)});
    }
    table.print(std::cout);
    std::cout << "\nProteus trades a few accuracy points at the peaks "
                 "for meeting the demand; the static high-accuracy "
                 "deployment violates SLOs heavily, the static fast "
                 "deployment gives up accuracy permanently.\n";
    return 0;
}
