/**
 * @file
 * Figure 1 reproduction.
 *
 * (a) Accuracy vs. batch-1 throughput of the EfficientNet variants on
 *     V100 / GTX 1080 Ti / CPU.
 * (b) System accuracy vs. throughput capacity for all 5^5 = 3125
 *     mappings of five EfficientNet variants onto five devices, with
 *     the Pareto frontier marked.
 */

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "cluster/device.h"
#include "common/table.h"
#include "models/cost_model.h"
#include "models/model.h"
#include "models/profiler.h"

namespace proteus {
namespace {

void
figure1a(const Cluster& cluster, const StandardTypes& types,
         const ModelRegistry& reg, const CostModel& cost)
{
    std::cout << "== Fig. 1a: accuracy vs batch-1 throughput "
                 "(EfficientNet variants) ==\n";
    TextTable table;
    table.setHeader({"variant", "accuracy", "v100_qps", "gtx1080ti_qps",
                     "cpu_qps"});
    FamilyId eff = reg.findFamily("efficientnet");
    for (VariantId v : reg.variantsOf(eff)) {
        auto qps = [&](DeviceTypeId t) {
            return 1.0 / (cost.latencyMs(t, v, 1) / 1000.0);
        };
        table.addRow({reg.variant(v).name,
                      fmtPercent(reg.variant(v).accuracy, 1),
                      fmtDouble(qps(types.v100), 1),
                      fmtDouble(qps(types.gtx1080ti), 1),
                      fmtDouble(qps(types.cpu), 2)});
    }
    table.print(std::cout);
    (void)cluster;
}

struct Config {
    double capacity = 0.0;
    double accuracy = 0.0;
    bool pareto = false;
};

void
figure1b(const Cluster& cluster, const ModelRegistry& reg,
         const ProfileStore& profiles)
{
    std::cout << "\n== Fig. 1b: all 3125 variant-to-device mappings "
                 "(5 EfficientNet variants x 5 devices) ==\n";
    FamilyId eff = reg.findFamily("efficientnet");
    // Five variants (b0, b2, b4, b6, b7 span the range) and five
    // devices: 1 CPU, 2 GTX 1080 Ti, 2 V100.
    const auto& all = reg.variantsOf(eff);
    std::vector<VariantId> variants{all[0], all[2], all[4], all[6],
                                    all[7]};
    std::vector<DeviceId> devices{0, 20, 21, 30, 31};

    std::vector<Config> configs;
    const int n = static_cast<int>(variants.size());
    // Every device independently picks one of the five variants;
    // capacity-weighted accuracy assuming each device serves at peak
    // (paper: "all devices serve the maximum number of queries
    // feasible without SLO violations").
    int infeasible = 0;
    for (int code = 0; code < 3125; ++code) {
        int c = code;
        Config cfg;
        double acc_sum = 0.0;
        bool ok = true;
        for (DeviceId d : devices) {
            VariantId v = variants[static_cast<std::size_t>(c % n)];
            c /= n;
            DeviceTypeId t = cluster.device(d).type;
            double peak = profiles.get(v, t).peak_qps;
            // A mapping that puts a variant on a device where it can
            // never meet the SLO is not deployable.
            ok &= peak > 0.0;
            cfg.capacity += peak;
            acc_sum += reg.variant(v).accuracy * peak;
        }
        if (!ok) {
            ++infeasible;
            continue;
        }
        cfg.accuracy = cfg.capacity > 0 ? acc_sum / cfg.capacity : 0.0;
        configs.push_back(cfg);
    }
    std::cout << "mappings with an SLO-infeasible (variant, device) "
                 "pair: " << infeasible << " of 3125 (excluded)\n";
    // Pareto frontier: no other config with >= capacity and
    // > accuracy (or > capacity and >= accuracy).
    int pareto_count = 0;
    for (auto& a : configs) {
        a.pareto = true;
        for (const auto& b : configs) {
            if ((b.capacity > a.capacity && b.accuracy >= a.accuracy) ||
                (b.capacity >= a.capacity && b.accuracy > a.accuracy)) {
                a.pareto = false;
                break;
            }
        }
        pareto_count += a.pareto;
    }
    double min_cap = 1e18, max_cap = 0, min_acc = 101, max_acc = 0;
    for (const auto& cfg : configs) {
        min_cap = std::min(min_cap, cfg.capacity);
        max_cap = std::max(max_cap, cfg.capacity);
        min_acc = std::min(min_acc, cfg.accuracy);
        max_acc = std::max(max_acc, cfg.accuracy);
    }
    std::cout << "configurations: " << configs.size()
              << "  capacity range: [" << fmtDouble(min_cap, 0) << ", "
              << fmtDouble(max_cap, 0) << "] QPS  accuracy range: ["
              << fmtPercent(min_acc, 1) << ", " << fmtPercent(max_acc, 1)
              << "]\n";
    std::cout << "pareto-frontier configurations: " << pareto_count
              << "\n";
    TextTable table;
    table.setHeader({"capacity_qps", "accuracy"});
    std::vector<Config> frontier;
    for (const auto& cfg : configs) {
        if (cfg.pareto)
            frontier.push_back(cfg);
    }
    std::sort(frontier.begin(), frontier.end(),
              [](const Config& a, const Config& b) {
                  return a.capacity < b.capacity;
              });
    double last_cap = -1.0, last_acc = -1.0;
    for (const auto& cfg : frontier) {
        if (std::abs(cfg.capacity - last_cap) < 1e-9 &&
            std::abs(cfg.accuracy - last_acc) < 1e-9) {
            continue;  // permutation duplicate
        }
        last_cap = cfg.capacity;
        last_acc = cfg.accuracy;
        table.addRow({fmtDouble(cfg.capacity, 1),
                      fmtPercent(cfg.accuracy, 2)});
    }
    table.print(std::cout);
}

}  // namespace
}  // namespace proteus

int
main()
{
    using namespace proteus;
    StandardTypes types;
    Cluster cluster = paperCluster(&types);
    ModelRegistry reg = paperRegistry();
    CostModel cost(cluster, reg);
    ProfileStore profiles = profileModels(reg, cluster, cost);

    figure1a(cluster, types, reg, cost);
    figure1b(cluster, reg, profiles);
    std::cout << "\nPaper shape check: lower-accuracy variants reach "
                 "higher throughput on every device; V100 > 1080 Ti > "
                 "CPU; only the Pareto frontier matters for "
                 "provisioning (Fig. 1b).\n";
    return 0;
}
