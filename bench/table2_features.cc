/**
 * @file
 * Table 2 reproduction: qualitative feature matrix of the systems
 * implemented in this repository, as configured by the end-to-end
 * comparison (§6.1.1).
 */

#include <iostream>

#include "common/table.h"

int
main()
{
    using proteus::TextTable;
    TextTable table;
    table.setHeader({"feature", "clipper", "sommelier", "infaas",
                     "proteus"});
    table.addRow({"model placement", "static", "static", "heuristic",
                  "MILP"});
    table.addRow({"model selection", "static", "heuristic", "heuristic",
                  "MILP"});
    table.addRow({"accuracy scaling", "no", "limited", "no (tweaked: "
                  "INFaaS-Accuracy)", "yes"});
    table.addRow({"adaptive batching", "yes (AIMD)", "no (uses ours)",
                  "yes", "yes (proactive, non-work-conserving)"});
    std::cout << "== Table 2: feature comparison ==\n";
    table.print(std::cout);
    std::cout << "\nImplementation mapping in this repository:\n"
              << "  clipper   -> ClipperAllocator (HT/HA) + AimdBatching\n"
              << "  sommelier -> SommelierAllocator (placement frozen)\n"
              << "  infaas    -> InfaasAllocator (greedy, accuracy "
                 "objective)\n"
              << "  proteus   -> IlpAllocator + ProteusBatching\n";
    return 0;
}
