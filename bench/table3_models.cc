/**
 * @file
 * Table 3 reproduction: the model families and variants registered in
 * the zoo, extended with the profiled SLOs and peak throughputs that
 * drive the evaluation.
 */

#include <iostream>

#include "common/table.h"
#include "models/cost_model.h"
#include "models/model.h"
#include "models/profiler.h"

int
main()
{
    using namespace proteus;
    StandardTypes types;
    Cluster cluster = paperCluster(&types);
    ModelRegistry reg = paperRegistry();
    CostModel cost(cluster, reg);
    ProfileStore profiles = profileModels(reg, cluster, cost);

    std::cout << "== Table 3: model families and variants ==\n";
    TextTable table;
    table.setHeader({"family", "task", "variant", "gflops", "params_M",
                     "norm_acc", "slo_ms", "peak_v100_qps",
                     "peak_cpu_qps"});
    for (FamilyId f = 0; f < reg.numFamilies(); ++f) {
        for (VariantId v : reg.variantsOf(f)) {
            const auto& spec = reg.variant(v);
            table.addRow({reg.family(f).name, reg.family(f).task,
                          spec.name, fmtDouble(spec.gflops, 2),
                          fmtDouble(spec.params_m, 1),
                          fmtPercent(spec.accuracy, 1),
                          fmtDouble(toMillis(profiles.slo(f)), 1),
                          fmtDouble(profiles.get(v, types.v100).peak_qps,
                                    1),
                          fmtDouble(profiles.get(v, types.cpu).peak_qps,
                                    1)});
        }
    }
    table.print(std::cout);
    std::cout << "\nfamilies: " << reg.numFamilies()
              << "  variants: " << reg.numVariants() << "\n";
    return 0;
}
