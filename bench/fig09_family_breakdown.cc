/**
 * @file
 * Figure 9 reproduction: per-model-family breakdown of Proteus on the
 * Twitter-like trace (§6.7): throughput, effective accuracy and SLO
 * violations per family. The Zipf split gives every family a
 * different demand level; heavy families carry more weight in the
 * system-level accuracy objective.
 */

#include <iostream>

#include "bench_util.h"
#include "workload/generators.h"

int
main()
{
    using namespace proteus;
    using namespace proteus::bench;

    Cluster cluster = paperCluster();
    ModelRegistry reg = paperRegistry();

    DiurnalTraceConfig tc;
    tc.duration = seconds(24 * 60);
    tc.base_qps = 400.0;
    tc.diurnal_amplitude_qps = 900.0;
    Trace trace = diurnalTrace(reg.numFamilies(), tc);

    SystemConfig cfg;
    RunResult r = runSystem(cluster, reg, cfg, trace);
    JsonReport report("fig09_family_breakdown");
    report.addRun("proteus", r);
    report.write();

    std::cout << "== Fig. 9: Proteus per-family breakdown ("
              << trace.size() << " queries) ==\n\n";
    TextTable table;
    table.setHeader({"family", "demand_qps", "throughput_qps",
                     "effective_acc", "violations",
                     "violation_ratio"});
    double span_s = toSeconds(trace.endTime());
    for (FamilyId f = 0; f < reg.numFamilies(); ++f) {
        const auto& c = r.family_totals[f];
        double vio_ratio =
            c.arrivals ? static_cast<double>(c.violations()) /
                             static_cast<double>(c.arrivals)
                       : 0.0;
        table.addRow({reg.family(f).name,
                      fmtDouble(static_cast<double>(c.arrivals) / span_s, 1),
                      fmtDouble(static_cast<double>(c.completed()) / span_s,
                                1),
                      fmtPercent(c.effectiveAccuracy(), 2),
                      std::to_string(c.violations()),
                      fmtDouble(vio_ratio, 4)});
    }
    table.print(std::cout);
    std::cout << "\nPaper shape check: the Zipf split gives each "
                 "family a different throughput level; light-demand "
                 "families (low Zipf rank) see larger accuracy "
                 "variation because they carry little weight in the "
                 "system-level objective, while violation behaviour "
                 "stays comparatively even (batching works "
                 "per-device).\n";
    return 0;
}
