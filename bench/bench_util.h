/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: running
 * a configured system over a trace and printing paper-style rows.
 */

#ifndef PROTEUS_BENCH_BENCH_UTIL_H_
#define PROTEUS_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/serving_system.h"
#include "models/model.h"
#include "workload/trace.h"

namespace proteus {
namespace bench {

/** Run one configured system over @p trace on the paper cluster. */
inline RunResult
runSystem(const Cluster& cluster, const ModelRegistry& registry,
          SystemConfig config, const Trace& trace)
{
    ServingSystem system(&cluster, &registry, config);
    return system.run(trace);
}

/** The five systems compared end-to-end in §6.2. */
inline std::vector<AllocatorKind>
endToEndSystems()
{
    return {AllocatorKind::ClipperHA, AllocatorKind::ClipperHT,
            AllocatorKind::Sommelier, AllocatorKind::InfaasAccuracy,
            AllocatorKind::ProteusIlp};
}

/** Append the §6.1.4 summary metrics of @p r as a table row. */
inline void
addSummaryRow(TextTable* table, const std::string& name,
              const RunResult& r)
{
    table->addRow({name,
                   fmtDouble(r.summary.avg_demand_qps, 1),
                   fmtDouble(r.summary.avg_throughput_qps, 1),
                   fmtPercent(r.summary.effective_accuracy, 2),
                   fmtPercent(r.summary.max_accuracy_drop, 2),
                   fmtDouble(r.summary.slo_violation_ratio, 4),
                   std::to_string(r.summary.violations())});
}

/** Standard header matching addSummaryRow(). */
inline void
setSummaryHeader(TextTable* table)
{
    table->setHeader({"system", "demand_qps", "throughput_qps",
                      "effective_acc", "max_acc_drop",
                      "slo_violation_ratio", "violations"});
}

/** Print a timeseries (Fig. 4/5/7-style) for one system. */
inline void
printTimeseries(std::ostream& os, const std::string& name,
                const RunResult& r)
{
    TextTable table;
    table.setHeader({"t_s", "demand_qps", "throughput_qps",
                     "effective_acc", "violations"});
    for (const auto& snap : r.timeline) {
        table.addRow({fmtDouble(toSeconds(snap.start), 0),
                      fmtDouble(snap.demandQps(), 0),
                      fmtDouble(snap.throughputQps(), 0),
                      fmtPercent(snap.total.effectiveAccuracy(), 2),
                      std::to_string(snap.total.violations())});
    }
    os << "--- timeseries: " << name << " ---\n";
    table.print(os);
}

}  // namespace bench
}  // namespace proteus

#endif  // PROTEUS_BENCH_BENCH_UTIL_H_
