/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: running
 * a configured system over a trace and printing paper-style rows.
 */

#ifndef PROTEUS_BENCH_BENCH_UTIL_H_
#define PROTEUS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "core/serving_system.h"
#include "models/model.h"
#include "obs/exporter.h"
#include "workload/trace.h"

namespace proteus {
namespace bench {

/**
 * Run one configured system over @p trace on the paper cluster.
 *
 * When the PROTEUS_TRACE_FILE environment variable is set, span
 * tracing is force-enabled and the Chrome trace of the run is written
 * there (each call overwrites the file, so with several systems the
 * last run wins — point the variable at a single-system invocation
 * for analysis). PROTEUS_TIMELINE_FILE does the same for the sampled
 * time-series export: <path> gets the JSON, <path>.csv the CSV.
 */
inline RunResult
runSystem(const Cluster& cluster, const ModelRegistry& registry,
          SystemConfig config, const Trace& trace)
{
    const char* trace_path = std::getenv("PROTEUS_TRACE_FILE");
    const char* timeline_path = std::getenv("PROTEUS_TIMELINE_FILE");
    if (trace_path || timeline_path)
        config.obs.enabled = true;
    ServingSystem system(&cluster, &registry, config);
    RunResult result = system.run(trace);
    if (trace_path && system.tracer() &&
        !obs::writeChromeTrace(*system.tracer(), system.traceNames(),
                               trace_path)) {
        warn("could not write trace file ", trace_path);
    }
    if (timeline_path && system.timeseries()) {
        if (!system.timeseries()->writeJson(timeline_path))
            warn("could not write timeline file ", timeline_path);
        const std::string csv = std::string(timeline_path) + ".csv";
        if (!system.timeseries()->writeCsv(csv))
            warn("could not write timeline file ", csv);
    }
    return result;
}

/** The five systems compared end-to-end in §6.2. */
inline std::vector<AllocatorKind>
endToEndSystems()
{
    return {AllocatorKind::ClipperHA, AllocatorKind::ClipperHT,
            AllocatorKind::Sommelier, AllocatorKind::InfaasAccuracy,
            AllocatorKind::ProteusIlp};
}

/** Append the §6.1.4 summary metrics of @p r as a table row. */
inline void
addSummaryRow(TextTable* table, const std::string& name,
              const RunResult& r)
{
    table->addRow({name,
                   fmtDouble(r.summary.avg_demand_qps, 1),
                   fmtDouble(r.summary.avg_throughput_qps, 1),
                   fmtPercent(r.summary.effective_accuracy, 2),
                   fmtPercent(r.summary.max_accuracy_drop, 2),
                   fmtDouble(r.summary.slo_violation_ratio, 4),
                   std::to_string(r.summary.violations())});
}

/** Standard header matching addSummaryRow(). */
inline void
setSummaryHeader(TextTable* table)
{
    table->setHeader({"system", "demand_qps", "throughput_qps",
                      "effective_acc", "max_acc_drop",
                      "slo_violation_ratio", "violations"});
}

/** Print a timeseries (Fig. 4/5/7-style) for one system. */
inline void
printTimeseries(std::ostream& os, const std::string& name,
                const RunResult& r)
{
    TextTable table;
    table.setHeader({"t_s", "demand_qps", "throughput_qps",
                     "effective_acc", "violations"});
    for (const auto& snap : r.timeline) {
        table.addRow({fmtDouble(toSeconds(snap.start), 0),
                      fmtDouble(snap.demandQps(), 0),
                      fmtDouble(snap.throughputQps(), 0),
                      fmtPercent(snap.total.effectiveAccuracy(), 2),
                      std::to_string(snap.total.violations())});
    }
    os << "--- timeseries: " << name << " ---\n";
    table.print(os);
}

/** Schema version stamped into every BENCH_<name>.json. Bump when
 * the result layout changes; bench_diff refuses to compare reports
 * with different schemas. */
inline constexpr int kBenchSchemaVersion = 3;

/** @return the git SHA baked in at build time (or "unknown"). */
inline std::string
benchGitSha()
{
#ifdef PROTEUS_GIT_SHA
    return PROTEUS_GIT_SHA;
#else
    const char* env = std::getenv("PROTEUS_GIT_SHA");
    return env ? env : "unknown";
#endif
}

/**
 * Machine-readable companion to the printed tables: collects one
 * entry per run and writes BENCH_<name>.json next to the binary's
 * working directory, so plotting scripts consume results without
 * scraping stdout. Every report is stamped with the schema version,
 * the build's git SHA and the experiment config name so bench_diff
 * can refuse cross-schema comparisons and trace a result back to the
 * commit that produced it.
 */
class JsonReport
{
  public:
    /** @param name figure/table slug, e.g. "fig04_end_to_end". */
    explicit JsonReport(std::string name)
        : name_(std::move(name)), config_(name_)
    {}

    /** Override the experiment config name (defaults to the slug). */
    void setConfig(std::string config) { config_ = std::move(config); }

    /** Record the summary of one system's run under @p system. */
    void
    addRun(const std::string& system, const RunResult& r)
    {
        std::string e = "\"" + system + "\":{";
        e += "\"demand_qps\":" + num(r.summary.avg_demand_qps);
        e += ",\"throughput_qps\":" + num(r.summary.avg_throughput_qps);
        e += ",\"effective_accuracy\":" +
             num(r.summary.effective_accuracy);
        e += ",\"max_accuracy_drop\":" + num(r.summary.max_accuracy_drop);
        e += ",\"slo_violation_ratio\":" +
             num(r.summary.slo_violation_ratio);
        e += ",\"violations\":" +
             std::to_string(r.summary.violations());
        e += ",\"arrivals\":" + std::to_string(r.summary.arrivals);
        e += ",\"dropped\":" + std::to_string(r.summary.dropped);
        e += ",\"shed\":" + std::to_string(r.shed);
        e += ",\"reallocations\":" + std::to_string(r.reallocations);
        e += ",\"mean_batch_size\":" + num(r.mean_batch_size);
        e += '}';
        entries_.push_back(std::move(e));
    }

    /** Record a scalar result under @p key. */
    void
    addValue(const std::string& key, double value)
    {
        entries_.push_back("\"" + key + "\":" + num(value));
    }

    /** Write BENCH_<name>.json in the working directory. */
    bool
    write() const
    {
        const std::string path = "BENCH_" + name_ + ".json";
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        if (!f)
            return false;
        f << "{\"bench\":\"" << name_ << "\",\"schema\":"
          << kBenchSchemaVersion << ",\"git_sha\":\"" << benchGitSha()
          << "\",\"config\":\"" << config_ << "\",\"results\":{";
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (i)
                f << ',';
            f << entries_[i];
        }
        f << "}}\n";
        return static_cast<bool>(f);
    }

  private:
    static std::string
    num(double v)
    {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        return buf;
    }

    std::string name_;
    std::string config_;
    std::vector<std::string> entries_;
};

}  // namespace bench
}  // namespace proteus

#endif  // PROTEUS_BENCH_BENCH_UTIL_H_
