/**
 * @file
 * Figure 8 reproduction: sensitivity to the latency SLO (§6.6). The
 * per-family SLO multiplier sweeps 1x..3.5x of the fastest CPU
 * variant's batch-1 latency; each system reports average throughput,
 * maximum accuracy drop and SLO violation ratio.
 */

#include <iostream>

#include "bench_util.h"
#include "workload/generators.h"

int
main()
{
    using namespace proteus;
    using namespace proteus::bench;

    Cluster cluster = paperCluster();
    ModelRegistry reg = paperRegistry();

    DiurnalTraceConfig tc;
    tc.duration = seconds(8 * 60);
    tc.base_qps = 400.0;
    tc.diurnal_amplitude_qps = 900.0;
    tc.cycles = 1.0;
    Trace trace = diurnalTrace(reg.numFamilies(), tc);

    std::cout << "== Fig. 8: sensitivity to latency SLO ("
              << trace.size() << " queries per run) ==\n\n";

    for (const char* metric :
         {"avg_throughput_qps", "max_accuracy_drop",
          "slo_violation_ratio"}) {
        std::cout << "-- " << metric << " --\n";
        TextTable table;
        table.setHeader({"system", "1.0x", "1.5x", "2.0x", "2.5x",
                         "3.0x", "3.5x"});
        for (AllocatorKind kind : endToEndSystems()) {
            std::vector<std::string> row{toString(kind)};
            for (double mult : {1.0, 1.5, 2.0, 2.5, 3.0, 3.5}) {
                SystemConfig cfg;
                cfg.allocator = kind;
                cfg.slo_multiplier = mult;
                RunResult r = runSystem(cluster, reg, cfg, trace);
                double value = 0.0;
                if (std::string(metric) == "avg_throughput_qps")
                    value = r.summary.avg_throughput_qps;
                else if (std::string(metric) == "max_accuracy_drop")
                    value = r.summary.max_accuracy_drop;
                else
                    value = r.summary.slo_violation_ratio;
                row.push_back(fmtDouble(value,
                    std::string(metric) == "slo_violation_ratio" ? 4
                                                                 : 1));
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Paper shape check: as the SLO loosens, violations "
                 "fall and throughput rises for every system; "
                 "Proteus's maximum accuracy drop shrinks with larger "
                 "SLOs (slower, more accurate variants become "
                 "feasible) while Clipper's stays flat.\n";
    return 0;
}
