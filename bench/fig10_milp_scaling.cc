/**
 * @file
 * Figure 10 reproduction: scalability of the MILP with respect to its
 * input parameters (§6.8) — devices (d), model variants (m) and query
 * types (q). Each sweep varies one parameter with the others fixed
 * and reports the wall-clock time of an exact solve of the verbatim
 * per-device formulation (x_{d,m} booleans), with the paper's 60 s
 * budget.
 */

#include <iostream>

#include "common/clock.h"
#include "common/table.h"
#include "core/ilp_allocator.h"
#include "models/cost_model.h"
#include "models/model.h"
#include "models/profiler.h"
#include "solver/milp.h"

namespace proteus {
namespace {

/** Synthetic zoo: @p families each with @p variants_per variants. */
std::vector<FamilySpec>
syntheticZoo(int families, int variants_per)
{
    std::vector<FamilySpec> zoo;
    for (int f = 0; f < families; ++f) {
        FamilySpec fam;
        fam.name = "family-" + std::to_string(f);
        fam.task = "synthetic";
        for (int v = 0; v < variants_per; ++v) {
            VariantSpec spec;
            spec.name = fam.name + "-v" + std::to_string(v);
            double frac = variants_per > 1
                              ? static_cast<double>(v) /
                                    (variants_per - 1)
                              : 1.0;
            spec.gflops = 0.5 + 10.0 * frac * (1.0 + 0.1 * f);
            spec.params_m = 5.0 + 50.0 * frac;
            spec.accuracy = 82.0 + 18.0 * frac;
            fam.variants.push_back(spec);
        }
        zoo.push_back(std::move(fam));
    }
    return zoo;
}

struct Measurement {
    double seconds = 0.0;
    SolveStatus status = SolveStatus::Infeasible;
    std::int64_t nodes = 0;
};

Measurement
solveInstance(int devices, int families, int variants_per)
{
    Cluster cluster;
    StandardTypes types = addStandardTypes(&cluster);
    // Spread devices over the three standard types.
    cluster.addDevices(types.cpu, devices / 2);
    cluster.addDevices(types.gtx1080ti, devices / 4);
    cluster.addDevices(types.v100,
                       devices - devices / 2 - devices / 4);

    ModelRegistry reg;
    for (const auto& fam : syntheticZoo(families, variants_per))
        reg.registerFamily(fam);
    CostModel cost(cluster, reg);
    ProfileStore profiles = profileModels(reg, cluster, cost);

    std::vector<double> demand(reg.numFamilies());
    for (std::size_t f = 0; f < demand.size(); ++f)
        demand[f] = 40.0 / (1.0 + static_cast<double>(f));

    LinearProgram lp =
        buildPerDeviceMilp(reg, cluster, profiles, demand);
    MilpSolver::Options opts;
    opts.time_limit_sec = 60.0;  // paper's budget
    opts.gap_tol = 1e-3;

    const WallTimer timer;
    Solution sol = MilpSolver(opts).solve(lp);
    Measurement m;
    m.seconds = timer.elapsedSeconds();
    m.status = sol.status;
    m.nodes = sol.work;
    return m;
}

void
sweep(const char* name, const std::vector<std::array<int, 3>>& points)
{
    std::cout << "-- sweep: " << name << " (per-device formulation, "
                 "60 s budget) --\n";
    TextTable table;
    table.setHeader({"devices", "variants", "query_types", "time_s",
                     "status", "bb_nodes"});
    for (const auto& [d, f, vp] : points) {
        Measurement m = solveInstance(d, f, vp);
        table.addRow({std::to_string(d), std::to_string(f * vp),
                      std::to_string(f), fmtDouble(m.seconds, 2),
                      toString(m.status), std::to_string(m.nodes)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

}  // namespace
}  // namespace proteus

int
main()
{
    using namespace proteus;
    std::cout << "== Fig. 10: MILP scalability vs (d, m, q) ==\n\n";
    // Devices sweep: m, q fixed (4 families x 3 variants).
    sweep("devices", {{{8, 4, 3}},
                      {{16, 4, 3}},
                      {{32, 4, 3}},
                      {{64, 4, 3}},
                      {{96, 4, 3}}});
    // Variants sweep: d, q fixed.
    sweep("variants", {{{16, 4, 3}},
                       {{16, 4, 6}},
                       {{16, 4, 12}},
                       {{16, 4, 24}},
                       {{16, 4, 48}}});
    // Query-types sweep: d fixed, 3 variants per family.
    sweep("query types", {{{16, 2, 3}},
                          {{16, 4, 3}},
                          {{16, 8, 3}},
                          {{16, 12, 3}},
                          {{16, 17, 3}}});
    std::cout << "Paper shape check: solve time grows with every "
                 "parameter; the 60 s budget caps the largest "
                 "instances (the paper reports feasibility up to 160 "
                 "devices / 450 variants / 17 query types under "
                 "Gurobi; this repository's dense-tableau B&B reaches "
                 "smaller scales within the same budget, with the "
                 "same growth shape).\n";
    return 0;
}
