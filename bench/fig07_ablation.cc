/**
 * @file
 * Figure 7 reproduction: ablation study (§6.5). Each Proteus
 * component is removed in isolation:
 *   w/o MS: model selection pinned to the most accurate variants;
 *   w/o MP: model placement frozen after the initial plan (Sommelier);
 *   w/o QA: uniform query assignment across hosting devices;
 *   w/o AB: static batch size of one.
 */

#include <iostream>

#include "bench_util.h"
#include "workload/generators.h"

int
main()
{
    using namespace proteus;
    using namespace proteus::bench;

    Cluster cluster = paperCluster();
    ModelRegistry reg = paperRegistry();

    DiurnalTraceConfig tc;
    tc.duration = seconds(24 * 60);
    tc.base_qps = 400.0;
    tc.diurnal_amplitude_qps = 900.0;
    Trace trace = diurnalTrace(reg.numFamilies(), tc);

    std::cout << "== Fig. 7: ablation study (" << trace.size()
              << " queries) ==\n\n";

    struct Variant {
        const char* name;
        SystemConfig cfg;
    };
    std::vector<Variant> variants;
    {
        Variant full{"proteus", {}};
        variants.push_back(full);
        Variant no_ms{"proteus w/o MS", {}};
        no_ms.cfg.allocator = AllocatorKind::ProteusNoMS;
        variants.push_back(no_ms);
        Variant no_mp{"proteus w/o MP", {}};
        no_mp.cfg.allocator = AllocatorKind::Sommelier;
        variants.push_back(no_mp);
        Variant no_qa{"proteus w/o QA", {}};
        no_qa.cfg.allocator = AllocatorKind::ProteusNoQA;
        variants.push_back(no_qa);
        Variant no_ab{"proteus w/o AB", {}};
        no_ab.cfg.batching = BatchingKind::StaticOne;
        variants.push_back(no_ab);
    }

    TextTable summary;
    setSummaryHeader(&summary);
    JsonReport report("fig07_ablation");
    for (const auto& variant : variants) {
        RunResult r = runSystem(cluster, reg, variant.cfg, trace);
        addSummaryRow(&summary, variant.name, r);
        report.addRun(variant.name, r);
    }
    summary.print(std::cout);
    report.write();
    std::cout << "\nPaper shape check: removing model selection (w/o "
                 "MS) keeps accuracy at 100% but causes the most SLO "
                 "violations; removing placement (w/o MP) hurts "
                 "effective accuracy the most; w/o AB and w/o QA sit "
                 "in between.\n";
    return 0;
}
