/**
 * @file
 * Figure 6 reproduction: adaptive-batching comparison in isolation
 * (§6.4). Each batching algorithm (Proteus accscale, Clipper AIMD,
 * Nexus early-drop) runs on top of the Proteus allocation, on three
 * synthetic traces with identical aggregate QPS but uniform, Poisson
 * and Gamma(0.05) inter-arrival times.
 */

#include <iostream>

#include "bench_util.h"
#include "workload/generators.h"

int
main()
{
    using namespace proteus;
    using namespace proteus::bench;

    Cluster cluster = paperCluster();
    ModelRegistry reg = paperRegistry();

    const double qps = 800.0;
    const Duration duration = seconds(6 * 60);

    std::cout << "== Fig. 6: batching algorithms on a frozen Proteus "
                 "allocation (" << qps << " QPS, "
              << toSeconds(duration)
              << " s per trace; the plan serves the demand exactly, "
                 "as in the paper's setup) ==\n\n";

    TextTable table;
    table.setHeader({"arrivals", "proteus", "nexus_batching",
                     "clipper_aimd"});
    JsonReport report("fig06_batching");
    for (ArrivalProcess process :
         {ArrivalProcess::Uniform, ArrivalProcess::Poisson,
          ArrivalProcess::Gamma}) {
        Trace trace = steadyTrace(reg.numFamilies(), qps, duration,
                                  process, 606);
        std::vector<std::string> row{toString(process)};
        for (BatchingKind batching :
             {BatchingKind::Proteus, BatchingKind::NexusEarlyDrop,
              BatchingKind::ClipperAimd}) {
            SystemConfig cfg;
            cfg.allocator = AllocatorKind::ProteusIlp;
            cfg.batching = batching;
            // Isolate batching exactly as §6.4 does: the resource
            // allocation is computed once for the trace's demand
            // (sized to it, no slack) and never changed.
            cfg.planning_headroom = 1.0;
            cfg.control_period = seconds(1e6);
            cfg.burst_threshold = 1e9;
            RunResult r = runSystem(cluster, reg, cfg, trace);
            row.push_back(fmtDouble(r.summary.slo_violation_ratio, 4));
            report.addRun(std::string(toString(process)) + "/" +
                              toString(batching),
                          r);
        }
        table.addRow(std::move(row));
    }
    std::cout << "SLO violation ratio by batching policy:\n";
    table.print(std::cout);
    report.write();
    std::cout << "\nPaper shape check: all three are close on uniform "
                 "arrivals; on Poisson and Gamma (micro-bursty) "
                 "arrivals the proactive non-work-conserving Proteus "
                 "policy has the fewest violations, Nexus (work-"
                 "conserving) ~2-3x more, Clipper AIMD (reactive) "
                 "~4x more.\n";
    return 0;
}
