/**
 * @file
 * Allocation-layer throughput bench (ISSUE 6): how fast the pooled
 * discrete-event core turns over, and how many heap allocations the
 * serving system performs per query once warm.
 *
 *  - events_per_sec: wall-clock event throughput of the refactored
 *    Simulator under a pure scheduling workload (periodic tasks
 *    recycling pooled slots). Best of three passes to damp scheduler
 *    noise; the committed baseline is deliberately conservative
 *    (~quarter of a dev-box measurement) so only a catastrophic
 *    regression — e.g. reintroducing per-event allocation — trips the
 *    bench_diff gate on shared CI runners.
 *  - allocs_per_query: operator-new calls inside a 30 s steady-state
 *    serving window divided by the queries that arrive in it. The
 *    zero-allocation refactor pins this at exactly 0, and the gate
 *    (LowerBetter, abs tolerance 0.01) keeps it there.
 *
 * The steady window uses the same isolation recipe as
 * tests/alloc/zero_alloc_test.cc: control_period and snapshot_interval
 * longer than the trace and an effectively-disabled burst alarm, so no
 * sanctioned epoch-boundary allocation site (solver scratch, metric
 * commits) lands inside the measured slice.
 */

#include <cstdint>
#include <iostream>

#include "bench_util.h"
#include "common/alloc/alloc_counter.h"
#include "common/clock.h"
#include "sim/simulator.h"
#include "workload/generators.h"

namespace {

using namespace proteus;

/** One pass: 64 periodic tasks at 1 ms over 60 simulated seconds. */
double
simulatorEventsPerSec()
{
    constexpr int kTasks = 64;
    constexpr double kSimSeconds = 60.0;

    Simulator sim;
    sim.reserveEvents(kTasks + 8);
    std::uint64_t sink = 0;
    for (int i = 0; i < kTasks; ++i) {
        sim.schedulePeriodic(seconds(0.001),
                             [&sink, i] { sink += std::uint64_t(i); });
    }

    WallTimer timer;
    sim.run(seconds(kSimSeconds));
    const double elapsed = timer.elapsedSeconds();

    if (sink == 0)  // keeps the callback side effect observable
        std::cerr << "events_per_sec: periodic tasks never fired\n";
    return static_cast<double>(sim.eventsExecuted()) /
           (elapsed > 0.0 ? elapsed : 1e-9);
}

/**
 * Heap allocations per query over a warm 30 s window of a uniform
 * 60 QPS mini-system run (measures [20 s, 50 s] of a 60 s trace, so
 * the window holds exactly half the arrivals).
 */
double
allocsPerQuery(std::uint64_t* window_allocs,
               std::uint64_t* window_queries)
{
    Cluster cluster;
    StandardTypes types = addStandardTypes(&cluster);
    cluster.addDevices(types.cpu, 4);
    cluster.addDevices(types.gtx1080ti, 2);
    cluster.addDevices(types.v100, 2);
    ModelRegistry reg;
    for (const auto& fam : miniModelZoo())
        reg.registerFamily(fam);

    SystemConfig cfg;
    cfg.control_period = seconds(3600.0);
    cfg.snapshot_interval = seconds(3600.0);
    cfg.burst_threshold = 1e9;

    const Trace trace = steadyTrace(reg.numFamilies(), 60.0,
                                    seconds(60.0),
                                    ArrivalProcess::Uniform);
    ServingSystem system(&cluster, &reg, cfg);
    system.beginRun(trace);
    system.advanceTo(seconds(20.0));  // warm-up: high-water marks hit

    alloc::ScopedHeapTally tally;
    system.advanceTo(seconds(50.0));
    *window_allocs = tally.count();

    RunResult r = system.finishRun();
    *window_queries = r.summary.arrivals / 2;
    return *window_queries == 0
               ? 0.0
               : static_cast<double>(*window_allocs) /
                     static_cast<double>(*window_queries);
}

}  // namespace

int
main()
{
    using namespace proteus;
    using namespace proteus::bench;

    std::cout << "== events/sec: pooled event core + steady-state "
                 "allocation rate ==\n\n";
    if (!alloc::heapTallyActive()) {
        std::cerr << "events_per_sec: counting operator new not "
                     "linked; allocs_per_query would read 0 vacuously\n";
        return 2;
    }

    double best_eps = 0.0;
    for (int pass = 0; pass < 3; ++pass) {
        const double eps = simulatorEventsPerSec();
        std::cout << "  simulator pass " << (pass + 1) << ": "
                  << fmtDouble(eps / 1e6, 2) << " M events/s\n";
        if (eps > best_eps)
            best_eps = eps;
    }

    std::uint64_t window_allocs = 0;
    std::uint64_t window_queries = 0;
    const double apq = allocsPerQuery(&window_allocs, &window_queries);

    std::cout << "\n  events_per_sec  : " << fmtDouble(best_eps, 0)
              << "  (best of 3)\n"
              << "  allocs_per_query: " << fmtDouble(apq, 6) << "  ("
              << window_allocs << " allocs / " << window_queries
              << " queries in the steady window)\n";

    JsonReport report("events_per_sec");
    report.addValue("events_per_sec", best_eps);
    report.addValue("allocs_per_query", apq);
    report.write();
    return 0;
}
