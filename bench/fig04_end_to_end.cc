/**
 * @file
 * Figure 4 reproduction: end-to-end comparison of Proteus against
 * Clipper-HA, Clipper-HT, Sommelier and INFaaS-Accuracy on the
 * Twitter-like diurnal trace (§6.2), reporting demand/throughput
 * timeseries, effective accuracy, maximum accuracy drop, SLO
 * violations per interval and the averaged SLO violation ratio,
 * plus the §6.2 headline ratios.
 */

#include <iostream>
#include <map>

#include "bench_util.h"
#include "workload/generators.h"

int
main()
{
    using namespace proteus;
    using namespace proteus::bench;

    Cluster cluster = paperCluster();
    ModelRegistry reg = paperRegistry();

    // 24 simulated minutes with two diurnal peaks that overload the
    // cluster, as in the paper's sped-up trace.
    DiurnalTraceConfig tc;
    tc.duration = seconds(24 * 60);
    tc.base_qps = 400.0;
    tc.diurnal_amplitude_qps = 900.0;
    Trace trace = diurnalTrace(reg.numFamilies(), tc);

    std::cout << "== Fig. 4: end-to-end comparison (Twitter-like "
                 "diurnal trace, "
              << trace.size() << " queries, avg "
              << fmtDouble(trace.averageQps(), 0) << " QPS) ==\n\n";

    TextTable summary;
    setSummaryHeader(&summary);
    JsonReport report("fig04_end_to_end");
    std::map<AllocatorKind, RunResult> results;
    for (AllocatorKind kind : endToEndSystems()) {
        SystemConfig cfg;
        cfg.allocator = kind;
        RunResult r = runSystem(cluster, reg, cfg, trace);
        addSummaryRow(&summary, toString(kind), r);
        report.addRun(toString(kind), r);
        results.emplace(kind, std::move(r));
    }
    summary.print(std::cout);
    report.write();

    std::cout << "\n";
    for (AllocatorKind kind :
         {AllocatorKind::ClipperHA, AllocatorKind::ProteusIlp}) {
        printTimeseries(std::cout, toString(kind), results.at(kind));
        std::cout << "\n";
    }

    // §6.2 headline ratios.
    const auto& proteus = results.at(AllocatorKind::ProteusIlp).summary;
    const auto& ha = results.at(AllocatorKind::ClipperHA).summary;
    const auto& infaas =
        results.at(AllocatorKind::InfaasAccuracy).summary;
    const auto& somm = results.at(AllocatorKind::Sommelier).summary;
    auto ratio = [](double a, double b) {
        return b > 0 ? a / b : 0.0;
    };
    std::cout << "== Sec. 6.2 headline comparisons ==\n";
    std::cout << "throughput vs non-scaling Clipper-HA: "
              << fmtDouble(ratio(proteus.avg_throughput_qps,
                                 ha.avg_throughput_qps), 2)
              << "x (paper: ~1.6x)\n";
    std::cout << "violation ratio Clipper-HA / Proteus: "
              << fmtDouble(ratio(ha.slo_violation_ratio,
                                 proteus.slo_violation_ratio), 1)
              << "x (paper: >10x)\n";
    std::cout << "max accuracy drop INFaaS / Proteus: "
              << fmtDouble(ratio(infaas.max_accuracy_drop,
                                 proteus.max_accuracy_drop), 2)
              << "x (paper: 2.8x)\n";
    std::cout << "max accuracy drop Sommelier / Proteus: "
              << fmtDouble(ratio(somm.max_accuracy_drop,
                                 proteus.max_accuracy_drop), 2)
              << "x (paper: 3.2x)\n";
    std::cout << "violation ratio INFaaS / Proteus: "
              << fmtDouble(ratio(infaas.slo_violation_ratio,
                                 proteus.slo_violation_ratio), 2)
              << "x (paper: 4.3x)\n";
    std::cout << "violation ratio Sommelier / Proteus: "
              << fmtDouble(ratio(somm.slo_violation_ratio,
                                 proteus.slo_violation_ratio), 2)
              << "x (paper: 2.8x)\n";
    return 0;
}
