/**
 * @file
 * Section 6.8 reproduction (decision overheads), as google-benchmark
 * micro-benchmarks:
 *   - request-router dispatch on the query critical path (paper:
 *     < 1 ms per lookup);
 *   - one full resource-manager MILP allocation at the evaluation
 *     scale (paper: mean 4.2 s under Gurobi; the warm-started
 *     branch & bound here is typically far faster).
 */

#include <benchmark/benchmark.h>

#include <deque>

#include "core/ilp_allocator.h"
#include "core/router.h"
#include "core/serving_system.h"
#include "models/cost_model.h"
#include "models/model.h"
#include "models/profiler.h"
#include "workload/generators.h"

namespace proteus {
namespace {

struct RouterBench {
    RouterBench()
        : cluster(paperCluster(&types)),
          reg(paperRegistry()),
          cost(cluster, reg),
          profiles(profileModels(reg, cluster, cost)),
          lb(&sim, 0, nullptr)
    {
        FamilyId resnet = reg.findFamily("resnet");
        VariantId v = reg.leastAccurate(resnet);
        std::vector<LoadBalancer::WorkerShare> shares;
        for (DeviceId d = 20; d < 40; ++d) {  // all GPUs
            workers.push_back(std::make_unique<Worker>(
                &sim, &cluster, d, &reg, &cost, &profiles, nullptr,
                nullptr));
            workers.back()->setBatchingPolicy(
                std::make_unique<StaticBatching>(1));
            workers.back()->hostVariant(v, true);
            shares.push_back({workers.back().get(), 1.0 / 20.0});
        }
        lb.setRouting(shares);
    }

    StandardTypes types;
    Cluster cluster;
    ModelRegistry reg;
    CostModel cost;
    ProfileStore profiles;
    Simulator sim;
    LoadBalancer lb;
    std::vector<std::unique_ptr<Worker>> workers;
    std::deque<Query> arena;
};

void
BM_RequestRouterDispatch(benchmark::State& state)
{
    RouterBench bench;
    FamilyId resnet = bench.reg.findFamily("resnet");
    for (auto _ : state) {
        bench.arena.push_back(Query{});
        Query& q = bench.arena.back();
        q.family = resnet;
        q.arrival = bench.sim.now();
        q.deadline = q.arrival + bench.profiles.slo(resnet);
        bench.lb.submit(&q);
        if (bench.arena.size() > 4096) {
            state.PauseTiming();
            bench.sim.run();  // drain
            bench.arena.clear();
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RequestRouterDispatch);

void
BM_MilpAllocation(benchmark::State& state)
{
    StandardTypes types;
    Cluster cluster = paperCluster(&types);
    ModelRegistry reg = paperRegistry();
    CostModel cost(cluster, reg);
    ProfileStore profiles = profileModels(reg, cluster, cost);
    ZipfDistribution zipf(reg.numFamilies(), 1.001);

    std::vector<double> demand(reg.numFamilies());
    for (std::size_t f = 0; f < demand.size(); ++f)
        demand[f] = 600.0 * zipf.pmf(f);

    double solve_s = 0.0, nodes = 0.0, iters = 0.0, backoff = 0.0;
    for (auto _ : state) {
        IlpAllocator alloc(&reg, &cluster, &profiles);
        AllocationInput in;
        in.demand_qps = demand;
        Allocation plan = alloc.allocate(in);
        benchmark::DoNotOptimize(plan.expected_accuracy);
        const auto& st = alloc.lastStats();
        solve_s += st.solve_seconds;
        nodes += static_cast<double>(st.nodes);
        iters += static_cast<double>(st.simplex_iters);
        backoff += st.backoff_steps;
    }
    // Solver-phase breakdown of §6.8: how the decision time divides
    // into B&B nodes and simplex work, averaged per allocation.
    state.counters["solve_ms"] = benchmark::Counter(
        solve_s * 1e3, benchmark::Counter::kAvgIterations);
    state.counters["bb_nodes"] =
        benchmark::Counter(nodes, benchmark::Counter::kAvgIterations);
    state.counters["simplex_iters"] =
        benchmark::Counter(iters, benchmark::Counter::kAvgIterations);
    state.counters["backoff_steps"] =
        benchmark::Counter(backoff, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MilpAllocation)->Unit(benchmark::kMillisecond);

void
BM_MilpReallocationWarm(benchmark::State& state)
{
    // Steady-state reallocation: a current plan exists and demand
    // moved slightly — the common controller invocation.
    StandardTypes types;
    Cluster cluster = paperCluster(&types);
    ModelRegistry reg = paperRegistry();
    CostModel cost(cluster, reg);
    ProfileStore profiles = profileModels(reg, cluster, cost);
    ZipfDistribution zipf(reg.numFamilies(), 1.001);

    std::vector<double> demand(reg.numFamilies());
    for (std::size_t f = 0; f < demand.size(); ++f)
        demand[f] = 600.0 * zipf.pmf(f);
    IlpAllocator alloc(&reg, &cluster, &profiles);
    AllocationInput first;
    first.demand_qps = demand;
    Allocation current = alloc.allocate(first);

    double solve_s = 0.0, nodes = 0.0, iters = 0.0;
    for (auto _ : state) {
        AllocationInput in;
        in.demand_qps = demand;
        for (auto& d : in.demand_qps)
            d *= 1.1;
        in.current = &current;
        Allocation plan = alloc.allocate(in);
        benchmark::DoNotOptimize(plan.expected_accuracy);
        const auto& st = alloc.lastStats();
        solve_s += st.solve_seconds;
        nodes += static_cast<double>(st.nodes);
        iters += static_cast<double>(st.simplex_iters);
    }
    state.counters["solve_ms"] = benchmark::Counter(
        solve_s * 1e3, benchmark::Counter::kAvgIterations);
    state.counters["bb_nodes"] =
        benchmark::Counter(nodes, benchmark::Counter::kAvgIterations);
    state.counters["simplex_iters"] =
        benchmark::Counter(iters, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MilpReallocationWarm)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace proteus

BENCHMARK_MAIN();
