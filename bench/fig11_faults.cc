/**
 * @file
 * Figure 11 (extension): availability under supply shocks. A scripted
 * crash-recovery trace takes GPUs away mid-run and brings them back;
 * the failure-aware Proteus controller re-plans onto the survivors
 * (trading accuracy for availability), while Clipper-HA's static
 * most-accurate plan keeps routing at dead replicas and bleeds SLO
 * violations for the whole outage.
 */

#include <iostream>

#include "bench_util.h"
#include "faults/fault_plan.h"
#include "workload/generators.h"

namespace {

using namespace proteus;

/**
 * The crash-recovery script: two staggered GPU outages (one long, one
 * short, overlapping) plus a transient stall — roughly the shape of a
 * rolling failure in one rack.
 */
FaultPlan
crashRecoveryPlan(const Cluster& cluster)
{
    // Crash the two highest-numbered devices: on the paper cluster
    // these are GPUs carrying a large share of provisioned capacity.
    const DeviceId last = static_cast<DeviceId>(cluster.numDevices() - 1);
    FaultPlan plan;

    FaultEvent long_outage;
    long_outage.at = seconds(4 * 60.0);
    long_outage.kind = FaultKind::DeviceCrash;
    long_outage.device = last;
    long_outage.downtime = seconds(3 * 60.0);
    plan.scripted.push_back(long_outage);

    FaultEvent short_outage;
    short_outage.at = seconds(5 * 60.0);
    short_outage.kind = FaultKind::DeviceCrash;
    short_outage.device = static_cast<DeviceId>(last - 1);
    short_outage.downtime = seconds(60.0);
    plan.scripted.push_back(short_outage);

    FaultEvent stall;
    stall.at = seconds(10 * 60.0);
    stall.kind = FaultKind::WorkerStall;
    stall.device = static_cast<DeviceId>(last - 2);
    stall.stall_factor = 4.0;
    stall.stall_window = seconds(45.0);
    plan.scripted.push_back(stall);

    return plan;
}

void
printFaultWindows(const RunResult& r)
{
    if (r.fault_windows.empty()) {
        std::cout << "(no fault windows recorded)\n";
        return;
    }
    TextTable t;
    t.setHeader({"device", "start_s", "end_s", "capacity_lost_qps",
                 "violations_during"});
    for (const auto& w : r.fault_windows) {
        t.addRow({std::to_string(w.device),
                  fmtDouble(toSeconds(w.start), 0),
                  w.end == kNoTime ? "open"
                                   : fmtDouble(toSeconds(w.end), 0),
                  fmtDouble(w.capacity_lost_qps, 1),
                  std::to_string(w.violations_during)});
    }
    t.print(std::cout);
}

}  // namespace

int
main()
{
    using namespace proteus;
    using namespace proteus::bench;

    Cluster cluster = paperCluster();
    ModelRegistry reg = paperRegistry();
    const Duration duration = seconds(14 * 60.0);
    Trace trace = steadyTrace(reg.numFamilies(), 400.0, duration,
                              ArrivalProcess::Poisson);
    FaultPlan plan = crashRecoveryPlan(cluster);

    std::cout << "== Fig. 11: crash-recovery trace (" << trace.size()
              << " queries, " << plan.scripted.size()
              << " scripted faults) ==\n\n";

    TextTable summary;
    summary.setHeader({"system", "throughput_qps", "effective_acc",
                       "slo_violation_ratio", "violations",
                       "fault_violations", "downtime_s"});
    JsonReport report("fig11_faults");
    for (AllocatorKind kind :
         {AllocatorKind::ClipperHA, AllocatorKind::ProteusIlp}) {
        SystemConfig cfg;
        cfg.allocator = kind;
        cfg.faults = plan;
        RunResult r = runSystem(cluster, reg, cfg, trace);
        report.addRun(toString(kind), r);
        summary.addRow({toString(kind),
                        fmtDouble(r.summary.avg_throughput_qps, 1),
                        fmtPercent(r.summary.effective_accuracy, 2),
                        fmtDouble(r.summary.slo_violation_ratio, 4),
                        std::to_string(r.summary.violations()),
                        std::to_string(r.summary.fault_violations),
                        fmtDouble(r.summary.total_downtime_s, 0)});
        std::cout << "--- " << toString(kind) << " fault windows ---\n";
        printFaultWindows(r);
        printTimeseries(std::cout, toString(kind), r);
        std::cout << "\n";
    }
    summary.print(std::cout);
    report.write();
    std::cout
        << "\nShape check: during the outages the failure-aware "
           "Proteus plan keeps the violation ratio near its fault-free "
           "level by re-placing cheaper variants on the survivors "
           "(effective accuracy dips instead), while Clipper-HA keeps "
           "its static placement and attributes most of its SLO "
           "violations to the fault windows.\n";
    return 0;
}
