/**
 * @file
 * Figure 5 reproduction: responsiveness to a macro-scale bursty
 * workload (§6.3) — flat low demand interleaved with flat high
 * demand. INFaaS (decision on the critical path, zero delay) reacts
 * fastest; Proteus shows a short violation spike when each burst
 * starts, then recovers with lower violations and higher accuracy.
 */

#include <iostream>

#include "bench_util.h"
#include "workload/generators.h"

int
main()
{
    using namespace proteus;
    using namespace proteus::bench;

    Cluster cluster = paperCluster();
    ModelRegistry reg = paperRegistry();

    BurstTraceConfig tc;
    tc.duration = seconds(24 * 60);
    tc.low_qps = 200.0;
    tc.high_qps = 1150.0;
    tc.phase = seconds(4 * 60);
    Trace trace = burstTrace(reg.numFamilies(), tc);

    std::cout << "== Fig. 5: responsiveness to bursty workload ("
              << trace.size() << " queries, low " << tc.low_qps
              << " / high " << tc.high_qps << " QPS, "
              << toSeconds(tc.phase) << " s phases) ==\n\n";

    TextTable summary;
    setSummaryHeader(&summary);
    JsonReport report("fig05_bursty");
    for (AllocatorKind kind : endToEndSystems()) {
        SystemConfig cfg;
        cfg.allocator = kind;
        RunResult r = runSystem(cluster, reg, cfg, trace);
        addSummaryRow(&summary, toString(kind), r);
        report.addRun(toString(kind), r);
        if (kind == AllocatorKind::ProteusIlp ||
            kind == AllocatorKind::InfaasAccuracy) {
            printTimeseries(std::cout, toString(kind), r);
            std::cout << "\n";
        }
    }
    summary.print(std::cout);
    report.write();
    std::cout << "\nPaper shape check: both dynamic systems absorb the "
                 "bursts; Proteus shows a short violation spike right "
                 "after each step (its MILP runs off the critical "
                 "path), then sustains higher effective accuracy.\n";
    return 0;
}
