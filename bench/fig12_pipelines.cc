/**
 * @file
 * Figure 12 (extension): pipeline serving under a tight end-to-end
 * SLO. A 3-stage vision chain (detect: resnet -> classify:
 * efficientnet -> annotate: mobilenet) runs on a mixed CPU/GPU
 * cluster at increasing offered load. Pipeline-aware Proteus splits
 * the 60 ms e2e SLO jointly across the stages (proportional to the
 * best feasible variant combination), which keeps the GTX tier usable
 * for the detect stage; the per-stage-independent baseline's equal
 * split pins detect to the few V100s and collapses once demand
 * outgrows them. Clipper/INFaaS run on the same equal split — they
 * have no notion of a pipeline.
 */

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "workload/generators.h"

namespace {

using namespace proteus;

/** The 3-stage vision chain with an explicit 60 ms e2e SLO. */
PipelineSpec
visionPipeline()
{
    PipelineSpec spec;
    spec.name = "vision";
    spec.slo = millis(60.0);
    spec.stages.push_back({"detect", "resnet", {}});
    spec.stages.push_back({"classify", "efficientnet", {"detect"}});
    spec.stages.push_back({"annotate", "mobilenet", {"classify"}});
    return spec;
}

/** The mixed cluster the pipeline_* configs use. */
Cluster
pipelineCluster()
{
    Cluster cluster;
    StandardTypes types = addStandardTypes(&cluster);
    cluster.addDevices(types.cpu, 8);
    cluster.addDevices(types.gtx1080ti, 4);
    cluster.addDevices(types.v100, 4);
    return cluster;
}

}  // namespace

int
main()
{
    using namespace proteus;
    using namespace proteus::bench;

    Cluster cluster = pipelineCluster();
    ModelRegistry reg;
    for (const auto& fam : miniModelZoo())
        reg.registerFamily(fam);

    const std::vector<double> loads = {300.0, 450.0, 600.0};

    struct System {
        const char* name;
        AllocatorKind allocator;
        bool joint;
    };
    const std::vector<System> systems = {
        {"proteus", AllocatorKind::ProteusIlp, true},
        {"proteus_independent", AllocatorKind::ProteusIlp, false},
        {"clipper_ha", AllocatorKind::ClipperHA, false},
        {"clipper_ht", AllocatorKind::ClipperHT, false},
        {"infaas", AllocatorKind::InfaasAccuracy, false},
    };

    std::cout << "== Fig. 12: 3-stage pipeline, 60 ms e2e SLO, "
                 "joint vs per-stage-independent planning ==\n\n";

    JsonReport report("fig12_pipelines");
    TextTable summary;
    summary.setHeader({"system", "entry_qps", "e2e_violation_ratio",
                       "effective_acc", "served", "dropped", "shed",
                       "forwarded"});
    bool joint_wins = true;
    for (double qps : loads) {
        double joint_ratio = 0.0, indep_ratio = 0.0;
        PipelineTraceConfig wl;
        wl.qps = qps;
        wl.duration = seconds(60.0);
        Trace trace = pipelineTrace({0}, wl);
        for (const System& sys : systems) {
            SystemConfig cfg;
            cfg.allocator = sys.allocator;
            cfg.pipelines = {visionPipeline()};
            cfg.pipeline_joint_planning = sys.joint;
            RunResult r = runSystem(cluster, reg, cfg, trace);
            const std::string label =
                std::string(sys.name) + "@" + fmtDouble(qps, 0);
            report.addRun(label, r);
            summary.addRow({label,
                            fmtDouble(qps, 0),
                            fmtDouble(r.summary.slo_violation_ratio, 4),
                            fmtPercent(r.summary.effective_accuracy, 2),
                            std::to_string(r.summary.served),
                            std::to_string(r.summary.dropped),
                            std::to_string(r.shed),
                            std::to_string(r.forwarded)});
            if (sys.joint)
                joint_ratio = r.summary.slo_violation_ratio;
            else if (sys.allocator == AllocatorKind::ProteusIlp)
                indep_ratio = r.summary.slo_violation_ratio;
        }
        if (joint_ratio >= indep_ratio)
            joint_wins = false;
    }
    summary.print(std::cout);
    report.write();
    std::cout
        << "\nShape check: "
        << (joint_wins ? "PASS" : "FAIL")
        << " — joint planning's e2e violation ratio is below the "
           "per-stage-independent split's at every offered load on "
           "the same trace. The equal split starves the detect stage "
           "of the GTX tier, so its violations explode once demand "
           "outgrows the V100s, while the joint split keeps every "
           "stage on a feasible budget.\n";
    return joint_wins ? 0 : 1;
}
