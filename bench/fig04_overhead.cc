/**
 * @file
 * Observability overhead companion to Figure 4: run the Proteus ILP
 * system over a shortened diurnal trace with observability disabled
 * and with full span/lineage tracing enabled, and report the wall-
 * clock overhead fraction of the enabled path. The lineage links and
 * tail-exemplar reservoir ride the preallocated hot path, so the
 * enabled run must stay within the +10% bench_diff gate
 * (trace_overhead_frac, LowerBetter, abs 0.10 against a zero
 * baseline) — and both runs must produce identical simulation
 * results, since observation never steers the system.
 */

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/clock.h"
#include "workload/generators.h"

int
main()
{
    using namespace proteus;
    using namespace proteus::bench;

    Cluster cluster = paperCluster();
    ModelRegistry reg = paperRegistry();

    // A shorter fig04-style diurnal window: long enough for batching
    // and reallocation to reach steady state, short enough that the
    // repetitions below keep the bench under a few seconds.
    DiurnalTraceConfig tc;
    tc.duration = seconds(4 * 60);
    tc.base_qps = 400.0;
    tc.diurnal_amplitude_qps = 900.0;
    Trace trace = diurnalTrace(reg.numFamilies(), tc);

    std::cout << "== Fig. 4 companion: tracing overhead ("
              << trace.size() << " queries) ==\n\n";

    const auto timedRun = [&](bool obs_enabled, RunResult* out) {
        SystemConfig cfg;
        cfg.allocator = AllocatorKind::ProteusIlp;
        cfg.obs.enabled = obs_enabled;
        ServingSystem system(&cluster, &reg, cfg);
        WallTimer timer;
        RunResult r = system.run(trace);
        const double elapsed = timer.elapsedSeconds();
        if (out)
            *out = std::move(r);
        return elapsed;
    };

    // Alternate disabled/enabled runs and keep the fastest of each:
    // the min is the standard noise filter for short wall-clock
    // benches (one-sided jitter from scheduling and cache state).
    constexpr int kReps = 3;
    double t_disabled = 0.0, t_enabled = 0.0;
    RunResult r_disabled, r_enabled;
    for (int rep = 0; rep < kReps; ++rep) {
        const double td = timedRun(false, &r_disabled);
        const double te = timedRun(true, &r_enabled);
        t_disabled = rep == 0 ? td : std::min(t_disabled, td);
        t_enabled = rep == 0 ? te : std::min(t_enabled, te);
    }
    const double frac =
        t_disabled > 0.0 ? t_enabled / t_disabled - 1.0 : 0.0;

    PROTEUS_ASSERT(r_disabled.summary.arrivals ==
                           r_enabled.summary.arrivals &&
                       r_disabled.summary.served ==
                           r_enabled.summary.served &&
                       r_disabled.summary.violations() ==
                           r_enabled.summary.violations(),
                   "tracing changed simulation results");

    TextTable table;
    table.setHeader({"mode", "wall_s", "throughput_qps",
                     "slo_violation_ratio"});
    table.addRow({"obs disabled", fmtDouble(t_disabled, 3),
                  fmtDouble(r_disabled.summary.avg_throughput_qps, 1),
                  fmtDouble(r_disabled.summary.slo_violation_ratio, 4)});
    table.addRow({"lineage enabled", fmtDouble(t_enabled, 3),
                  fmtDouble(r_enabled.summary.avg_throughput_qps, 1),
                  fmtDouble(r_enabled.summary.slo_violation_ratio, 4)});
    table.print(std::cout);
    std::cout << "\ntrace_overhead_frac: " << fmtDouble(frac, 4)
              << " (gate: <= +0.10 absolute vs zero baseline)\n";

    JsonReport report("fig04_overhead");
    report.addValue("trace_overhead_frac", frac);
    report.write();
    return 0;
}
