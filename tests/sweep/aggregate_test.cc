/**
 * @file
 * Aggregation tests: Student-t table, mean/CI math, single-seed
 * degeneration (no _ci95 key), failed-row accounting and the BENCH
 * schema shape of the emitted report.
 */

#include "sweep/aggregate.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"

namespace proteus {
namespace sweep {
namespace {

StoreRowData
okRow(std::size_t job, const std::string& config,
      const std::string& scenario, std::uint64_t seed, double value)
{
    StoreRowData row;
    row.job = job;
    row.config = config;
    row.scenario = scenario;
    row.seed = seed;
    row.status = JobStatus::Ok;
    row.metric_names = {"throughput_qps"};
    row.metrics["throughput_qps"] = value;
    return row;
}

JsonValue
parseReport(const StoreData& store)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(aggregateBenchJson(store), &v, &error))
        << error;
    return v;
}

TEST(TCritical95Test, TableAndAsymptote)
{
    EXPECT_DOUBLE_EQ(tCritical95(1), 12.706);
    EXPECT_DOUBLE_EQ(tCritical95(2), 4.303);
    EXPECT_DOUBLE_EQ(tCritical95(9), 2.262);
    EXPECT_DOUBLE_EQ(tCritical95(30), 2.042);
    EXPECT_DOUBLE_EQ(tCritical95(31), 1.96);
    EXPECT_DOUBLE_EQ(tCritical95(1000), 1.96);
    EXPECT_DOUBLE_EQ(tCritical95(0), 0.0);
}

TEST(AggregateTest, MeanAndCiAcrossSeeds)
{
    StoreData store;
    store.header.sweep = "agg";
    store.header.git_sha = "cafe";
    store.rows.push_back(okRow(0, "proteus", "base", 1, 10.0));
    store.rows.push_back(okRow(1, "proteus", "base", 2, 12.0));
    store.rows.push_back(okRow(2, "proteus", "base", 3, 14.0));

    const JsonValue v = parseReport(store);
    EXPECT_EQ(v.at("bench").asString(), "agg");
    EXPECT_EQ(v.at("schema").asNumber(), 3.0);
    EXPECT_EQ(v.at("git_sha").asString(), "cafe");
    const JsonValue& g = v.at("results").at("proteus");
    EXPECT_EQ(g.at("seeds").asNumber(), 3.0);
    EXPECT_DOUBLE_EQ(g.at("throughput_qps").asNumber(), 12.0);
    // sd = 2, t(df=2) = 4.303 → half-width 4.303 * 2 / sqrt(3).
    EXPECT_NEAR(g.at("throughput_qps_ci95").asNumber(),
                4.303 * 2.0 / std::sqrt(3.0), 1e-12);
    EXPECT_EQ(v.at("results").at("failed_jobs").asNumber(), 0.0);
}

TEST(AggregateTest, SingleSeedOmitsCiKey)
{
    StoreData store;
    store.header.sweep = "agg";
    store.rows.push_back(okRow(0, "solo", "base", 1, 42.0));
    const JsonValue v = parseReport(store);
    const JsonValue& g = v.at("results").at("solo");
    EXPECT_EQ(g.at("seeds").asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(g.at("throughput_qps").asNumber(), 42.0);
    EXPECT_FALSE(g.has("throughput_qps_ci95"))
        << "single-seed groups must fall back to tolerance gating";
}

TEST(AggregateTest, FailedRowsAreCountedNotAveraged)
{
    StoreData store;
    store.header.sweep = "agg";
    store.rows.push_back(okRow(0, "proteus", "base", 1, 10.0));
    StoreRowData bad = okRow(1, "proteus", "base", 2, 99999.0);
    bad.status = JobStatus::Error;
    store.rows.push_back(bad);
    StoreRowData over = okRow(2, "proteus", "base", 3, 99999.0);
    over.status = JobStatus::Budget;
    store.rows.push_back(over);

    const JsonValue v = parseReport(store);
    const JsonValue& g = v.at("results").at("proteus");
    // Only the ok row contributes to the stats.
    EXPECT_EQ(g.at("seeds").asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(g.at("throughput_qps").asNumber(), 10.0);
    EXPECT_EQ(v.at("results").at("failed_jobs").asNumber(), 2.0);
}

TEST(AggregateTest, GroupsByConfigPlusNonBaseScenario)
{
    StoreData store;
    store.header.sweep = "agg";
    store.rows.push_back(okRow(0, "proteus", "base", 1, 1.0));
    store.rows.push_back(okRow(1, "proteus", "burst", 1, 2.0));
    store.rows.push_back(okRow(2, "clipper", "base", 1, 3.0));

    const JsonValue v = parseReport(store);
    const JsonValue& results = v.at("results");
    EXPECT_TRUE(results.has("proteus"));
    EXPECT_TRUE(results.has("proteus+burst"));
    EXPECT_TRUE(results.has("clipper"));
    EXPECT_DOUBLE_EQ(
        results.at("proteus+burst").at("throughput_qps").asNumber(),
        2.0);
}

}  // namespace
}  // namespace sweep
}  // namespace proteus
