/**
 * @file
 * Sweep matrix tests: deep-merge semantics, spec parsing defaults,
 * deterministic expansion order and the seed-axis overlay.
 */

#include "sweep/matrix.h"

#include <string>

#include <gtest/gtest.h>

#include "common/json.h"

namespace proteus {
namespace sweep {
namespace {

JsonValue
parse(const std::string& text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(text, &v, &error)) << error;
    return v;
}

TEST(JsonDeepMerge, ObjectsMergeRecursively)
{
    const JsonValue base = parse(
        R"({"a": 1, "nested": {"x": 1, "y": 2}, "kept": "yes"})");
    const JsonValue overlay =
        parse(R"({"a": 9, "nested": {"y": 7, "z": 3}})");
    const JsonValue merged = jsonDeepMerge(base, overlay);
    EXPECT_EQ(merged.at("a").asNumber(), 9.0);
    EXPECT_EQ(merged.at("kept").asString(), "yes");
    EXPECT_EQ(merged.at("nested").at("x").asNumber(), 1.0);
    EXPECT_EQ(merged.at("nested").at("y").asNumber(), 7.0);
    EXPECT_EQ(merged.at("nested").at("z").asNumber(), 3.0);
}

TEST(JsonDeepMerge, NonObjectOverlayReplacesOutright)
{
    const JsonValue base = parse(R"({"v": {"deep": 1}})");
    const JsonValue overlay = parse(R"({"v": 5})");
    const JsonValue merged = jsonDeepMerge(base, overlay);
    EXPECT_TRUE(merged.at("v").isNumber());
    EXPECT_EQ(merged.at("v").asNumber(), 5.0);
    // And arrays replace rather than concatenate.
    const JsonValue m2 = jsonDeepMerge(parse(R"({"a": [1, 2, 3]})"),
                                       parse(R"({"a": [9]})"));
    EXPECT_EQ(m2.at("a").asArray().size(), 1u);
}

TEST(SweepSpecTest, DefaultsFillMissingAxes)
{
    const SweepSpec spec =
        loadSweepSpec(parse(R"({"base": {"k": 1}})"));
    EXPECT_EQ(spec.name, "sweep");
    ASSERT_EQ(spec.configs.size(), 1u);
    EXPECT_EQ(spec.configs[0].name, "base");
    ASSERT_EQ(spec.scenarios.size(), 1u);
    EXPECT_EQ(spec.scenarios[0].name, "base");
    ASSERT_EQ(spec.seeds.size(), 1u);
    EXPECT_EQ(spec.seeds[0], 1u);
    EXPECT_EQ(spec.job_budget_ms, 0.0);
}

TEST(SweepSpecTest, SeedsAcceptBothListAndRangeForms)
{
    const SweepSpec list = loadSweepSpec(
        parse(R"({"base": {}, "seeds": [3, 1, 7]})"));
    ASSERT_EQ(list.seeds.size(), 3u);
    // List order is preserved, not sorted: it is the expansion order.
    EXPECT_EQ(list.seeds[0], 3u);
    EXPECT_EQ(list.seeds[1], 1u);
    EXPECT_EQ(list.seeds[2], 7u);

    const SweepSpec range = loadSweepSpec(
        parse(R"({"base": {}, "seeds": {"first": 5, "count": 4}})"));
    ASSERT_EQ(range.seeds.size(), 4u);
    EXPECT_EQ(range.seeds.front(), 5u);
    EXPECT_EQ(range.seeds.back(), 8u);
}

TEST(ExpandJobsTest, NestingOrderIsConfigsScenariosSeeds)
{
    const SweepSpec spec = loadSweepSpec(parse(R"({
        "name": "m",
        "base": {"qps": 10},
        "configs": [{"name": "a"}, {"name": "b"}],
        "scenarios": [{"name": "base"}, {"name": "burst"}],
        "seeds": [1, 2]
    })"));
    const auto jobs = expandJobs(spec);
    ASSERT_EQ(jobs.size(), 8u);
    // Job id is dense and equals the position.
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].id, i);
    // configs outermost, seeds innermost.
    EXPECT_EQ(jobs[0].config, "a");
    EXPECT_EQ(jobs[0].scenario, "base");
    EXPECT_EQ(jobs[0].seed, 1u);
    EXPECT_EQ(jobs[1].seed, 2u);
    EXPECT_EQ(jobs[2].scenario, "burst");
    EXPECT_EQ(jobs[4].config, "b");
    EXPECT_EQ(jobs[7].config, "b");
    EXPECT_EQ(jobs[7].scenario, "burst");
    EXPECT_EQ(jobs[7].seed, 2u);
}

TEST(ExpandJobsTest, OverridesLayerConfigThenScenario)
{
    const SweepSpec spec = loadSweepSpec(parse(R"({
        "base": {"qps": 10, "alg": "ilp"},
        "configs": [{"name": "c", "overrides": {"alg": "aimd",
                                                "qps": 20}}],
        "scenarios": [{"name": "s", "overrides": {"qps": 30}}]
    })"));
    const auto jobs = expandJobs(spec);
    ASSERT_EQ(jobs.size(), 1u);
    // Scenario overlay lands after the config overlay.
    EXPECT_EQ(jobs[0].experiment.at("qps").asNumber(), 30.0);
    EXPECT_EQ(jobs[0].experiment.at("alg").asString(), "aimd");
}

TEST(ExpandJobsTest, SeedAxisOwnsSystemAndWorkloadSeeds)
{
    const SweepSpec spec = loadSweepSpec(parse(R"({
        "base": {"seed": 99, "workload": {"kind": "steady",
                                          "seed": 99, "qps": 5}},
        "seeds": [7]
    })"));
    const auto jobs = expandJobs(spec);
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].experiment.at("seed").asNumber(), 7.0);
    EXPECT_EQ(jobs[0].experiment.at("workload").at("seed").asNumber(),
              7.0);
    // The rest of the workload object survives the overlay.
    EXPECT_EQ(jobs[0].experiment.at("workload").at("qps").asNumber(),
              5.0);
}

TEST(JobSpecTest, GroupNameFoldsBaseScenario)
{
    JobSpec job;
    job.config = "proteus";
    job.scenario = "base";
    EXPECT_EQ(job.groupName(), "proteus");
    job.scenario = "burst";
    EXPECT_EQ(job.groupName(), "proteus+burst");
}

}  // namespace
}  // namespace sweep
}  // namespace proteus
