/**
 * @file
 * Runner tests: the worker pool covers every job and rethrows, failure
 * injection (throwing and budget-exceeding jobs become failure rows
 * without poisoning siblings), and the acceptance criterion in
 * miniature — a multi-config multi-seed sweep whose merged store is
 * byte-identical on 1 and 4 threads.
 */

#include "sweep/runner.h"

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "sweep/matrix.h"

namespace proteus {
namespace sweep {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits)
        h = 0;
    parallelFor(hits.size(), 4, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelForTest, SerialWhenOneThreadOrEmpty)
{
    int calls = 0;
    parallelFor(3, 1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 3);
    parallelFor(0, 8, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 3);
}

TEST(ParallelForTest, RethrowsFirstExceptionAfterDrainingAllJobs)
{
    std::atomic<int> done{0};
    EXPECT_THROW(parallelFor(16, 4,
                             [&](std::size_t i) {
                                 if (i == 5)
                                     throw std::runtime_error("five");
                                 ++done;
                             }),
                 std::runtime_error);
    // Every non-throwing job still ran: an exception does not abort
    // the pool, it is reported after the join.
    EXPECT_EQ(done.load(), 15);
}

/** Identity row for index-keyed synthetic jobs. */
SweepRow
identityRow(std::size_t i)
{
    SweepRow row;
    row.job = i;
    row.config = "cfg";
    row.scenario = "base";
    row.seed = i + 1;
    return row;
}

TEST(RunJobsTest, ThrowingJobBecomesErrorRowWithoutPoisoningSiblings)
{
    RunnerOptions options;
    options.threads = 4;
    const SweepOutcome outcome = runJobs(
        8, options, StoreHeader{}, identityRow,
        [](JobContext& ctx, SweepRow* row) {
            if (ctx.job() == 3)
                throw std::runtime_error("injected failure");
            row->metrics = {{"value", fmtMetric(
                                 static_cast<double>(ctx.job()))}};
        });
    ASSERT_EQ(outcome.rows.size(), 8u);
    EXPECT_EQ(outcome.failed, 1u);
    for (const SweepRow& row : outcome.rows) {
        if (row.job == 3) {
            EXPECT_EQ(row.status, JobStatus::Error);
            EXPECT_EQ(row.error, "injected failure");
            EXPECT_TRUE(row.metrics.empty());
        } else {
            EXPECT_EQ(row.status, JobStatus::Ok) << "job " << row.job;
            ASSERT_EQ(row.metrics.size(), 1u);
        }
    }
}

TEST(RunJobsTest, BudgetExceedingJobBecomesBudgetRow)
{
    RunnerOptions options;
    options.threads = 2;
    options.job_budget_ms = 5.0;
    const SweepOutcome outcome = runJobs(
        4, options, StoreHeader{}, identityRow,
        [](JobContext& ctx, SweepRow* row) {
            if (ctx.job() == 1) {
                // Spin until the cooperative check trips.
                for (;;)
                    ctx.checkBudget();
            }
            row->metrics = {{"ok", fmtMetric(1.0)}};
        });
    ASSERT_EQ(outcome.rows.size(), 4u);
    EXPECT_EQ(outcome.failed, 1u);
    EXPECT_EQ(outcome.rows[1].status, JobStatus::Budget);
    EXPECT_NE(outcome.rows[1].error.find("exceeded"),
              std::string::npos);
    EXPECT_TRUE(outcome.rows[1].metrics.empty());
    for (const std::size_t ok : {0u, 2u, 3u})
        EXPECT_EQ(outcome.rows[ok].status, JobStatus::Ok);
}

TEST(RunJobsTest, StoreBytesIndependentOfThreadCount)
{
    const auto run = [](int threads) {
        RunnerOptions options;
        options.threads = threads;
        return runJobs(12, options, StoreHeader{}, identityRow,
                       [](JobContext& ctx, SweepRow* row) {
                           row->metrics = {
                               {"sq", fmtMetric(static_cast<double>(
                                          ctx.job() * ctx.job()))}};
                       })
            .store_text;
    };
    const std::string serial = run(1);
    EXPECT_EQ(serial, run(4));
    EXPECT_EQ(serial, run(8));
}

/** A tiny real sweep: mini zoo, 2 allocators × 2 seeds, 8 s traces. */
SweepSpec
miniSweepSpec()
{
    const std::string text = R"({
        "name": "runner_mini",
        "base": {
            "model_allocation": "ilp",
            "batching": "accscale",
            "cluster": {"cpu": 2, "gtx1080ti": 1, "v100": 1},
            "zoo": "mini",
            "workload": {"kind": "steady", "duration_sec": 8,
                         "qps": 30, "process": "poisson"}
        },
        "configs": [
            {"name": "proteus"},
            {"name": "clipper_ht",
             "overrides": {"model_allocation": "clipper_ht",
                           "batching": "aimd"}}
        ],
        "seeds": {"first": 1, "count": 2}
    })";
    JsonValue json;
    std::string error;
    EXPECT_TRUE(parseJson(text, &json, &error)) << error;
    return loadSweepSpec(json);
}

TEST(RunSweepTest, MergedStoreByteIdenticalAcrossThreadCounts)
{
    const SweepSpec spec = miniSweepSpec();
    RunnerOptions serial;
    serial.threads = 1;
    RunnerOptions pooled;
    pooled.threads = 4;
    const SweepOutcome a = runSweep(spec, serial);
    const SweepOutcome b = runSweep(spec, pooled);
    EXPECT_EQ(a.failed, 0u);
    EXPECT_EQ(b.failed, 0u);
    ASSERT_EQ(a.rows.size(), 4u);
    EXPECT_EQ(a.store_text, b.store_text)
        << "merged store must not depend on thread count";
}

TEST(RunSweepTest, RowsCarryIdentityAndRealMetrics)
{
    const SweepSpec spec = miniSweepSpec();
    RunnerOptions options;
    options.threads = 2;
    const SweepOutcome outcome = runSweep(spec, options);
    ASSERT_EQ(outcome.rows.size(), 4u);
    std::set<std::string> configs;
    for (const SweepRow& row : outcome.rows) {
        EXPECT_EQ(row.status, JobStatus::Ok);
        configs.insert(row.config);
        bool saw_arrivals = false;
        for (const auto& [name, value] : row.metrics) {
            if (name == "arrivals") {
                saw_arrivals = true;
                EXPECT_NE(value, "0");
            }
        }
        EXPECT_TRUE(saw_arrivals) << "job " << row.job;
    }
    EXPECT_EQ(configs.size(), 2u);
}

TEST(RunSweepTest, SpecBudgetAppliesWhenOptionsLeaveItUnset)
{
    SweepSpec spec = miniSweepSpec();
    // An absurdly small budget: every job must abort as "budget", and
    // the sweep still runs to completion with per-row isolation.
    spec.job_budget_ms = 0.0001;
    RunnerOptions options;
    options.threads = 2;
    const SweepOutcome outcome = runSweep(spec, options);
    ASSERT_EQ(outcome.rows.size(), 4u);
    EXPECT_EQ(outcome.failed, 4u);
    for (const SweepRow& row : outcome.rows)
        EXPECT_EQ(row.status, JobStatus::Budget) << "job " << row.job;
}

}  // namespace
}  // namespace sweep
}  // namespace proteus
