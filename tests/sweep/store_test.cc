/**
 * @file
 * Results-store tests: row/header serialization, the journal-vs-merged
 * split (wall stamps only in the journal), job-id merge order, the
 * read-back round trip and crash isolation (journal rows survive a
 * driver that never reaches the merge).
 */

#include "sweep/store.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace proteus {
namespace sweep {
namespace {

std::string
tempPath(const char* name)
{
    const auto dir = std::filesystem::temp_directory_path();
    return (dir / (std::string("proteus_store_test_") + name)).string();
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

SweepRow
okRow(std::size_t job, std::uint64_t seed)
{
    SweepRow row;
    row.job = job;
    row.config = "proteus";
    row.scenario = "base";
    row.seed = seed;
    row.metrics = {{"throughput_qps", fmtMetric(99.5)},
                   {"served", fmtMetric(std::uint64_t{1234})}};
    row.wall_ms = 12.5;
    return row;
}

TEST(FmtMetricTest, DoublesRoundTripLosslessly)
{
    EXPECT_EQ(fmtMetric(0.1), "0.10000000000000001");
    EXPECT_EQ(fmtMetric(2.0), "2");
    EXPECT_EQ(fmtMetric(std::uint64_t{18446744073709551615ull}),
              "18446744073709551615");
}

TEST(RowJsonTest, MergedRowCarriesNoWallClockBytes)
{
    const std::string line = rowJson(okRow(3, 7), /*journal=*/false);
    EXPECT_EQ(line,
              "{\"kind\":\"row\",\"job\":3,\"config\":\"proteus\","
              "\"scenario\":\"base\",\"seed\":7,\"status\":\"ok\","
              "\"metrics\":{\"throughput_qps\":99.5,"
              "\"served\":1234}}");
    EXPECT_EQ(line.find("wall_ms"), std::string::npos);
    EXPECT_EQ(line.find("at_unix"), std::string::npos);
}

TEST(RowJsonTest, JournalRowAddsWallStamps)
{
    const std::string line = rowJson(okRow(3, 7), /*journal=*/true);
    EXPECT_NE(line.find("\"wall_ms\":12.5"), std::string::npos);
    EXPECT_NE(line.find("\"at_unix\":"), std::string::npos);
}

TEST(RowJsonTest, FailedRowsCarryTheErrorAndNoMetrics)
{
    SweepRow row = okRow(1, 2);
    row.status = JobStatus::Error;
    row.error = "boom \"quoted\"\npath\\x";
    row.metrics.clear();
    const std::string line = rowJson(row, /*journal=*/false);
    EXPECT_NE(line.find("\"status\":\"error\""), std::string::npos);
    EXPECT_NE(line.find("\"error\":\"boom \\\"quoted\\\"\\npath\\\\x\""),
              std::string::npos);
    EXPECT_NE(line.find("\"metrics\":{}"), std::string::npos);

    row.status = JobStatus::Budget;
    EXPECT_NE(rowJson(row, false).find("\"status\":\"budget\""),
              std::string::npos);
}

TEST(HeaderJsonTest, CarriesIdentityAndMatrixShape)
{
    StoreHeader h;
    h.sweep = "smoke";
    h.git_sha = "abc123";
    h.jobs = 20;
    h.configs = 2;
    h.scenarios = 1;
    h.seeds = 10;
    EXPECT_EQ(headerJson(h),
              "{\"kind\":\"header\",\"store_schema\":1,"
              "\"sweep\":\"smoke\",\"git_sha\":\"abc123\",\"jobs\":20,"
              "\"configs\":2,\"scenarios\":1,\"seeds\":10}");
}

TEST(ResultsStoreTest, MergedTextSortsByJobIdRegardlessOfArrival)
{
    StoreHeader h;
    h.sweep = "order";
    ResultsStore store(h);
    // Completion order 2, 0, 1 — as a thread pool would produce.
    store.append(okRow(2, 30));
    store.append(okRow(0, 10));
    store.append(okRow(1, 20));

    const auto rows = store.sortedRows();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].job, 0u);
    EXPECT_EQ(rows[1].job, 1u);
    EXPECT_EQ(rows[2].job, 2u);

    // Same rows appended in a different order → identical bytes.
    ResultsStore store2(h);
    store2.append(okRow(1, 20));
    store2.append(okRow(2, 30));
    store2.append(okRow(0, 10));
    EXPECT_EQ(store.mergedText(), store2.mergedText());
}

TEST(ResultsStoreTest, FailedCountIgnoresOkRows)
{
    ResultsStore store(StoreHeader{});
    store.append(okRow(0, 1));
    SweepRow bad = okRow(1, 2);
    bad.status = JobStatus::Error;
    store.append(bad);
    SweepRow over = okRow(2, 3);
    over.status = JobStatus::Budget;
    store.append(over);
    EXPECT_EQ(store.failedCount(), 2u);
}

TEST(ResultsStoreTest, JournalSurvivesWithoutMerge)
{
    const std::string journal = tempPath("journal.jsonl");
    std::remove(journal.c_str());
    {
        StoreHeader h;
        h.sweep = "crashy";
        ResultsStore store(h, journal);
        store.append(okRow(0, 1));
        store.append(okRow(1, 2));
        // No writeMerged(): simulate the driver dying mid-sweep.
    }
    const std::string text = slurp(journal);
    EXPECT_NE(text.find("\"kind\":\"header\""), std::string::npos);
    EXPECT_NE(text.find("\"job\":0"), std::string::npos);
    EXPECT_NE(text.find("\"job\":1"), std::string::npos);
    EXPECT_NE(text.find("\"wall_ms\":"), std::string::npos);
    std::remove(journal.c_str());
}

TEST(ReadStoreTest, RoundTripsMergedStore)
{
    StoreHeader h;
    h.sweep = "rt";
    h.git_sha = "deadbeef";
    h.jobs = 2;
    h.configs = 1;
    h.scenarios = 1;
    h.seeds = 2;
    ResultsStore store(h);
    store.append(okRow(0, 1));
    SweepRow bad = okRow(1, 2);
    bad.status = JobStatus::Error;
    bad.error = "exploded";
    bad.metrics.clear();
    store.append(bad);

    const std::string path = tempPath("merged.jsonl");
    ASSERT_TRUE(store.writeMerged(path));

    StoreData data;
    std::string error;
    ASSERT_TRUE(readStore(path, &data, &error)) << error;
    EXPECT_EQ(data.store_schema, kStoreSchemaVersion);
    EXPECT_EQ(data.header.sweep, "rt");
    EXPECT_EQ(data.header.git_sha, "deadbeef");
    EXPECT_EQ(data.header.jobs, 2u);
    ASSERT_EQ(data.rows.size(), 2u);
    EXPECT_EQ(data.rows[0].status, JobStatus::Ok);
    EXPECT_DOUBLE_EQ(data.rows[0].metrics.at("throughput_qps"), 99.5);
    EXPECT_DOUBLE_EQ(data.rows[0].metrics.at("served"), 1234.0);
    EXPECT_EQ(data.rows[1].status, JobStatus::Error);
    EXPECT_EQ(data.rows[1].error, "exploded");
    EXPECT_TRUE(data.rows[1].metrics.empty());
    std::remove(path.c_str());
}

TEST(ReadStoreTest, RejectsMissingHeaderAndWrongSchema)
{
    const std::string path = tempPath("bad.jsonl");
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << "{\"kind\":\"row\",\"job\":0}\n";
    }
    StoreData data;
    std::string error;
    EXPECT_FALSE(readStore(path, &data, &error));
    EXPECT_NE(error.find("no header"), std::string::npos);

    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << "{\"kind\":\"header\",\"store_schema\":99}\n";
    }
    StoreData d2;
    EXPECT_FALSE(readStore(path, &d2, &error));
    EXPECT_NE(error.find("store_schema"), std::string::npos);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace sweep
}  // namespace proteus
