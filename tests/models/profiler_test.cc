#include "models/profiler.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace proteus {
namespace {

using testing::miniWorld;
using testing::paperWorld;
using testing::World;

TEST(ProfilerTest, SloIsMultiplierTimesFastestAnchorLatency)
{
    ProfilerOptions opts;
    opts.slo_multiplier = 2.0;
    World w = miniWorld(4, 2, 2, opts);
    // Default anchor: the slowest device type (CPU-like).
    for (FamilyId f = 0; f < w.registry.numFamilies(); ++f) {
        Duration fastest = kTimeMax;
        for (VariantId v : w.registry.variantsOf(f)) {
            fastest = std::min(fastest,
                               w.cost->latency(w.types.cpu, v, 1));
        }
        EXPECT_EQ(w.profiles->slo(f), 2 * fastest)
            << w.registry.family(f).name;
    }
}

TEST(ProfilerTest, MaxBatchRespectsHalfSloRule)
{
    World w = miniWorld();
    for (VariantId v = 0; v < w.registry.numVariants(); ++v) {
        FamilyId f = w.registry.familyOf(v);
        Duration budget = w.profiles->slo(f) / 2;
        for (DeviceTypeId t = 0; t < w.cluster.numTypes(); ++t) {
            const BatchProfile& prof = w.profiles->get(v, t);
            if (!prof.usable())
                continue;
            // The chosen batch fits the budget ...
            EXPECT_LE(prof.latencyFor(prof.max_batch), budget);
            // ... and is maximal (one more would exceed it or the
            // memory/cap limits).
            if (prof.max_batch <
                static_cast<int>(prof.latency.size())) {
                EXPECT_GT(prof.latencyFor(prof.max_batch + 1), budget);
            }
        }
    }
}

TEST(ProfilerTest, MaxBatchRespectsMemory)
{
    World w = miniWorld();
    for (VariantId v = 0; v < w.registry.numVariants(); ++v) {
        for (DeviceTypeId t = 0; t < w.cluster.numTypes(); ++t) {
            const BatchProfile& prof = w.profiles->get(v, t);
            EXPECT_LE(prof.max_batch, w.cost->maxMemoryBatch(t, v));
        }
    }
}

TEST(ProfilerTest, PeakQpsConsistent)
{
    World w = miniWorld();
    for (VariantId v = 0; v < w.registry.numVariants(); ++v) {
        for (DeviceTypeId t = 0; t < w.cluster.numTypes(); ++t) {
            const BatchProfile& prof = w.profiles->get(v, t);
            if (!prof.usable()) {
                EXPECT_EQ(prof.peak_qps, 0.0);
                continue;
            }
            double expected =
                prof.max_batch /
                toSeconds(prof.latencyFor(prof.max_batch));
            EXPECT_NEAR(prof.peak_qps, expected, 1e-9);
        }
    }
}

TEST(ProfilerTest, SmallerVariantsNeverSlowerPeak)
{
    // Within a family and device type, the least accurate variant
    // must offer at least the throughput of the most accurate one —
    // that is the whole premise of accuracy scaling (Fig. 1a).
    World w = miniWorld();
    for (FamilyId f = 0; f < w.registry.numFamilies(); ++f) {
        for (DeviceTypeId t = 0; t < w.cluster.numTypes(); ++t) {
            const auto& small =
                w.profiles->get(w.registry.leastAccurate(f), t);
            const auto& big =
                w.profiles->get(w.registry.mostAccurate(f), t);
            if (big.usable()) {
                EXPECT_GE(small.peak_qps, big.peak_qps);
            }
        }
    }
}

TEST(ProfilerTest, HigherSloMultiplierNeverReducesCapacity)
{
    ProfilerOptions lo_opts;
    lo_opts.slo_multiplier = 1.5;
    ProfilerOptions hi_opts;
    hi_opts.slo_multiplier = 3.0;
    World lo = miniWorld(4, 2, 2, lo_opts);
    World hi = miniWorld(4, 2, 2, hi_opts);
    for (VariantId v = 0; v < lo.registry.numVariants(); ++v) {
        for (DeviceTypeId t = 0; t < lo.cluster.numTypes(); ++t) {
            EXPECT_GE(hi.profiles->get(v, t).peak_qps,
                      lo.profiles->get(v, t).peak_qps);
        }
    }
}

TEST(ProfilerTest, PaperZooHasUsableVariantPerFamilySomewhere)
{
    World w = paperWorld();
    for (FamilyId f = 0; f < w.registry.numFamilies(); ++f) {
        bool usable = false;
        for (VariantId v : w.registry.variantsOf(f)) {
            for (DeviceTypeId t = 0; t < w.cluster.numTypes(); ++t)
                usable |= w.profiles->get(v, t).usable();
        }
        EXPECT_TRUE(usable) << w.registry.family(f).name;
    }
}

TEST(ProfilerTest, BatchCapHonored)
{
    ProfilerOptions opts;
    opts.max_batch_cap = 8;
    World w = miniWorld(4, 2, 2, opts);
    for (VariantId v = 0; v < w.registry.numVariants(); ++v) {
        for (DeviceTypeId t = 0; t < w.cluster.numTypes(); ++t)
            EXPECT_LE(w.profiles->get(v, t).max_batch, 8);
    }
}

TEST(ProfilerTest, AnchorTypeOverride)
{
    ProfilerOptions anchored;
    anchored.slo_anchor_type = 2;  // v100 (third standard type)
    World w = miniWorld(4, 2, 2, anchored);
    World def = miniWorld();
    // Anchoring on the fastest device tightens every SLO.
    for (FamilyId f = 0; f < w.registry.numFamilies(); ++f)
        EXPECT_LT(w.profiles->slo(f), def.profiles->slo(f));
}

}  // namespace
}  // namespace proteus
