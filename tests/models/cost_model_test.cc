#include "models/cost_model.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace proteus {
namespace {

using testing::miniWorld;
using testing::World;

TEST(CostModelTest, LatencyIncreasesWithBatch)
{
    World w = miniWorld();
    for (VariantId v = 0; v < w.registry.numVariants(); ++v) {
        for (DeviceTypeId t = 0; t < w.cluster.numTypes(); ++t) {
            double prev = 0.0;
            for (int b = 1; b <= 16; ++b) {
                double lat = w.cost->latencyMs(t, v, b);
                EXPECT_GT(lat, prev);
                prev = lat;
            }
        }
    }
}

TEST(CostModelTest, DeviceSpeedOrderingMatchesFig1a)
{
    // V100 faster than GTX 1080 Ti faster than CPU for every variant
    // (batch 1), as in Fig. 1a.
    World w = miniWorld();
    for (VariantId v = 0; v < w.registry.numVariants(); ++v) {
        double cpu = w.cost->latencyMs(w.types.cpu, v, 1);
        double gtx = w.cost->latencyMs(w.types.gtx1080ti, v, 1);
        double v100 = w.cost->latencyMs(w.types.v100, v, 1);
        EXPECT_LT(v100, gtx) << w.registry.variant(v).name;
        EXPECT_LT(gtx, cpu) << w.registry.variant(v).name;
    }
}

TEST(CostModelTest, BiggerVariantIsSlower)
{
    World w = miniWorld();
    FamilyId resnet = w.registry.findFamily("resnet");
    VariantId small = w.registry.leastAccurate(resnet);
    VariantId big = w.registry.mostAccurate(resnet);
    for (DeviceTypeId t = 0; t < w.cluster.numTypes(); ++t) {
        EXPECT_LT(w.cost->latencyMs(t, small, 1),
                  w.cost->latencyMs(t, big, 1));
    }
}

TEST(CostModelTest, GpusAmortizeBatchingBetterThanCpu)
{
    World w = miniWorld();
    VariantId v = w.registry.mostAccurate(w.registry.findFamily("resnet"));
    auto marginal = [&](DeviceTypeId t) {
        double l1 = w.cost->latencyMs(t, v, 1);
        double l9 = w.cost->latencyMs(t, v, 9);
        // Marginal per-item cost of batching relative to batch-1
        // compute time.
        return (l9 - l1) / 8.0;
    };
    const auto& cpu_info = w.cluster.typeInfo(w.types.cpu);
    const auto& v100_info = w.cluster.typeInfo(w.types.v100);
    double cpu_item = w.registry.variant(v).gflops /
                      cpu_info.gflops_per_ms;
    double v100_item = w.registry.variant(v).gflops /
                       v100_info.gflops_per_ms;
    // Relative amortization factor = marginal / single-item time.
    EXPECT_LT(marginal(w.types.v100) / v100_item,
              marginal(w.types.cpu) / cpu_item);
}

TEST(CostModelTest, WeightsAndActivationsArePositive)
{
    World w = miniWorld();
    for (VariantId v = 0; v < w.registry.numVariants(); ++v) {
        EXPECT_GT(w.cost->weightsMb(v), 0.0);
        EXPECT_GT(w.cost->activationMb(v), 0.0);
        // fp32: 4 MB per million parameters.
        EXPECT_DOUBLE_EQ(w.cost->weightsMb(v),
                         w.registry.variant(v).params_m * 4.0);
    }
}

TEST(CostModelTest, MaxMemoryBatchShrinksWithModelSize)
{
    World w = miniWorld();
    FamilyId f = w.registry.findFamily("efficientnet");
    VariantId small = w.registry.leastAccurate(f);
    VariantId big = w.registry.mostAccurate(f);
    EXPECT_GE(w.cost->maxMemoryBatch(w.types.v100, small),
              w.cost->maxMemoryBatch(w.types.v100, big));
}

TEST(CostModelTest, OversizedModelDoesNotFit)
{
    World w = miniWorld();
    // t5-11b weighs ~44 GB; build a full-zoo registry to find it.
    ModelRegistry reg = paperRegistry();
    CostModel cost(w.cluster, reg);
    FamilyId t5 = reg.findFamily("t5");
    VariantId t5_11b = reg.mostAccurate(t5);
    EXPECT_EQ(cost.maxMemoryBatch(w.types.v100, t5_11b), 0);
    EXPECT_EQ(cost.maxMemoryBatch(w.types.gtx1080ti, t5_11b), 0);
}

TEST(CostModelTest, LoadTimeGrowsWithWeights)
{
    World w = miniWorld();
    FamilyId f = w.registry.findFamily("resnet");
    EXPECT_LT(w.cost->loadTime(w.types.v100, w.registry.leastAccurate(f)),
              w.cost->loadTime(w.types.v100, w.registry.mostAccurate(f)));
    EXPECT_GT(w.cost->loadTime(w.types.v100, w.registry.leastAccurate(f)),
              0);
}

TEST(CostModelTest, LatencyDurationMatchesMs)
{
    World w = miniWorld();
    VariantId v = 0;
    double ms = w.cost->latencyMs(w.types.cpu, v, 4);
    EXPECT_EQ(w.cost->latency(w.types.cpu, v, 4), millis(ms));
}

}  // namespace
}  // namespace proteus
