#include "models/model.h"

#include <gtest/gtest.h>

#include <set>

namespace proteus {
namespace {

TEST(ModelZooTest, PaperZooHasNineFamilies)
{
    auto zoo = paperModelZoo();
    ASSERT_EQ(zoo.size(), 9u);
    std::set<std::string> names;
    for (const auto& f : zoo)
        names.insert(f.name);
    for (const char* expected :
         {"resnet", "densenet", "resnest", "efficientnet", "mobilenet",
          "yolov5", "bert", "t5", "gpt2"}) {
        EXPECT_TRUE(names.count(expected)) << expected;
    }
}

TEST(ModelZooTest, VariantCountsMatchTable3)
{
    ModelRegistry reg = paperRegistry();
    EXPECT_EQ(reg.variantsOf(reg.findFamily("resnet")).size(), 5u);
    EXPECT_EQ(reg.variantsOf(reg.findFamily("densenet")).size(), 4u);
    EXPECT_EQ(reg.variantsOf(reg.findFamily("resnest")).size(), 4u);
    EXPECT_EQ(reg.variantsOf(reg.findFamily("efficientnet")).size(), 8u);
    EXPECT_EQ(reg.variantsOf(reg.findFamily("mobilenet")).size(), 4u);
    EXPECT_EQ(reg.variantsOf(reg.findFamily("yolov5")).size(), 5u);
    EXPECT_EQ(reg.variantsOf(reg.findFamily("bert")).size(), 12u);
    EXPECT_EQ(reg.variantsOf(reg.findFamily("t5")).size(), 5u);
    EXPECT_EQ(reg.variantsOf(reg.findFamily("gpt2")).size(), 4u);
}

TEST(ModelZooTest, AccuracyNormalizedWithinFamilies)
{
    ModelRegistry reg = paperRegistry();
    for (FamilyId f = 0; f < reg.numFamilies(); ++f) {
        double best = 0.0;
        for (VariantId v : reg.variantsOf(f)) {
            double acc = reg.variant(v).accuracy;
            // Paper: normalized accuracy spans roughly 80..100.
            EXPECT_GE(acc, 80.0) << reg.variant(v).name;
            EXPECT_LE(acc, 100.0) << reg.variant(v).name;
            best = std::max(best, acc);
        }
        EXPECT_DOUBLE_EQ(best, 100.0) << reg.family(f).name;
    }
}

TEST(ModelRegistryTest, VariantsSortedByAccuracy)
{
    ModelRegistry reg = paperRegistry();
    for (FamilyId f = 0; f < reg.numFamilies(); ++f) {
        const auto& vs = reg.variantsOf(f);
        for (std::size_t i = 1; i < vs.size(); ++i) {
            EXPECT_LE(reg.variant(vs[i - 1]).accuracy,
                      reg.variant(vs[i]).accuracy);
        }
        EXPECT_EQ(reg.leastAccurate(f), vs.front());
        EXPECT_EQ(reg.mostAccurate(f), vs.back());
    }
}

TEST(ModelRegistryTest, FamilyOfRoundTrips)
{
    ModelRegistry reg = paperRegistry();
    for (FamilyId f = 0; f < reg.numFamilies(); ++f) {
        for (VariantId v : reg.variantsOf(f))
            EXPECT_EQ(reg.familyOf(v), f);
    }
}

TEST(ModelRegistryTest, GlobalVariantIdsAreDense)
{
    ModelRegistry reg = paperRegistry();
    std::set<VariantId> seen;
    for (FamilyId f = 0; f < reg.numFamilies(); ++f) {
        for (VariantId v : reg.variantsOf(f))
            seen.insert(v);
    }
    EXPECT_EQ(seen.size(), reg.numVariants());
    EXPECT_EQ(*seen.rbegin(), reg.numVariants() - 1);
}

TEST(ModelRegistryTest, FindFamilyByName)
{
    ModelRegistry reg = paperRegistry();
    FamilyId f = reg.findFamily("bert");
    EXPECT_EQ(reg.family(f).name, "bert");
    EXPECT_EQ(reg.family(f).task, "sentiment-analysis");
}

TEST(ModelZooTest, MiniZooIsSubset)
{
    auto mini = miniModelZoo();
    EXPECT_EQ(mini.size(), 3u);
    EXPECT_EQ(mini[0].name, "resnet");
}

TEST(ModelZooTest, LargerVariantsCostMore)
{
    ModelRegistry reg = paperRegistry();
    // Within each family, higher accuracy should not come for free:
    // the most accurate variant must cost more FLOPs than the least.
    for (FamilyId f = 0; f < reg.numFamilies(); ++f) {
        EXPECT_GT(reg.variant(reg.mostAccurate(f)).gflops,
                  reg.variant(reg.leastAccurate(f)).gflops)
            << reg.family(f).name;
    }
}

}  // namespace
}  // namespace proteus
