#include "workload/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace proteus {
namespace {

TEST(GeneratorsTest, SteadyTraceHitsTargetRate)
{
    for (auto p : {ArrivalProcess::Uniform, ArrivalProcess::Poisson,
                   ArrivalProcess::Gamma}) {
        Trace t = steadyTrace(3, 200.0, seconds(60.0), p, 7);
        EXPECT_NEAR(t.averageQps(), 200.0, 12.0) << toString(p);
    }
}

TEST(GeneratorsTest, UniformArrivalsAreEvenlySpaced)
{
    Trace t = steadySingleFamilyTrace(0, 100.0, seconds(5.0),
                                      ArrivalProcess::Uniform);
    const auto& e = t.events();
    for (std::size_t i = 1; i < e.size(); ++i)
        EXPECT_NEAR(toSeconds(e[i].at - e[i - 1].at), 0.01, 2e-6);
}

TEST(GeneratorsTest, GammaIsBurstierThanPoisson)
{
    auto cv2 = [](const Trace& t) {
        OnlineStats s;
        const auto& e = t.events();
        for (std::size_t i = 1; i < e.size(); ++i)
            s.add(toSeconds(e[i].at - e[i - 1].at));
        double mean = s.mean();
        return s.variance() / (mean * mean);
    };
    Trace poisson = steadySingleFamilyTrace(
        0, 100.0, seconds(120.0), ArrivalProcess::Poisson, 11);
    Trace gamma = steadySingleFamilyTrace(
        0, 100.0, seconds(120.0), ArrivalProcess::Gamma, 11);
    // Squared coefficient of variation: ~1 for Poisson, ~1/shape = 20
    // for Gamma(0.05).
    EXPECT_NEAR(cv2(poisson), 1.0, 0.3);
    EXPECT_GT(cv2(gamma), 5.0);
}

TEST(GeneratorsTest, ZipfSplitFavorsFirstFamilies)
{
    Trace t = steadyTrace(9, 500.0, seconds(60.0),
                          ArrivalProcess::Poisson, 13);
    auto d = t.demand(9, 0, t.endTime());
    for (std::size_t f = 1; f < 9; ++f)
        EXPECT_GT(d[f - 1], d[f] * 0.8) << f;
    EXPECT_GT(d[0], d[8]);
}

TEST(GeneratorsTest, DiurnalTraceHasPeaksAboveBase)
{
    DiurnalTraceConfig cfg;
    cfg.duration = seconds(240.0);
    cfg.base_qps = 100.0;
    cfg.diurnal_amplitude_qps = 300.0;
    cfg.cycles = 1.0;
    Trace t = diurnalTrace(4, cfg);
    // Peak at mid-trace, trough at the edges.
    auto start = t.demand(4, 0, seconds(20.0));
    auto mid = t.demand(4, seconds(110.0), seconds(130.0));
    double start_total = start[0] + start[1] + start[2] + start[3];
    double mid_total = mid[0] + mid[1] + mid[2] + mid[3];
    EXPECT_GT(mid_total, start_total * 2.0);
}

TEST(GeneratorsTest, BurstTraceAlternatesPhases)
{
    BurstTraceConfig cfg;
    cfg.duration = seconds(120.0);
    cfg.low_qps = 50.0;
    cfg.high_qps = 500.0;
    cfg.phase = seconds(30.0);
    Trace t = burstTrace(2, cfg);
    auto low = t.demand(2, seconds(5.0), seconds(25.0));
    auto high = t.demand(2, seconds(35.0), seconds(55.0));
    EXPECT_NEAR(low[0] + low[1], 50.0, 15.0);
    EXPECT_NEAR(high[0] + high[1], 500.0, 50.0);
}

TEST(GeneratorsTest, SameSeedSameTrace)
{
    DiurnalTraceConfig cfg;
    cfg.duration = seconds(30.0);
    Trace a = diurnalTrace(3, cfg);
    Trace b = diurnalTrace(3, cfg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events()[i].at, b.events()[i].at);
        EXPECT_EQ(a.events()[i].family, b.events()[i].family);
    }
}

TEST(GeneratorsTest, DifferentSeedsDiffer)
{
    DiurnalTraceConfig a_cfg;
    a_cfg.duration = seconds(30.0);
    a_cfg.seed = 1;
    DiurnalTraceConfig b_cfg = a_cfg;
    b_cfg.seed = 2;
    Trace a = diurnalTrace(3, a_cfg);
    Trace b = diurnalTrace(3, b_cfg);
    EXPECT_NE(a.size(), b.size());
}

TEST(GeneratorsTest, TracesAreTimeSorted)
{
    Trace t = steadyTrace(5, 300.0, seconds(30.0),
                          ArrivalProcess::Gamma, 17);
    const auto& e = t.events();
    for (std::size_t i = 1; i < e.size(); ++i)
        EXPECT_LE(e[i - 1].at, e[i].at);
}

TEST(GeneratorsTest, FamiliesWithinRange)
{
    Trace t = diurnalTrace(4, DiurnalTraceConfig{seconds(30.0)});
    for (const auto& e : t.events())
        EXPECT_LT(e.family, 4u);
}

}  // namespace
}  // namespace proteus
