#include "workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace proteus {
namespace {

TEST(TraceTest, EmptyTrace)
{
    Trace t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.endTime(), 0);
    EXPECT_DOUBLE_EQ(t.averageQps(), 0.0);
}

TEST(TraceTest, ConstructorSortsEvents)
{
    Trace t({{seconds(3.0), 0}, {seconds(1.0), 1}, {seconds(2.0), 0}});
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t.events()[0].at, seconds(1.0));
    EXPECT_EQ(t.events()[0].family, 1u);
    EXPECT_EQ(t.endTime(), seconds(3.0));
}

TEST(TraceTest, AppendAndSort)
{
    Trace t;
    t.append(seconds(5.0), 0);
    t.append(seconds(1.0), 1);
    t.sort();
    EXPECT_EQ(t.events().front().family, 1u);
}

TEST(TraceTest, DemandWindowCountsPerFamily)
{
    Trace t;
    for (int i = 0; i < 10; ++i)
        t.append(seconds(0.1 * i), 0);
    for (int i = 0; i < 5; ++i)
        t.append(seconds(0.2 * i), 1);
    t.sort();
    auto d = t.demand(2, 0, seconds(1.0));
    EXPECT_DOUBLE_EQ(d[0], 10.0);
    EXPECT_DOUBLE_EQ(d[1], 5.0);
}

TEST(TraceTest, DemandWindowExcludesOutside)
{
    Trace t({{seconds(0.5), 0}, {seconds(1.5), 0}, {seconds(2.5), 0}});
    auto d = t.demand(1, seconds(1.0), seconds(2.0));
    EXPECT_DOUBLE_EQ(d[0], 1.0);
}

TEST(TraceTest, AverageQps)
{
    Trace t;
    for (int i = 1; i <= 100; ++i)
        t.append(micros(i * 100000), 0);  // 10 QPS for 10 s
    t.sort();
    EXPECT_NEAR(t.averageQps(), 10.0, 0.1);
}

TEST(TraceTest, CsvRoundtripFormat)
{
    Trace t({{123, 2}});
    std::ostringstream oss;
    t.writeCsv(oss);
    EXPECT_EQ(oss.str(), "time_us,family\n123,2\n");
}

TEST(TraceTest, StableSortPreservesEqualTimes)
{
    Trace t;
    t.append(seconds(1.0), 0);
    t.append(seconds(1.0), 1);
    t.append(seconds(1.0), 2);
    t.sort();
    EXPECT_EQ(t.events()[0].family, 0u);
    EXPECT_EQ(t.events()[1].family, 1u);
    EXPECT_EQ(t.events()[2].family, 2u);
}

}  // namespace
}  // namespace proteus
