/**
 * @file
 * End-to-end pipeline serving tests: a 3-stage vision chain running
 * through the full ServingSystem. Checks the stage-router lifecycle
 * (forward counts, terminal accounting, e2e accuracy product) and
 * 20-seed byte-identical determinism of pipeline runs.
 */

#include <gtest/gtest.h>

#include <cstdarg>
#include <cstdio>
#include <string>

#include "core/serving_system.h"
#include "models/model.h"
#include "testing/fixtures.h"
#include "workload/generators.h"

namespace proteus {
namespace {

void
appendF(std::string* out, const char* fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out->append(buf);
}

PipelineSpec
visionPipeline()
{
    PipelineSpec spec;
    spec.name = "vision";
    spec.slo = millis(60.0);
    spec.stages.push_back({"detect", "resnet", {}});
    spec.stages.push_back({"classify", "efficientnet", {"detect"}});
    spec.stages.push_back({"annotate", "mobilenet", {"classify"}});
    return spec;
}

/** The fig12 cluster: enough GPUs that the chain actually flows. */
Cluster
pipelineCluster()
{
    Cluster cluster;
    StandardTypes types = addStandardTypes(&cluster);
    cluster.addDevices(types.cpu, 8);
    cluster.addDevices(types.gtx1080ti, 4);
    cluster.addDevices(types.v100, 4);
    return cluster;
}

RunResult
pipelineRun(std::uint64_t seed)
{
    Cluster cluster = pipelineCluster();
    ModelRegistry reg;
    for (const auto& fam : miniModelZoo())
        reg.registerFamily(fam);

    SystemConfig cfg;
    cfg.seed = seed;
    cfg.pipelines = {visionPipeline()};
    cfg.pipeline_joint_planning = true;

    PipelineTraceConfig wl;
    wl.qps = 80.0;
    wl.duration = seconds(20.0);
    wl.seed = seed;
    Trace trace = pipelineTrace({0}, wl);

    ServingSystem system(&cluster, &reg, cfg);
    return system.run(trace);
}

TEST(PipelineSystem, ForwardsEveryCompletedStage)
{
    RunResult r = pipelineRun(7);
    ASSERT_EQ(r.pipelines.size(), 1u);
    EXPECT_EQ(r.pipelines[0].name, "vision");
    const PipelineStats& stats = r.pipelines[0].stats;
    ASSERT_EQ(stats.stages.size(), 3u);

    // Queries flow: forwarded hops exist and every e2e completion
    // traversed both intermediate stages.
    EXPECT_GT(r.summary.arrivals, 0u);
    EXPECT_GT(stats.served, 0u);
    EXPECT_GT(r.forwarded, 0u);
    std::uint64_t stage_fwd = 0;
    for (const StageStats& st : stats.stages)
        stage_fwd += st.forwarded;
    EXPECT_EQ(stage_fwd, r.forwarded);
    // The last stage never forwards.
    EXPECT_EQ(stats.stages.back().forwarded, 0u);
    // A query that completes e2e was forwarded at stages 0 and 1.
    EXPECT_GE(r.forwarded, 2 * stats.served);
}

TEST(PipelineSystem, TerminalAccountingConservesArrivals)
{
    RunResult r = pipelineRun(8);
    ASSERT_EQ(r.pipelines.size(), 1u);
    const PipelineStats& stats = r.pipelines[0].stats;
    // Every entry arrival terminates exactly once: served within the
    // e2e SLO, served late, or dropped/shed at some stage.
    EXPECT_EQ(stats.served + stats.served_late + stats.dropped,
              r.summary.arrivals);
    // The e2e numbers are what the summary (entry-family remap) sees.
    EXPECT_EQ(stats.served, r.summary.served);
    EXPECT_EQ(stats.served_late, r.summary.served_late);
}

TEST(PipelineSystem, EffectiveAccuracyIsAStageProduct)
{
    RunResult r = pipelineRun(9);
    // Normalized accuracies run 80-100% per family; the e2e number is
    // the product across three stages, so it must sit strictly below
    // 100% (no stage serves its best variant everywhere under the
    // tight SLO) yet above the all-worst-variant floor of ~66%.
    EXPECT_GT(r.summary.effective_accuracy, 66.0);
    EXPECT_LT(r.summary.effective_accuracy, 100.0);
}

/** Canonical byte serialization of a pipeline run. */
std::string
fingerprint(const RunResult& r)
{
    std::string s;
    appendF(&s, "arr=%llu served=%llu late=%llu drop=%llu shed=%llu\n",
            (unsigned long long)r.summary.arrivals,
            (unsigned long long)r.summary.served,
            (unsigned long long)r.summary.served_late,
            (unsigned long long)r.summary.dropped,
            (unsigned long long)r.shed);
    appendF(&s, "tput=%.17g acc=%.17g viol=%.17g fwd=%llu\n",
            r.summary.avg_throughput_qps, r.summary.effective_accuracy,
            r.summary.slo_violation_ratio,
            (unsigned long long)r.forwarded);
    appendF(&s, "reallocs=%d batch=%.17g\n", r.reallocations,
            r.mean_batch_size);
    for (const PipelineRunStats& p : r.pipelines) {
        appendF(&s, "p=%s s=%llu l=%llu d=%llu\n", p.name.c_str(),
                (unsigned long long)p.stats.served,
                (unsigned long long)p.stats.served_late,
                (unsigned long long)p.stats.dropped);
        for (const StageStats& st : p.stats.stages) {
            appendF(&s, "  f=%llu d=%llu\n",
                    (unsigned long long)st.forwarded,
                    (unsigned long long)st.dropped);
        }
    }
    for (const auto& snap : r.timeline) {
        appendF(&s, "t=%lld a=%llu s=%llu l=%llu d=%llu acc=%.17g\n",
                (long long)snap.start,
                (unsigned long long)snap.total.arrivals,
                (unsigned long long)snap.total.served,
                (unsigned long long)snap.total.served_late,
                (unsigned long long)snap.total.dropped,
                snap.total.accuracy_sum);
    }
    return s;
}

std::string
seededPipelineRun(std::uint64_t seed)
{
    return fingerprint(pipelineRun(seed));
}

TEST(PipelineSystem, SameSeedByteIdenticalAcross20Seeds)
{
    // Shared harness: 20 seeds, each run twice, pairs spread across
    // the sweep runner's worker pool (tests/testing/fixtures.h).
    testing::expectSeedSweepByteIdentical(seededPipelineRun);
}

TEST(PipelineSystem, DifferentSeedsDiffer)
{
    EXPECT_NE(seededPipelineRun(200), seededPipelineRun(201));
}

}  // namespace
}  // namespace proteus
