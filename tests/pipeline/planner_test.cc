/**
 * @file
 * Pipeline budget planner tests: the largest-remainder splitBudget
 * helper, derived vs explicit end-to-end SLOs, and the joint vs
 * equal-split budget decomposition on the mini zoo.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "models/cost_model.h"
#include "pipeline/pipeline.h"
#include "pipeline/planner.h"
#include "testing/fixtures.h"

namespace proteus {
namespace {

Duration
sum(const std::vector<Duration>& v)
{
    return std::accumulate(v.begin(), v.end(), Duration{0});
}

TEST(SplitBudget, SumsExactlyToTotal)
{
    const std::vector<Duration> weights = {3, 3, 3};
    const std::vector<Duration> budgets = splitBudget(100, weights);
    ASSERT_EQ(budgets.size(), 3u);
    EXPECT_EQ(sum(budgets), 100);
}

TEST(SplitBudget, ProportionalToWeights)
{
    const std::vector<Duration> budgets =
        splitBudget(1000, {600, 300, 100});
    ASSERT_EQ(budgets.size(), 3u);
    EXPECT_EQ(budgets[0], 600);
    EXPECT_EQ(budgets[1], 300);
    EXPECT_EQ(budgets[2], 100);
}

TEST(SplitBudget, RemainderGoesToEarlierStageOnTies)
{
    // 100 over three equal weights: 33/33/33 leaves 1 over; the
    // largest-remainder rule breaks the three-way tie toward the
    // earliest stage.
    const std::vector<Duration> budgets = splitBudget(100, {1, 1, 1});
    EXPECT_EQ(sum(budgets), 100);
    EXPECT_EQ(budgets[0], 34);
    EXPECT_EQ(budgets[1], 33);
    EXPECT_EQ(budgets[2], 33);
}

TEST(SplitBudget, ZeroWeightsSplitEqually)
{
    const std::vector<Duration> budgets = splitBudget(90, {0, 0, 0});
    ASSERT_EQ(budgets.size(), 3u);
    EXPECT_EQ(budgets[0], 30);
    EXPECT_EQ(budgets[1], 30);
    EXPECT_EQ(budgets[2], 30);
}

TEST(SplitBudget, SingleStageTakesAll)
{
    const std::vector<Duration> budgets = splitBudget(12345, {7});
    ASSERT_EQ(budgets.size(), 1u);
    EXPECT_EQ(budgets[0], 12345);
}

/** Shared fixture: the 3-stage vision chain compiled on miniWorld. */
struct PlannerWorld {
    testing::World world = testing::miniWorld();
    CompiledPipelines pipelines;

    explicit PlannerWorld(Duration slo = 0)
    {
        PipelineSpec spec;
        spec.name = "vision";
        spec.slo = slo;
        spec.stages.push_back({"detect", "resnet", {}});
        spec.stages.push_back(
            {"classify", "efficientnet", {"detect"}});
        spec.stages.push_back(
            {"annotate", "mobilenet", {"classify"}});
        std::string error;
        EXPECT_TRUE(compilePipelines({spec}, world.registry,
                                     &pipelines, &error))
            << error;
    }

    void
    plan(bool joint)
    {
        PipelinePlannerOptions opts;
        opts.joint = joint;
        CostModel cost(world.cluster, world.registry);
        planPipelineBudgets(&pipelines, world.registry, world.cluster,
                            cost, opts);
    }
};

TEST(PipelinePlanner, BudgetsSumToExplicitSlo)
{
    PlannerWorld pw(millis(60.0));
    pw.plan(/*joint=*/true);
    const CompiledPipeline& pipe = pw.pipelines.pipeline(0);
    EXPECT_EQ(pipe.slo, millis(60.0));
    Duration total = 0;
    for (const CompiledStage& st : pipe.stages) {
        EXPECT_GT(st.budget, 0);
        total += st.budget;
    }
    EXPECT_EQ(total, pipe.slo);
}

TEST(PipelinePlanner, DerivedSloIsPositiveAndBudgetsSum)
{
    PlannerWorld pw;  // slo = 0 -> derive from anchors
    pw.plan(/*joint=*/true);
    const CompiledPipeline& pipe = pw.pipelines.pipeline(0);
    EXPECT_GT(pipe.slo, 0);
    Duration total = 0;
    for (const CompiledStage& st : pipe.stages)
        total += st.budget;
    EXPECT_EQ(total, pipe.slo);
}

TEST(PipelinePlanner, IndependentSplitsEqually)
{
    PlannerWorld pw(millis(60.0));
    pw.plan(/*joint=*/false);
    const CompiledPipeline& pipe = pw.pipelines.pipeline(0);
    // Equal split of 60 ms over 3 stages: 20 ms each.
    for (const CompiledStage& st : pipe.stages)
        EXPECT_EQ(st.budget, millis(20.0));
}

TEST(PipelinePlanner, JointSkewsBudgetsTowardSlowStages)
{
    PlannerWorld pw(millis(60.0));
    pw.plan(/*joint=*/true);
    const CompiledPipeline& pipe = pw.pipelines.pipeline(0);
    // resnet's best batch-1 latency dominates efficientnet's and
    // mobilenet's, so the joint split must give detect strictly more
    // than the equal share (and more than either downstream stage).
    EXPECT_GT(pipe.stages[0].budget, millis(20.0));
    EXPECT_GT(pipe.stages[0].budget, pipe.stages[1].budget);
    EXPECT_GT(pipe.stages[0].budget, pipe.stages[2].budget);
}

TEST(PipelinePlanner, JointAndIndependentAgreeOnSlo)
{
    PlannerWorld joint(millis(60.0));
    joint.plan(/*joint=*/true);
    PlannerWorld indep(millis(60.0));
    indep.plan(/*joint=*/false);
    EXPECT_EQ(joint.pipelines.pipeline(0).slo,
              indep.pipelines.pipeline(0).slo);
}

TEST(PipelinePlanner, InfeasibleSloStillSumsToSlo)
{
    // 1 ms e2e SLO: no variant combination fits. The planner falls
    // back to the min-floor weights; budgets must still sum exactly.
    PlannerWorld pw(millis(1.0));
    pw.plan(/*joint=*/true);
    const CompiledPipeline& pipe = pw.pipelines.pipeline(0);
    Duration total = 0;
    for (const CompiledStage& st : pipe.stages)
        total += st.budget;
    EXPECT_EQ(total, millis(1.0));
}

}  // namespace
}  // namespace proteus
