/**
 * @file
 * PipelineSpec compilation tests: DAG validation (cycles, duplicate
 * names, unknown families/deps, family reuse) and the fixed
 * topological order with its family -> (pipeline, stage) lookup.
 */

#include <gtest/gtest.h>

#include <string>

#include "models/model.h"
#include "pipeline/pipeline.h"

namespace proteus {
namespace {

ModelRegistry
miniRegistry()
{
    ModelRegistry reg;
    for (const auto& fam : miniModelZoo())
        reg.registerFamily(fam);
    return reg;
}

PipelineSpec
chainSpec()
{
    PipelineSpec spec;
    spec.name = "vision";
    spec.stages.push_back({"detect", "resnet", {}});
    spec.stages.push_back({"classify", "efficientnet", {"detect"}});
    spec.stages.push_back({"annotate", "mobilenet", {"classify"}});
    return spec;
}

TEST(PipelineCompile, ChainCompilesInTopoOrder)
{
    ModelRegistry reg = miniRegistry();
    CompiledPipelines out;
    std::string error;
    ASSERT_TRUE(compilePipelines({chainSpec()}, reg, &out, &error))
        << error;
    ASSERT_EQ(out.size(), 1u);
    const CompiledPipeline& pipe = out.pipeline(0);
    ASSERT_EQ(pipe.stages.size(), 3u);
    EXPECT_EQ(pipe.stages[0].name, "detect");
    EXPECT_EQ(pipe.stages[1].name, "classify");
    EXPECT_EQ(pipe.stages[2].name, "annotate");
}

TEST(PipelineCompile, DeclarationOrderDoesNotMatter)
{
    // Stages declared backwards: the compiler must emit dependency
    // order, not declaration order, and the order must be a fixed
    // function of the spec (deterministic across runs).
    PipelineSpec spec;
    spec.name = "vision";
    spec.stages.push_back({"annotate", "mobilenet", {"classify"}});
    spec.stages.push_back({"classify", "efficientnet", {"detect"}});
    spec.stages.push_back({"detect", "resnet", {}});
    ModelRegistry reg = miniRegistry();
    CompiledPipelines out;
    std::string error;
    ASSERT_TRUE(compilePipelines({spec}, reg, &out, &error)) << error;
    const CompiledPipeline& pipe = out.pipeline(0);
    EXPECT_EQ(pipe.stages[0].name, "detect");
    EXPECT_EQ(pipe.stages[1].name, "classify");
    EXPECT_EQ(pipe.stages[2].name, "annotate");
}

TEST(PipelineCompile, FamilyLookupMatchesStages)
{
    ModelRegistry reg = miniRegistry();
    CompiledPipelines out;
    std::string error;
    ASSERT_TRUE(compilePipelines({chainSpec()}, reg, &out, &error));
    // mini zoo: resnet=0, efficientnet=1, mobilenet=2.
    EXPECT_EQ(out.pipelineOf(0), 0u);
    EXPECT_EQ(out.stageOf(0), 0u);
    EXPECT_EQ(out.stageOf(1), 1u);
    EXPECT_EQ(out.stageOf(2), 2u);
    EXPECT_EQ(out.entryFamily(0), 0u);
}

TEST(PipelineCompile, RejectsCycle)
{
    PipelineSpec spec;
    spec.name = "loop";
    spec.stages.push_back({"a", "resnet", {"c"}});
    spec.stages.push_back({"b", "efficientnet", {"a"}});
    spec.stages.push_back({"c", "mobilenet", {"b"}});
    ModelRegistry reg = miniRegistry();
    CompiledPipelines out;
    std::string error;
    EXPECT_FALSE(compilePipelines({spec}, reg, &out, &error));
    EXPECT_NE(error.find("cycle"), std::string::npos) << error;
}

TEST(PipelineCompile, RejectsSelfDependency)
{
    PipelineSpec spec;
    spec.name = "self";
    spec.stages.push_back({"a", "resnet", {"a"}});
    ModelRegistry reg = miniRegistry();
    CompiledPipelines out;
    std::string error;
    EXPECT_FALSE(compilePipelines({spec}, reg, &out, &error));
    EXPECT_FALSE(error.empty());
}

TEST(PipelineCompile, RejectsDuplicateStageNames)
{
    PipelineSpec spec;
    spec.name = "dup";
    spec.stages.push_back({"a", "resnet", {}});
    spec.stages.push_back({"a", "efficientnet", {}});
    ModelRegistry reg = miniRegistry();
    CompiledPipelines out;
    std::string error;
    EXPECT_FALSE(compilePipelines({spec}, reg, &out, &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(PipelineCompile, RejectsDuplicatePipelineNames)
{
    PipelineSpec a;
    a.name = "same";
    a.stages.push_back({"a", "resnet", {}});
    PipelineSpec b;
    b.name = "same";
    b.stages.push_back({"b", "mobilenet", {}});
    ModelRegistry reg = miniRegistry();
    CompiledPipelines out;
    std::string error;
    EXPECT_FALSE(compilePipelines({a, b}, reg, &out, &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(PipelineCompile, RejectsUnknownFamily)
{
    PipelineSpec spec;
    spec.name = "ghost";
    spec.stages.push_back({"a", "bert", {}});
    ModelRegistry reg = miniRegistry();
    CompiledPipelines out;
    std::string error;
    EXPECT_FALSE(compilePipelines({spec}, reg, &out, &error));
    EXPECT_NE(error.find("bert"), std::string::npos) << error;
}

TEST(PipelineCompile, RejectsUnknownDependency)
{
    PipelineSpec spec;
    spec.name = "dangling";
    spec.stages.push_back({"a", "resnet", {"nope"}});
    ModelRegistry reg = miniRegistry();
    CompiledPipelines out;
    std::string error;
    EXPECT_FALSE(compilePipelines({spec}, reg, &out, &error));
    EXPECT_NE(error.find("nope"), std::string::npos) << error;
}

TEST(PipelineCompile, RejectsFamilyInTwoPipelines)
{
    PipelineSpec a;
    a.name = "one";
    a.stages.push_back({"a", "resnet", {}});
    PipelineSpec b;
    b.name = "two";
    b.stages.push_back({"b", "resnet", {}});
    ModelRegistry reg = miniRegistry();
    CompiledPipelines out;
    std::string error;
    EXPECT_FALSE(compilePipelines({a, b}, reg, &out, &error));
    EXPECT_NE(error.find("more than one"), std::string::npos) << error;
}

TEST(PipelineCompile, RejectsEmptyStages)
{
    PipelineSpec spec;
    spec.name = "empty";
    ModelRegistry reg = miniRegistry();
    CompiledPipelines out;
    std::string error;
    EXPECT_FALSE(compilePipelines({spec}, reg, &out, &error));
    EXPECT_FALSE(error.empty());
}

TEST(PipelineCompile, UnstagedFamiliesLookupAsInvalid)
{
    PipelineSpec spec;
    spec.name = "partial";
    spec.stages.push_back({"a", "resnet", {}});
    ModelRegistry reg = miniRegistry();
    CompiledPipelines out;
    std::string error;
    ASSERT_TRUE(compilePipelines({spec}, reg, &out, &error)) << error;
    EXPECT_EQ(out.pipelineOf(1), kInvalidId);  // efficientnet
    EXPECT_EQ(out.pipelineOf(2), kInvalidId);  // mobilenet
}

}  // namespace
}  // namespace proteus
