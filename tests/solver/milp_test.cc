#include "solver/milp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "solver/lp.h"

namespace proteus {
namespace {

TEST(MilpTest, PureLpPassesThrough)
{
    LinearProgram lp;
    int x = lp.addVariable(0.0, 4.5, 2.0, "x");
    (void)x;
    Solution sol = MilpSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 9.0, 1e-8);
}

TEST(MilpTest, KnapsackSmall)
{
    // max 10a + 6b + 4c s.t. a + b + c <= 2 (binary): pick a and b.
    LinearProgram lp;
    int a = lp.addIntVariable(0.0, 1.0, 10.0, "a");
    int b = lp.addIntVariable(0.0, 1.0, 6.0, "b");
    int c = lp.addIntVariable(0.0, 1.0, 4.0, "c");
    lp.addConstraint({{a, 1.0}, {b, 1.0}, {c, 1.0}},
                     RowSense::LessEqual, 2.0);
    Solution sol = MilpSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 16.0, 1e-6);
    EXPECT_NEAR(sol.x[a], 1.0, 1e-6);
    EXPECT_NEAR(sol.x[b], 1.0, 1e-6);
    EXPECT_NEAR(sol.x[c], 0.0, 1e-6);
}

TEST(MilpTest, IntegralityMatters)
{
    // max x + y s.t. 2x + 2y <= 3, x,y binary.
    // LP relaxation gives 1.5; integral optimum is 1.
    LinearProgram lp;
    int x = lp.addIntVariable(0.0, 1.0, 1.0, "x");
    int y = lp.addIntVariable(0.0, 1.0, 1.0, "y");
    lp.addConstraint({{x, 2.0}, {y, 2.0}}, RowSense::LessEqual, 3.0);
    Solution sol = MilpSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 1.0, 1e-6);
}

TEST(MilpTest, MixedIntegerContinuous)
{
    // max 5n + w s.t. w <= 2.5 n, n <= 3 integer, w <= 4 continuous.
    // n=3 -> w=min(7.5, 4)=4, obj 19.
    LinearProgram lp;
    int n = lp.addIntVariable(0.0, 3.0, 5.0, "n");
    int w = lp.addVariable(0.0, 4.0, 1.0, "w");
    lp.addConstraint({{w, 1.0}, {n, -2.5}}, RowSense::LessEqual, 0.0);
    Solution sol = MilpSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 19.0, 1e-6);
    EXPECT_NEAR(sol.x[n], 3.0, 1e-6);
    EXPECT_NEAR(sol.x[w], 4.0, 1e-6);
}

TEST(MilpTest, InfeasibleIntegerProblem)
{
    // 0.4 <= x <= 0.6 with x integer: no integer point.
    LinearProgram lp;
    int x = lp.addIntVariable(0.0, 1.0, 1.0, "x");
    lp.addConstraint({{x, 1.0}}, RowSense::GreaterEqual, 0.4);
    lp.addConstraint({{x, 1.0}}, RowSense::LessEqual, 0.6);
    Solution sol = MilpSolver().solve(lp);
    EXPECT_EQ(sol.status, SolveStatus::Infeasible);
}

TEST(MilpTest, MinimizationWithIntegers)
{
    // min 3n + 2m s.t. n + m >= 3.5, integers: candidates (0,4)=8,
    // (1,3)=9, (2,2)=10, (3,1)=11, (4,0)=12 -> best 8.
    LinearProgram lp(ObjSense::Minimize);
    int n = lp.addIntVariable(0.0, 10.0, 3.0, "n");
    int m = lp.addIntVariable(0.0, 10.0, 2.0, "m");
    lp.addConstraint({{n, 1.0}, {m, 1.0}}, RowSense::GreaterEqual, 3.5);
    Solution sol = MilpSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 8.0, 1e-6);
    EXPECT_NEAR(sol.x[n], 0.0, 1e-6);
    EXPECT_NEAR(sol.x[m], 4.0, 1e-6);
}

TEST(MilpTest, EqualityWithIntegers)
{
    // max 7a + 5b + 3c s.t. a + b + c = 2 (binary) -> a=b=1.
    LinearProgram lp;
    int a = lp.addIntVariable(0.0, 1.0, 7.0, "a");
    int b = lp.addIntVariable(0.0, 1.0, 5.0, "b");
    int c = lp.addIntVariable(0.0, 1.0, 3.0, "c");
    lp.addConstraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, RowSense::Equal, 2.0);
    Solution sol = MilpSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 12.0, 1e-6);
}

TEST(MilpTest, AllocationShapedMilp)
{
    // The integral version of the LP in SimplexTest: n_b=2, n_a=1.
    LinearProgram lp;
    int na = lp.addIntVariable(0.0, 3.0, 0.0, "n_a");
    int nb = lp.addIntVariable(0.0, 3.0, 0.0, "n_b");
    int wa = lp.addVariable(0.0, kInf, 90.0, "w_a");
    int wb = lp.addVariable(0.0, kInf, 100.0, "w_b");
    lp.addConstraint({{wa, 1.0}, {na, -50.0}}, RowSense::LessEqual, 0.0);
    lp.addConstraint({{wb, 1.0}, {nb, -20.0}}, RowSense::LessEqual, 0.0);
    lp.addConstraint({{na, 1.0}, {nb, 1.0}}, RowSense::LessEqual, 3.0);
    lp.addConstraint({{wa, 1.0}, {wb, 1.0}}, RowSense::Equal, 70.0);
    Solution sol = MilpSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 6700.0, 1e-5);
    EXPECT_NEAR(sol.x[na], 1.0, 1e-6);
    EXPECT_NEAR(sol.x[nb], 2.0, 1e-6);
}

TEST(MilpTest, BoundReportedForOptimal)
{
    LinearProgram lp;
    int a = lp.addIntVariable(0.0, 1.0, 3.0, "a");
    lp.addConstraint({{a, 1.0}}, RowSense::LessEqual, 1.0);
    Solution sol = MilpSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.bound, sol.objective, 1e-6);
}

TEST(MilpTest, NodeLimitReturnsFeasibleOrLimit)
{
    MilpSolver::Options opts;
    opts.max_nodes = 1;
    LinearProgram lp;
    int x = lp.addIntVariable(0.0, 10.0, 1.0, "x");
    int y = lp.addIntVariable(0.0, 10.0, 1.0, "y");
    lp.addConstraint({{x, 3.0}, {y, 7.0}}, RowSense::LessEqual, 20.5);
    Solution sol = MilpSolver(opts).solve(lp);
    // With one node we may or may not find an incumbent via the
    // rounding heuristic, but we must not claim optimality wrongly
    // unless the gap closed.
    if (sol.status == SolveStatus::Optimal || sol.hasSolution()) {
        EXPECT_TRUE(lp.isFeasible(sol.x, 1e-6));
        for (int j : lp.integerVariables())
            EXPECT_NEAR(sol.x[j], std::round(sol.x[j]), 1e-6);
    } else {
        EXPECT_EQ(sol.status, SolveStatus::IterLimit);
    }
}

/** A branchy knapsack whose LP relaxation is fractional. */
LinearProgram
branchyKnapsack()
{
    LinearProgram lp;
    const double profit[] = {9.0, 8.0, 7.5, 7.0, 6.5, 6.0, 5.5, 5.0};
    const double weight[] = {3.1, 2.9, 2.7, 2.5, 2.3, 2.1, 1.9, 1.7};
    std::vector<std::pair<int, double>> row;
    for (int i = 0; i < 8; ++i) {
        std::string name = "x";
        name += std::to_string(i);
        int v = lp.addIntVariable(0.0, 1.0, profit[i], name);
        row.emplace_back(v, weight[i]);
    }
    lp.addConstraint(row, RowSense::LessEqual, 9.05);
    return lp;
}

TEST(MilpTest, WorkBudgetTruncatesDeterministically)
{
    MilpSolver::Options opts;
    opts.work_limit_iters = 4;  // binds before optimality is proven
    LinearProgram lp = branchyKnapsack();

    MilpSolver a(opts);
    Solution sa = a.solve(lp);
    MilpSolver b(opts);
    Solution sb = b.solve(lp);

    // Work-truncated solves are machine-independent: identical
    // status, incumbent and iteration count on every repetition.
    EXPECT_EQ(sa.status, sb.status);
    EXPECT_EQ(sa.objective, sb.objective);
    EXPECT_EQ(sa.x, sb.x);
    EXPECT_EQ(a.lastStats().simplex_iterations,
              b.lastStats().simplex_iterations);
    EXPECT_NE(sa.status, SolveStatus::Optimal);
    if (sa.hasSolution()) {
        EXPECT_TRUE(lp.isFeasible(sa.x, 1e-6));
    }
}

TEST(MilpTest, WorkBudgetLargeMatchesUnbudgeted)
{
    LinearProgram lp = branchyKnapsack();
    Solution free_solve = MilpSolver().solve(lp);
    ASSERT_EQ(free_solve.status, SolveStatus::Optimal);

    MilpSolver::Options opts;
    opts.work_limit_iters = 1 << 20;
    Solution budgeted = MilpSolver(opts).solve(lp);
    ASSERT_EQ(budgeted.status, SolveStatus::Optimal);
    EXPECT_EQ(budgeted.objective, free_solve.objective);
    EXPECT_EQ(budgeted.x, free_solve.x);
}

TEST(MilpTest, WorkBudgetStopsSearchEarly)
{
    LinearProgram lp = branchyKnapsack();
    MilpSolver free_solver;
    free_solver.solve(lp);
    const std::int64_t full_nodes = free_solver.lastStats().nodes;
    ASSERT_GT(full_nodes, 1);

    MilpSolver::Options opts;
    opts.work_limit_iters = 4;
    MilpSolver budgeted(opts);
    budgeted.solve(lp);
    EXPECT_LT(budgeted.lastStats().nodes, full_nodes);
}

}  // namespace
}  // namespace proteus
