/**
 * @file
 * Property-based tests for the LP/MILP solvers: random instances are
 * cross-checked against brute-force enumeration (MILP) and against
 * feasibility/optimality certificates (LP).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "solver/lp.h"
#include "solver/milp.h"
#include "solver/simplex.h"

namespace proteus {
namespace {

/** Random small LP with <= rows and box-bounded variables. */
LinearProgram
randomBoxLp(Rng& rng, int nvars, int nrows)
{
    LinearProgram lp;
    for (int j = 0; j < nvars; ++j)
        lp.addVariable(0.0, rng.uniform(1.0, 10.0),
                       rng.uniform(-5.0, 5.0));
    for (int i = 0; i < nrows; ++i) {
        std::vector<Coeff> coeffs;
        for (int j = 0; j < nvars; ++j) {
            if (rng.uniform() < 0.7)
                coeffs.emplace_back(j, rng.uniform(-3.0, 3.0));
        }
        if (coeffs.empty())
            coeffs.emplace_back(0, 1.0);
        // rhs chosen so the origin-ish corner stays feasible often.
        lp.addConstraint(std::move(coeffs), RowSense::LessEqual,
                         rng.uniform(0.0, 20.0));
    }
    return lp;
}

class RandomLpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpTest, SolutionIsFeasibleAndVertexLike)
{
    Rng rng(1000 + GetParam());
    LinearProgram lp = randomBoxLp(rng, 6, 5);
    Solution sol = SimplexSolver().solve(lp);
    // Box bounds ensure boundedness; the origin corner (all lower
    // bounds) satisfies every row with rhs >= 0, so feasible too.
    ASSERT_EQ(sol.status, SolveStatus::Optimal) << "seed " << GetParam();
    EXPECT_TRUE(lp.isFeasible(sol.x, 1e-6)) << "seed " << GetParam();
}

TEST_P(RandomLpTest, NoFeasiblePointBeatsReportedOptimum)
{
    // Sample many random feasible-ish points; none may exceed the
    // simplex optimum (a cheap probabilistic optimality certificate).
    Rng rng(2000 + GetParam());
    LinearProgram lp = randomBoxLp(rng, 5, 4);
    Solution sol = SimplexSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    for (int k = 0; k < 500; ++k) {
        std::vector<double> x(5);
        for (int j = 0; j < 5; ++j)
            x[j] = rng.uniform(lp.variable(j).lo, lp.variable(j).hi);
        if (lp.isFeasible(x, 1e-9)) {
            EXPECT_LE(lp.objectiveValue(x), sol.objective + 1e-6)
                << "seed " << GetParam();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpTest, ::testing::Range(0, 25));

/** Brute-force optimum of a pure-binary MILP by enumeration. */
double
bruteForceBinary(const LinearProgram& lp, bool* feasible)
{
    int n = lp.numVariables();
    double best = -kInf;
    *feasible = false;
    for (int mask = 0; mask < (1 << n); ++mask) {
        std::vector<double> x(n);
        for (int j = 0; j < n; ++j)
            x[j] = (mask >> j) & 1 ? 1.0 : 0.0;
        if (!lp.isFeasible(x, 1e-9))
            continue;
        *feasible = true;
        best = std::max(best, lp.objectiveValue(x));
    }
    return best;
}

class RandomMilpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomMilpTest, MatchesBruteForceOnBinaries)
{
    Rng rng(3000 + GetParam());
    const int n = 8;
    LinearProgram lp;
    for (int j = 0; j < n; ++j)
        lp.addIntVariable(0.0, 1.0, rng.uniform(-4.0, 8.0));
    for (int i = 0; i < 4; ++i) {
        std::vector<Coeff> coeffs;
        for (int j = 0; j < n; ++j) {
            if (rng.uniform() < 0.6)
                coeffs.emplace_back(j, rng.uniform(-2.0, 4.0));
        }
        if (coeffs.empty())
            coeffs.emplace_back(0, 1.0);
        lp.addConstraint(std::move(coeffs), RowSense::LessEqual,
                         rng.uniform(1.0, 8.0));
    }
    bool feasible = false;
    double brute = bruteForceBinary(lp, &feasible);
    Solution sol = MilpSolver().solve(lp);
    ASSERT_TRUE(feasible);  // all-zero is feasible given rhs >= 1
    ASSERT_EQ(sol.status, SolveStatus::Optimal) << "seed " << GetParam();
    EXPECT_NEAR(sol.objective, brute, 1e-5) << "seed " << GetParam();
    EXPECT_TRUE(lp.isFeasible(sol.x, 1e-6));
    for (int j : lp.integerVariables())
        EXPECT_NEAR(sol.x[j], std::round(sol.x[j]), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMilpTest, ::testing::Range(0, 20));

class RandomMixedMilpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomMixedMilpTest, IntegerSolutionNeverBeatsRelaxation)
{
    Rng rng(4000 + GetParam());
    LinearProgram lp = randomBoxLp(rng, 6, 5);
    // Make half of the variables integer.
    LinearProgram milp;
    for (int j = 0; j < lp.numVariables(); ++j) {
        const auto& v = lp.variable(j);
        if (j % 2 == 0)
            milp.addIntVariable(v.lo, std::floor(v.hi), v.obj);
        else
            milp.addVariable(v.lo, v.hi, v.obj);
    }
    for (int i = 0; i < lp.numConstraints(); ++i) {
        const auto& row = lp.row(i);
        milp.addConstraint(row.coeffs, row.sense, row.rhs);
    }
    Solution relax = SimplexSolver().solve(milp);
    Solution integral = MilpSolver().solve(milp);
    ASSERT_EQ(relax.status, SolveStatus::Optimal);
    ASSERT_EQ(integral.status, SolveStatus::Optimal)
        << "seed " << GetParam();
    EXPECT_LE(integral.objective, relax.objective + 1e-6);
    EXPECT_TRUE(milp.isFeasible(integral.x, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMixedMilpTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace proteus
