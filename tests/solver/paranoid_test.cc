/**
 * @file
 * Deep solver verification: random LPs solved with the paranoid
 * tableau self-check enabled (every iteration re-verifies A x = b and
 * variable bounds), including instances that require phase 1 and
 * branch-and-bound bound overrides.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "solver/milp.h"
#include "solver/simplex.h"

namespace proteus {
namespace {

SimplexSolver
paranoidSolver()
{
    SimplexSolver::Options opts;
    opts.paranoid = true;
    return SimplexSolver(opts);
}

class ParanoidLpTest : public ::testing::TestWithParam<int> {};

TEST_P(ParanoidLpTest, MixedSenseRowsSurviveSelfCheck)
{
    Rng rng(5000 + GetParam());
    const int n = 6;
    LinearProgram lp;
    for (int j = 0; j < n; ++j)
        lp.addVariable(rng.uniform(-2.0, 0.0), rng.uniform(1.0, 8.0),
                       rng.uniform(-5.0, 5.0));
    for (int i = 0; i < 5; ++i) {
        std::vector<Coeff> coeffs;
        for (int j = 0; j < n; ++j) {
            if (rng.uniform() < 0.7)
                coeffs.emplace_back(j, rng.uniform(-3.0, 3.0));
        }
        if (coeffs.empty())
            coeffs.emplace_back(0, 1.0);
        double r = rng.uniform();
        RowSense sense = r < 0.4 ? RowSense::LessEqual
                         : r < 0.7 ? RowSense::GreaterEqual
                                   : RowSense::Equal;
        lp.addConstraint(std::move(coeffs), sense,
                         rng.uniform(-4.0, 8.0));
    }
    SimplexSolver solver = paranoidSolver();
    Solution sol = solver.solve(lp);
    // With equality/>= rows, instances may be infeasible; whenever a
    // solution is claimed it must verify (the paranoid checks already
    // panicked if the tableau drifted).
    if (sol.status == SolveStatus::Optimal) {
        EXPECT_TRUE(lp.isFeasible(sol.x, 1e-6)) << "seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParanoidLpTest, ::testing::Range(0, 40));

class ParanoidBranchTest : public ::testing::TestWithParam<int> {};

TEST_P(ParanoidBranchTest, BoundOverridesSurviveSelfCheck)
{
    Rng rng(6000 + GetParam());
    const int n = 6;
    LinearProgram lp;
    for (int j = 0; j < n; ++j)
        lp.addVariable(0.0, 3.0, rng.uniform(-4.0, 6.0));
    for (int i = 0; i < 4; ++i) {
        std::vector<Coeff> coeffs;
        for (int j = 0; j < n; ++j) {
            if (rng.uniform() < 0.6)
                coeffs.emplace_back(j, rng.uniform(-2.0, 4.0));
        }
        if (coeffs.empty())
            coeffs.emplace_back(0, 1.0);
        lp.addConstraint(std::move(coeffs), RowSense::LessEqual,
                         rng.uniform(2.0, 10.0));
    }
    // Random branch-style bound fixings.
    Rng r2(GetParam() * 131 + 7);
    std::vector<std::pair<double, double>> bounds(n, {0.0, 3.0});
    for (int j = 0; j < n; ++j) {
        int k = static_cast<int>(r2.uniformInt(0, 3));
        if (k == 1)
            bounds[j] = {0.0, 1.0};
        else if (k == 2)
            bounds[j] = {2.0, 2.0};
    }
    SimplexSolver solver = paranoidSolver();
    Solution sol = solver.solve(lp, &bounds);
    if (sol.status == SolveStatus::Optimal) {
        for (int j = 0; j < n; ++j) {
            EXPECT_GE(sol.x[j], bounds[j].first - 1e-6);
            EXPECT_LE(sol.x[j], bounds[j].second + 1e-6);
        }
        EXPECT_TRUE(lp.isFeasible(sol.x, 1e-6));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParanoidBranchTest,
                         ::testing::Range(0, 40));

TEST(ParanoidMilpTest, AllocationShapedInstanceVerifies)
{
    // The allocation-MILP shape with the paranoid LP underneath.
    LinearProgram lp;
    int na = lp.addIntVariable(0.0, 4.0, -1e-4, "n_a");
    int nb = lp.addIntVariable(0.0, 4.0, -1e-4, "n_b");
    int wa = lp.addVariable(0.0, kInf, 88.0, "w_a");
    int wb = lp.addVariable(0.0, kInf, 100.0, "w_b");
    lp.addConstraint({{wa, 1.0}, {na, -40.0}}, RowSense::LessEqual, 0.0);
    lp.addConstraint({{wb, 1.0}, {nb, -15.0}}, RowSense::LessEqual, 0.0);
    lp.addConstraint({{na, 1.0}, {nb, 1.0}}, RowSense::LessEqual, 4.0);
    lp.addConstraint({{wa, 1.0}, {wb, 1.0}}, RowSense::Equal, 90.0);
    MilpSolver::Options opts;
    opts.lp.paranoid = true;
    Solution sol = MilpSolver(opts).solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_TRUE(lp.isFeasible(sol.x, 1e-6));
    EXPECT_NEAR(sol.x[na] + sol.x[nb], 4.0, 1e-6);
}

}  // namespace
}  // namespace proteus
