#include "solver/simplex.h"

#include <gtest/gtest.h>

#include "solver/lp.h"

namespace proteus {
namespace {

TEST(SimplexTest, TrivialBoundedMaximum)
{
    // max 3x, 0 <= x <= 5  ->  x = 5.
    LinearProgram lp;
    lp.addVariable(0.0, 5.0, 3.0, "x");
    SimplexSolver s;
    Solution sol = s.solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 15.0, 1e-9);
    EXPECT_NEAR(sol.x[0], 5.0, 1e-9);
}

TEST(SimplexTest, ClassicTwoVariable)
{
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
    // Known optimum: x = 2, y = 6, obj = 36.
    LinearProgram lp;
    int x = lp.addVariable(0.0, kInf, 3.0, "x");
    int y = lp.addVariable(0.0, kInf, 5.0, "y");
    lp.addConstraint({{x, 1.0}}, RowSense::LessEqual, 4.0);
    lp.addConstraint({{y, 2.0}}, RowSense::LessEqual, 12.0);
    lp.addConstraint({{x, 3.0}, {y, 2.0}}, RowSense::LessEqual, 18.0);
    Solution sol = SimplexSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 36.0, 1e-8);
    EXPECT_NEAR(sol.x[x], 2.0, 1e-8);
    EXPECT_NEAR(sol.x[y], 6.0, 1e-8);
}

TEST(SimplexTest, EqualityConstraintNeedsPhaseOne)
{
    // max x + y s.t. x + y = 10, x <= 3  ->  x=3, y=7.
    LinearProgram lp;
    int x = lp.addVariable(0.0, 3.0, 1.0, "x");
    int y = lp.addVariable(0.0, kInf, 1.0, "y");
    lp.addConstraint({{x, 1.0}, {y, 1.0}}, RowSense::Equal, 10.0);
    Solution sol = SimplexSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 10.0, 1e-8);
    EXPECT_NEAR(sol.x[x] + sol.x[y], 10.0, 1e-8);
}

TEST(SimplexTest, GreaterEqualConstraint)
{
    // min 2x + 3y s.t. x + y >= 4, x - y <= 2, x,y >= 0.
    // Optimum: y can do all the work? costs: prefer x (cost 2):
    // x=4,y=0 satisfies x-y=4>2 violates. Need x - y <= 2.
    // Try x=3,y=1: cost 9. x=2,y=2: cost 10. Best x=3,y=1 -> 9.
    LinearProgram lp(ObjSense::Minimize);
    int x = lp.addVariable(0.0, kInf, 2.0, "x");
    int y = lp.addVariable(0.0, kInf, 3.0, "y");
    lp.addConstraint({{x, 1.0}, {y, 1.0}}, RowSense::GreaterEqual, 4.0);
    lp.addConstraint({{x, 1.0}, {y, -1.0}}, RowSense::LessEqual, 2.0);
    Solution sol = SimplexSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 9.0, 1e-8);
    EXPECT_NEAR(sol.x[x], 3.0, 1e-8);
    EXPECT_NEAR(sol.x[y], 1.0, 1e-8);
}

TEST(SimplexTest, DetectsInfeasible)
{
    // x <= 1 and x >= 2 cannot both hold.
    LinearProgram lp;
    int x = lp.addVariable(0.0, kInf, 1.0, "x");
    lp.addConstraint({{x, 1.0}}, RowSense::LessEqual, 1.0);
    lp.addConstraint({{x, 1.0}}, RowSense::GreaterEqual, 2.0);
    Solution sol = SimplexSolver().solve(lp);
    EXPECT_EQ(sol.status, SolveStatus::Infeasible);
}

TEST(SimplexTest, DetectsUnbounded)
{
    // max x with only x >= 0: unbounded.
    LinearProgram lp;
    int x = lp.addVariable(0.0, kInf, 1.0, "x");
    lp.addConstraint({{x, 1.0}}, RowSense::GreaterEqual, 0.0);
    Solution sol = SimplexSolver().solve(lp);
    EXPECT_EQ(sol.status, SolveStatus::Unbounded);
}

TEST(SimplexTest, MinimizationSense)
{
    // min x s.t. x >= 7  ->  7.
    LinearProgram lp(ObjSense::Minimize);
    int x = lp.addVariable(0.0, kInf, 1.0, "x");
    lp.addConstraint({{x, 1.0}}, RowSense::GreaterEqual, 7.0);
    Solution sol = SimplexSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 7.0, 1e-9);
}

TEST(SimplexTest, BoundOverrideShrinksFeasibleRegion)
{
    LinearProgram lp;
    int x = lp.addVariable(0.0, 10.0, 1.0, "x");
    (void)x;
    std::vector<std::pair<double, double>> bounds{{0.0, 4.0}};
    Solution sol = SimplexSolver().solve(lp, &bounds);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 4.0, 1e-9);
}

TEST(SimplexTest, CrossedOverrideBoundsAreInfeasible)
{
    LinearProgram lp;
    lp.addVariable(0.0, 10.0, 1.0, "x");
    std::vector<std::pair<double, double>> bounds{{5.0, 4.0}};
    Solution sol = SimplexSolver().solve(lp, &bounds);
    EXPECT_EQ(sol.status, SolveStatus::Infeasible);
}

TEST(SimplexTest, FixedVariableHonored)
{
    // max x + y, x fixed at 2, x + y <= 5.
    LinearProgram lp;
    int x = lp.addVariable(2.0, 2.0, 1.0, "x");
    int y = lp.addVariable(0.0, kInf, 1.0, "y");
    lp.addConstraint({{x, 1.0}, {y, 1.0}}, RowSense::LessEqual, 5.0);
    Solution sol = SimplexSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.x[x], 2.0, 1e-9);
    EXPECT_NEAR(sol.x[y], 3.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates)
{
    // Many redundant constraints through the same vertex.
    LinearProgram lp;
    int x = lp.addVariable(0.0, kInf, 1.0, "x");
    int y = lp.addVariable(0.0, kInf, 1.0, "y");
    for (int k = 1; k <= 6; ++k) {
        lp.addConstraint({{x, static_cast<double>(k)},
                          {y, static_cast<double>(k)}},
                         RowSense::LessEqual, 10.0 * k);
    }
    Solution sol = SimplexSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 10.0, 1e-8);
}

TEST(SimplexTest, NegativeLowerBoundVariable)
{
    // max -x with x in [-5, 5]  ->  x = -5, obj = 5.
    LinearProgram lp;
    int x = lp.addVariable(-5.0, 5.0, -1.0, "x");
    Solution sol = SimplexSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.x[x], -5.0, 1e-9);
    EXPECT_NEAR(sol.objective, 5.0, 1e-9);
}

TEST(SimplexTest, ProteusShapedAllocationLp)
{
    // Miniature of the allocation relaxation: two device types, one
    // family with two variants. Capacity rows link served QPS w to
    // (relaxed) hosting counts n; demand must be met exactly.
    //
    //   max 90 w_a + 100 w_b
    //   w_a <= 50 n_a,  w_b <= 20 n_b   (per type-1 device capacities)
    //   n_a + n_b <= 3                   (3 devices of this type)
    //   w_a + w_b = 70                   (demand)
    //   0 <= n  <= 3
    //
    // Best: use accurate-but-slow b as much as possible: n_b=3 gives
    // w_b=60, remaining 10 via n_a: but n_a+n_b<=3 blocks. So split:
    // n_b=2,n_a=1: w_b=40,w_a=30 ->obj 40*100+30*90=6700.
    // n_b=3: w_b=60, w_a must be 10 but n_a=0 -> infeasible.
    // n_b=2.6,n_a=0.4: w_b=52,w_a=18: infeasible (18>50*0.4=20 ok)
    //   obj 52*100+18*90 = 6820 (LP relaxation better than integral).
    LinearProgram lp;
    int na = lp.addVariable(0.0, 3.0, 0.0, "n_a");
    int nb = lp.addVariable(0.0, 3.0, 0.0, "n_b");
    int wa = lp.addVariable(0.0, kInf, 90.0, "w_a");
    int wb = lp.addVariable(0.0, kInf, 100.0, "w_b");
    lp.addConstraint({{wa, 1.0}, {na, -50.0}}, RowSense::LessEqual, 0.0);
    lp.addConstraint({{wb, 1.0}, {nb, -20.0}}, RowSense::LessEqual, 0.0);
    lp.addConstraint({{na, 1.0}, {nb, 1.0}}, RowSense::LessEqual, 3.0);
    lp.addConstraint({{wa, 1.0}, {wb, 1.0}}, RowSense::Equal, 70.0);
    Solution sol = SimplexSolver().solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    // LP relaxation optimum: all capacity to b until the device budget
    // forces a onto the remaining demand.
    EXPECT_NEAR(sol.x[wa] + sol.x[wb], 70.0, 1e-8);
    EXPECT_GT(sol.objective, 6700.0 - 1e-6);
    EXPECT_TRUE(lp.isFeasible(sol.x, 1e-6));
}

}  // namespace
}  // namespace proteus
