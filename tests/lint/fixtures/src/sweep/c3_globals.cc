// Fixture: C3 obligations in thread-reachable code. This file seeds
// the closure (it lives under src/sweep/) and pulls in
// core/c3_reachable.h, whose findings anchor in that header while
// their cause — reachability — originates here. One global is
// covered by a wildcard next-line suppression.
#include <atomic>
#include <mutex>

#include "common/annotations.h"
#include "core/c3_reachable.h"

namespace fx {

std::mutex g_c3_mu;

int g_unguarded = 0;
int g_guarded PROTEUS_GUARDED_BY(g_c3_mu) = 0;
int g_bad_guard PROTEUS_GUARDED_BY(g_nonexistent_mu) = 0;
std::atomic<int> g_atomic{0};
const int kLimit = 8;
// NOLINTNEXTLINE-PROTEUS(*): wildcard form covers the C3 below
int g_wildcarded = 0;

int
bumpStatic()
{
    static int calls = 0;
    return ++calls;
}

}  // namespace fx
