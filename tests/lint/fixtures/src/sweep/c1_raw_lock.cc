// Fixture: C1 fires on raw lock()/unlock() calls on objects the
// index resolves to mutexes. The third call carries a multi-rule
// suppression list with interior whitespace; weak_ptr::lock() must
// stay inert because it never resolves to a mutex.
#include <memory>
#include <mutex>

namespace fx {

std::mutex g_c1_mu;

void
rawCalls()
{
    g_c1_mu.lock();
    g_c1_mu.unlock();
    g_c1_mu.lock();  // NOLINT-PROTEUS( C1 , C3 ): startup path, single-threaded by construction
    g_c1_mu.unlock();  // NOLINT-PROTEUS(C1): pairs the suppressed lock above
}

void
guarded()
{
    std::lock_guard<std::mutex> lock(g_c1_mu);
}

int
notAMutex(const std::weak_ptr<int>& w)
{
    auto p = w.lock();
    return p ? *p : 0;
}

}  // namespace fx
