// Fixture: the D2 allowlist names exactly src/sweep/sweep_clock.h,
// not the sweep directory — clock reads in any other sweep file are
// still findings (one steady_clock, one time()).
#include <chrono>
#include <ctime>

double
jobStamp()
{
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch()).count();
}

long
rawStamp()
{
    return time(nullptr);
}
