// Fixture: mirrors src/sweep/sweep_clock.h, the audited D2 allowlist
// entry — direct clock reads here must produce no findings.
#include <chrono>

inline double
elapsedMs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

inline long
unixSeconds()
{
    return std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}
