// Fixture: src/pipeline is decision-path code — D1 fires on unordered
// containers and D2 on ambient clock reads, same as src/core.
#include <chrono>
#include <unordered_map>

namespace fx {

struct StageTable {
    std::unordered_map<int, int> stage_of_family;
    std::unordered_map<int, int> cache;  // NOLINT-PROTEUS(D1): lookup-only cache, never iterated
};

long
planStamp()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fx
