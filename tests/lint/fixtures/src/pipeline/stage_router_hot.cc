// Fixture: the stage router is on the query hot path — A1 fires on
// heap allocation and std::function; the raw-pointer forwarder and
// placement new into pooled storage are allowed.
#include <functional>
#include <memory>
#include <new>

namespace fx {

struct Hop {
    int query = 0;
};

using ForwardFn = void (*)(void*, Hop*);  // allowed: no type erasure

Hop*
heapHop()
{
    return new Hop{};
}

std::unique_ptr<Hop>
ownedHop()
{
    return std::make_unique<Hop>();
}

using Forwarder = std::function<void(Hop*)>;

// NOLINTNEXTLINE-PROTEUS(A1): construction-time wiring, not per-query
using AllowedForwarder = std::function<void()>;

Hop*
pooledHop(void* storage)
{
    return new (storage) Hop{};  // placement new: allowed
}

}  // namespace fx
