// Fixture: A1 fires on heap allocation and std::function in hot-path
// files; placement new and suppressed sites are allowed.
#include <functional>
#include <memory>
#include <new>

namespace fx {

struct Event {
    int id = 0;
};

Event*
heapEvent()
{
    return new Event{};
}

std::unique_ptr<Event>
ownedEvent()
{
    return std::make_unique<Event>();
}

std::shared_ptr<Event>
sharedEvent()
{
    return std::make_shared<Event>();
}

using Callback = std::function<void()>;

// NOLINTNEXTLINE-PROTEUS(A1): construction-time wiring, not per-query
using AllowedCallback = std::function<void(int)>;

Event*
placementEvent(void* storage)
{
    return new (storage) Event{};  // placement new: allowed
}

}  // namespace fx
