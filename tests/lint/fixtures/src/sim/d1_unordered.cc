// Fixture: D1 fires on unordered containers in decision-path dirs.
#include <unordered_map>
#include <unordered_set>

namespace fx {

struct Queues {
    std::unordered_map<int, int> by_id;
    std::unordered_set<int> seen;  // NOLINT-PROTEUS(D1): lookup-only set, never iterated
};

}  // namespace fx
