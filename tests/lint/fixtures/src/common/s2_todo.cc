// Fixture: S2 — stale markers need an issue reference.
// TODO: make this configurable
// FIXME the branch below is dead
// TODO(#42): tracked and well-formed, does not fire

namespace fx {

inline int
answer()
{
    return 42;
}

}  // namespace fx
