// Fixture: D3 — float accumulate needs a det-order comment.
#include <numeric>
#include <vector>

namespace fx {

double
sum_bad(const std::vector<double>& v)
{
    return std::accumulate(v.begin(), v.end(), 0.0);
}

double
sum_ok(const std::vector<double>& v)
{
    // det-order: summation follows the caller's fixed vector order
    return std::accumulate(v.begin(), v.end(), 0.0);
}

int
sum_int(const std::vector<int>& v)
{
    return std::accumulate(v.begin(), v.end(), 0);
}

double
sum_suppressed(const std::vector<double>& v)
{
    // NOLINTNEXTLINE-PROTEUS(D3): fixture demonstrating the next-line form
    return std::accumulate(v.begin(), v.end(), 0.0);
}

}  // namespace fx
