// Fixture: S1 — no const_cast / reinterpret_cast in src/.
#include <cstdint>

namespace fx {

int
unsafe(const int* p)
{
    int* q = const_cast<int*>(p);
    auto bits = *reinterpret_cast<const std::uint32_t*>(p);
    return *q + static_cast<int>(bits);
}

}  // namespace fx
