// Fixture: S3 — suppression hygiene (and D4 interplay).
#include <iostream>

namespace fx {

void
emit(int n)
{
    std::cout << n;  // NOLINT-PROTEUS(D4): fixture demonstrating a valid same-line suppression
    std::cout << n;  // NOLINT-PROTEUS(D9): unknown rule id leaves the finding live
    std::cout << n;  // NOLINT-PROTEUS(D4)
    std::cout << n;  // NOLINT-PROTEUS(*): wildcard form covers the D4 on this line
}

}  // namespace fx
