// Fixture: pulled into the thread-reachable closure only by
// c3_globals.cc's include — the C3 findings below anchor in this
// header even though the reachability that causes them lives in the
// sweep fixture. The second global shows that such a finding is
// suppressed where it anchors, not where its cause is.

namespace fx {

int g_core_shared = 0;

int g_core_suppressed = 0;  // NOLINT-PROTEUS(C3): planner-owned; workers only read it before spawn

}  // namespace fx
