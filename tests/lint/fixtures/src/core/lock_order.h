// Fixture: shared declarations for the two-TU lock-order fixtures.
// The member mutex ids (RouteTable::route_mu, PlanCache::plan_mu)
// unify across translation units, which is what lets C2 see the
// inversion spanning lock_order_a.cc and lock_order_b.cc.
#include <mutex>

namespace fx {

struct RouteTable {
    std::mutex route_mu;
    int entries = 0;
};

struct PlanCache {
    std::mutex plan_mu;
    int plans = 0;
};

extern RouteTable g_routes;
extern PlanCache g_plans;

}  // namespace fx
