// Fixture: acquires the route table before the plan cache;
// lock_order_b.cc acquires the opposite way. Each TU on its own is
// consistent — only the merged cross-file graph has the cycle.
#include <mutex>

#include "core/lock_order.h"

namespace fx {

RouteTable g_routes;
PlanCache g_plans;

void
refreshRoutes()
{
    std::lock_guard<std::mutex> routes(g_routes.route_mu);
    std::lock_guard<std::mutex> plans(g_plans.plan_mu);
    g_routes.entries += g_plans.plans;
}

}  // namespace fx
