// Fixture: D2 fires on wall-clock reads outside common/clock.h.
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace fx {

struct Query {
    double time_us = 0.0;
    double time_point() const { return time_us; }
};

double
now_seconds()
{
    auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count() +
           static_cast<double>(time(nullptr));
}

int
jitter()
{
    return rand();  // NOLINT-PROTEUS(D2): fixture demonstrating a suppressed PRNG read
}

double
member_call_is_fine(const Query& q)
{
    return q.time_point();
}

}  // namespace fx
