// Fixture: D4 — raw output belongs in bench/ and tools/ only.
#include <cstdio>
#include <iostream>

namespace fx {

void
report(int n)
{
    std::cout << n << "\n";
    printf("%d\n", n);
    std::fprintf(stderr, "%d\n", n);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", n);
}

}  // namespace fx
