// Fixture: the second half of the cross-TU lock-order inversion —
// plan cache first, route table second (see lock_order_a.cc).
#include <mutex>

#include "core/lock_order.h"

namespace fx {

void
evictPlans()
{
    std::lock_guard<std::mutex> plans(g_plans.plan_mu);
    std::lock_guard<std::mutex> routes(g_routes.route_mu);
    g_plans.plans -= g_routes.entries;
}

}  // namespace fx
