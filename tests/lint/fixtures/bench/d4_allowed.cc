// Fixture: bench/ (and tools/) may write to stdout directly, and the
// banned identifiers are inert inside strings and comments:
// steady_clock, unordered_map, const_cast — none of these fire.
#include <iostream>

namespace fx {

void
print_table()
{
    std::cout << "uses steady_clock and unordered_map in a string\n";
}

}  // namespace fx
