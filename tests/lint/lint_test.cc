/**
 * @file
 * proteus_lint tests: every rule firing, every suppression form, the
 * --json schema (golden output), and tokenizer edge cases.
 *
 * Fixture files live under tests/lint/fixtures/ in a tree that
 * mirrors the real layout (src/sim/, src/core/, bench/, ...) because
 * rule applicability is path-scoped. They are data, not code: never
 * compiled, and excluded from the default proteus_lint scan.
 */

#include "lint.h"

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"

namespace {

using proteus::lint::Finding;
using proteus::lint::lintSource;

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Lint one fixture, reporting under its repo-relative path. */
std::vector<Finding>
lintFixture(const std::string& rel)
{
    const std::string abs = std::string(LINT_FIXTURE_DIR) + "/" + rel;
    return lintSource("tests/lint/fixtures/" + rel, readFile(abs));
}

std::vector<std::string>
rulesOf(const std::vector<Finding>& fs, bool include_suppressed = true)
{
    std::vector<std::string> out;
    for (const Finding& f : fs) {
        if (include_suppressed || !f.suppressed)
            out.push_back(f.rule);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Per-rule fixtures
// ---------------------------------------------------------------------------

TEST(LintRules, D1FlagsUnorderedContainersInDecisionPath)
{
    auto fs = lintFixture("src/sim/d1_unordered.cc");
    ASSERT_EQ(fs.size(), 4u);
    for (const Finding& f : fs)
        EXPECT_EQ(f.rule, "D1");
    // The lookup-only set on line 9 carries a same-line suppression.
    EXPECT_FALSE(fs[0].suppressed);
    EXPECT_FALSE(fs[1].suppressed);
    EXPECT_FALSE(fs[2].suppressed);
    EXPECT_TRUE(fs[3].suppressed);
    EXPECT_EQ(fs[3].suppress_reason, "lookup-only set, never iterated");
}

TEST(LintRules, D1IgnoresUnorderedContainersOutsideDecisionPath)
{
    auto fs = lintSource("src/workload/gen.cc",
                         "#include <unordered_map>\n"
                         "std::unordered_map<int, int> m;\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintRules, D2FlagsClocksAndAmbientPrng)
{
    auto fs = lintFixture("src/core/d2_clock.cc");
    ASSERT_EQ(fs.size(), 3u);
    EXPECT_EQ(fs[0].rule, "D2");  // steady_clock
    EXPECT_EQ(fs[1].rule, "D2");  // time(nullptr)
    EXPECT_EQ(fs[2].rule, "D2");  // rand(), suppressed
    EXPECT_FALSE(fs[0].suppressed);
    EXPECT_FALSE(fs[1].suppressed);
    EXPECT_TRUE(fs[2].suppressed);
}

TEST(LintRules, D2WhitelistsTheClockShim)
{
    const std::string body =
        "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_TRUE(lintSource("src/common/clock.h", body).empty());
    EXPECT_EQ(lintSource("src/common/other.h", body).size(), 1u);
}

TEST(LintRules, D2WhitelistsTheSweepClockShimOnly)
{
    const std::string body =
        "auto t = std::chrono::system_clock::now();\n";
    // The allowlist entry is the single audited file, not the
    // directory: every other sweep file still fires.
    EXPECT_TRUE(lintSource("src/sweep/sweep_clock.h", body).empty());
    EXPECT_EQ(lintSource("src/sweep/runner.cc", body).size(), 1u);
    EXPECT_EQ(lintSource("src/sweep/store.cc", body).size(), 1u);
}

TEST(LintRules, D2SweepFixturesMatchTheAllowlistScope)
{
    EXPECT_TRUE(lintFixture("src/sweep/sweep_clock.h").empty());
    auto fs = lintFixture("src/sweep/d2_scope.cc");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, "D2");  // steady_clock
    EXPECT_EQ(fs[1].rule, "D2");  // time(nullptr)
    EXPECT_FALSE(fs[0].suppressed);
    EXPECT_FALSE(fs[1].suppressed);
}

TEST(LintRules, D2IgnoresMemberFunctionsNamedLikeClockCalls)
{
    auto fs = lintSource("src/core/q.cc",
                         "double f(const Query& q) { return q.time(); }\n"
                         "double g(Query* q) { return q->time(); }\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintRules, D3RequiresDetOrderCommentForFloatAccumulate)
{
    auto fs = lintFixture("src/common/d3_accumulate.cc");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, "D3");
    EXPECT_FALSE(fs[0].suppressed);  // sum_bad
    EXPECT_EQ(fs[1].rule, "D3");
    EXPECT_TRUE(fs[1].suppressed);  // sum_suppressed, NOLINTNEXTLINE
    // sum_ok (det-order comment) and sum_int (integer) do not fire.
}

TEST(LintRules, D4FlagsRawOutputOutsideBenchAndTools)
{
    auto fs = lintFixture("src/core/d4_output.cc");
    ASSERT_EQ(fs.size(), 3u);  // cout, printf, fprintf; snprintf clean
    for (const Finding& f : fs)
        EXPECT_EQ(f.rule, "D4");
}

TEST(LintRules, D4AllowsBenchAndStringsStayInert)
{
    EXPECT_TRUE(lintFixture("bench/d4_allowed.cc").empty());
}

TEST(LintRules, A1FlagsHeapAllocationInHotPath)
{
    auto fs = lintFixture("src/sim/a1_alloc.cc");
    ASSERT_EQ(fs.size(), 5u);
    for (const Finding& f : fs)
        EXPECT_EQ(f.rule, "A1");
    EXPECT_FALSE(fs[0].suppressed);  // new Event{}
    EXPECT_FALSE(fs[1].suppressed);  // make_unique
    EXPECT_FALSE(fs[2].suppressed);  // make_shared
    EXPECT_FALSE(fs[3].suppressed);  // std::function Callback
    EXPECT_TRUE(fs[4].suppressed);   // AllowedCallback, NOLINTNEXTLINE
    // placementEvent (new (storage) Event{}) does not fire.
}

TEST(LintRules, A1AllowsPlacementNewOperatorNewAndIncludeNew)
{
    EXPECT_TRUE(lintSource("src/sim/p.cc",
                           "#include <new>\n"
                           "void* operator new(unsigned long n);\n"
                           "int* f(void* s) { return new (s) int{}; }\n")
                    .empty());
}

TEST(LintRules, A1IgnoresAllocationOutsideHotPath)
{
    const std::string body =
        "#include <memory>\n"
        "auto p = std::make_unique<int>(1);\n"
        "int* q = new int{2};\n";
    EXPECT_TRUE(lintSource("src/metrics/collector.cc", body).empty());
    EXPECT_TRUE(lintSource("src/core/controller.cc", body).empty());
    EXPECT_EQ(lintSource("src/core/worker.cc", body).size(), 2u);
    EXPECT_EQ(lintSource("src/common/alloc/pool.h", body).size(), 2u);
}

TEST(LintRules, S1FlagsUnsafeCastsInSrc)
{
    auto fs = lintFixture("src/common/s1_casts.cc");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, "S1");
    EXPECT_EQ(fs[1].rule, "S1");
    // static_cast in the same fixture does not fire.
}

TEST(LintRules, S2RequiresIssueReferenceOnStaleMarkers)
{
    auto fs = lintFixture("src/common/s2_todo.cc");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, "S2");
    EXPECT_EQ(fs[0].line, 2);  // marker with no reference at all
    EXPECT_EQ(fs[1].rule, "S2");
    EXPECT_EQ(fs[1].line, 3);  // second marker form, also unreferenced
    // line 4's TODO(#42) form is accepted.
}

TEST(LintRules, S3FlagsMalformedSuppressions)
{
    auto fs = lintFixture("src/common/s3_suppressions.cc");
    auto rules = rulesOf(fs);
    ASSERT_EQ(fs.size(), 6u);
    // Valid same-line and wildcard suppressions cover their D4s;
    // unknown-rule and missing-reason markers leave the D4 live and
    // add an S3 each.
    int s3 = 0;
    int live_d4 = 0;
    int suppressed_d4 = 0;
    for (const Finding& f : fs) {
        if (f.rule == "S3")
            ++s3;
        else if (f.rule == "D4" && f.suppressed)
            ++suppressed_d4;
        else if (f.rule == "D4")
            ++live_d4;
    }
    EXPECT_EQ(s3, 2);
    EXPECT_EQ(live_d4, 2);
    EXPECT_EQ(suppressed_d4, 2);
}

// ---------------------------------------------------------------------------
// Tokenizer edge cases
// ---------------------------------------------------------------------------

TEST(LintTokenizer, LiteralsAndCommentsAreInert)
{
    auto fs = lintSource(
        "src/sim/x.cc",
        "// a comment mentioning unordered_map is fine\n"
        "/* and steady_clock in a block comment too */\n"
        "const char* s = \"std::unordered_map<int,int> in a string\";\n"
        "const char* r = R\"(raw unordered_set literal)\";\n"
        "char c = 'x';\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintTokenizer, EscapedQuotesDoNotDerailStrings)
{
    auto fs = lintSource("src/sim/x.cc",
                         "const char* s = \"quote \\\" then "
                         "unordered_map stays literal\";\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintTokenizer, FindingCoordinatesAreOneBased)
{
    auto fs = lintSource("src/sim/x.cc", "std::unordered_set<int> s;\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].line, 1);
    EXPECT_EQ(fs[0].col, 6);
}

// ---------------------------------------------------------------------------
// Suppression forms
// ---------------------------------------------------------------------------

TEST(LintSuppressions, MultiRuleListCoversEachNamedRule)
{
    auto fs = lintSource(
        "src/sim/x.cc",
        "std::unordered_map<int, long> m;  "
        "// NOLINT-PROTEUS(D1,D2): both rules named, one line\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_TRUE(fs[0].suppressed);
    EXPECT_EQ(fs[0].suppress_reason, "both rules named, one line");
}

TEST(LintSuppressions, SuppressionOnWrongRuleDoesNotApply)
{
    auto fs = lintSource("src/sim/x.cc",
                         "std::unordered_map<int, long> m;  "
                         "// NOLINT-PROTEUS(D4): wrong rule\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_FALSE(fs[0].suppressed);
}

TEST(LintSuppressions, NextLineFormDoesNotCoverItsOwnLine)
{
    auto fs = lintSource(
        "src/sim/x.cc",
        "// NOLINTNEXTLINE-PROTEUS(D1): covers only the next line\n"
        "std::unordered_set<int> a;\n"
        "std::unordered_set<int> b;\n");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_TRUE(fs[0].suppressed);
    EXPECT_FALSE(fs[1].suppressed);
}

// ---------------------------------------------------------------------------
// JSON schema: golden output and parseability
// ---------------------------------------------------------------------------

// Kept in the full-path sort order collectFiles() produces, so the
// golden test feeds analyzeSources() the same sequence the CLI does.
const char* const kFixtureFiles[] = {
    "bench/d4_allowed.cc",
    "src/common/d3_accumulate.cc",
    "src/common/s1_casts.cc",
    "src/common/s2_todo.cc",
    "src/common/s3_suppressions.cc",
    "src/core/c3_reachable.h",
    "src/core/d2_clock.cc",
    "src/core/d4_output.cc",
    "src/core/lock_order.h",
    "src/core/lock_order_a.cc",
    "src/core/lock_order_b.cc",
    "src/pipeline/d1_d2_planner.cc",
    "src/pipeline/stage_router_hot.cc",
    "src/sim/a1_alloc.cc",
    "src/sim/d1_unordered.cc",
    "src/sweep/c1_raw_lock.cc",
    "src/sweep/c3_globals.cc",
    "src/sweep/d2_scope.cc",
    "src/sweep/sweep_clock.h",
};

TEST(LintJson, GoldenOutputIsByteIdentical)
{
    // Cross-file rules make the golden a whole-corpus property: run
    // the same two-pass driver the CLI runs, over the same file list.
    std::vector<std::pair<std::string, std::string>> sources;
    for (const char* rel : kFixtureFiles) {
        const std::string abs =
            std::string(LINT_FIXTURE_DIR) + "/" + rel;
        sources.emplace_back("tests/lint/fixtures/" + std::string(rel),
                             readFile(abs));
    }
    const auto analysis = proteus::lint::analyzeSources(sources);
    const std::string got =
        proteus::lint::toJson(analysis.findings, sources.size());
    const std::string want = readFile(LINT_GOLDEN_FILE);
    EXPECT_EQ(got, want)
        << "regenerate with: build/tools/lint/proteus_lint --json "
           "tests/lint/fixtures > tests/lint/golden.json";
}

TEST(LintJson, SchemaParsesAndCountsAreConsistent)
{
    const std::string text = readFile(LINT_GOLDEN_FILE);
    proteus::JsonValue v;
    std::string err;
    ASSERT_TRUE(proteus::parseJson(text, &v, &err)) << err;
    EXPECT_EQ(v.at("schema").asNumber(), 2.0);
    EXPECT_EQ(v.at("files_scanned").asNumber(),
              static_cast<double>(std::size(kFixtureFiles)));

    const auto& findings = v.at("findings").asArray();
    const auto& counts = v.at("counts");
    EXPECT_EQ(counts.at("total").asNumber(),
              static_cast<double>(findings.size()));
    double suppressed = 0;
    for (const auto& f : findings) {
        EXPECT_TRUE(f.at("file").isString());
        EXPECT_TRUE(f.at("line").isNumber());
        EXPECT_TRUE(f.at("col").isNumber());
        EXPECT_TRUE(f.at("rule").isString());
        EXPECT_TRUE(f.at("message").isString());
        EXPECT_TRUE(f.at("suppressed").isBool());
        EXPECT_TRUE(f.at("reason").isString());
        if (f.at("suppressed").asBool()) {
            ++suppressed;
            EXPECT_FALSE(f.at("reason").asString().empty())
                << "suppressed finding without a reason";
        }
    }
    EXPECT_EQ(counts.at("suppressed").asNumber(), suppressed);
    EXPECT_EQ(counts.at("unsuppressed").asNumber(),
              static_cast<double>(findings.size()) - suppressed);
}

// ---------------------------------------------------------------------------
// File collection and registry
// ---------------------------------------------------------------------------

TEST(LintFiles, DefaultScanSkipsFixtures)
{
    auto files =
        proteus::lint::collectFiles({LINT_FIXTURE_DIR}, true);
    EXPECT_TRUE(files.empty());
    files = proteus::lint::collectFiles({LINT_FIXTURE_DIR}, false);
    EXPECT_EQ(files.size(), std::size(kFixtureFiles));
}

TEST(LintRegistry, AllRuleIdsAreKnown)
{
    for (const auto& r : proteus::lint::ruleRegistry())
        EXPECT_TRUE(proteus::lint::isKnownRule(r.id));
    EXPECT_FALSE(proteus::lint::isKnownRule("D9"));
    EXPECT_FALSE(proteus::lint::isKnownRule(""));
}

}  // namespace
